//! The approximate streaming join.

use std::collections::{HashMap, HashSet, VecDeque};

use sssj_core::{ShardableJoin, StreamJoin};
use sssj_metrics::JoinStats;
use sssj_types::{dot, Decay, SimilarPair, SparseVector, StreamRecord, VectorId};

use crate::bands::Bands;
use crate::simhash::{Signature, SimHasher};

/// How candidate pairs are scored before the threshold test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Exact dot product against the stored vector: **no false
    /// positives**, only (LSH-induced) false negatives. The default.
    #[default]
    Exact,
    /// Cosine estimated from signature Hamming distance: never touches
    /// the original vectors (they are not even stored), at the price of
    /// both false positives and extra false negatives.
    Estimate,
}

/// Tuning of the approximate join.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LshParams {
    /// Signature width in bits (positive multiple of 64).
    pub bits: u32,
    /// Number of bands (must divide `bits`, rows per band ≤ 64). More
    /// bands → higher recall, more candidate checks.
    pub bands: u32,
    /// Hyperplane seed; fixed default for reproducibility.
    pub seed: u64,
    /// Scoring mode.
    pub verify: VerifyMode,
}

impl Default for LshParams {
    fn default() -> Self {
        LshParams {
            bits: 256,
            bands: 32,
            seed: 0x5353_534A, // "SSSJ"
            verify: VerifyMode::Exact,
        }
    }
}

impl LshParams {
    /// The analytic probability that a pair at cosine similarity `c`
    /// (before decay) becomes a candidate.
    pub fn collision_probability_at(&self, cosine: f64) -> f64 {
        Bands::new(self.bits, self.bands).collision_probability_at(cosine)
    }
}

/// Per-vector stored state while inside the horizon.
struct Stored {
    t: f64,
    signature: Signature,
    /// Present only in [`VerifyMode::Exact`].
    vector: Option<SparseVector>,
}

/// Offsets past this bound go to the spill map instead of padding the
/// dense window with empty slots (mirrors the accumulator's span limit).
const DENSE_GAP_LIMIT: u64 = 1 << 16;

/// Hard cap on the dense window's total slot count. `Stored` entries are
/// two orders of magnitude bigger than accumulator slots, so the span
/// bound is correspondingly tighter: ids that would stretch the window
/// past this spill instead, keeping worst-case empty-slot overhead at a
/// few tens of MB even for adversarial id patterns whose steps always
/// stay under [`DENSE_GAP_LIMIT`].
const DENSE_SPAN_LIMIT: u64 = 1 << 18;

/// Signature cache keyed by the dense id window — the
/// [`sssj_collections::ScoreAccumulator`] pattern applied to the LSH
/// store. Stream ids are assigned in arrival order and every collision
/// candidate is in-horizon, so the live keys form a dense, slowly
/// sliding window `[base, base + slots.len())`: the per-candidate
/// signature/vector lookup — the hottest read of the scoring loop — is
/// one bounds check and an array index instead of a hash probe. Ids far
/// outside the window (arbitrary `u64`s are allowed) fall back to a
/// spill map, so correctness never depends on id density.
///
/// [`sssj_collections::ScoreAccumulator`]: https://docs.rs/sssj-collections
#[derive(Default)]
struct SigCache {
    /// Id of `slots[0]`.
    base: u64,
    /// The dense window; `None` marks evicted or never-seen ids.
    slots: VecDeque<Option<Stored>>,
    /// Live entries in `slots`.
    dense_len: usize,
    /// Fallback for ids outside the dense window.
    spill: HashMap<VectorId, Stored>,
}

impl SigCache {
    fn len(&self) -> usize {
        self.dense_len + self.spill.len()
    }

    #[inline]
    fn get(&self, id: VectorId) -> Option<&Stored> {
        match id.checked_sub(self.base) {
            Some(off) if (off as usize) < self.slots.len() => self.slots[off as usize].as_ref(),
            _ => self.spill.get(&id),
        }
    }

    fn insert(&mut self, id: VectorId, stored: Stored) {
        if self.dense_len == 0 && self.spill.is_empty() {
            // Empty cache: restart the window at the new id.
            self.slots.clear();
            self.base = id;
        }
        match id.checked_sub(self.base) {
            Some(off)
                if off < DENSE_SPAN_LIMIT && off < self.slots.len() as u64 + DENSE_GAP_LIMIT =>
            {
                let off = off as usize;
                while self.slots.len() <= off {
                    self.slots.push_back(None);
                }
                if self.slots[off].replace(stored).is_none() {
                    self.dense_len += 1;
                }
                // A re-inserted id may have spilled earlier; drop the
                // stale copy so the two stores never disagree.
                if !self.spill.is_empty() {
                    self.spill.remove(&id);
                }
            }
            _ => {
                self.spill.insert(id, stored);
            }
        }
    }

    fn remove(&mut self, id: VectorId) {
        match id.checked_sub(self.base) {
            Some(off) if (off as usize) < self.slots.len() => {
                if self.slots[off as usize].take().is_some() {
                    self.dense_len -= 1;
                }
                // Slide the window past the dead prefix (eviction is
                // oldest-first, so this keeps the deque at the live span).
                while let Some(None) = self.slots.front() {
                    self.slots.pop_front();
                    self.base += 1;
                }
            }
            _ => {
                self.spill.remove(&id);
            }
        }
    }
}

/// Approximate streaming similarity self-join: SimHash + banding +
/// time-filtered collision buckets.
///
/// Reports a subset of the exact join output (under
/// [`VerifyMode::Exact`]); the miss probability for a pair at cosine `c`
/// is `1 − collision_probability_at(c)` and is sharply concentrated
/// towards low-similarity pairs by the banding S-curve.
///
/// ```
/// use sssj_core::StreamJoin;
/// use sssj_lsh::{LshJoin, LshParams};
/// use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};
///
/// let mut join = LshJoin::new(0.7, 0.1, LshParams::default());
/// let mut out = Vec::new();
/// for (id, t) in [(0, 0.0), (1, 1.0)] {
///     let r = StreamRecord::new(id, Timestamp::new(t), unit_vector(&[(1, 1.0), (2, 2.0)]));
///     join.process(&r, &mut out);
/// }
/// // Identical vectors always collide (identical signatures).
/// assert_eq!(out.len(), 1);
/// ```
pub struct LshJoin {
    theta: f64,
    decay: Decay,
    tau: f64,
    hasher: SimHasher,
    bands: Bands,
    params: LshParams,
    /// band key → arrival-ordered (id, t) entries.
    buckets: HashMap<u64, VecDeque<(VectorId, f64)>>,
    /// Dense-id-window cache of stored sketches (+vector in Exact mode).
    store: SigCache,
    /// Arrival order of stored ids, for horizon eviction.
    arrivals: VecDeque<(f64, VectorId)>,
    candidates: HashSet<VectorId>,
    stats: JoinStats,
    live_postings: u64,
    /// Live count at the last global sweep (amortisation threshold).
    swept_at: u64,
}

impl LshJoin {
    /// Creates an approximate join for threshold `θ` and decay `λ`.
    pub fn new(theta: f64, lambda: f64, params: LshParams) -> Self {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "theta must be in (0, 1]: {theta}"
        );
        let decay = Decay::new(lambda);
        let tau = decay.horizon(theta);
        assert!(
            tau.is_finite(),
            "λ = 0 gives an infinite horizon; the streaming join needs finite forgetting"
        );
        LshJoin {
            theta,
            decay,
            tau,
            hasher: SimHasher::new(params.bits, params.seed),
            bands: Bands::new(params.bits, params.bands),
            params,
            buckets: HashMap::new(),
            store: SigCache::default(),
            arrivals: VecDeque::new(),
            candidates: HashSet::new(),
            stats: JoinStats::new(),
            live_postings: 0,
            swept_at: 0,
        }
    }

    /// The parameters this join was built with.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// The time horizon.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Vectors currently inside the horizon.
    pub fn stored_vectors(&self) -> usize {
        self.store.len()
    }

    fn evict(&mut self, now: f64) {
        while let Some(&(t, id)) = self.arrivals.front() {
            if now - t > self.tau {
                self.arrivals.pop_front();
                self.store.remove(id);
            } else {
                break;
            }
        }
        // Probe-time pruning only touches buckets the current signature
        // hits; entries under never-revisited band keys would otherwise
        // accumulate forever. Sweep all buckets whenever the live count
        // doubles since the last sweep — amortised O(1) per entry,
        // bounding memory to O(in-horizon entries).
        if self.live_postings > 2 * self.swept_at.max(self.params.bands as u64) {
            let tau = self.tau;
            let mut pruned = 0u64;
            self.buckets.retain(|_, bucket| {
                while let Some(&(_, t)) = bucket.front() {
                    if now - t > tau {
                        bucket.pop_front();
                        pruned += 1;
                    } else {
                        break;
                    }
                }
                !bucket.is_empty()
            });
            self.stats.entries_pruned += pruned;
            self.live_postings -= pruned;
            self.swept_at = self.live_postings;
        }
    }
}

impl LshJoin {
    /// The query half of processing: evict, probe the band buckets with
    /// `sig` and score the collision candidates.
    fn query_with_sig(
        &mut self,
        record: &StreamRecord,
        sig: &Signature,
        out: &mut Vec<SimilarPair>,
    ) {
        let now = record.t.seconds();
        self.evict(now);
        self.candidates.clear();

        // Probe: collect in-horizon collision candidates, pruning bucket
        // fronts (time filtering — buckets are arrival-ordered).
        for key in self.bands.keys(sig) {
            if let Some(bucket) = self.buckets.get_mut(&key) {
                while let Some(&(_, t)) = bucket.front() {
                    if now - t > self.tau {
                        bucket.pop_front();
                        self.stats.entries_pruned += 1;
                        self.live_postings -= 1;
                    } else {
                        break;
                    }
                }
                for &(id, _) in bucket.iter() {
                    self.stats.entries_traversed += 1;
                    self.candidates.insert(id);
                }
            }
        }

        // Score candidates: one dense-window probe each, no hashing for
        // in-window ids.
        for &id in &self.candidates {
            let Some(stored) = self.store.get(id) else {
                continue;
            };
            self.stats.candidates += 1;
            let df = self.decay.factor((now - stored.t).max(0.0));
            let sim = match self.params.verify {
                VerifyMode::Exact => {
                    self.stats.full_sims += 1;
                    let v = stored.vector.as_ref().expect("Exact mode stores vectors");
                    dot(&record.vector, v) * df
                }
                VerifyMode::Estimate => sig.estimate_cosine(&stored.signature) * df,
            };
            if sim >= self.theta {
                self.stats.pairs_output += 1;
                out.push(SimilarPair::new(id, record.id, sim));
            }
        }
    }

    /// The insert half: one bucket entry per band, plus the store.
    fn insert_with_sig(&mut self, record: &StreamRecord, sig: Signature) {
        let now = record.t.seconds();
        for key in self.bands.keys(&sig) {
            self.buckets
                .entry(key)
                .or_default()
                .push_back((record.id, now));
            self.live_postings += 1;
            self.stats.postings_added += 1;
        }
        let vector = match self.params.verify {
            VerifyMode::Exact => {
                self.stats.residual_coords += record.vector.nnz() as u64;
                Some(record.vector.clone())
            }
            VerifyMode::Estimate => None,
        };
        self.store.insert(
            record.id,
            Stored {
                t: now,
                signature: sig,
                vector,
            },
        );
        self.arrivals.push_back((now, record.id));
        self.stats.observe_postings(self.live_postings);
    }
}

impl ShardableJoin for LshJoin {
    fn process_routed(&mut self, record: &StreamRecord, insert: bool, out: &mut Vec<SimilarPair>) {
        let sig = self.hasher.sign(&record.vector);
        self.query_with_sig(record, &sig, out);
        if insert {
            self.insert_with_sig(record, sig);
        }
    }

    /// Banding collisions are signature-driven, not dimension-driven: two
    /// vectors with *disjoint* support can land in the same bucket (and in
    /// `verify=est` mode even pair above `θ`), so no dimension-occupancy
    /// table can prove a shard candidate-free. A sharded driver must
    /// broadcast.
    fn occupancy_horizon(&self) -> Option<f64> {
        None
    }
}

impl StreamJoin for LshJoin {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let sig = self.hasher.sign(&record.vector);
        self.query_with_sig(record, &sig, out);
        self.insert_with_sig(record, sig);
    }

    fn finish(&mut self, _out: &mut Vec<SimilarPair>) {}

    fn stats(&self) -> JoinStats {
        self.stats
    }

    fn live_postings(&self) -> u64 {
        self.live_postings
    }

    fn name(&self) -> String {
        let mode = match self.params.verify {
            VerifyMode::Exact => "exact",
            VerifyMode::Estimate => "est",
        };
        format!(
            "LSH-{}x{}-{}",
            self.params.bands,
            self.params.bits / self.params.bands,
            mode
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn rec(id: u64, t: f64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::new(t), unit_vector(entries))
    }

    fn run(join: &mut LshJoin, stream: &[StreamRecord]) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for r in stream {
            join.process(r, &mut out);
        }
        let mut keys: Vec<_> = out.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn identical_vectors_always_found() {
        let stream = vec![
            rec(0, 0.0, &[(1, 1.0), (2, 2.0)]),
            rec(1, 1.0, &[(1, 1.0), (2, 2.0)]),
        ];
        let mut join = LshJoin::new(0.7, 0.1, LshParams::default());
        assert_eq!(run(&mut join, &stream), vec![(0, 1)]);
    }

    #[test]
    fn horizon_still_applies() {
        let stream = vec![
            rec(0, 0.0, &[(1, 1.0)]),
            rec(1, 1000.0, &[(1, 1.0)]), // far beyond τ ≈ 3.6
        ];
        let mut join = LshJoin::new(0.7, 0.1, LshParams::default());
        assert!(run(&mut join, &stream).is_empty());
        assert_eq!(join.stored_vectors(), 1); // the expired one was evicted
    }

    #[test]
    fn exact_mode_has_no_false_positives() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut t = 0.0;
        let stream: Vec<StreamRecord> = (0..300)
            .map(|i| {
                t += rng.random_range(0.0..0.5);
                let entries: Vec<(u32, f64)> = (0..rng.random_range(1..5))
                    .map(|_| (rng.random_range(0..12u32), rng.random_range(0.1..1.0)))
                    .collect();
                rec(i, t, &entries)
            })
            .collect();
        let theta = 0.6;
        let lambda = 0.1;
        let mut join = LshJoin::new(theta, lambda, LshParams::default());
        let mut out = Vec::new();
        for r in &stream {
            join.process(r, &mut out);
        }
        let decay = Decay::new(lambda);
        let by_id: std::collections::HashMap<u64, &StreamRecord> =
            stream.iter().map(|r| (r.id, r)).collect();
        for p in &out {
            let a = by_id[&p.left];
            let b = by_id[&p.right];
            let truth = decay.apply(dot(&a.vector, &b.vector), a.t.delta(b.t));
            assert!(truth >= theta, "false positive: {} < {theta}", truth);
            assert!((p.similarity - truth).abs() < 1e-12);
        }
    }

    #[test]
    fn estimate_mode_stores_no_vectors() {
        let params = LshParams {
            verify: VerifyMode::Estimate,
            ..LshParams::default()
        };
        let mut join = LshJoin::new(0.7, 0.1, params);
        let mut out = Vec::new();
        join.process(&rec(0, 0.0, &[(1, 1.0), (2, 1.0)]), &mut out);
        join.process(&rec(1, 0.5, &[(1, 1.0), (2, 1.0)]), &mut out);
        assert_eq!(out.len(), 1); // identical signature → estimate 1.0
        assert_eq!(join.stats().full_sims, 0);
        assert_eq!(join.stats().residual_coords, 0);
    }

    #[test]
    fn bucket_entries_are_time_pruned() {
        let mut join = LshJoin::new(0.5, 1.0, LshParams::default()); // τ ≈ 0.69
        let mut out = Vec::new();
        for i in 0..50 {
            join.process(&rec(i, i as f64 * 10.0, &[(1, 1.0)]), &mut out);
        }
        assert!(out.is_empty());
        // Each arrival lands in 32 band buckets; the previous occupant of
        // each is expired and pruned at probe time.
        assert!(
            join.live_postings() <= 2 * 32,
            "live={}",
            join.live_postings()
        );
        assert!(join.stats().entries_pruned > 0);
    }

    #[test]
    fn unique_band_keys_do_not_leak() {
        // Every record is a distinct singleton dimension, so band keys
        // essentially never repeat and probe-time pruning never fires;
        // only the global sweep keeps memory bounded.
        let mut join = LshJoin::new(0.5, 1.0, LshParams::default()); // τ ≈ 0.69
        let mut out = Vec::new();
        for i in 0..2_000u64 {
            join.process(&rec(i, i as f64, &[(i as u32, 1.0)]), &mut out);
        }
        assert!(out.is_empty());
        // Without the sweep this would be ~2000 × 32 entries.
        let bands = join.params().bands as u64;
        assert!(
            join.live_postings() <= 8 * bands,
            "live={} (leak)",
            join.live_postings()
        );
        assert_eq!(join.stored_vectors(), 1);
    }

    #[test]
    fn sparse_ids_fall_back_to_spill() {
        // Ids far outside the dense window must land in the spill map and
        // still pair correctly in both directions.
        let mut join = LshJoin::new(0.7, 0.1, LshParams::default());
        let mut out = Vec::new();
        join.process(&rec(0, 0.0, &[(1, 1.0)]), &mut out);
        join.process(&rec(u64::MAX - 5, 0.5, &[(1, 1.0)]), &mut out);
        join.process(&rec(1, 1.0, &[(1, 1.0)]), &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
        assert_eq!(join.stored_vectors(), 3);
    }

    #[test]
    fn wide_id_steps_cannot_balloon_the_dense_window() {
        // Ids stepping just under the gap limit stay "dense" only until
        // the span cap; beyond it they spill, so slot memory is bounded
        // by the span, not the id range.
        let mut join = LshJoin::new(0.7, 0.001, LshParams::default()); // τ ≈ 357
        let mut out = Vec::new();
        let step = (1u64 << 16) - 1;
        for i in 0..40u64 {
            join.process(&rec(i * step, i as f64, &[(1, 1.0)]), &mut out);
        }
        assert_eq!(join.stored_vectors(), 40);
        assert!(
            (join.store.slots.len() as u64) <= DENSE_SPAN_LIMIT,
            "slots={}",
            join.store.slots.len()
        );
        // Every consecutive pair still found (spilled ids stay correct).
        assert_eq!(out.len(), 39 * 40 / 2, "{}", out.len());
    }

    #[test]
    fn dense_window_slides_with_eviction() {
        let mut join = LshJoin::new(0.5, 1.0, LshParams::default()); // τ ≈ 0.69
        let mut out = Vec::new();
        for i in 0..5_000u64 {
            join.process(&rec(i, i as f64, &[(1, 1.0)]), &mut out);
        }
        // Only the newest vector is in-horizon; the window must have
        // slid along rather than grown with the stream.
        assert_eq!(join.stored_vectors(), 1);
        assert!(join.store.slots.len() <= 2, "window did not slide");
    }

    #[test]
    fn name_encodes_shape() {
        let join = LshJoin::new(0.5, 0.1, LshParams::default());
        assert_eq!(join.name(), "LSH-32x8-exact");
    }

    #[test]
    #[should_panic(expected = "infinite horizon")]
    fn zero_lambda_rejected() {
        LshJoin::new(0.5, 0.0, LshParams::default());
    }
}

//! Recall/precision evaluation of the approximate join against the exact
//! output.

use std::collections::HashSet;

use sssj_core::StreamJoin;
use sssj_types::{SimilarPair, StreamRecord};

use crate::join::{LshJoin, LshParams};

/// Accuracy of one LSH configuration against the exact join output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccuracyReport {
    /// Fraction of exact pairs the LSH join also reports.
    pub recall: f64,
    /// Fraction of LSH pairs that are exact pairs (1.0 in
    /// [`crate::VerifyMode::Exact`] by construction).
    pub precision: f64,
    /// Pairs in the exact output.
    pub exact_pairs: usize,
    /// Pairs in the LSH output.
    pub lsh_pairs: usize,
    /// Candidate checks the LSH join performed (its work measure).
    pub candidate_checks: u64,
}

/// Runs [`LshJoin`] over `stream` and scores it against `reference` (the
/// exact join output for the same `(θ, λ)`, e.g. from
/// `sssj_baseline::brute_force_stream` or any `sssj_core` algorithm).
pub fn measure_accuracy(
    stream: &[StreamRecord],
    theta: f64,
    lambda: f64,
    params: LshParams,
    reference: &[SimilarPair],
) -> AccuracyReport {
    let mut join = LshJoin::new(theta, lambda, params);
    let mut out = Vec::new();
    for r in stream {
        join.process(r, &mut out);
    }
    join.finish(&mut out);

    let exact: HashSet<(u64, u64)> = reference.iter().map(|p| p.key()).collect();
    let got: HashSet<(u64, u64)> = out.iter().map(|p| p.key()).collect();
    let hit = exact.intersection(&got).count();
    AccuracyReport {
        recall: if exact.is_empty() {
            1.0
        } else {
            hit as f64 / exact.len() as f64
        },
        precision: if got.is_empty() {
            1.0
        } else {
            hit as f64 / got.len() as f64
        },
        exact_pairs: exact.len(),
        lsh_pairs: got.len(),
        candidate_checks: join.stats().candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VerifyMode;
    use sssj_baseline::brute_force_stream;
    use sssj_types::{SparseVectorBuilder, Timestamp};

    /// A near-duplicate-heavy stream: pairs of noisy copies arriving close
    /// together, plus unrelated background traffic.
    fn near_duplicate_stream(seed: u64, groups: usize) -> Vec<StreamRecord> {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut t = 0.0;
        let mut id = 0;
        for _ in 0..groups {
            t += rng.random_range(0.5..2.0);
            let base: Vec<(u32, f64)> = (0..8)
                .map(|_| (rng.random_range(0..200u32), rng.random_range(0.2..1.0)))
                .collect();
            for copy in 0..2 {
                let mut b = SparseVectorBuilder::new();
                for &(d, w) in &base {
                    b.push(d, w * rng.random_range(0.95..1.05));
                }
                out.push(StreamRecord::new(
                    id,
                    Timestamp::new(t + copy as f64 * 0.1),
                    b.build_normalized().unwrap(),
                ));
                id += 1;
            }
            // Unrelated noise record.
            let mut b = SparseVectorBuilder::new();
            for _ in 0..6 {
                b.push(rng.random_range(200..4000u32), rng.random_range(0.2..1.0));
            }
            out.push(StreamRecord::new(
                id,
                Timestamp::new(t + 0.2),
                b.build_normalized().unwrap(),
            ));
            id += 1;
        }
        out
    }

    #[test]
    fn high_recall_on_near_duplicates() {
        let stream = near_duplicate_stream(11, 60);
        let (theta, lambda) = (0.8, 0.1);
        let reference = brute_force_stream(&stream, theta, lambda);
        assert!(reference.len() >= 50, "need a meaningful reference set");
        let report = measure_accuracy(&stream, theta, lambda, LshParams::default(), &reference);
        assert!(report.recall >= 0.95, "recall={}", report.recall);
        assert_eq!(report.precision, 1.0); // Exact verification
    }

    #[test]
    fn more_bands_more_recall_fewer_rows_more_checks() {
        let stream = near_duplicate_stream(13, 50);
        let (theta, lambda) = (0.7, 0.1);
        let reference = brute_force_stream(&stream, theta, lambda);
        let strict = measure_accuracy(
            &stream,
            theta,
            lambda,
            LshParams {
                bits: 256,
                bands: 8, // 32 rows: very strict
                ..LshParams::default()
            },
            &reference,
        );
        let permissive = measure_accuracy(
            &stream,
            theta,
            lambda,
            LshParams {
                bits: 256,
                bands: 64, // 4 rows: very permissive
                ..LshParams::default()
            },
            &reference,
        );
        assert!(permissive.recall >= strict.recall);
        assert!(permissive.candidate_checks >= strict.candidate_checks);
    }

    #[test]
    fn estimate_mode_can_have_false_positives_but_stays_sane() {
        let stream = near_duplicate_stream(17, 40);
        let (theta, lambda) = (0.8, 0.1);
        let reference = brute_force_stream(&stream, theta, lambda);
        let report = measure_accuracy(
            &stream,
            theta,
            lambda,
            LshParams {
                verify: VerifyMode::Estimate,
                ..LshParams::default()
            },
            &reference,
        );
        // Estimation noise allows precision < 1, but near-duplicates sit
        // far from the decision boundary, so both metrics stay high.
        assert!(report.recall >= 0.8, "recall={}", report.recall);
        assert!(report.precision >= 0.5, "precision={}", report.precision);
    }

    #[test]
    fn empty_reference_is_perfect_recall() {
        let stream = near_duplicate_stream(19, 3);
        let report = measure_accuracy(&stream, 0.999999, 10.0, LshParams::default(), &[]);
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.exact_pairs, 0);
    }
}

#![warn(missing_docs)]
//! Approximate streaming similarity self-join via SimHash LSH.
//!
//! The exact algorithms of `sssj-core` guarantee no false negatives; this
//! crate trades that guarantee for index probes whose cost is independent
//! of vector density — the regime (very dense vectors, short horizons)
//! where §7 shows even STR-L2's posting-list scans getting expensive.
//!
//! The pipeline is the classic random-hyperplane sketch of Charikar
//! (SimHash) combined with banding, adapted to the paper's streaming,
//! time-decayed setting:
//!
//! 1. each vector is sketched into a `b`-bit [`Signature`]
//!    ([`SimHasher`]): bit `i` is the sign of a projection onto a pseudo
//!    random ±1 hyperplane, so
//!    `P[bit differs] = angle(x, y)/π`;
//! 2. the signature is cut into [`Bands`]; two vectors *collide* when
//!    they agree on all rows of at least one band, and only colliding
//!    pairs are examined;
//! 3. collision buckets hold `(id, t)` entries in arrival order and are
//!    pruned at the time horizon `τ = ln(1/θ)/λ`, exactly like the exact
//!    algorithms' posting lists (*time filtering* carries over
//!    unchanged);
//! 4. surviving candidates are either verified exactly
//!    ([`VerifyMode::Exact`] — no false positives, the default) or scored
//!    from signature Hamming distance ([`VerifyMode::Estimate`] — no
//!    stored vectors at all).
//!
//! [`measure_accuracy`] quantifies the recall/precision trade-off against
//! the exact oracle; the `lsh_recall` bench sweeps it.

pub mod bands;
pub mod eval;
pub mod join;
pub mod simhash;

pub use bands::Bands;
pub use eval::{measure_accuracy, AccuracyReport};
pub use join::{LshJoin, LshParams, VerifyMode};
pub use simhash::{Signature, SimHasher};

#![warn(missing_docs)]
//! Approximate streaming similarity self-join via SimHash LSH.
//!
//! The exact algorithms of `sssj-core` guarantee no false negatives; this
//! crate trades that guarantee for index probes whose cost is independent
//! of vector density — the regime (very dense vectors, short horizons)
//! where §7 shows even STR-L2's posting-list scans getting expensive.
//!
//! The pipeline is the classic random-hyperplane sketch of Charikar
//! (SimHash) combined with banding, adapted to the paper's streaming,
//! time-decayed setting:
//!
//! 1. each vector is sketched into a `b`-bit [`Signature`]
//!    ([`SimHasher`]): bit `i` is the sign of a projection onto a pseudo
//!    random ±1 hyperplane, so
//!    `P[bit differs] = angle(x, y)/π`;
//! 2. the signature is cut into [`Bands`]; two vectors *collide* when
//!    they agree on all rows of at least one band, and only colliding
//!    pairs are examined;
//! 3. collision buckets hold `(id, t)` entries in arrival order and are
//!    pruned at the time horizon `τ = ln(1/θ)/λ`, exactly like the exact
//!    algorithms' posting lists (*time filtering* carries over
//!    unchanged);
//! 4. surviving candidates are either verified exactly
//!    ([`VerifyMode::Exact`] — no false positives, the default) or scored
//!    from signature Hamming distance ([`VerifyMode::Estimate`] — no
//!    stored vectors at all).
//!
//! [`measure_accuracy`] quantifies the recall/precision trade-off against
//! the exact oracle; the `lsh_recall` bench sweeps it.

pub mod bands;
pub mod eval;
pub mod join;
pub mod simhash;

pub use bands::Bands;
pub use eval::{measure_accuracy, AccuracyReport};
pub use join::{LshJoin, LshParams, VerifyMode};
pub use simhash::{Signature, SimHasher};

/// Registers the LSH engine with the [`sssj_core::spec`] factory, so
/// `lsh?…` [`sssj_core::JoinSpec`] strings build an [`LshJoin`] — and the
/// per-shard worker constructor, so `sharded?inner=lsh&…` specs can spawn
/// LSH workers (the shard driver in `sssj-parallel` does not link this
/// crate). Idempotent; every workspace binary calls it at startup.
pub fn register_spec_builder() {
    sssj_core::spec::register_lsh_builder(|theta, lambda, p| {
        Box::new(LshJoin::new(theta, lambda, LshParams::from(p)))
    });
    sssj_core::spec::register_lsh_shard_builder(|theta, lambda, p| {
        Box::new(LshJoin::new(theta, lambda, LshParams::from(p)))
    });
}

impl From<sssj_core::LshSpec> for LshParams {
    fn from(p: sssj_core::LshSpec) -> LshParams {
        LshParams {
            bits: p.bits,
            bands: p.bands,
            seed: p.seed,
            verify: if p.estimate {
                VerifyMode::Estimate
            } else {
                VerifyMode::Exact
            },
        }
    }
}

impl From<LshParams> for sssj_core::LshSpec {
    fn from(p: LshParams) -> sssj_core::LshSpec {
        sssj_core::LshSpec {
            bits: p.bits,
            bands: p.bands,
            seed: p.seed,
            estimate: p.verify == VerifyMode::Estimate,
        }
    }
}

#[cfg(test)]
mod spec_tests {
    use sssj_core::StreamJoin;

    #[test]
    fn lsh_spec_builds_through_the_factory() {
        super::register_spec_builder();
        let spec: sssj_core::JoinSpec = "lsh?theta=0.7&lambda=0.1&bits=128&bands=16&verify=est"
            .parse()
            .unwrap();
        let join = spec.build().unwrap();
        assert_eq!(join.name(), "LSH-16x8-est");
    }
}

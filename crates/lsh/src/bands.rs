//! Banding: the amplification layer of the LSH join.
//!
//! A `bits`-wide signature is cut into `bands` contiguous groups of
//! `rows = bits/bands` bits. Two vectors are candidates when they agree on
//! *all* rows of *at least one* band, which turns the per-bit collision
//! probability `p = 1 − angle/π` into the classic S-curve
//! `1 − (1 − p^rows)^bands`: near-duplicates almost surely collide, while
//! distant pairs almost never do.

use crate::simhash::{splitmix64, Signature};

/// A banding scheme over signatures of a fixed width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bands {
    bands: u32,
    rows: u32,
}

impl Bands {
    /// Creates a scheme with `bands` bands over `bits`-wide signatures.
    /// `bits` must divide evenly into bands of at most 64 rows.
    pub fn new(bits: u32, bands: u32) -> Self {
        assert!(bands > 0, "bands must be positive");
        assert!(
            bits.is_multiple_of(bands),
            "bands ({bands}) must divide signature width ({bits})"
        );
        let rows = bits / bands;
        assert!(
            (1..=64).contains(&rows),
            "rows per band must be in 1..=64: {rows}"
        );
        Bands { bands, rows }
    }

    /// Number of bands.
    pub fn bands(&self) -> u32 {
        self.bands
    }

    /// Rows (bits) per band.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The bucket key for `band` of `sig`: the band's bits mixed with the
    /// band index, so different bands never share buckets.
    pub fn key(&self, sig: &Signature, band: u32) -> u64 {
        assert!(
            band < self.bands,
            "band {band} out of range ({})",
            self.bands
        );
        let raw = sig.extract(band * self.rows, self.rows);
        splitmix64(raw ^ ((band as u64) << 56) ^ 0xC0FF_EE00_D15E_A5E5)
    }

    /// All band keys of a signature.
    pub fn keys<'a>(&'a self, sig: &'a Signature) -> impl Iterator<Item = u64> + 'a {
        (0..self.bands).map(move |b| self.key(sig, b))
    }

    /// The analytic S-curve: collision probability of a pair whose
    /// signatures agree on each bit independently with probability `p`.
    pub fn collision_probability(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be a probability: {p}");
        1.0 - (1.0 - p.powi(self.rows as i32)).powi(self.bands as i32)
    }

    /// Collision probability for a pair at the given *cosine* similarity,
    /// via `p = 1 − arccos(sim)/π`.
    pub fn collision_probability_at(&self, cosine: f64) -> f64 {
        let c = cosine.clamp(-1.0, 1.0);
        self.collision_probability(1.0 - c.acos() / std::f64::consts::PI)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimHasher;
    use sssj_types::vector::unit_vector;

    #[test]
    fn identical_signatures_share_every_key() {
        let h = SimHasher::new(128, 5);
        let s = h.sign(&unit_vector(&[(1, 1.0), (7, 0.4)]));
        let bands = Bands::new(128, 16);
        let a: Vec<u64> = bands.keys(&s).collect();
        let b: Vec<u64> = bands.keys(&s.clone()).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn different_bands_never_collide_even_on_equal_bits() {
        // A signature of all-zero bits has identical raw band content;
        // the band index must still separate the keys.
        let h = SimHasher::new(128, 5);
        let s = h.sign(&unit_vector(&[(1, 1.0)]));
        let bands = Bands::new(128, 8);
        let keys: std::collections::HashSet<u64> = bands.keys(&s).collect();
        assert_eq!(keys.len(), 8, "band keys must be pairwise distinct");
    }

    #[test]
    fn s_curve_limits() {
        let bands = Bands::new(128, 16);
        assert_eq!(bands.collision_probability(1.0), 1.0);
        assert_eq!(bands.collision_probability(0.0), 0.0);
        // Monotone in p.
        let lo = bands.collision_probability(0.4);
        let hi = bands.collision_probability(0.8);
        assert!(hi > lo);
    }

    #[test]
    fn more_bands_raise_collision_probability() {
        let few = Bands::new(128, 4); // 32 rows: very strict
        let many = Bands::new(128, 32); // 4 rows: very permissive
        let p = 0.9;
        assert!(many.collision_probability(p) > few.collision_probability(p));
    }

    #[test]
    fn cosine_form_matches_probability_form() {
        let bands = Bands::new(256, 32);
        let cosine: f64 = 0.8;
        let p = 1.0 - cosine.acos() / std::f64::consts::PI;
        assert!(
            (bands.collision_probability_at(cosine) - bands.collision_probability(p)).abs() < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn uneven_bands_rejected() {
        Bands::new(128, 7);
    }

    #[test]
    #[should_panic(expected = "rows per band")]
    fn oversized_rows_rejected() {
        Bands::new(128, 1); // 128 rows > 64
    }
}

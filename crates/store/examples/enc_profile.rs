//! Encode-only microprofile: frame encoding + CRC without any file I/O.
//! Run with `cargo run --release -p sssj-store --example enc_profile`.

use sssj_data::{generate, preset, Preset};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let stream = generate(&preset(Preset::Tweets, 20_000));
    let mut buf = Vec::new();
    // Warm.
    for r in &stream {
        buf.clear();
        sssj_store::wal::encode_frame_for_profile(r, &mut buf);
    }
    let t0 = Instant::now();
    let mut total = 0usize;
    for _ in 0..10 {
        for r in &stream {
            buf.clear();
            sssj_store::wal::encode_frame_for_profile(r, &mut buf);
            total += buf.len();
        }
    }
    let dt = t0.elapsed();
    println!(
        "encode+crc: {:?} per record ({} bytes avg)",
        dt / (10 * stream.len() as u32),
        total / (10 * stream.len())
    );
    // CRC alone on the same payload sizes.
    let payload = vec![0xA5u8; 90];
    let t0 = Instant::now();
    let mut acc = 0u32;
    for _ in 0..200_000 {
        acc ^= sssj_store::crc::crc32c(black_box(&payload));
    }
    println!("crc32c(90B): {:?}", t0.elapsed() / 200_000);
    black_box(acc);
    black_box(total);
}

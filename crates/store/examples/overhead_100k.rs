//! The acceptance measurement, in-process: plain vs durable STR-L2 on
//! the Tweets-like n=100k stream (the `ext_scale_stream` shape),
//! interleaved rounds, wall-clock minima. Run with
//! `cargo run --release -p sssj-store --example overhead_100k`.

use sssj_core::{run_stream, JoinSpec, Streaming};
use sssj_data::{generate, preset, Preset};
use sssj_index::IndexKind;
use sssj_store::{DurableJoin, DurableOptions};
use std::time::Instant;

fn main() {
    let n: usize = std::env::var("N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let rounds: usize = std::env::var("ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let stream = generate(&preset(Preset::Tweets, n));
    let dir = std::env::temp_dir().join(format!("sssj-ovh-{}", std::process::id()));

    for theta in [0.5, 0.7] {
        let spec: JoinSpec = format!("str-l2?theta={theta}&tau=10").parse().unwrap();
        let mut plain_min = f64::INFINITY;
        let mut walonly_min = f64::INFINITY;
        let mut nockpt_min = f64::INFINITY;
        let mut durable_min = f64::INFINITY;
        for _ in 0..rounds {
            let t0 = Instant::now();
            let mut join = Streaming::new(spec.config(), IndexKind::L2);
            std::hint::black_box(run_stream(&mut join, &stream).len());
            drop(join);
            plain_min = plain_min.min(t0.elapsed().as_secs_f64());

            // Engine + bare WAL appends (no wrapper, no checkpoints).
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let t0 = Instant::now();
            let mut wal = sssj_store::Wal::create(&dir, 4096, false).unwrap();
            let mut join = Streaming::new(spec.config(), IndexKind::L2);
            let mut out = Vec::new();
            for r in &stream {
                wal.append(r).unwrap();
                sssj_core::StreamJoin::process(&mut join, r, &mut out);
            }
            wal.flush().unwrap();
            std::hint::black_box(out.len());
            drop((wal, join));
            walonly_min = walonly_min.min(t0.elapsed().as_secs_f64());

            // Full DurableJoin, checkpoints disabled.
            let _ = std::fs::remove_dir_all(&dir);
            let t0 = Instant::now();
            let opts = DurableOptions {
                checkpoint_every: u64::MAX,
                ..DurableOptions::default()
            };
            let mut join = DurableJoin::open(&spec, &dir, opts).unwrap();
            let mut out = Vec::new();
            for r in &stream {
                sssj_core::StreamJoin::process(&mut join, r, &mut out);
            }
            std::hint::black_box(out.len());
            drop(join);
            nockpt_min = nockpt_min.min(t0.elapsed().as_secs_f64());

            let _ = std::fs::remove_dir_all(&dir);
            let t0 = Instant::now();
            let mut join = DurableJoin::open(&spec, &dir, DurableOptions::default()).unwrap();
            std::hint::black_box(run_stream(&mut join, &stream).len());
            drop(join);
            durable_min = durable_min.min(t0.elapsed().as_secs_f64());
            let _ = std::fs::remove_dir_all(&dir);
        }
        println!(
            "theta={theta}: plain {:.2}ms wal-only {:.2}ms no-ckpt {:.2}ms durable {:.2}ms \
             overhead {:.1}%",
            plain_min * 1e3,
            walonly_min * 1e3,
            nockpt_min * 1e3,
            durable_min * 1e3,
            100.0 * (durable_min / plain_min - 1.0)
        );

        // The production configuration: the 4-shard driver, plain vs
        // durable (the WAL rides the driver thread).
        sssj_parallel::register_spec_builder();
        let sharded: JoinSpec = format!("sharded?theta={theta}&tau=10&shards=4&inner=str-l2")
            .parse()
            .unwrap();
        let mut s_plain = f64::INFINITY;
        let mut s_durable = f64::INFINITY;
        for _ in 0..rounds.min(4) {
            let t0 = Instant::now();
            let mut join = sharded.build().unwrap();
            std::hint::black_box(run_stream(&mut join, &stream).len());
            drop(join);
            s_plain = s_plain.min(t0.elapsed().as_secs_f64());

            let _ = std::fs::remove_dir_all(&dir);
            let t0 = Instant::now();
            let mut join = DurableJoin::open(&sharded, &dir, DurableOptions::default()).unwrap();
            std::hint::black_box(run_stream(&mut join, &stream).len());
            drop(join);
            s_durable = s_durable.min(t0.elapsed().as_secs_f64());
            let _ = std::fs::remove_dir_all(&dir);
        }
        println!(
            "theta={theta}: sharded/4 {:.2}ms durable-sharded/4 {:.2}ms overhead {:.1}%",
            s_plain * 1e3,
            s_durable * 1e3,
            100.0 * (s_durable / s_plain - 1.0)
        );
    }
}

#![warn(missing_docs)]
//! `sssj-store` — durability for the streaming similarity self-join:
//! segmented write-ahead log, checkpoint manager, crash recovery.
//!
//! A production deployment of the join (the ROADMAP's heavy-traffic
//! north star) cannot lose its sliding-window state on restart: a
//! crashed server would silently drop every in-horizon record and
//! re-emit nothing. This crate bolts checkpoint-plus-log — the standard
//! recipe for recoverable stateful dataflow — onto the existing engines
//! without rewriting them, in the same wrap-don't-rewrite shape the
//! spec-factory hooks already use for LSH and sharding.
//!
//! Three pieces:
//!
//! * [`wal`] — a **segmented, CRC-framed WAL** of the ingested record
//!   stream. One frame per record, fixed header + CRC-32C; one segment
//!   file per N records; *horizon-aware GC*: a segment whose newest
//!   record is older than `now − τ` can never pair again and is deleted
//!   once a checkpoint covers it. Torn tails self-truncate at the last
//!   good frame.
//! * [`checkpoint`] — periodic **checkpoints** (engine aux state + the
//!   recently-emitted-pair suppression set) published by atomically
//!   renaming `MANIFEST`; see the module docs for both file formats.
//! * [`durable`] — [`DurableJoin`], the [`sssj_core::StreamJoin`]
//!   wrapper gluing the two under any
//!   [`sssj_core::Checkpointable`] engine (STR, MB, generic decay, and
//!   sharded over those — the sharded driver checkpoints per shard at a
//!   batch boundary), and [`recover`], the crash-recovery entry point.
//!
//! # Usage
//!
//! Everything is reachable from the one spec grammar — append
//! `durable=<dir>` to any supported spec:
//!
//! ```text
//! str-l2?theta=0.7&tau=10&durable=/var/sssj
//! sharded?theta=0.6&lambda=0.1&shards=4&inner=str-l2&durable=/var/sssj
//! ```
//!
//! [`register_spec_builder`] hooks the constructor into
//! [`sssj_core::spec::JoinSpec::build`]; building such a spec *creates*
//! the store, or *resumes* it when the directory already holds a
//! manifest (the replay tail surfaces on the first `process` call, and
//! [`sssj_core::StreamJoin::resume_point`] tells the caller how many
//! records the store already ingested). The CLI exposes the same path as
//! `sssj run --spec '…durable=…'`, `sssj serve --durable <dir>` and
//! `sssj recover <dir>`; the net protocol resumes a session whenever a
//! `CONFIG spec=…durable=…` names a directory with a manifest.
//!
//! # Recovery semantics
//!
//! Output is **at-least-once with checkpoint-bounded duplicates, and
//! set-complete**: the union of pre-crash output and recovered output
//! equals the uninterrupted run's pair set exactly; no pair emitted
//! before the last checkpoint is ever emitted twice (the suppression
//! set), and only pairs emitted in the window between the last
//! checkpoint and the crash can be re-emitted. The argument — resting
//! on the engines' *set-determinism* (the pair set depends on the
//! record set alone, not on window phase, shard routing or batch
//! timing) — is spelled out in [`durable`]'s module docs and enforced
//! by `tests/crash_recovery.rs` for every engine × index variant,
//! mid-frame WAL truncation included.

pub mod checkpoint;
pub mod crc;
pub mod durable;
pub mod wal;

use std::io;

pub use checkpoint::Checkpoint;
pub use durable::{recover, DurableJoin, DurableOptions, Recovered};
pub use wal::{DeleteSink, GcSink, RetiredSegment, Wal};

/// Errors from the durability layer.
#[derive(Debug)]
pub enum StoreError {
    /// I/O failure.
    Io(io::Error),
    /// Structural corruption in a store file (self-healing where safe:
    /// torn WAL tails truncate, corrupt manifests fall back to the
    /// checkpoint scan; this error means nothing usable was left).
    Corrupt(String),
    /// The inner spec failed to parse, validate or build.
    Spec(sssj_core::SpecError),
    /// The directory belongs to a different pipeline.
    SpecMismatch {
        /// The spec the directory was created with.
        stored: String,
        /// The spec this open requested.
        requested: String,
    },
    /// Another live session holds the store's exclusive `LOCK`.
    Locked {
        /// The pid recorded in the lock file.
        pid: u32,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StoreError::Spec(e) => write!(f, "spec: {e}"),
            StoreError::SpecMismatch { stored, requested } => write!(
                f,
                "store was created for spec {stored:?} but {requested:?} was requested \
                 (point durable= at a fresh directory to change pipelines)"
            ),
            StoreError::Locked { pid } => write!(
                f,
                "store is locked by running process {pid}: two sessions writing one \
                 store would corrupt it; stop the other session first (a LOCK left \
                 by a dead process is detected and reclaimed automatically)"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Registers the durable-wrapper constructor with the
/// [`sssj_core::spec`] factory, so `…&durable=<dir>` specs build (and
/// resume) a [`DurableJoin`]. Idempotent; every workspace binary calls
/// it at startup (via `sssj_net::register_spec_builders`).
pub fn register_spec_builder() {
    sssj_core::spec::register_durable_builder(|spec, dir| {
        DurableJoin::open(spec, std::path::Path::new(dir), DurableOptions::default())
            .map(|j| Box::new(j) as Box<dyn sssj_core::StreamJoin>)
            .map_err(|e| sssj_core::SpecError::Invalid(format!("durable store {dir}: {e}")))
    });
}

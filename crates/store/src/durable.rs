//! [`DurableJoin`]: the WAL + checkpoint wrapper around any
//! [`Checkpointable`] engine, and the crash-recovery path.
//!
//! # Write path
//!
//! Every record is appended to the WAL **before** it reaches the engine
//! (a crash mid-process replays it), every emitted pair is recorded in
//! the bounded `recent` set with its emission stamp, and every
//! `checkpoint_every` records a checkpoint is published: quiesce the
//! engine (drain in-flight pairs — the sharded driver's batch-boundary
//! barrier), sync the WAL, capture aux state, write the checkpoint file,
//! atomically flip `MANIFEST`, garbage-collect WAL segments behind the
//! horizon.
//!
//! # Recovery
//!
//! Load the newest valid checkpoint (or none), rebuild the engine from
//! the stored spec, seed its aux state, then replay the retained WAL —
//! self-truncated at the first torn frame — through the engine. Replay
//! output is filtered against the checkpoint's emitted-pair set; what
//! survives is the **tail**: pairs completed after the checkpoint whose
//! delivery the crash may have swallowed. They are re-emitted (handed
//! back by [`recover`], or surfaced on the first
//! [`StreamJoin::process`] call when resuming through the spec
//! factory).
//!
//! # Why the union is exactly the uninterrupted run
//!
//! Let `E_pre` be the pairs the crashed process emitted and `E_rec` the
//! recovered process's output (replay tail + live continuation). For
//! any pair `P` of the uninterrupted run: if `P ∈ E_pre` the union has
//! it; otherwise `P` is not in the suppression set (the set only holds
//! emitted pairs), and since engines are *set-deterministic* — the pair
//! set is a function of the record set, independent of window phase,
//! shard routing or batch timing — replay + continuation regenerates
//! `P` and emits it. Conversely recovery never invents pairs: replay
//! runs the same engines over the same records. Duplicates are possible
//! only for pairs emitted between the last checkpoint and the crash —
//! the standard at-least-once tail — and *within* one process each pair
//! is emitted at most once. This is exactly what
//! `tests/crash_recovery.rs` asserts, mid-frame truncation included.

use std::collections::{HashSet, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};

use sssj_core::{Checkpointable, JoinSpec, StreamJoin};
use sssj_metrics::registry::{Recorder, Registry};
use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord};

use crate::checkpoint::{self, Checkpoint};
use crate::wal::{DeleteSink, GcSink, Wal};
use crate::StoreError;

/// Duration of a full checkpoint (quiesce + sync + publish + GC) — the
/// ingest-path stall an automatic cadence checkpoint introduces.
fn checkpoint_seconds() -> &'static Recorder {
    static M: std::sync::OnceLock<&'static Recorder> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        Registry::global().recorder(
            "sssj_store_checkpoint_seconds",
            "wall-clock duration of checkpoint publication",
        )
    })
}

/// The store's exclusive session lock: a `LOCK` file holding the owning
/// pid, created with `O_EXCL` so two live sessions can never share one
/// store directory (the PR-4 open item — concurrent WAL appends and
/// manifest flips from two processes would corrupt the store in ways
/// the spec-mismatch check cannot see).
///
/// Staleness is detected by pid: a `LOCK` whose recorded process is no
/// longer alive (crashed incarnation, `kill -9`) is reclaimed
/// automatically, so crash recovery never needs manual cleanup. The
/// guard removes the file on drop — including every error path of
/// [`DurableJoin::open`] — which is the clean-shutdown release.
struct LockFile {
    path: PathBuf,
}

impl LockFile {
    fn acquire(dir: &Path) -> Result<LockFile, StoreError> {
        let path = dir.join("LOCK");
        // The lock must appear atomically *with its pid content* — a
        // create-then-write would leave a window where a concurrent
        // opener reads an empty file, calls it garbage and reclaims a
        // live lock. So the pid is written to a per-process temp file
        // first and hard-linked into place: link(2) fails with
        // `AlreadyExists` if the lock exists, and a successful link
        // publishes the fully-written content in one step.
        let tmp = dir.join(format!("LOCK.{}", std::process::id()));
        fs::write(&tmp, format!("{}", std::process::id()))?;
        // Two attempts: the second runs only after removing a stale
        // lock, and losing that race to another process is a genuine
        // `Locked` condition, not something to spin on.
        let mut result = Err(StoreError::Locked { pid: 0 });
        for _ in 0..2 {
            match fs::hard_link(&tmp, &path) {
                Ok(()) => {
                    result = Ok(LockFile { path });
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if Self::alive(pid) => {
                            result = Err(StoreError::Locked { pid });
                            break;
                        }
                        // Dead holder (or a pre-atomic-format leftover):
                        // reclaim and retry the link. The reclaim is an
                        // atomic rename-away — two concurrent reclaimers
                        // cannot both win it, so neither can delete a
                        // lock the other just legitimately acquired; the
                        // loser's rename fails and its retried link
                        // re-examines the fresh state.
                        _ => {
                            let stale = dir.join(format!("LOCK.stale.{}", std::process::id()));
                            if fs::rename(&path, &stale).is_ok() {
                                let _ = fs::remove_file(&stale);
                            }
                        }
                    }
                }
                Err(e) => {
                    result = Err(e.into());
                    break;
                }
            }
        }
        let _ = fs::remove_file(&tmp);
        result
    }

    /// Whether `pid` names a live process. Procfs on Linux; elsewhere a
    /// lock is conservatively treated as held (never silently stolen).
    fn alive(pid: u32) -> bool {
        if cfg!(target_os = "linux") {
            Path::new(&format!("/proc/{pid}")).exists()
        } else {
            true
        }
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Tuning for a [`DurableJoin`].
#[derive(Clone, Copy, Debug)]
pub struct DurableOptions {
    /// Records per WAL segment (the GC granule).
    pub segment_records: u64,
    /// Records between automatic checkpoints.
    pub checkpoint_every: u64,
    /// Flush every append to the OS. Off by default — batched appends
    /// cost ~nothing and a torn tail is re-ingested by the resuming
    /// producer anyway; on for interactive services that must not lose
    /// acknowledged records to a process kill.
    pub sync_appends: bool,
    /// `fsync(2)` the WAL and both checkpoint files at every checkpoint.
    /// Off by default: a flush to the OS already survives **any process
    /// crash** (`kill -9` included — the page cache belongs to the
    /// kernel), which is the failure model the recovery tests exercise;
    /// an fsync on every checkpoint buys **machine-crash** durability at
    /// ~3 journal commits (typically milliseconds) per checkpoint —
    /// far beyond the 15 % `wal_overhead` budget at default cadence.
    pub fsync: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            segment_records: 4096,
            checkpoint_every: 16384,
            sync_appends: false,
            fsync: false,
        }
    }
}

/// A [`StreamJoin`] whose state survives crashes: segmented WAL of the
/// ingested stream + periodic checkpoints + atomic manifest. Built
/// through the spec factory (`…&durable=<dir>`) or [`DurableJoin::open`];
/// recovered with [`recover`] or simply by opening the same directory
/// again.
pub struct DurableJoin {
    engine: Box<dyn Checkpointable>,
    /// Canonical text of the inner spec (durable wrapper stripped).
    spec_text: String,
    dir: PathBuf,
    wal: Wal,
    opts: DurableOptions,
    horizon: f64,
    /// Records ingested (== WAL next_seq).
    seq: u64,
    last_t: f64,
    since_ckpt: u64,
    /// Recently emitted pairs with emission stamps — the candidate
    /// suppression set of the *next* checkpoint. Pruned against the
    /// oldest retained WAL record: older pairs can never be regenerated.
    recent: VecDeque<(u64, u64, f64)>,
    /// Pairs a *previous* incarnation already emitted (loaded from the
    /// checkpoint at recovery). Any engine output matching is dropped —
    /// and removed, since an engine emits each pair at most once. Empty
    /// for fresh stores; cleared wholesale once the stream passes
    /// `suppress_deadline`.
    suppress: HashSet<(u64, u64)>,
    /// Stream time after which nothing can regenerate a suppressed pair
    /// (recovered watermark + engine replay horizon): every suppressed
    /// pair's later member predates the watermark, and a record beyond
    /// the horizon cannot contribute output. Keeps the hot-path
    /// suppression branch dead outside the post-recovery window.
    suppress_deadline: f64,
    /// Replay-tail pairs awaiting re-emission (drained by the first
    /// `process`/`finish` call, or taken by [`recover`]).
    stash: Vec<SimilarPair>,
    /// File name of the live checkpoint (unlinked when superseded).
    ckpt_name: Option<String>,
    /// Records appended + pairs emitted since the last publish — a
    /// checkpoint with nothing new to say is skipped.
    dirty: bool,
    /// Set when this join resumed from existing state.
    resumed: bool,
    finished: bool,
    scratch: Vec<SimilarPair>,
    /// Where horizon GC sends retired WAL segments (default: delete).
    gc_sink: Box<dyn GcSink>,
    /// Exclusive session lock; released (file removed) on drop.
    _lock: LockFile,
}

impl DurableJoin {
    /// Opens (or resumes) a durable join rooted at `dir`.
    ///
    /// `spec` is the *inner* pipeline — engine and parameters, no
    /// wrappers (the spec factory strips `durable=` before calling
    /// this). When `dir` already holds state, the stored spec must match
    /// and the join resumes: the replay tail is stashed and surfaces on
    /// the first `process`/`finish` call.
    pub fn open(
        spec: &JoinSpec,
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<DurableJoin, StoreError> {
        if !spec.wrappers.is_empty() && spec.wrappers != [sssj_core::WrapperSpec::Graph] {
            return Err(StoreError::Corrupt(
                "DurableJoin::open requires a wrapper-free inner spec (or exactly \
                 the graph wrapper, whose edges ride the checkpoint)"
                    .into(),
            ));
        }
        let mut engine = spec.build_checkpointable().map_err(StoreError::Spec)?;
        let horizon = engine.replay_horizon();
        let spec_text = spec.to_string();
        fs::create_dir_all(dir)?;
        let lock = LockFile::acquire(dir)?;

        let spec_path = dir.join("SPEC");
        if spec_path.exists() {
            let stored = fs::read_to_string(&spec_path)?;
            if stored.trim() != spec_text {
                return Err(StoreError::SpecMismatch {
                    stored: stored.trim().to_string(),
                    requested: spec_text,
                });
            }
        } else {
            let tmp = dir.join("SPEC.tmp");
            fs::write(&tmp, &spec_text)?;
            fs::rename(&tmp, &spec_path)?;
        }

        if !checkpoint::has_state(dir) {
            let wal = Wal::create(dir, opts.segment_records, opts.sync_appends)?;
            return Ok(DurableJoin {
                engine,
                spec_text,
                dir: dir.to_path_buf(),
                wal,
                opts,
                horizon,
                seq: 0,
                last_t: f64::NEG_INFINITY,
                since_ckpt: 0,
                recent: VecDeque::new(),
                suppress: HashSet::new(),
                suppress_deadline: f64::NEG_INFINITY,
                stash: Vec::new(),
                ckpt_name: None,
                dirty: false,
                resumed: false,
                finished: false,
                scratch: Vec::new(),
                gc_sink: Box::new(DeleteSink),
                _lock: lock,
            });
        }

        // ---- Resume path -------------------------------------------
        let ckpt = checkpoint::load_latest(dir)?;
        if let Some(c) = &ckpt {
            // Clear leftovers of crashed incarnations once, here — the
            // steady-state publish path never scans the directory.
            checkpoint::prune_superseded(dir, &checkpoint::file_name(c.seq));
        }
        let mut recent: VecDeque<(u64, u64, f64)> = VecDeque::new();
        let mut suppress: HashSet<(u64, u64)> = HashSet::new();
        if let Some(c) = &ckpt {
            if c.spec != spec_text {
                return Err(StoreError::SpecMismatch {
                    stored: c.spec.clone(),
                    requested: spec_text,
                });
            }
            engine
                .read_aux(&c.aux)
                .map_err(|e| StoreError::Corrupt(format!("checkpoint aux: {e}")))?;
            for &(l, r, t) in &c.emitted {
                recent.push_back((l, r, t));
                suppress.insert((l, r));
            }
        }
        let scan = Wal::open_existing(dir, opts.segment_records, opts.sync_appends)?;
        let mut join = DurableJoin {
            engine,
            spec_text,
            dir: dir.to_path_buf(),
            seq: scan.wal.next_seq(),
            last_t: scan
                .wal
                .last_t()
                .max(ckpt.as_ref().map_or(f64::NEG_INFINITY, |c| c.last_t)),
            wal: scan.wal,
            opts,
            horizon,
            since_ckpt: 0,
            recent,
            suppress,
            suppress_deadline: f64::NEG_INFINITY, // set after replay below
            stash: Vec::new(),
            ckpt_name: ckpt.as_ref().map(|c| checkpoint::file_name(c.seq)),
            dirty: true,
            resumed: true,
            finished: false,
            scratch: Vec::new(),
            gc_sink: Box::new(DeleteSink),
            _lock: lock,
        };
        join.since_ckpt = join.seq.saturating_sub(ckpt.as_ref().map_or(0, |c| c.seq));
        // Replay with suppression: pairs already delivered before the
        // checkpoint are dropped; the rest is the re-emission tail.
        debug_assert!(join.scratch.is_empty());
        let mut replayed = std::mem::take(&mut join.scratch);
        for record in &scan.records {
            join.engine.process(record, &mut replayed);
            join.classify(&mut replayed, record.t.seconds(), true);
        }
        join.engine.quiesce(&mut replayed);
        join.classify(&mut replayed, join.last_t, true);
        join.scratch = replayed;
        // Replay stamps interleave with the checkpoint's — restore the
        // stamp order the pruning front-pop relies on.
        join.recent
            .make_contiguous()
            .sort_by(|a, b| a.2.partial_cmp(&b.2).expect("stamps are never NaN"));
        join.suppress_deadline = join.last_t + join.horizon;
        Ok(join)
    }

    /// Routes freshly generated pairs: drops the ones a previous
    /// incarnation already emitted, records the rest in `recent` (with
    /// `stamp`) and appends them to the stash (`to_stash`) or hands them
    /// back in place.
    fn classify(&mut self, pairs: &mut Vec<SimilarPair>, stamp: f64, to_stash: bool) {
        if !pairs.is_empty() {
            // A pair emission is checkpoint-worthy on its own (e.g. a
            // MiniBatch window flush in finish(), with no record
            // appended since the last publish).
            self.dirty = true;
        }
        if to_stash {
            // Replay tail: survivors wait in the stash. They enter
            // `recent` only when actually handed over (stash drain /
            // `take_recovered_pairs`) — recording them here would let a
            // checkpoint claim them as delivered while no caller has
            // seen them.
            for p in pairs.drain(..) {
                if self.suppress.remove(&(p.left, p.right)) {
                    continue;
                }
                self.stash.push(p);
            }
        } else {
            pairs.retain(|p| {
                if self.suppress.remove(&(p.left, p.right)) {
                    return false;
                }
                self.recent.push_back((p.left, p.right, stamp));
                true
            });
        }
    }

    /// Hands the replay tail to the caller via `out`, recording the
    /// pairs in `recent` now that they are on their way out. The stamp
    /// is the recovered watermark — at or above the pairs' original
    /// emission times, so retention is conservative and `recent` stays
    /// stamp-ordered.
    fn drain_stash(&mut self, out: &mut Vec<SimilarPair>) {
        if self.stash.is_empty() {
            return;
        }
        self.dirty = true;
        for p in &self.stash {
            self.recent.push_back((p.left, p.right, self.last_t));
        }
        out.append(&mut self.stash);
    }

    /// Drops `recent` entries whose members are gone from the WAL —
    /// replay can never regenerate them, so the next checkpoint need not
    /// suppress them.
    fn prune_recent(&mut self) {
        let Some(floor) = self.wal.oldest_t() else {
            return;
        };
        while let Some(&(_, _, t)) = self.recent.front() {
            if t < floor {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    /// Takes a checkpoint now, **acknowledging all output**: quiesces
    /// the engine (drained pairs are appended to `out`), syncs the WAL,
    /// publishes the checkpoint + manifest, and garbage-collects WAL
    /// segments behind the horizon.
    ///
    /// Every pair recorded so far — including the ones this very call
    /// appends to `out` — enters the suppression set, i.e. calling this
    /// asserts the caller will deliver `out` (and already delivered all
    /// earlier output). The *automatic* cadence checkpoint makes no such
    /// assumption: it runs at the top of [`StreamJoin::process`] and
    /// publishes only pairs handed back by completed calls, so a crash
    /// between an automatic publish and the caller draining `out` can
    /// never suppress an undelivered pair.
    pub fn checkpoint(&mut self, out: &mut Vec<SimilarPair>) -> Result<(), StoreError> {
        self.drain_stash(out);
        self.checkpoint_inner(out, true)
    }

    /// Shared checkpoint body. `ack_current` controls whether pairs
    /// surfaced by this call's own quiesce enter the published
    /// suppression set (explicit checkpoint / finish) or stay pending
    /// for the next one (automatic cadence — see [`DurableJoin::checkpoint`]).
    fn checkpoint_inner(
        &mut self,
        out: &mut Vec<SimilarPair>,
        ack_current: bool,
    ) -> Result<(), StoreError> {
        let started = std::time::Instant::now();
        let _span = sssj_metrics::trace::span(sssj_metrics::trace::Stage::Checkpoint);
        // Prune first: it pops from the front of `recent`, so the cut
        // below stays a valid prefix length afterwards.
        self.prune_recent();
        let cut = self.recent.len();
        let mut drained = std::mem::take(&mut self.scratch);
        drained.clear();
        self.engine.quiesce(&mut drained);
        self.classify(&mut drained, self.last_t, false);
        out.append(&mut drained);
        self.scratch = drained;
        let mut aux = Vec::new();
        self.engine.write_aux(&mut aux);
        let publish_len = if ack_current { self.recent.len() } else { cut };
        let res = self.publish(aux, publish_len);
        checkpoint_seconds().record_duration(started.elapsed());
        res
    }

    /// The write-and-GC half of a checkpoint (aux already captured).
    /// Publishes the first `publish_len` entries of `recent` as the
    /// suppression set — the pairs whose delivery this checkpoint
    /// asserts.
    fn publish(&mut self, aux: Vec<u8>, publish_len: usize) -> Result<(), StoreError> {
        if !self.dirty {
            // Nothing new since the last publish (e.g. finish right
            // after a cadence checkpoint with no buffered output): skip
            // the metadata traffic.
            self.since_ckpt = 0;
            return Ok(());
        }
        self.wal.sync(self.opts.fsync)?;
        // Sinks flush their buffered state *before* the checkpoint is
        // published: anything the sink has buffered (the compactor's
        // expired-edge queue) was live in the previous checkpoint's aux,
        // so ordering the flush first means a crash between the two
        // leaves the state recoverable from one side or the other.
        self.gc_sink.before_publish(self.last_t)?;
        let c = Checkpoint {
            spec: self.spec_text.clone(),
            seq: self.seq,
            last_t: self.last_t,
            aux,
            emitted: self.recent.iter().take(publish_len).copied().collect(),
        };
        let name = checkpoint::publish(&self.dir, &c, self.opts.fsync)?;
        // Unlink the superseded checkpoint directly — no directory scan
        // on the ingest path (open-time pruning handles leftovers).
        if let Some(old) = self.ckpt_name.take() {
            if old != name {
                let _ = fs::remove_file(self.dir.join(old));
            }
        }
        self.ckpt_name = Some(name);
        self.wal
            .gc(self.last_t - self.horizon, self.seq, self.gc_sink.as_mut())?;
        self.since_ckpt = 0;
        // Pairs recorded but deliberately left out of the published set
        // (this call's own quiesce output) keep the store dirty so the
        // next checkpoint covers them.
        self.dirty = publish_len < self.recent.len();
        Ok(())
    }

    /// Whether this join resumed from existing on-disk state.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Total records ever ingested into this store (WAL position).
    pub fn records_ingested(&self) -> u64 {
        self.seq
    }

    /// Timestamp of the newest ingested record.
    pub fn last_timestamp(&self) -> f64 {
        self.last_t
    }

    /// The replay tail: pairs completed before the crash whose delivery
    /// recovery cannot prove, re-emitted for at-least-once output. If
    /// not taken, they surface on the first `process`/`finish` call.
    pub fn take_recovered_pairs(&mut self) -> Vec<SimilarPair> {
        let mut drained = Vec::new();
        self.drain_stash(&mut drained);
        drained
    }

    /// Retained WAL segments (diagnostics).
    pub fn wal_segments(&self) -> usize {
        self.wal.segments()
    }

    /// WAL segments deleted by horizon GC so far (diagnostics).
    pub fn wal_segments_collected(&self) -> u64 {
        self.wal.gc_deleted()
    }

    /// The canonical inner spec this store runs.
    pub fn spec_text(&self) -> &str {
        &self.spec_text
    }

    /// Replaces the horizon-GC sink (default: [`DeleteSink`]). The
    /// historical tier installs its compactor here, right after open —
    /// before the first checkpoint can retire anything.
    pub fn set_gc_sink(&mut self, sink: Box<dyn GcSink>) {
        self.gc_sink = sink;
    }

    /// The engine's replay horizon τ — how far back a record can still
    /// pair, which is also the boundary between the live window and the
    /// historical tier.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }
}

impl StreamJoin for DurableJoin {
    /// Appends the record to the WAL, runs the engine, filters and
    /// records output, and checkpoints every
    /// [`DurableOptions::checkpoint_every`] records.
    ///
    /// The cadence checkpoint fires at the **top** of the call, before
    /// the new record is touched: every pair it publishes as delivered
    /// was handed back by a *completed* `process` call, so a crash
    /// landing between the publish and the caller draining this call's
    /// `out` can never suppress an undelivered pair.
    ///
    /// # Panics
    ///
    /// On I/O failure of the WAL or checkpoint, and on a
    /// backwards-in-time record (the engines require non-decreasing
    /// timestamps; logging one would poison the WAL) — a durability
    /// layer that silently drops its log would be worse than a crash.
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        assert!(!self.finished, "process called after finish");
        // The cadence checkpoint runs before anything of this call
        // reaches `out` — its cut covers completed calls only. The
        // replay tail is not in `recent` yet (see `classify`), so it is
        // excluded too; it drains right after, to be claimed by the
        // *next* checkpoint.
        if self.since_ckpt >= self.opts.checkpoint_every {
            self.checkpoint_inner(out, false)
                .unwrap_or_else(|e| panic!("checkpoint in {}: {e}", self.dir.display()));
        }
        self.drain_stash(out);
        self.wal
            .append(record)
            .unwrap_or_else(|e| panic!("WAL append in {}: {e}", self.dir.display()));
        self.seq += 1;
        self.dirty = true;
        self.last_t = record.t.seconds();
        // Hot path: the engine writes straight into `out`; only the new
        // tail is inspected. The suppression branch goes dead shortly
        // after recovery: once the stream passes the recovered watermark
        // plus the engine's replay horizon, no suppressed pair's later
        // member can still sit in engine buffers, so the set is cleared.
        let out_start = out.len();
        self.engine.process(record, out);
        if !self.suppress.is_empty() {
            if self.last_t > self.suppress_deadline {
                self.suppress = HashSet::new();
            } else {
                let mut keep = out_start;
                for i in out_start..out.len() {
                    if !self.suppress.remove(&(out[i].left, out[i].right)) {
                        out.swap(keep, i);
                        keep += 1;
                    }
                }
                out.truncate(keep);
            }
        }
        for p in &out[out_start..] {
            self.recent.push_back((p.left, p.right, self.last_t));
        }
        self.since_ckpt += 1;
    }

    /// Flushes the engine, then publishes a final checkpoint so a
    /// cleanly finished store resumes without any replay tail. Invoking
    /// `finish` is the caller's acknowledgement that all prior output
    /// was delivered and this call's `out` will be: the final
    /// suppression set includes the flush's own pairs.
    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        if self.finished {
            return;
        }
        self.drain_stash(out);
        self.prune_recent();
        let mut fresh = std::mem::take(&mut self.scratch);
        fresh.clear();
        self.engine.quiesce(&mut fresh);
        self.classify(&mut fresh, self.last_t, false);
        out.append(&mut fresh);
        // Aux must be captured while the engine is live (the sharded
        // driver's workers shut down in finish).
        let mut aux = Vec::new();
        self.engine.write_aux(&mut aux);
        self.engine.finish(&mut fresh);
        self.classify(&mut fresh, self.last_t, false);
        out.append(&mut fresh);
        self.scratch = fresh;
        let publish_len = self.recent.len();
        self.publish(aux, publish_len)
            .unwrap_or_else(|e| panic!("final checkpoint in {}: {e}", self.dir.display()));
        self.finished = true;
    }

    fn stats(&self) -> JoinStats {
        self.engine.stats()
    }

    fn live_postings(&self) -> u64 {
        self.engine.live_postings()
    }

    fn name(&self) -> String {
        format!("{}+wal", self.engine.name())
    }

    /// `(records ingested, newest timestamp)` when this join resumed
    /// from existing state; lets sessions continue id assignment and the
    /// monotonic-timestamp watermark across the crash.
    fn resume_point(&self) -> Option<(u64, f64)> {
        self.resumed.then_some((self.seq, self.last_t))
    }
}

/// The result of [`recover`].
pub struct Recovered {
    /// The resumed join, ready to continue the stream.
    pub join: DurableJoin,
    /// The replay tail (see [`DurableJoin::take_recovered_pairs`]),
    /// already taken out of the join.
    pub replayed: Vec<SimilarPair>,
    /// Records the store had ingested — a producer replaying the same
    /// stream should skip this many records.
    pub ingested: u64,
}

/// Recovers the durable join rooted at `dir`: reads the stored `SPEC`,
/// loads the newest checkpoint, replays the WAL tail with output
/// suppressed up to the checkpointed state, and returns the join ready
/// to continue plus the re-emission tail.
///
/// The sharded engine constructors must be registered first when the
/// stored spec is `sharded?…` (`sssj_parallel::register_spec_builder`).
pub fn recover(dir: &Path) -> Result<Recovered, StoreError> {
    let spec_text = fs::read_to_string(dir.join("SPEC")).map_err(|e| {
        StoreError::Corrupt(format!(
            "{}: no SPEC file ({e}); is this a durable store?",
            dir.display()
        ))
    })?;
    let spec: JoinSpec = spec_text.trim().parse().map_err(StoreError::Spec)?;
    let mut join = DurableJoin::open(&spec, dir, DurableOptions::default())?;
    let replayed = join.take_recovered_pairs();
    let ingested = join.records_ingested();
    Ok(Recovered {
        join,
        replayed,
        ingested,
    })
}

//! CRC-32C (Castagnoli): hardware `crc32` instruction where available,
//! slicing-by-8 tables otherwise.
//!
//! Every WAL frame and checkpoint body carries a CRC so torn writes and
//! bit rot are detected before a single byte reaches an engine. The
//! Castagnoli polynomial is the storage-stack standard (iSCSI, ext4,
//! RocksDB's WAL) precisely because x86_64 executes it natively: the
//! SSE4.2 path folds 8 bytes per cycle (~5 ns for a 90-byte frame), so
//! the checksum disappears inside the `wal_overhead` budget. The
//! portable fallback is slicing-by-8 with compile-time tables; the two
//! are cross-tested on every length and alignment. No dependencies, no
//! runtime initialisation.

/// Reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// The software (slicing-by-8) implementation — the portable fallback
/// and the reference the hardware path is tested against.
fn crc32c_sw(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let low = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        crc = TABLES[7][(low & 0xFF) as usize]
            ^ TABLES[6][((low >> 8) & 0xFF) as usize]
            ^ TABLES[5][((low >> 16) & 0xFF) as usize]
            ^ TABLES[4][(low >> 24) as usize]
            ^ TABLES[3][c[4] as usize]
            ^ TABLES[2][c[5] as usize]
            ^ TABLES[1][c[6] as usize]
            ^ TABLES[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The SSE4.2 `crc32` instruction path: one 8-byte fold per cycle
/// against the table path's ~3 — the difference between the checksum
/// being visible in the `wal_overhead` A/B and not.
///
/// # Safety
///
/// Callers must have verified `sse4.2` support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_hw(bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut crc = !0u32 as u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        crc = _mm_crc32_u64(crc, u64::from_le_bytes(c.try_into().expect("8 bytes")));
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    !crc
}

/// The CRC-32C checksum of `bytes` (hardware-accelerated where the CPU
/// supports it; the feature probe is a cached load).
pub fn crc32c(bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // SAFETY: feature checked above.
            return unsafe { crc32c_hw(bytes) };
        }
    }
    crc32c_sw(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32C check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // 32 zero bytes, another published vector.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn hardware_path_matches_software_path() {
        let data: Vec<u8> = (0..517u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32c(&data[..len]), crc32c_sw(&data[..len]), "len={len}");
        }
    }

    #[test]
    fn slicing_matches_bytewise() {
        // The remainder loop alone is the reference implementation;
        // feeding one byte at a time must agree with the sliced path on
        // every alignment.
        fn bytewise(bytes: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in bytes {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        }
        let data: Vec<u8> = (0..123u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32c_sw(&data[..len]), bytewise(&data[..len]), "len={len}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"streaming similarity self-join";
        let base = crc32c(data);
        for pos in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.to_vec();
                corrupted[pos] ^= 1 << bit;
                assert_ne!(crc32c(&corrupted), base, "pos={pos} bit={bit}");
            }
        }
    }
}

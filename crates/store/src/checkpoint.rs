//! Checkpoint files and the atomically-published `MANIFEST`.
//!
//! # Checkpoint file (`ckpt-<seq:016x>.ckpt`)
//!
//! ```text
//! magic    b"SSSJCKPT"    8 bytes
//! version  u8 = 1
//! body_len u32            length of body
//! crc      u32            CRC-32C of body
//! body:
//!   spec_len varint, spec UTF-8    canonical inner spec (durable
//!                                  wrapper stripped)
//!   seq      varint               records ingested when taken
//!   last_t   f64                  stream time when taken
//!   aux_len  varint, aux bytes    engine aux state
//!                                 ([`sssj_core::Checkpointable::write_aux`])
//!   n_pairs  varint
//!   pair ×n: left varint, right varint, t f64 (emission stamp)
//! ```
//!
//! The pair list is the **replay-suppression set**: every pair emitted
//! before the checkpoint whose members may still be regenerated from
//! the retained WAL. Recovery drops exactly these from replay output,
//! which is what makes recovery never emit a pre-checkpoint pair twice.
//!
//! # `MANIFEST`
//!
//! ```text
//! magic    b"SSSJMANI"
//! version  u8 = 1
//! body_len u32
//! crc      u32            CRC-32C of body
//! body:    name_len varint, checkpoint file name UTF-8, seq varint
//! ```
//!
//! Published atomically: the checkpoint file is written and fsynced
//! first, then `MANIFEST.tmp` is written, fsynced and `rename(2)`d over
//! `MANIFEST` — a crash at any point leaves either the old manifest or
//! the new one, never a torn pointer. Older checkpoint files are pruned
//! only after the rename. If the manifest is missing or fails its CRC,
//! [`load_latest`] falls back to scanning for the highest-sequence
//! checkpoint that validates.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::Path;

use sssj_collections::varint;

use crate::crc::crc32c;
use crate::StoreError;

const CKPT_MAGIC: &[u8; 8] = b"SSSJCKPT";
const MANIFEST_MAGIC: &[u8; 8] = b"SSSJMANI";
const VERSION: u8 = 1;
/// Sanity cap on the body length of either file.
const MAX_BODY_LEN: u32 = 256 << 20;

/// One decoded checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Canonical text of the inner spec (durable wrapper stripped).
    pub spec: String,
    /// Records ingested when the checkpoint was taken (= WAL offset).
    pub seq: u64,
    /// Stream time when the checkpoint was taken.
    pub last_t: f64,
    /// Engine aux state.
    pub aux: Vec<u8>,
    /// Recently emitted pairs `(left, right, emission stamp)` — the
    /// replay-suppression set.
    pub emitted: Vec<(u64, u64, f64)>,
}

/// The checkpoint file name for sequence `seq`.
pub fn file_name(seq: u64) -> String {
    format!("ckpt-{seq:016x}.ckpt")
}

/// Writes `magic | version | body_len | crc | body` straight to `path`.
fn write_plain(path: &Path, magic: &[u8; 8], body: &[u8], fsync: bool) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(17 + body.len());
    bytes.extend_from_slice(magic);
    bytes.push(VERSION);
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32c(body).to_le_bytes());
    bytes.extend_from_slice(body);
    let mut f = File::create(path)?;
    f.write_all(&bytes)?;
    if fsync {
        f.sync_all()?;
    }
    Ok(())
}

/// Like [`write_plain`] but via tmp + `rename(2)`, so the file at `path`
/// is replaced atomically.
fn write_framed(path: &Path, magic: &[u8; 8], body: &[u8], fsync: bool) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    write_plain(&tmp, magic, body, fsync)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

fn read_framed(path: &Path, magic: &[u8; 8]) -> Result<Vec<u8>, StoreError> {
    let mut f = File::open(path)?;
    let mut header = [0u8; 17];
    f.read_exact(&mut header)
        .map_err(|_| StoreError::Corrupt(format!("{}: truncated header", path.display())))?;
    if &header[..8] != magic {
        return Err(StoreError::Corrupt(format!(
            "{}: bad magic",
            path.display()
        )));
    }
    if header[8] != VERSION {
        return Err(StoreError::Corrupt(format!(
            "{}: unsupported version {}",
            path.display(),
            header[8]
        )));
    }
    let body_len = u32::from_le_bytes(header[9..13].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[13..17].try_into().expect("4 bytes"));
    if body_len > MAX_BODY_LEN {
        return Err(StoreError::Corrupt(format!(
            "{}: absurd body length {body_len}",
            path.display()
        )));
    }
    let mut body = vec![0u8; body_len as usize];
    f.read_exact(&mut body)
        .map_err(|_| StoreError::Corrupt(format!("{}: truncated body", path.display())))?;
    if crc32c(&body) != crc {
        return Err(StoreError::Corrupt(format!(
            "{}: body CRC mismatch",
            path.display()
        )));
    }
    Ok(body)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn uint(&mut self) -> Result<u64, StoreError> {
        let (v, n) = varint::read_u64(&self.buf[self.pos..])
            .map_err(|e| StoreError::Corrupt(format!("varint: {e}")))?;
        self.pos += n;
        Ok(v)
    }

    fn float(&mut self) -> Result<f64, StoreError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| StoreError::Corrupt("truncated f64".into()))?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(f64::from_le_bytes(b))
    }

    fn bytes(&mut self, what: &str) -> Result<Vec<u8>, StoreError> {
        let len = self.uint()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| StoreError::Corrupt(format!("truncated {what}")))?;
        let out = self.buf[self.pos..end].to_vec();
        self.pos = end;
        Ok(out)
    }
}

fn encode_checkpoint(c: &Checkpoint) -> Vec<u8> {
    let mut body = Vec::new();
    varint::write_u64(c.spec.len() as u64, &mut body);
    body.extend_from_slice(c.spec.as_bytes());
    varint::write_u64(c.seq, &mut body);
    body.extend_from_slice(&c.last_t.to_le_bytes());
    varint::write_u64(c.aux.len() as u64, &mut body);
    body.extend_from_slice(&c.aux);
    varint::write_u64(c.emitted.len() as u64, &mut body);
    for &(left, right, t) in &c.emitted {
        varint::write_u64(left, &mut body);
        varint::write_u64(right, &mut body);
        body.extend_from_slice(&t.to_le_bytes());
    }
    body
}

fn decode_checkpoint(body: &[u8]) -> Result<Checkpoint, StoreError> {
    let mut c = Cursor { buf: body, pos: 0 };
    let spec = String::from_utf8(c.bytes("spec")?)
        .map_err(|_| StoreError::Corrupt("spec is not UTF-8".into()))?;
    let seq = c.uint()?;
    let last_t = c.float()?;
    // NEG_INFINITY is legal (a checkpoint of an empty stream); NaN is not.
    if last_t.is_nan() {
        return Err(StoreError::Corrupt("NaN last_t".into()));
    }
    let aux = c.bytes("aux")?;
    let n_pairs = c.uint()?;
    // Each entry needs ≥ 10 encoded bytes; a count beyond that is lying.
    if n_pairs > (body.len() as u64) / 10 + 1 {
        return Err(StoreError::Corrupt(format!("absurd pair count {n_pairs}")));
    }
    // Never pre-allocate from the untrusted count (same rule as the
    // snapshot reader): a lying n_pairs must hit end-of-body, not an
    // out-of-memory abort.
    let mut emitted = Vec::with_capacity((n_pairs as usize).min(65_536));
    for _ in 0..n_pairs {
        let left = c.uint()?;
        let right = c.uint()?;
        let t = c.float()?;
        if t.is_nan() {
            return Err(StoreError::Corrupt("NaN emission stamp".into()));
        }
        emitted.push((left, right, t));
    }
    if c.pos != body.len() {
        return Err(StoreError::Corrupt(format!(
            "{} trailing checkpoint bytes",
            body.len() - c.pos
        )));
    }
    Ok(Checkpoint {
        spec,
        seq,
        last_t,
        aux,
        emitted,
    })
}

/// Writes the checkpoint file, atomically publishes `MANIFEST`, and
/// returns the checkpoint file name so the caller can unlink it when the
/// next checkpoint supersedes it ([`prune_superseded`] handles leftovers
/// from crashed incarnations at open time). `fsync` forces both files to
/// stable storage before the rename (machine-crash durability; a plain
/// flush already survives process crashes).
///
/// Metadata traffic is deliberately minimal — checkpoints sit on the
/// ingest path (`wal_overhead` budget): the checkpoint file is written
/// *in place* under its fresh sequence-stamped name (readers only look
/// at it once `MANIFEST` flips, and a torn write fails its CRC and falls
/// back), so only the manifest itself pays the tmp + `rename(2)` dance
/// that makes publication atomic.
pub fn publish(dir: &Path, c: &Checkpoint, fsync: bool) -> io::Result<String> {
    let name = file_name(c.seq);
    write_plain(&dir.join(&name), CKPT_MAGIC, &encode_checkpoint(c), fsync)?;
    let mut body = Vec::new();
    varint::write_u64(name.len() as u64, &mut body);
    body.extend_from_slice(name.as_bytes());
    varint::write_u64(c.seq, &mut body);
    write_framed(&dir.join("MANIFEST"), MANIFEST_MAGIC, &body, fsync)?;
    Ok(name)
}

/// Removes every checkpoint file except `keep` — run at open time to
/// clear leftovers of crashed incarnations (the steady state unlinks
/// superseded checkpoints directly, without a directory scan).
pub fn prune_superseded(dir: &Path, keep: &str) {
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            let is_old_ckpt = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".ckpt") && n != keep);
            if is_old_ckpt {
                let _ = fs::remove_file(&path);
            }
        }
    }
}

/// Loads the newest valid checkpoint: via `MANIFEST` when it validates,
/// otherwise by scanning for the highest-sequence checkpoint file that
/// does. `Ok(None)` when the directory holds no usable checkpoint (e.g.
/// a crash before the first one) — recovery then replays the WAL alone.
pub fn load_latest(dir: &Path) -> Result<Option<Checkpoint>, StoreError> {
    let manifest = dir.join("MANIFEST");
    if manifest.exists() {
        if let Ok(body) = read_framed(&manifest, MANIFEST_MAGIC) {
            let mut c = Cursor { buf: &body, pos: 0 };
            if let Ok(name_bytes) = c.bytes("name") {
                if let Ok(name) = String::from_utf8(name_bytes) {
                    // Reject path separators: the name is used to open a
                    // file under `dir` and must not escape it.
                    if !name.contains('/') && !name.contains('\\') {
                        if let Ok(body) = read_framed(&dir.join(&name), CKPT_MAGIC) {
                            if let Ok(ckpt) = decode_checkpoint(&body) {
                                return Ok(Some(ckpt));
                            }
                        }
                    }
                }
            }
        }
    }
    // Fallback: the manifest (or the checkpoint it points at) is gone or
    // corrupt; use the newest checkpoint file that still validates.
    let mut best: Option<Checkpoint> = None;
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            let is_ckpt = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".ckpt"));
            if !is_ckpt {
                continue;
            }
            if let Ok(body) = read_framed(&path, CKPT_MAGIC) {
                if let Ok(ckpt) = decode_checkpoint(&body) {
                    if best.as_ref().is_none_or(|b| ckpt.seq > b.seq) {
                        best = Some(ckpt);
                    }
                }
            }
        }
    }
    Ok(best)
}

/// Whether `dir` holds any durable state (manifest, checkpoint or WAL
/// segment) — the resume-vs-create decision.
pub fn has_state(dir: &Path) -> bool {
    if dir.join("MANIFEST").exists() {
        return true;
    }
    let any = |sub: &Path, prefix: &str, suffix: &str| -> bool {
        fs::read_dir(sub)
            .map(|entries| {
                entries.filter_map(|e| e.ok()).any(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|n| n.starts_with(prefix) && n.ends_with(suffix))
                })
            })
            .unwrap_or(false)
    };
    any(dir, "ckpt-", ".ckpt") || any(&dir.join("wal"), "seg-", ".wal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sssj-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            spec: "str-l2?theta=0.7&lambda=0.01".into(),
            seq: 42,
            last_t: 17.5,
            aux: vec![1, 2, 3],
            emitted: vec![(0, 1, 0.5), (3, 7, 12.25)],
        }
    }

    #[test]
    fn publish_and_load_roundtrip() {
        let dir = tmp_dir("roundtrip");
        assert!(load_latest(&dir).unwrap().is_none());
        assert!(!has_state(&dir));
        let c = sample();
        publish(&dir, &c, true).unwrap();
        assert!(has_state(&dir));
        assert_eq!(load_latest(&dir).unwrap().unwrap(), c);
        // A newer checkpoint supersedes and prunes the older file.
        let mut c2 = sample();
        c2.seq = 100;
        let name = publish(&dir, &c2, false).unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap(), c2);
        // Open-time pruning clears superseded checkpoint files.
        prune_superseded(&dir, &name);
        let ckpts = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_str().unwrap().starts_with("ckpt-"))
            .count();
        assert_eq!(ckpts, 1, "old checkpoint pruned");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_falls_back_to_scan() {
        let dir = tmp_dir("fallback");
        let c = sample();
        publish(&dir, &c, true).unwrap();
        // Corrupt the manifest body.
        let manifest = dir.join("MANIFEST");
        let mut bytes = fs::read(&manifest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&manifest, &bytes).unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap(), c, "scan fallback");
        // Corrupt the checkpoint too: no usable state, but no panic.
        let ckpt = dir.join(file_name(c.seq));
        let mut bytes = fs::read(&ckpt).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&ckpt, &bytes).unwrap();
        assert!(load_latest(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_bitflips_never_panic() {
        let c = sample();
        let body = encode_checkpoint(&c);
        assert_eq!(decode_checkpoint(&body).unwrap(), c);
        for pos in 0..body.len() {
            let mut corrupted = body.clone();
            corrupted[pos] ^= 0x41;
            let _ = decode_checkpoint(&corrupted); // any Result, no panic
        }
        for cut in 0..body.len() {
            assert!(decode_checkpoint(&body[..cut]).is_err(), "cut {cut}");
        }
    }
}

//! The segmented, append-only write-ahead log of the record stream.
//!
//! # Frame format
//!
//! One frame per record, fixed header then payload (all little-endian):
//!
//! ```text
//! len      u32          payload length in bytes
//! crc      u32          CRC-32C of the payload
//! payload:
//!   id     u64
//!   t      f64          raw bits (timestamps are load-bearing)
//!   nnz    u32
//!   dims   u32 × nnz    strictly increasing
//!   ws     f64 × nnz    raw weights
//! ```
//!
//! The payload is deliberately **fixed-width** (unlike the snapshot
//! format's delta+varint coding): the append sits on the per-record hot
//! path with a 15 % overhead budget (`wal_overhead` bench), and
//! fixed-width fields encode as bulk copies — no per-byte varint loops
//! — while the horizon GC keeps total disk usage bounded by the live
//! window anyway, so the ~25 % size saving varints would buy is not
//! worth the cycles.
//!
//! A reader accepts a frame only if the header is complete, `len` is
//! sane, the CRC matches and the decoded record passes the same
//! untrusted-input validation as the snapshot reader (dimensions
//! strictly increasing and ≤ [`MAX_SNAPSHOT_DIM`], weights finite in
//! `(0, 1]`, timestamps finite and non-decreasing across the log).
//! Anything else is treated as a torn tail: the log is truncated at the
//! last good frame and every later segment is deleted, which is exactly
//! the contract crash recovery needs — a `kill -9` mid-write loses at
//! most the torn frame, never the prefix.
//!
//! # Segments
//!
//! Frames are grouped into segment files `wal/seg-<first_seq:016x>.wal`,
//! each opening with a 16-byte header (`b"SSSJWAL1"` + the absolute
//! sequence number of its first record). A new segment starts every
//! [`DurableOptions::segment_records`](crate::DurableOptions) records.
//! Sequence numbers are absolute stream positions, so
//! [`Wal::next_seq`] equals the total number of records ever ingested
//! even after old segments are garbage-collected.
//!
//! # Horizon-aware GC
//!
//! A segment whose **newest** record is older than `now − horizon` can
//! never pair again (the engines' own forgetting horizon), and once a
//! checkpoint covers its last record the aux state it contributed is
//! persisted too — [`Wal::gc`] deletes exactly the sealed segments
//! satisfying both conditions, oldest first.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use sssj_core::MAX_SNAPSHOT_DIM;
use sssj_metrics::registry::{Counter, Registry};
use sssj_types::{SparseVectorBuilder, StreamRecord, Timestamp};

/// Registry handles for the WAL hot paths, resolved once per process.
struct WalMetrics {
    appends: &'static Counter,
    bytes: &'static Counter,
    fsyncs: &'static Counter,
    gc_batches: &'static Counter,
    gc_segments: &'static Counter,
}

fn wal_metrics() -> &'static WalMetrics {
    static M: OnceLock<WalMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let reg = Registry::global();
        WalMetrics {
            appends: reg.counter(
                "sssj_store_wal_appends_total",
                "records appended to the WAL",
            ),
            bytes: reg.counter("sssj_store_wal_bytes_total", "WAL frame bytes encoded"),
            fsyncs: reg.counter(
                "sssj_store_wal_fsyncs_total",
                "fsyncs forced by checkpoints",
            ),
            gc_batches: reg.counter(
                "sssj_store_gc_batches_total",
                "horizon-GC sweeps that retired segments",
            ),
            gc_segments: reg.counter(
                "sssj_store_gc_segments_total",
                "WAL segments retired by horizon GC",
            ),
        }
    })
}

use crate::crc::crc32c;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"SSSJWAL1";
const SEGMENT_HEADER_LEN: u64 = 16;
/// Sanity cap on one frame's payload; a record beyond this is treated as
/// corruption (the bound implies ≤ ~5M coordinates, far above
/// [`MAX_SNAPSHOT_DIM`]-constrained realistic vectors).
const MAX_FRAME_LEN: u32 = 64 << 20;
/// Frames accumulate in an in-process buffer and go to the file in one
/// write(2) when it fills — the per-record file cost is one amortized
/// syscall per 256 KiB, not a `BufWriter` copy plus a call per frame.
const WRITE_BUFFER: usize = 1 << 18;

/// One segment's bookkeeping.
#[derive(Clone, Debug)]
struct Segment {
    first_seq: u64,
    records: u64,
    first_t: f64,
    newest_t: f64,
    path: PathBuf,
}

/// Metadata of one sealed segment the horizon GC is about to retire:
/// its records are older than the forgetting horizon *and* fully
/// covered by a published checkpoint, so the live join will never read
/// them again.
#[derive(Clone, Debug)]
pub struct RetiredSegment {
    /// The segment file (still present when the sink runs).
    pub path: PathBuf,
    /// Absolute sequence number of the segment's first record.
    pub first_seq: u64,
    /// Records in the segment.
    pub records: u64,
    /// Timestamp of the oldest record.
    pub first_t: f64,
    /// Timestamp of the newest record.
    pub newest_t: f64,
}

/// Where retired WAL segments go. The GC hands each retirable segment
/// to the sink *instead of* deleting it inline, which is the attachment
/// point for the historical tier's compactor (`sssj-segments`) and for
/// retention policies (archive to cold storage, sample, …).
///
/// Contract: when `retire` returns `Ok`, the sink has taken full
/// responsibility for the segment — including removing the file once
/// (and only once) its contents are safe elsewhere. On `Err` the GC
/// stops immediately and the segment stays accounted in the log, so a
/// failed hand-off never loses records; the same segment is offered
/// again at the next GC cycle.
pub trait GcSink: Send {
    /// Takes ownership of one retirable segment (oldest first).
    fn retire(&mut self, segment: &RetiredSegment) -> io::Result<()>;

    /// Runs right before every checkpoint publish, after the WAL sync.
    /// Sinks that buffer state derived from the live join (the
    /// compactor's expired-edge queue) must make it durable here: a
    /// crash after the checkpoint would otherwise strand state that the
    /// checkpoint no longer carries. The default does nothing.
    fn before_publish(&mut self, _watermark: f64) -> io::Result<()> {
        Ok(())
    }
}

/// The default sink: deletes retired segments, exactly as the GC did
/// before sinks existed.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeleteSink;

impl GcSink for DeleteSink {
    fn retire(&mut self, segment: &RetiredSegment) -> io::Result<()> {
        fs::remove_file(&segment.path)
    }
}

/// The write half of the log plus the metadata of every retained
/// segment. Construct with [`Wal::create`] (fresh directory) or
/// [`Wal::open_existing`] (recovery: replays and self-repairs the log).
pub struct Wal {
    wal_dir: PathBuf,
    file: File,
    /// Encoded frames not yet written to `file` (see [`WRITE_BUFFER`]).
    buf: Vec<u8>,
    cur: Segment,
    sealed: Vec<Segment>,
    next_seq: u64,
    last_t: f64,
    segment_records: u64,
    sync_appends: bool,
    /// Segments deleted by GC over this handle's lifetime.
    gc_deleted: u64,
}

fn segment_path(wal_dir: &Path, first_seq: u64) -> PathBuf {
    wal_dir.join(format!("seg-{first_seq:016x}.wal"))
}

fn open_segment(wal_dir: &Path, first_seq: u64) -> io::Result<(File, Segment)> {
    let path = segment_path(wal_dir, first_seq);
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)?;
    let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
    header[..8].copy_from_slice(SEGMENT_MAGIC);
    header[8..].copy_from_slice(&first_seq.to_le_bytes());
    file.write_all(&header)?;
    Ok((
        file,
        Segment {
            first_seq,
            records: 0,
            first_t: f64::INFINITY,
            newest_t: f64::NEG_INFINITY,
            path,
        },
    ))
}

/// Exposes [`encode_frame`] for the `enc_profile` example (not part of
/// the public API surface).
#[doc(hidden)]
pub fn encode_frame_for_profile(record: &StreamRecord, buf: &mut Vec<u8>) {
    encode_frame(record, buf);
}

/// Appends the raw little-endian bytes of a numeric slice to `buf` in
/// one memcpy. On little-endian targets (every platform this workspace
/// ships on) the in-memory layout *is* the wire layout, so the encode
/// loop disappears; big-endian targets fall back to the per-element
/// path.
#[inline]
fn extend_le_bytes<T: Copy>(buf: &mut Vec<u8>, values: &[T], write_one: impl Fn(&mut Vec<u8>, &T)) {
    #[cfg(target_endian = "little")]
    {
        let _ = &write_one;
        // SAFETY: any initialized numeric slice is readable as bytes
        // (u8 has no validity or alignment requirements), and on a
        // little-endian target the byte order matches the wire format.
        let bytes = unsafe {
            std::slice::from_raw_parts(values.as_ptr() as *const u8, std::mem::size_of_val(values))
        };
        buf.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    {
        for v in values {
            write_one(buf, v);
        }
    }
}

/// Appends one record's frame to `buf`. This is the per-record hot
/// path (the `wal_overhead` bench budget): every field is fixed-width
/// and the dimension/weight columns go in as two bulk memcpys.
fn encode_frame(record: &StreamRecord, buf: &mut Vec<u8>) {
    let v = &record.vector;
    let nnz = v.nnz();
    let payload_len = 8 + 8 + 4 + 12 * nnz;
    let start = buf.len();
    buf.reserve(8 + payload_len);
    // One extend for the fixed-width head (frame header + scalar
    // fields): five capacity checks fold into one.
    let mut head = [0u8; 28];
    head[0..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    // head[4..8] = crc, patched below.
    head[8..16].copy_from_slice(&record.id.to_le_bytes());
    head[16..24].copy_from_slice(&record.t.seconds().to_le_bytes());
    head[24..28].copy_from_slice(&(nnz as u32).to_le_bytes());
    buf.extend_from_slice(&head);
    extend_le_bytes(buf, v.dims(), |b, d| b.extend_from_slice(&d.to_le_bytes()));
    extend_le_bytes(buf, v.weights(), |b, x| {
        b.extend_from_slice(&x.to_le_bytes())
    });
    let crc = crc32c(&buf[start + 8..]);
    buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Decodes and validates one frame payload. `last_t` enforces the
/// cross-frame timestamp monotonicity the engines rely on. The `nnz`
/// count is cross-checked against the payload length *before* any
/// allocation is sized from it.
fn decode_payload(payload: &[u8], last_t: f64) -> Result<StreamRecord, String> {
    if payload.len() < 20 {
        return Err(format!("payload too short ({} bytes)", payload.len()));
    }
    let id = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let t = f64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    if !t.is_finite() || t < last_t {
        return Err(format!("bad timestamp {t} (watermark {last_t})"));
    }
    let nnz = u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes")) as usize;
    if nnz as u64 > MAX_SNAPSHOT_DIM as u64 {
        return Err(format!("absurd nnz {nnz}"));
    }
    // A lying nnz must fail here, before it sizes any allocation.
    if payload.len() != 20 + 12 * nnz {
        return Err(format!(
            "payload length {} does not match nnz {nnz}",
            payload.len()
        ));
    }
    let (dims_bytes, ws_bytes) = payload[20..].split_at(4 * nnz);
    let mut b = SparseVectorBuilder::with_capacity(nnz);
    let mut prev: Option<u32> = None;
    for (db, wb) in dims_bytes.chunks_exact(4).zip(ws_bytes.chunks_exact(8)) {
        let d = u32::from_le_bytes(db.try_into().expect("4 bytes"));
        if d > MAX_SNAPSHOT_DIM {
            return Err(format!("dimension {d} too large"));
        }
        if prev.is_some_and(|p| d <= p) {
            return Err("dims not increasing".into());
        }
        prev = Some(d);
        let x = f64::from_le_bytes(wb.try_into().expect("8 bytes"));
        if !x.is_finite() || x <= 0.0 || x > 1.0 + 1e-9 {
            return Err(format!("bad weight {x}"));
        }
        b.push(d, x);
    }
    let vector = b.build().map_err(|e| format!("bad vector: {e}"))?;
    Ok(StreamRecord::new(id, Timestamp::new(t), vector))
}

/// The outcome of scanning an existing log.
pub struct WalScan {
    /// The surviving write handle, positioned to append.
    pub wal: Wal,
    /// Every record replayable from the retained segments, in order.
    /// Absolute sequence numbers are `wal.next_seq() - records.len()`
    /// onwards.
    pub records: Vec<StreamRecord>,
    /// Whether corruption was found (and the log truncated at the last
    /// good frame).
    pub truncated: bool,
}

impl Wal {
    /// Creates a fresh log under `dir/wal`.
    pub fn create(dir: &Path, segment_records: u64, sync_appends: bool) -> io::Result<Wal> {
        let wal_dir = dir.join("wal");
        fs::create_dir_all(&wal_dir)?;
        let (file, cur) = open_segment(&wal_dir, 0)?;
        Ok(Wal {
            wal_dir,
            file,
            buf: Vec::with_capacity(2 * WRITE_BUFFER),
            cur,
            sealed: Vec::new(),
            next_seq: 0,
            last_t: f64::NEG_INFINITY,
            segment_records: segment_records.max(1),
            sync_appends,
            gc_deleted: 0,
        })
    }

    /// Opens an existing log under `dir/wal`: reads every segment in
    /// sequence order, stops at the first corruption, truncates the log
    /// there (deleting any later segments), and returns the surviving
    /// records together with a write handle positioned at the end.
    pub fn open_existing(
        dir: &Path,
        segment_records: u64,
        sync_appends: bool,
    ) -> io::Result<WalScan> {
        let wal_dir = dir.join("wal");
        fs::create_dir_all(&wal_dir)?;
        let mut paths: Vec<PathBuf> = fs::read_dir(&wal_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".wal"))
            })
            .collect();
        paths.sort(); // hex-padded names sort by first_seq

        let mut records = Vec::new();
        let mut segments: Vec<Segment> = Vec::new();
        let mut truncated = false;
        let mut expected_seq: Option<u64> = None;
        let mut last_t = f64::NEG_INFINITY;
        for (i, path) in paths.iter().enumerate() {
            match Self::scan_segment(path, expected_seq, &mut last_t, &mut records) {
                Ok(seg) => {
                    expected_seq = Some(seg.first_seq + seg.records);
                    segments.push(seg);
                }
                Err(keep_bytes) => {
                    // Torn or corrupt: cut the log here. `keep_bytes`
                    // is how much of this segment survives (0 = the
                    // header itself is bad → drop the whole file).
                    truncated = true;
                    match keep_bytes {
                        Some((seg, good_len)) => {
                            let f = OpenOptions::new().write(true).open(path)?;
                            f.set_len(good_len)?;
                            f.sync_all()?;
                            segments.push(seg);
                        }
                        None => {
                            fs::remove_file(path)?;
                        }
                    }
                    for later in &paths[i + 1..] {
                        fs::remove_file(later)?;
                    }
                    break;
                }
            }
        }

        let next_seq = segments
            .last()
            .map(|s| s.first_seq + s.records)
            .unwrap_or(0);
        // Reopen the last surviving segment for appending; if nothing
        // survived, start a fresh one at the recovered sequence.
        let (file, cur) = match segments.pop() {
            Some(seg) => {
                let mut file = OpenOptions::new().write(true).open(&seg.path)?;
                file.seek(SeekFrom::End(0))?;
                (file, seg)
            }
            None => open_segment(&wal_dir, next_seq)?,
        };
        Ok(WalScan {
            wal: Wal {
                wal_dir,
                file,
                buf: Vec::with_capacity(2 * WRITE_BUFFER),
                cur,
                sealed: segments,
                next_seq,
                last_t,
                segment_records: segment_records.max(1),
                sync_appends,
                gc_deleted: 0,
            },
            records,
            truncated,
        })
    }

    /// Scans one segment. `Ok(segment)` when it reads cleanly to EOF;
    /// `Err(Some((segment, good_len)))` when a later frame is corrupt
    /// but a good prefix survives; `Err(None)` when the header itself is
    /// unusable.
    #[allow(clippy::type_complexity)]
    fn scan_segment(
        path: &Path,
        expected_seq: Option<u64>,
        last_t: &mut f64,
        records: &mut Vec<StreamRecord>,
    ) -> Result<Segment, Option<(Segment, u64)>> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(_) => return Err(None),
        };
        let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
        if file.read_exact(&mut header).is_err() || &header[..8] != SEGMENT_MAGIC {
            return Err(None);
        }
        let first_seq = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        if expected_seq.is_some_and(|e| e != first_seq) {
            // A gap or overlap in the sequence space: everything from
            // here on is unusable.
            return Err(None);
        }
        let mut seg = Segment {
            first_seq,
            records: 0,
            first_t: f64::INFINITY,
            newest_t: f64::NEG_INFINITY,
            path: path.to_path_buf(),
        };
        let mut good_len = SEGMENT_HEADER_LEN;
        let mut frame_header = [0u8; 8];
        let mut payload = Vec::new();
        loop {
            match file.read_exact(&mut frame_header) {
                Ok(()) => {}
                Err(_) => {
                    // Clean EOF (file ends exactly at the last good
                    // frame) is the common case and is not corruption; a
                    // torn header means the tail must be cut.
                    let clean = file.metadata().ok().is_some_and(|m| m.len() == good_len);
                    if clean {
                        return Ok(seg);
                    }
                    return Err(Some((seg, good_len)));
                }
            }
            let len = u32::from_le_bytes(frame_header[0..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(frame_header[4..8].try_into().expect("4 bytes"));
            if len == 0 || len > MAX_FRAME_LEN {
                return Err(Some((seg, good_len)));
            }
            payload.clear();
            payload.resize(len as usize, 0);
            if file.read_exact(&mut payload).is_err() || crc32c(&payload) != crc {
                return Err(Some((seg, good_len)));
            }
            match decode_payload(&payload, *last_t) {
                Ok(record) => {
                    let t = record.t.seconds();
                    *last_t = t;
                    if seg.records == 0 {
                        seg.first_t = t;
                    }
                    seg.newest_t = t;
                    seg.records += 1;
                    good_len += 8 + len as u64;
                    records.push(record);
                }
                Err(_) => return Err(Some((seg, good_len))),
            }
        }
    }

    /// Appends one record, returning its absolute sequence number.
    /// Rejects non-finite or backwards-in-time timestamps up front: the
    /// engines require monotone streams anyway, and a logged bad frame
    /// would otherwise read as corruption on the next open — truncating
    /// every record after it.
    pub fn append(&mut self, record: &StreamRecord) -> io::Result<u64> {
        let t = record.t.seconds();
        if !t.is_finite() || t < self.last_t {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "out-of-order timestamp {t} (watermark {}): the WAL only \
                     accepts non-decreasing streams",
                    self.last_t
                ),
            ));
        }
        if self.cur.records >= self.segment_records {
            self.seal()?;
        }
        let mut span =
            sssj_metrics::trace::span_with(sssj_metrics::trace::Stage::WalAppend, record.id, 0);
        let buffered = self.buf.len();
        encode_frame(record, &mut self.buf);
        let m = wal_metrics();
        m.appends.inc();
        m.bytes.add((self.buf.len() - buffered) as u64);
        span.set_args(record.id, (self.buf.len() - buffered) as u64);
        if self.sync_appends || self.buf.len() >= WRITE_BUFFER {
            self.flush()?;
        }
        if self.cur.records == 0 {
            self.cur.first_t = t;
        }
        self.cur.newest_t = t;
        self.cur.records += 1;
        self.last_t = t;
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Seals the current segment and opens the next one.
    fn seal(&mut self) -> io::Result<()> {
        self.flush()?;
        let (file, cur) = open_segment(&self.wal_dir, self.next_seq)?;
        let old = std::mem::replace(&mut self.cur, cur);
        self.file = file; // the old file was flushed above
        self.sealed.push(old);
        Ok(())
    }

    /// Flushes buffered frames to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flushes the open segment to the OS and, with `fsync`, forces it
    /// to stable storage — called before a checkpoint is published, so
    /// the manifest never references state the OS has not seen. The
    /// fsync is the machine-crash half of the durability contract; a
    /// plain flush already survives any process crash.
    pub fn sync(&mut self, fsync: bool) -> io::Result<()> {
        self.flush()?;
        if fsync {
            let _span = sssj_metrics::trace::span(sssj_metrics::trace::Stage::WalFsync);
            self.file.sync_all()?;
            wal_metrics().fsyncs.inc();
        }
        Ok(())
    }

    /// The next sequence number to be assigned — equal to the total
    /// number of records ever appended (GC does not move it).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Timestamp of the newest appended record.
    pub fn last_t(&self) -> f64 {
        self.last_t
    }

    /// Timestamp of the oldest *retained* record, `None` when empty.
    /// Emitted pairs older than this can never be regenerated by replay
    /// (their members are gone from the log), so the checkpoint's
    /// suppression set is pruned against it.
    pub fn oldest_t(&self) -> Option<f64> {
        if let Some(seg) = self.sealed.first() {
            if seg.records > 0 {
                return Some(seg.first_t);
            }
        }
        (self.cur.records > 0).then_some(self.cur.first_t)
    }

    /// Retires sealed segments that (a) can never pair again — newest
    /// record older than `floor_t` — and (b) are fully covered by the
    /// checkpoint at `ckpt_seq`, handing each to `sink` oldest first.
    /// Returns how many were retired. A sink error stops the sweep with
    /// the failing segment still retained (see [`GcSink`]).
    pub fn gc(&mut self, floor_t: f64, ckpt_seq: u64, sink: &mut dyn GcSink) -> io::Result<usize> {
        let mut retired = 0;
        while let Some(seg) = self.sealed.first() {
            if seg.newest_t < floor_t && seg.first_seq + seg.records <= ckpt_seq {
                sink.retire(&RetiredSegment {
                    path: seg.path.clone(),
                    first_seq: seg.first_seq,
                    records: seg.records,
                    first_t: seg.first_t,
                    newest_t: seg.newest_t,
                })?;
                self.sealed.remove(0);
                retired += 1;
            } else {
                break;
            }
        }
        self.gc_deleted += retired as u64;
        if retired > 0 {
            let m = wal_metrics();
            m.gc_batches.inc();
            m.gc_segments.add(retired as u64);
        }
        Ok(retired)
    }

    /// Segments deleted by GC over this handle's lifetime.
    pub fn gc_deleted(&self) -> u64 {
        self.gc_deleted
    }

    /// Retained segments (sealed + the open one).
    pub fn segments(&self) -> usize {
        self.sealed.len() + 1
    }
}

/// Appends one record's WAL frame (header + CRC + payload) to `buf`.
/// Public for the historical tier, whose record segments reuse the WAL
/// frame format byte for byte.
pub fn encode_frame_into(record: &StreamRecord, buf: &mut Vec<u8>) {
    encode_frame(record, buf);
}

/// Decodes a byte run of concatenated WAL frames, strictly: any torn,
/// corrupt or trailing partial frame is an error (callers hold
/// *published* immutable bytes, where a bad frame is corruption, not a
/// crash tail). `last_t` seeds the cross-frame timestamp monotonicity
/// check, `f64::NEG_INFINITY` to accept any start.
pub fn decode_frames(bytes: &[u8], mut last_t: f64) -> Result<Vec<StreamRecord>, String> {
    let mut records = Vec::new();
    let mut rest = bytes;
    while !rest.is_empty() {
        if rest.len() < 8 {
            return Err(format!("torn frame header ({} trailing bytes)", rest.len()));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(format!("absurd frame length {len}"));
        }
        // Length check before any slicing sized from the header.
        if rest.len() - 8 < len as usize {
            return Err(format!(
                "frame length {len} overruns the remaining {} bytes",
                rest.len() - 8
            ));
        }
        let payload = &rest[8..8 + len as usize];
        if crc32c(payload) != crc {
            return Err("frame CRC mismatch".into());
        }
        let record = decode_payload(payload, last_t)?;
        last_t = record.t.seconds();
        records.push(record);
        rest = &rest[8 + len as usize..];
    }
    Ok(records)
}

/// Reads every record of one sealed segment file, strictly: sealed
/// segments are immutable, so a torn or corrupt frame is an error here
/// (unlike recovery's self-truncating scan). This is the compactor's
/// read path at retire time.
pub fn read_segment_records(path: &Path) -> io::Result<Vec<StreamRecord>> {
    let mut records = Vec::new();
    let mut last_t = f64::NEG_INFINITY;
    match Wal::scan_segment(path, None, &mut last_t, &mut records) {
        Ok(seg) if seg.path == *path => Ok(records),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "WAL segment {} is torn or corrupt; refusing to compact it",
                path.display()
            ),
        )),
    }
}

impl Drop for Wal {
    /// Best-effort flush: a *graceful* drop hands every appended frame
    /// to the OS (a `kill -9` still loses the in-process buffer — the
    /// torn-tail path recovery is built for).
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

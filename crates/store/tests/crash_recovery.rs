//! Crash-recovery differential: for every durable engine × index
//! variant, `pre-crash output ∪ recovered output` must be set-equal to
//! the uninterrupted run — under random crash points, random mid-frame
//! WAL truncation, and random checkpoint cadence — and recovery itself
//! must never emit one pair twice.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use sssj_core::{JoinSpec, StreamJoin};
use sssj_store::{recover, DurableJoin, DurableOptions};
use sssj_types::{SimilarPair, SparseVectorBuilder, StreamRecord, Timestamp};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sssj-crash-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every engine × index variant the durability layer supports. The
/// sharded entries cover the per-shard batch-boundary checkpoint path.
fn engine_specs() -> Vec<&'static str> {
    vec![
        "str-inv?theta=0.6&lambda=0.3",
        "str-ap?theta=0.6&lambda=0.3",
        "str-l2ap?theta=0.6&lambda=0.3",
        "str-l2?theta=0.6&lambda=0.3",
        "mb-inv?theta=0.6&lambda=0.3",
        "mb-ap?theta=0.6&lambda=0.3",
        "mb-l2ap?theta=0.6&lambda=0.3",
        "mb-l2?theta=0.6&lambda=0.3",
        "decay?theta=0.6&model=window:4",
        "decay?theta=0.6&model=window:4&bounds=l2",
        "sharded?theta=0.6&lambda=0.3&shards=2&inner=str-l2",
        "sharded?theta=0.6&lambda=0.3&shards=3&inner=str-l2ap",
        "sharded?theta=0.6&lambda=0.3&shards=2&inner=mb-l2",
        "sharded?theta=0.6&shards=2&inner=decay&model=window:4",
    ]
}

/// A clustered random stream (the shape that exercises routing and
/// window churn): ~pair-dense, timestamps advancing ~0.2/record so a
/// τ≈1.7 horizon (θ=0.6, λ=0.3) spans a few dozen records.
fn random_stream(seed: u64, n: usize) -> Vec<StreamRecord> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n as u64)
        .map(|i| {
            t += rng.random_range(0.0..0.4);
            let entries: Vec<(u32, f64)> = (0..rng.random_range(1..5))
                .map(|_| (rng.random_range(0..24u32), rng.random_range(0.1..1.0)))
                .collect();
            let mut b = SparseVectorBuilder::with_capacity(entries.len());
            for (d, w) in entries {
                b.push(d, w);
            }
            StreamRecord::new(i, Timestamp::new(t), b.build_normalized().unwrap())
        })
        .collect()
}

type PairKeys = BTreeSet<(u64, u64)>;

fn keys(pairs: &[SimilarPair]) -> PairKeys {
    pairs.iter().map(|p| p.key()).collect()
}

/// The uninterrupted run's pair set (the differential reference).
fn uninterrupted(spec: &JoinSpec, stream: &[StreamRecord]) -> PairKeys {
    let mut join = spec.build().unwrap_or_else(|e| panic!("{spec}: {e}"));
    let mut out = Vec::new();
    for r in stream {
        join.process(r, &mut out);
    }
    join.finish(&mut out);
    keys(&out)
}

/// Truncates the newest WAL segment at `cut` bytes (modulo its length),
/// simulating a torn tail — possibly mid-frame, possibly mid-header.
fn truncate_wal(dir: &Path, cut: u64) {
    let wal_dir = dir.join("wal");
    let mut segs: Vec<PathBuf> = fs::read_dir(&wal_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    segs.sort();
    if let Some(last) = segs.last() {
        let len = fs::metadata(last).unwrap().len();
        if len > 0 {
            fs::OpenOptions::new()
                .write(true)
                .open(last)
                .unwrap()
                .set_len(cut % len)
                .unwrap();
        }
    }
}

/// One full crash → recover → continue cycle; asserts the differential
/// and returns `(pre-crash keys, recovered keys)` for extra checks.
fn crash_cycle(
    spec_text: &str,
    stream: &[StreamRecord],
    crash_at: usize,
    truncate: Option<u64>,
    opts: DurableOptions,
) -> (PairKeys, PairKeys) {
    sssj_parallel::register_spec_builder();
    let spec: JoinSpec = spec_text.parse().unwrap();
    let expected = uninterrupted(&spec, stream);
    let dir = tmp_dir("cycle");

    // Pre-crash phase: process a prefix, then "crash" (drop without
    // finish — no final checkpoint, in-flight sharded pairs lost).
    let mut join = DurableJoin::open(&spec, &dir, opts).unwrap();
    let mut pre = Vec::new();
    for r in &stream[..crash_at] {
        join.process(r, &mut pre);
    }
    drop(join);
    if let Some(cut) = truncate {
        truncate_wal(&dir, cut);
    }

    // Recovery phase: replay, then continue from where the store says.
    let rec = recover(&dir).unwrap_or_else(|e| panic!("{spec_text}: recover: {e}"));
    let ingested = rec.ingested as usize;
    assert!(
        ingested <= crash_at,
        "{spec_text}: store claims more records than were fed"
    );
    let mut out = rec.replayed;
    let mut join = rec.join;
    if ingested < stream.len() {
        assert_eq!(
            join.resume_point().map(|(n, _)| n),
            Some(rec.ingested),
            "{spec_text}: resume point"
        );
    }
    for r in &stream[ingested..] {
        join.process(r, &mut out);
    }
    join.finish(&mut out);

    // Recovery must never emit one pair twice.
    let rec_keys = keys(&out);
    assert_eq!(
        rec_keys.len(),
        out.len(),
        "{spec_text}: recovered output contains duplicates"
    );

    // The differential: union == uninterrupted run.
    let pre_keys = keys(&pre);
    let union: BTreeSet<_> = pre_keys.union(&rec_keys).copied().collect();
    assert_eq!(
        union,
        expected,
        "{spec_text}: crash@{crash_at} truncate={truncate:?} union mismatch \
         (missing: {:?}, extra: {:?})",
        expected.difference(&union).collect::<Vec<_>>(),
        union.difference(&expected).collect::<Vec<_>>()
    );
    let _ = fs::remove_dir_all(&dir);
    (pre_keys, rec_keys)
}

#[test]
fn crash_recovery_differential_every_engine_and_index() {
    let stream = random_stream(7, 160);
    let opts = DurableOptions {
        segment_records: 16,
        checkpoint_every: 32,
        sync_appends: false,
        fsync: false,
    };
    for spec in engine_specs() {
        // Mid-stream crash, clean tail.
        crash_cycle(spec, &stream, 90, None, opts);
        // Mid-frame truncation (97 bytes into the newest segment).
        crash_cycle(spec, &stream, 90, Some(97), opts);
    }
}

#[test]
fn truncation_inside_the_segment_header_drops_the_segment_cleanly() {
    let stream = random_stream(11, 120);
    let opts = DurableOptions {
        segment_records: 16,
        checkpoint_every: 32,
        sync_appends: false,
        fsync: false,
    };
    for cut in [0, 3, 15] {
        crash_cycle("str-l2?theta=0.6&lambda=0.3", &stream, 70, Some(cut), opts);
    }
}

#[test]
fn no_pre_checkpoint_pair_is_emitted_twice() {
    // STR emits pairs synchronously, so "emitted before the last
    // checkpoint" is exactly the output surfaced while processing the
    // first ⌊crash/k⌋·k records. None of those may reappear in the
    // recovered output.
    let stream = random_stream(13, 140);
    let spec: JoinSpec = "str-l2?theta=0.6&lambda=0.3".parse().unwrap();
    let k = 25usize;
    let crash_at = 112; // last checkpoint at record 100
    let opts = DurableOptions {
        segment_records: 16,
        checkpoint_every: k as u64,
        sync_appends: false,
        fsync: false,
    };
    let dir = tmp_dir("dupes");
    let mut join = DurableJoin::open(&spec, &dir, opts).unwrap();
    let mut pre = Vec::new();
    let mut at_ckpt = 0usize;
    for (i, r) in stream[..crash_at].iter().enumerate() {
        join.process(r, &mut pre);
        if (i + 1) % k == 0 {
            at_ckpt = pre.len();
        }
    }
    let before_ckpt = keys(&pre[..at_ckpt]);
    assert!(!before_ckpt.is_empty(), "test needs pre-checkpoint pairs");
    drop(join);

    let rec = recover(&dir).unwrap();
    let mut out = rec.replayed;
    let mut join = rec.join;
    for r in &stream[rec.ingested as usize..] {
        join.process(r, &mut out);
    }
    join.finish(&mut out);
    let dupes: Vec<_> = keys(&out).intersection(&before_ckpt).copied().collect();
    assert!(
        dupes.is_empty(),
        "pairs emitted before the last checkpoint re-emitted by recovery: {dupes:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cadence_checkpoint_never_suppresses_undelivered_output() {
    // The crash window the cadence checkpoint must survive: output that
    // an engine handed back but the caller never delivered (crash
    // before serve's writeln). The automatic checkpoint runs at the top
    // of process() and publishes only pairs from *completed* calls, so
    // discarding the final call's output must always be recoverable.
    sssj_parallel::register_spec_builder();
    let stream = random_stream(37, 120);
    let k = 20u64;
    for spec_text in [
        "str-l2?theta=0.6&lambda=0.3",
        "sharded?theta=0.6&lambda=0.3&shards=2&inner=str-l2",
    ] {
        let spec: JoinSpec = spec_text.parse().unwrap();
        let expected = uninterrupted(&spec, &stream);
        let dir = tmp_dir("undelivered");
        let opts = DurableOptions {
            segment_records: 16,
            checkpoint_every: k,
            sync_appends: false,
            fsync: false,
        };
        // Two crash placements around the cadence boundary. `crash_at =
        // k`: the crash lands with since_ckpt == k but before the next
        // call would publish — no checkpoint may have claimed call k's
        // pairs. `crash_at = k+1`: the publish fires inside call k+1,
        // whose own output is the discarded one.
        for crash_at in [k as usize, k as usize + 1] {
            let _ = fs::remove_dir_all(&dir);
            let mut join = DurableJoin::open(&spec, &dir, opts).unwrap();
            let mut delivered = Vec::new();
            for r in &stream[..crash_at - 1] {
                join.process(r, &mut delivered);
            }
            let mut lost = Vec::new();
            join.process(&stream[crash_at - 1], &mut lost);
            drop(join); // crash before `lost` reaches anyone
            drop(lost);

            let rec = recover(&dir).unwrap();
            let mut out = rec.replayed;
            let mut join = rec.join;
            for r in &stream[rec.ingested as usize..] {
                join.process(r, &mut out);
            }
            join.finish(&mut out);
            let union: BTreeSet<_> = keys(&delivered).union(&keys(&out)).copied().collect();
            assert_eq!(
                union,
                expected,
                "{spec_text} crash@{crash_at}: discarded output of the final call \
                 must be recoverable (missing: {:?})",
                expected.difference(&union).collect::<Vec<_>>()
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn finish_flush_right_after_cadence_checkpoint_is_still_published() {
    // MB buffers within-window pairs until finish(); when a checkpoint
    // lands right before finish (no record in between), the final
    // publish must still happen — a pair emission alone marks the store
    // dirty — otherwise resuming re-emits the whole finish flush.
    let k = 40usize;
    let stream = random_stream(41, k);
    let spec: JoinSpec = "mb-l2?theta=0.6&lambda=0.3".parse().unwrap();
    let dir = tmp_dir("finishflush");
    let opts = DurableOptions {
        segment_records: 16,
        checkpoint_every: u64::MAX,
        sync_appends: false,
        fsync: false,
    };
    let mut join = DurableJoin::open(&spec, &dir, opts).unwrap();
    let mut out = Vec::new();
    for r in &stream {
        join.process(r, &mut out);
    }
    // Explicit checkpoint immediately before finish: clears `dirty`
    // with the finish flush still buffered inside the engine.
    join.checkpoint(&mut out).unwrap();
    join.finish(&mut out);
    assert!(!out.is_empty(), "test needs a finish flush");
    drop(join);

    // Resume + finish must regenerate nothing: every finish pair was
    // acknowledged by the final checkpoint.
    let rec = recover(&dir).unwrap();
    let mut again = rec.replayed;
    let mut join = rec.join;
    join.finish(&mut again);
    assert!(
        again.is_empty(),
        "finish flush re-emitted after clean finish: {again:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn backwards_timestamps_are_rejected_at_append_not_at_recovery() {
    // A logged out-of-order frame would read as corruption on the next
    // open and truncate everything after it; the WAL must refuse it up
    // front instead.
    use sssj_types::vector::unit_vector;
    let dir = tmp_dir("backwards");
    fs::create_dir_all(&dir).unwrap();
    let mut wal = sssj_store::Wal::create(&dir, 16, false).unwrap();
    let rec = |id: u64, t: f64| StreamRecord::new(id, Timestamp::new(t), unit_vector(&[(1, 1.0)]));
    wal.append(&rec(0, 10.0)).unwrap();
    let err = wal.append(&rec(1, 9.5)).unwrap_err();
    assert!(err.to_string().contains("out-of-order"), "{err}");
    // Equal timestamps are fine; the log continues.
    wal.append(&rec(2, 10.0)).unwrap();
    assert_eq!(wal.next_seq(), 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn clean_finish_resumes_without_replay_tail() {
    let stream = random_stream(17, 80);
    let spec: JoinSpec = "str-l2?theta=0.6&lambda=0.3".parse().unwrap();
    let dir = tmp_dir("clean");
    let opts = DurableOptions {
        segment_records: 16,
        checkpoint_every: 32,
        sync_appends: false,
        fsync: false,
    };
    let mut join = DurableJoin::open(&spec, &dir, opts).unwrap();
    let mut out = Vec::new();
    for r in &stream {
        join.process(r, &mut out);
    }
    join.finish(&mut out);
    drop(join);

    // A cleanly finished store recovers with nothing to re-emit.
    let rec = recover(&dir).unwrap();
    assert!(
        rec.replayed.is_empty(),
        "clean finish left a replay tail: {:?}",
        rec.replayed
    );
    assert_eq!(rec.ingested, stream.len() as u64);

    // And the resumed join still pairs new arrivals with recovered
    // in-horizon state.
    let last_t = stream.last().unwrap().t.seconds();
    let near = stream.last().unwrap().vector.clone();
    let mut join = rec.join;
    let mut more = Vec::new();
    join.process(
        &StreamRecord::new(stream.len() as u64, Timestamp::new(last_t + 0.01), near),
        &mut more,
    );
    assert!(
        more.iter().any(|p| p.left == stream.len() as u64 - 1),
        "resumed join must pair with the pre-restart record: {more:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wal_gc_collects_behind_the_horizon() {
    // τ ≈ 1.7 at (θ=0.6, λ=0.3); 600 records × ~0.2 s stride spans ~120 s
    // of stream time, so almost every sealed segment falls behind the
    // horizon and must be collected at checkpoints.
    let stream = random_stream(19, 600);
    let spec: JoinSpec = "str-l2?theta=0.6&lambda=0.3".parse().unwrap();
    let dir = tmp_dir("gc");
    let opts = DurableOptions {
        segment_records: 32,
        checkpoint_every: 64,
        sync_appends: false,
        fsync: false,
    };
    let mut join = DurableJoin::open(&spec, &dir, opts).unwrap();
    let mut out = Vec::new();
    for r in &stream {
        join.process(r, &mut out);
    }
    assert!(
        join.wal_segments_collected() > 0,
        "horizon GC never collected a segment"
    );
    assert!(
        join.wal_segments() < 8,
        "retained segments grew without bound: {}",
        join.wal_segments()
    );
    // GC must not break recovery: crash now and run the differential.
    drop(join);
    let expected = uninterrupted(&spec, &stream);
    let rec = recover(&dir).unwrap();
    let mut rec_out = rec.replayed;
    let mut join = rec.join;
    join.finish(&mut rec_out);
    let union: BTreeSet<_> = keys(&out).union(&keys(&rec_out)).copied().collect();
    assert_eq!(union, expected);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn spec_mismatch_is_rejected() {
    let dir = tmp_dir("mismatch");
    let spec: JoinSpec = "str-l2?theta=0.6&lambda=0.3".parse().unwrap();
    let join = DurableJoin::open(&spec, &dir, DurableOptions::default()).unwrap();
    drop(join);
    let other: JoinSpec = "mb-l2?theta=0.6&lambda=0.3".parse().unwrap();
    let Err(err) = DurableJoin::open(&other, &dir, DurableOptions::default()) else {
        panic!("mismatched spec must be rejected");
    };
    assert!(
        err.to_string().contains("created for spec"),
        "unexpected error: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn durable_spec_builds_and_resumes_through_the_factory() {
    sssj_parallel::register_spec_builder();
    sssj_store::register_spec_builder();
    let dir = tmp_dir("factory");
    let dir_s = dir.display().to_string();
    let stream = random_stream(23, 60);

    let spec: JoinSpec = format!("str-l2?theta=0.6&lambda=0.3&durable={dir_s}")
        .parse()
        .unwrap();
    // Display/parse round-trip keeps the directory.
    assert_eq!(spec.to_string().parse::<JoinSpec>().unwrap(), spec);

    let mut join = spec.build().unwrap();
    assert_eq!(join.name(), "STR-L2+wal");
    assert_eq!(join.resume_point(), None, "fresh store");
    let mut out = Vec::new();
    for r in &stream[..40] {
        join.process(r, &mut out);
    }
    drop(join); // crash

    // Rebuilding the same spec resumes; the replay tail surfaces on the
    // first process call and the resume point reports the WAL position.
    let mut join = spec.build().unwrap();
    let (n, t) = join.resume_point().expect("resumed store");
    assert_eq!(n, 40);
    assert_eq!(t, stream[39].t.seconds());
    let mut out2 = Vec::new();
    for r in &stream[40..] {
        join.process(r, &mut out2);
    }
    join.finish(&mut out2);
    let expected = uninterrupted(&"str-l2?theta=0.6&lambda=0.3".parse().unwrap(), &stream);
    let union: BTreeSet<_> = keys(&out).union(&keys(&out2)).copied().collect();
    assert_eq!(union, expected);
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The satellite property: K records, checkpoint cadence k,
    /// crash at a random record, truncate the WAL at a random byte,
    /// recover, finish the stream — union set-equal to the
    /// uninterrupted run, for a rotating sample of engine variants.
    #[test]
    fn union_equals_uninterrupted_run(
        seed in 0u64..1000,
        engine in 0usize..14,
        crash_frac in 0.1f64..0.95,
        ckpt_every in 8u64..48,
        cut in proptest::option::of(0u64..4096),
    ) {
        let stream = random_stream(seed, 120);
        let crash_at = ((stream.len() as f64) * crash_frac) as usize;
        let opts = DurableOptions {
            segment_records: 16,
            checkpoint_every: ckpt_every,
            sync_appends: false,
            fsync: false,
        };
        let specs = engine_specs();
        crash_cycle(specs[engine % specs.len()], &stream, crash_at.max(1), cut, opts);
    }
}

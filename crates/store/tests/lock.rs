//! The durable store's exclusive session lock: two live sessions can
//! never share one store directory; locks left by dead processes are
//! reclaimed automatically.

use std::path::PathBuf;

use sssj_core::JoinSpec;
use sssj_store::{recover, DurableJoin, DurableOptions, StoreError};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sssj-lock-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> JoinSpec {
    "str-l2?theta=0.7&lambda=0.01".parse().unwrap()
}

#[test]
fn second_live_session_is_rejected() {
    let dir = fresh_dir("live");
    let first = DurableJoin::open(&spec(), &dir, DurableOptions::default()).unwrap();
    // While the first session lives (this very process), a second open
    // must fail with a clear Locked error naming the holder.
    match DurableJoin::open(&spec(), &dir, DurableOptions::default()) {
        Err(StoreError::Locked { pid }) => {
            assert_eq!(pid, std::process::id());
            let msg = StoreError::Locked { pid }.to_string();
            assert!(msg.contains("locked by running process"), "{msg}");
        }
        Err(e) => panic!("expected Locked, got {e}"),
        Ok(_) => panic!("two live sessions shared one store"),
    }
    // `recover` goes through the same gate.
    assert!(matches!(recover(&dir), Err(StoreError::Locked { .. })));
    drop(first);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_shutdown_releases_the_lock() {
    let dir = fresh_dir("release");
    let join = DurableJoin::open(&spec(), &dir, DurableOptions::default()).unwrap();
    assert!(dir.join("LOCK").exists());
    drop(join);
    assert!(!dir.join("LOCK").exists(), "drop must remove LOCK");
    // The next session acquires freely.
    let again = DurableJoin::open(&spec(), &dir, DurableOptions::default()).unwrap();
    drop(again);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_lock_of_a_dead_process_is_reclaimed() {
    let dir = fresh_dir("stale");
    std::fs::create_dir_all(&dir).unwrap();
    // Pids are bounded well below 2^22 on Linux; this one cannot be
    // alive (and /proc/<it> cannot exist).
    std::fs::write(dir.join("LOCK"), format!("{}", u32::MAX)).unwrap();
    let join = DurableJoin::open(&spec(), &dir, DurableOptions::default())
        .expect("stale lock must be reclaimed");
    drop(join);
    // Garbage content is treated as stale too.
    std::fs::write(dir.join("LOCK"), "not-a-pid").unwrap();
    let join = DurableJoin::open(&spec(), &dir, DurableOptions::default())
        .expect("garbage lock must be reclaimed");
    drop(join);
    let _ = std::fs::remove_dir_all(&dir);
}

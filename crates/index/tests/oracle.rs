//! Oracle tests: every index variant must produce exactly the brute-force
//! join output on randomised datasets.

use proptest::prelude::*;
use sssj_baseline::brute_force_all_pairs;
use sssj_index::{all_pairs, IndexKind};
use sssj_types::{SparseVectorBuilder, StreamRecord, Timestamp};

/// Builds a random dataset of `n` unit vectors over `dims` dimensions.
fn dataset(n: usize, dims: u32, max_nnz: usize) -> impl Strategy<Value = Vec<StreamRecord>> {
    proptest::collection::vec(
        proptest::collection::vec((0..dims, 0.05f64..1.0), 1..=max_nnz),
        1..=n,
    )
    .prop_map(|vecs| {
        vecs.into_iter()
            .enumerate()
            .map(|(i, entries)| {
                let mut b = SparseVectorBuilder::new();
                for (d, w) in entries {
                    b.push(d, w);
                }
                StreamRecord::new(
                    i as u64,
                    Timestamp::ZERO,
                    b.build_normalized().expect("positive weights"),
                )
            })
            .collect()
    })
}

/// Sorted pair keys with scores far from the threshold boundary (float
/// noise at |sim − θ| < ε could legitimately flip membership).
fn robust_keys(pairs: &[sssj_types::SimilarPair], theta: f64) -> Vec<(u64, u64)> {
    let mut keys: Vec<(u64, u64)> = pairs
        .iter()
        .filter(|p| (p.similarity - theta).abs() > 1e-9)
        .map(|p| p.key())
        .collect();
    keys.sort_unstable();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All four index variants find exactly the brute-force pairs.
    #[test]
    fn all_kinds_match_bruteforce(
        data in dataset(60, 24, 6),
        theta in 0.2f64..0.95,
    ) {
        let expected = robust_keys(&brute_force_all_pairs(&data, theta), theta);
        for kind in IndexKind::ALL {
            let (pairs, _) = all_pairs(&data, theta, kind);
            let got = robust_keys(&pairs, theta);
            prop_assert_eq!(&got, &expected, "{} disagrees with oracle at θ={}", kind, theta);
        }
    }

    /// Similarity scores, not only pair identities, match the oracle.
    #[test]
    fn scores_match_bruteforce(
        data in dataset(40, 16, 5),
        theta in 0.3f64..0.9,
    ) {
        let mut expected = brute_force_all_pairs(&data, theta);
        expected.sort_by_key(|a| a.key());
        for kind in IndexKind::ALL {
            let (mut pairs, _) = all_pairs(&data, theta, kind);
            pairs.sort_by_key(|a| a.key());
            // Compare scores on the common (robust) subset.
            for (e, g) in expected.iter().zip(pairs.iter()) {
                if e.key() == g.key() {
                    prop_assert!((e.similarity - g.similarity).abs() < 1e-9, "{}", kind);
                }
            }
        }
    }

    /// Work ordering: pruning indexes never traverse more posting entries
    /// than INV, and L2AP prunes at least as hard as L2 on candidates.
    #[test]
    fn pruning_never_increases_inv_traversal(
        data in dataset(50, 16, 6),
        theta in 0.5f64..0.95,
    ) {
        let (_, inv) = all_pairs(&data, theta, IndexKind::Inv);
        for kind in [IndexKind::L2, IndexKind::L2ap] {
            let (_, s) = all_pairs(&data, theta, kind);
            prop_assert!(
                s.entries_traversed <= inv.entries_traversed,
                "{} traversed {} > INV {}", kind, s.entries_traversed, inv.entries_traversed
            );
            prop_assert!(s.postings_added <= inv.postings_added);
        }
    }
}

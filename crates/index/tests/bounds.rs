//! Targeted tests of the filtering bounds' observable behaviour: how the
//! threshold shapes what gets indexed and verified.

use sssj_index::{all_pairs, BatchIndex, BoundPolicy, IndexKind};
use sssj_types::{SparseVectorBuilder, StreamRecord, Timestamp};

use rand::{RngExt, SeedableRng};

fn random_dataset(n: usize, dims: u32, nnz: usize, seed: u64) -> Vec<StreamRecord> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut b = SparseVectorBuilder::new();
            for _ in 0..nnz {
                b.push(rng.random_range(0..dims), rng.random_range(0.05..1.0));
            }
            StreamRecord::new(
                i as u64,
                Timestamp::ZERO,
                b.build_normalized().expect("positive weights"),
            )
        })
        .collect()
}

#[test]
fn higher_theta_indexes_fewer_postings() {
    let data = random_dataset(300, 40, 8, 1);
    let mut last = u64::MAX;
    for theta in [0.3, 0.5, 0.7, 0.9, 0.99] {
        let (_, stats) = all_pairs(&data, theta, IndexKind::L2);
        assert!(
            stats.postings_added <= last,
            "θ={theta}: postings {} should not exceed {} at lower θ",
            stats.postings_added,
            last
        );
        last = stats.postings_added;
    }
}

#[test]
fn higher_theta_stores_more_residual() {
    // What is not indexed lands in the residual: the two must trade off.
    let data = random_dataset(300, 40, 8, 2);
    let (_, loose) = all_pairs(&data, 0.3, IndexKind::L2);
    let (_, tight) = all_pairs(&data, 0.95, IndexKind::L2);
    assert!(tight.residual_coords > loose.residual_coords);
    assert!(tight.postings_added < loose.postings_added);
    // Nothing is lost: indexed + residual = total coords, at any θ.
    let total: u64 = data.iter().map(|r| r.vector.nnz() as u64).sum();
    assert_eq!(loose.postings_added + loose.residual_coords, total);
    assert_eq!(tight.postings_added + tight.residual_coords, total);
}

#[test]
fn inv_indexes_everything_with_no_residual() {
    let data = random_dataset(100, 20, 6, 3);
    let (_, stats) = all_pairs(&data, 0.8, IndexKind::Inv);
    let total: u64 = data.iter().map(|r| r.vector.nnz() as u64).sum();
    assert_eq!(stats.postings_added, total);
    assert_eq!(stats.residual_coords, 0);
}

#[test]
fn l2ap_verifies_no_more_candidates_than_l2() {
    // The extra AP bounds can only reject more candidates before the
    // exact dot product.
    let data = random_dataset(400, 30, 8, 4);
    for theta in [0.4, 0.6, 0.8] {
        let (_, l2) = all_pairs(&data, theta, IndexKind::L2);
        let (_, l2ap) = all_pairs(&data, theta, IndexKind::L2ap);
        assert!(
            l2ap.full_sims <= l2.full_sims,
            "θ={theta}: L2AP verified {} > L2 {}",
            l2ap.full_sims,
            l2.full_sims
        );
    }
}

#[test]
fn query_then_insert_is_incremental() {
    // Streams of queries interleaved with inserts see exactly the prefix
    // indexed so far.
    let data = random_dataset(50, 10, 4, 5);
    let mut index = BatchIndex::new(0.2, BoundPolicy::L2);
    let mut total_hits = 0;
    for (i, r) in data.iter().enumerate() {
        let hits = index.query(r);
        for h in &hits {
            assert!(h.id < r.id, "hit {} must precede query {}", h.id, r.id);
        }
        total_hits += hits.len();
        index.insert(r);
        assert_eq!(index.indexed_vectors(), i + 1);
    }
    assert!(total_hits > 0, "θ=0.2 on overlapping vectors must match");
}

#[test]
fn stats_accumulate_monotonically() {
    let data = random_dataset(100, 15, 5, 6);
    let mut index = BatchIndex::new(0.5, BoundPolicy::L2AP);
    let mut prev = index.stats();
    for r in &data {
        index.query(r);
        index.insert(r);
        let now = index.stats();
        assert!(now.entries_traversed >= prev.entries_traversed);
        assert!(now.postings_added >= prev.postings_added);
        assert!(now.full_sims >= prev.full_sims);
        prev = now;
    }
}

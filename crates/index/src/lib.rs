#![warn(missing_docs)]
//! Batch all-pairs similarity search (APSS) — the filtering framework of
//! §5 of the paper.
//!
//! Given a dataset of unit-normalised sparse vectors and a threshold `θ`,
//! find every pair with `dot(x, y) ≥ θ`. All methods follow the same
//! three-phase skeleton introduced by Chaudhuri et al. and refined by
//! Bayardo et al. (AP) and Anastasiu & Karypis (L2AP):
//!
//! * **index construction (IC)** — add (part of) each vector to an
//!   inverted index, keeping the un-indexed prefix in a residual store;
//! * **candidate generation (CG)** — scan the posting lists of the query's
//!   dimensions, accumulating partial dot products and pruning with upper
//!   bounds;
//! * **candidate verification (CV)** — finish surviving candidates with an
//!   exact residual dot product and apply the threshold.
//!
//! The four index variants of the paper — [`IndexKind::Inv`],
//! [`IndexKind::Ap`], [`IndexKind::L2ap`] and the paper's streamlined
//! [`IndexKind::L2`] — share a single engine ([`BatchIndex`]) whose bounds
//! are toggled by a [`BoundPolicy`], mirroring the red/green pseudocode
//! colour convention of Algorithms 2–4.
//!
//! ```
//! use sssj_index::{all_pairs, IndexKind};
//! use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};
//!
//! let records: Vec<StreamRecord> = vec![
//!     StreamRecord::new(0, Timestamp::ZERO, unit_vector(&[(1, 1.0), (2, 1.0)])),
//!     StreamRecord::new(1, Timestamp::ZERO, unit_vector(&[(1, 1.0), (2, 1.0)])),
//!     StreamRecord::new(2, Timestamp::ZERO, unit_vector(&[(7, 1.0)])),
//! ];
//! let (pairs, _stats) = all_pairs(&records, 0.9, IndexKind::L2);
//! assert_eq!(pairs.len(), 1); // only the identical pair (0, 1)
//! ```

pub mod batch;
pub mod driver;
pub mod entry;
pub mod policy;

pub use batch::{BatchIndex, BatchScratch, Match};
pub use driver::{all_pairs, max_vector_of};
pub use entry::PostingEntry;
pub use policy::{BoundPolicy, IndexKind};

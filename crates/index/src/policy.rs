//! Bound policies: which pruning bounds each index variant enables.

use std::fmt;

/// Which families of pruning bounds are active.
///
/// The paper presents AP, L2AP and L2 as one pseudocode listing with
/// colour-coded lines (red = AP bounds, green = ℓ2 bounds); this struct is
/// that colour convention as data.
///
/// * AP bounds (`b1`, `sz1`, `rs1`, `ds1`, `sz2`) consult dataset-level
///   statistics — the max vector `m` / `m̂` — which in a stream evolve and
///   force re-indexing.
/// * ℓ2 bounds (`b2`, `rs2`, `l2bound`, `ps1`) depend only on the two
///   vectors at hand, which is what makes the L2 index streaming-friendly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundPolicy {
    /// Enable the AP-family (red) bounds.
    pub ap: bool,
    /// Enable the ℓ2-family (green) bounds.
    pub l2: bool,
}

impl BoundPolicy {
    /// No pruning at all: the plain inverted index.
    pub const INV: BoundPolicy = BoundPolicy {
        ap: false,
        l2: false,
    };
    /// Bayardo et al.'s All-Pairs bounds only.
    pub const AP: BoundPolicy = BoundPolicy {
        ap: true,
        l2: false,
    };
    /// Anastasiu & Karypis' L2AP: both families.
    pub const L2AP: BoundPolicy = BoundPolicy { ap: true, l2: true };
    /// The paper's L2 index: ℓ2 bounds only.
    pub const L2: BoundPolicy = BoundPolicy {
        ap: false,
        l2: true,
    };

    /// Whether any bound is enabled (false = index everything).
    #[inline]
    pub fn prunes(self) -> bool {
        self.ap || self.l2
    }

    /// Combines the two index-construction bounds into the effective
    /// bound: `min` over the enabled ones, `+∞` when none is enabled (so
    /// that INV indexes every coordinate from the start).
    #[inline]
    pub fn combine(self, ap_value: f64, l2_value: f64) -> f64 {
        match (self.ap, self.l2) {
            (true, true) => ap_value.min(l2_value),
            (true, false) => ap_value,
            (false, true) => l2_value,
            (false, false) => f64::INFINITY,
        }
    }
}

/// The four index variants evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Plain inverted index, no index/candidate pruning.
    Inv,
    /// All-Pairs (Bayardo et al., WWW'07). Noted by the paper as not
    /// competitive; included for completeness and ablations.
    Ap,
    /// L2AP (Anastasiu & Karypis, ICDE'14): AP + ℓ2 bounds.
    L2ap,
    /// The paper's contribution: ℓ2 bounds only, optimised for streams.
    L2,
}

impl IndexKind {
    /// All variants, in the order the paper tabulates them.
    pub const ALL: [IndexKind; 4] = [
        IndexKind::Inv,
        IndexKind::Ap,
        IndexKind::L2ap,
        IndexKind::L2,
    ];

    /// The three variants the paper benchmarks (AP is excluded in §7).
    pub const BENCHMARKED: [IndexKind; 3] = [IndexKind::Inv, IndexKind::L2ap, IndexKind::L2];

    /// The bound policy of this variant.
    pub fn policy(self) -> BoundPolicy {
        match self {
            IndexKind::Inv => BoundPolicy::INV,
            IndexKind::Ap => BoundPolicy::AP,
            IndexKind::L2ap => BoundPolicy::L2AP,
            IndexKind::L2 => BoundPolicy::L2,
        }
    }

    /// Parses the names used by the CLI and the harness.
    pub fn parse(s: &str) -> Option<IndexKind> {
        match s.to_ascii_lowercase().as_str() {
            "inv" => Some(IndexKind::Inv),
            "ap" => Some(IndexKind::Ap),
            "l2ap" => Some(IndexKind::L2ap),
            "l2" => Some(IndexKind::L2),
            _ => None,
        }
    }
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IndexKind::Inv => "INV",
            IndexKind::Ap => "AP",
            IndexKind::L2ap => "L2AP",
            IndexKind::L2 => "L2",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_respects_enabled_bounds() {
        assert_eq!(BoundPolicy::L2AP.combine(0.3, 0.5), 0.3);
        assert_eq!(BoundPolicy::AP.combine(0.3, 0.1), 0.3);
        assert_eq!(BoundPolicy::L2.combine(0.3, 0.1), 0.1);
        assert_eq!(BoundPolicy::INV.combine(0.3, 0.1), f64::INFINITY);
    }

    #[test]
    fn kinds_map_to_policies() {
        assert_eq!(IndexKind::Inv.policy(), BoundPolicy::INV);
        assert_eq!(IndexKind::Ap.policy(), BoundPolicy::AP);
        assert_eq!(IndexKind::L2ap.policy(), BoundPolicy::L2AP);
        assert_eq!(IndexKind::L2.policy(), BoundPolicy::L2);
    }

    #[test]
    fn parse_roundtrips_display() {
        for k in IndexKind::ALL {
            assert_eq!(IndexKind::parse(&k.to_string()), Some(k));
        }
        assert_eq!(IndexKind::parse("nope"), None);
    }
}

//! The batch all-pairs driver (IndConstr of §4).

use sssj_collections::MaxVector;
use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord};

use crate::{BatchIndex, IndexKind};

/// Computes the per-dimension maximum `m` over a dataset — the first pass
/// the AP-family bounds require.
pub fn max_vector_of(records: &[StreamRecord]) -> MaxVector {
    let mut m = MaxVector::new();
    for r in records {
        for (d, w) in r.vector.iter() {
            m.update(d, w);
        }
    }
    m
}

/// Finds all pairs with plain cosine similarity ≥ θ in `records` — the
/// static APSS problem, solved by incremental query-then-insert over the
/// chosen index.
pub fn all_pairs(
    records: &[StreamRecord],
    theta: f64,
    kind: IndexKind,
) -> (Vec<SimilarPair>, JoinStats) {
    let policy = kind.policy();
    let m = if policy.ap {
        max_vector_of(records)
    } else {
        MaxVector::new()
    };
    let mut index = BatchIndex::with_max_vector(theta, policy, m);
    let mut pairs = Vec::new();
    let mut hits = Vec::new();
    for r in records {
        hits.clear();
        index.query_into(r, &mut hits);
        for h in &hits {
            pairs.push(SimilarPair::new(h.id, r.id, h.sim));
        }
        index.insert(r);
    }
    (pairs, index.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn rec(id: u64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::ZERO, unit_vector(entries))
    }

    #[test]
    fn max_vector_is_pointwise_max() {
        let data = vec![rec(0, &[(1, 3.0), (2, 4.0)]), rec(1, &[(2, 1.0), (3, 1.0)])];
        let m = max_vector_of(&data);
        assert!((m.get(1) - 0.6).abs() < 1e-12);
        assert!((m.get(2) - 0.8).abs() < 1e-12);
        let inv_sqrt2 = 1.0 / 2.0f64.sqrt();
        assert!((m.get(3) - inv_sqrt2).abs() < 1e-12);
        assert_eq!(m.get(99), 0.0);
    }

    #[test]
    fn all_pairs_reports_each_pair_once() {
        let data = vec![
            rec(0, &[(1, 1.0)]),
            rec(1, &[(1, 1.0)]),
            rec(2, &[(1, 1.0)]),
        ];
        let (pairs, stats) = all_pairs(&data, 0.9, IndexKind::L2);
        let mut keys: Vec<_> = pairs.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(stats.pairs_output, 3);
    }

    #[test]
    fn kinds_agree_on_output() {
        let data = vec![
            rec(0, &[(1, 1.0), (2, 1.0), (3, 1.0)]),
            rec(1, &[(2, 1.0), (3, 1.0), (4, 1.0)]),
            rec(2, &[(5, 1.0)]),
            rec(3, &[(3, 1.0), (4, 1.0), (5, 1.0)]),
        ];
        let (reference, _) = all_pairs(&data, 0.5, IndexKind::Inv);
        let mut ref_keys: Vec<_> = reference.iter().map(|p| p.key()).collect();
        ref_keys.sort_unstable();
        for kind in [IndexKind::Ap, IndexKind::L2ap, IndexKind::L2] {
            let (pairs, _) = all_pairs(&data, 0.5, kind);
            let mut keys: Vec<_> = pairs.iter().map(|p| p.key()).collect();
            keys.sort_unstable();
            assert_eq!(keys, ref_keys, "{kind}");
        }
    }
}

//! Posting-list entries.

use sssj_types::{VectorId, Weight};

/// One entry of a posting list: the triple `(ι(x), x_j, ‖x′_j‖)` of the
/// L2AP index (Algorithm 2, line 16).
///
/// `prefix_norm` is the Euclidean norm of the coordinates that precede
/// `j` in the global dimension order — the Cauchy–Schwarz half of the
/// `l2bound` candidate-pruning rule. INV and AP simply ignore it.
///
/// The engines now store entries in flat
/// [`sssj_collections::PostingBlock`]s whose packed entries hold the
/// same triple plus the arrival time. This type remains as the
/// documented per-entry schema and for external consumers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PostingEntry {
    /// Reference to the indexed vector.
    pub id: VectorId,
    /// The coordinate value `x_j`.
    pub weight: Weight,
    /// `‖x′_j‖` — norm of the prefix strictly before this coordinate.
    pub prefix_norm: Weight,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let e = PostingEntry::default();
        assert_eq!(e.id, 0);
        assert_eq!(e.weight, 0.0);
        assert_eq!(e.prefix_norm, 0.0);
    }
}

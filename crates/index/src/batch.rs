//! The batch APSS engine: one implementation of Algorithms 2–4,
//! parameterised by [`BoundPolicy`].

use std::collections::HashMap;

use sssj_collections::{FxBuildHasher, MaxVector, PostingBlock, ScoreAccumulator};
use sssj_metrics::JoinStats;
use sssj_types::{
    dot, dot_with_dense, SparseVector, StreamRecord, Timestamp, VectorId, VectorSummary,
};

use crate::BoundPolicy;

/// A candidate that survived verification: the indexed vector `id` with
/// plain cosine similarity `sim` to the query and arrival-time gap `dt`.
///
/// The engine works on *plain* similarity — callers that need the
/// time-dependent similarity multiply by `e^{-λ·dt}` (the `ApplyDecay` of
/// Algorithm 1), which can only shrink the set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Match {
    /// Id of the matched (earlier) vector.
    pub id: VectorId,
    /// Plain cosine similarity `dot(x, y)`.
    pub sim: f64,
    /// Arrival-time gap `|t(x) − t(y)|`.
    pub dt: f64,
}

/// Per-indexed-vector bookkeeping.
#[derive(Clone, Debug)]
struct Meta {
    /// The un-indexed prefix `y′` (residual direct index `R`).
    residual: SparseVector,
    /// Summary statistics of the residual (for `ds1`/`sz2`).
    residual_summary: VectorSummary,
    /// Summary statistics of the full vector (for `sz1`).
    summary: VectorSummary,
    /// The `pscore` recorded when indexing started (`Q[ι(y)]`).
    q: f64,
    /// Arrival time.
    t: Timestamp,
}

/// Recyclable allocations of a torn-down [`BatchIndex`]: posting blocks,
/// the metadata map and the score accumulator.
///
/// The MiniBatch framework builds a fresh index every window; threading
/// the previous window's scratch through
/// [`BatchIndex::with_scratch`] / [`BatchIndex::into_scratch`] makes the
/// per-window rebuild reuse all of its large allocations.
#[derive(Default)]
pub struct BatchScratch {
    lists: Vec<PostingBlock>,
    meta: HashMap<VectorId, Meta, FxBuildHasher>,
    acc: ScoreAccumulator,
}

/// The shared batch index engine behind INV, AP, L2AP and L2.
///
/// Construction order follows the incremental discipline of the paper:
/// callers [`BatchIndex::query`] each vector against the current index
/// *before* [`BatchIndex::insert`]-ing it, so every pair is generated
/// exactly once. [`crate::all_pairs`] wraps this loop.
///
/// When the AP-family bounds are enabled, the dataset-wide max vector `m`
/// must be supplied up front via [`BatchIndex::with_max_vector`] (the
/// MiniBatch framework combines the maxima of two adjacent windows for
/// exactly this purpose, §6.1).
pub struct BatchIndex {
    theta: f64,
    policy: BoundPolicy,
    /// `m` — per-dimension max over the whole dataset (AP bounds).
    m: MaxVector,
    /// `m̂` — per-dimension max over the vectors indexed so far.
    mhat: MaxVector,
    /// Flat packed posting lists (the batch engine stores arrival
    /// seconds in each entry; `Match::dt` still comes from `Meta`).
    lists: Vec<PostingBlock>,
    meta: HashMap<VectorId, Meta, FxBuildHasher>,
    acc: ScoreAccumulator,
    live_postings: u64,
    stats: JoinStats,
}

impl BatchIndex {
    /// Creates an empty index with an empty dataset max vector.
    ///
    /// Sufficient for the INV and L2 policies, whose bounds do not consult
    /// `m`; the AP-family policies should use
    /// [`BatchIndex::with_max_vector`].
    pub fn new(theta: f64, policy: BoundPolicy) -> Self {
        Self::with_max_vector(theta, policy, MaxVector::new())
    }

    /// Creates an empty index with the dataset-wide max vector `m`
    /// (required for correctness of the AP `b1` bound).
    pub fn with_max_vector(theta: f64, policy: BoundPolicy, m: MaxVector) -> Self {
        Self::with_scratch(theta, policy, m, BatchScratch::default())
    }

    /// Like [`BatchIndex::with_max_vector`], reusing the allocations of a
    /// previous index (see [`BatchScratch`]).
    pub fn with_scratch(
        theta: f64,
        policy: BoundPolicy,
        m: MaxVector,
        mut scratch: BatchScratch,
    ) -> Self {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "theta must be in (0, 1]: {theta}"
        );
        for list in &mut scratch.lists {
            list.clear();
        }
        scratch.meta.clear();
        scratch.acc.clear();
        BatchIndex {
            theta,
            policy,
            m,
            mhat: MaxVector::new(),
            lists: scratch.lists,
            meta: scratch.meta,
            acc: scratch.acc,
            live_postings: 0,
            stats: JoinStats::new(),
        }
    }

    /// Tears the index down, handing its allocations back for reuse.
    pub fn into_scratch(self) -> BatchScratch {
        BatchScratch {
            lists: self.lists,
            meta: self.meta,
            acc: self.acc,
        }
    }

    /// The similarity threshold.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The bound policy.
    pub fn policy(&self) -> BoundPolicy {
        self.policy
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> JoinStats {
        self.stats
    }

    /// Number of posting entries currently stored.
    pub fn live_postings(&self) -> u64 {
        self.live_postings
    }

    /// Number of vectors with at least one indexed coordinate.
    pub fn indexed_vectors(&self) -> usize {
        self.meta.len()
    }

    /// CG + CV: finds every indexed vector whose plain cosine similarity
    /// with `record.vector` is ≥ θ.
    pub fn query(&mut self, record: &StreamRecord) -> Vec<Match> {
        let mut out = Vec::new();
        self.query_into(record, &mut out);
        out
    }

    /// Like [`BatchIndex::query`], appending into `out` (allocation
    /// reuse).
    pub fn query_into(&mut self, record: &StreamRecord, out: &mut Vec<Match>) {
        self.candidate_generation(&record.vector);
        self.candidate_verification(record, out);
    }

    /// Candidate generation (Algorithm 3): fills the accumulator with
    /// partial dot products of the query against indexed vectors.
    fn candidate_generation(&mut self, x: &SparseVector) {
        self.acc.clear();
        let theta = self.theta;
        let policy = self.policy;
        let summary = VectorSummary::of(x);

        // sz1: a similar vector must satisfy |y|·vm_y ≥ θ/vm_x.
        let sz1 = if policy.ap && summary.max_weight > 0.0 {
            theta / summary.max_weight
        } else {
            0.0
        };
        // rs1: residual of dot(x, m̂) not yet scanned (AP).
        let mut rs1 = if policy.ap {
            dot_with_dense(x, self.mhat.as_slice())
        } else {
            f64::INFINITY
        };
        // rs2: ‖x′_j‖ for the part of x not yet scanned (ℓ2).
        let mut rst: f64 = 1.0;
        let mut rs2 = if policy.l2 { 1.0 } else { f64::INFINITY };

        let lists = &self.lists;
        let meta = &self.meta;
        let acc = &mut self.acc;
        let stats = &mut self.stats;

        // Reverse scan over the query's dimensions (suffix first).
        for (dim, xj) in x.iter().rev() {
            if let Some(list) = lists.get(dim as usize) {
                let remscore = rs1.min(rs2);
                let admit_new = remscore >= theta;
                // ‖x′_j‖ recovered from the running suffix mass (x is
                // unit-normalised): rst = Σ_{i ≤ pos} w_i² here.
                let xnorm_before = if policy.l2 {
                    (rst - xj * xj).max(0.0).sqrt()
                } else {
                    0.0
                };
                // Flat walk over the list's packed triples.
                let postings = list.postings();
                stats.entries_traversed += postings.len() as u64;
                for p in postings {
                    if policy.ap {
                        // Size filter: |y|·vm_y ≥ sz1.
                        let s = &meta[&p.id].summary;
                        if (s.nnz as f64) * s.max_weight < sz1 {
                            continue;
                        }
                    }
                    let current = acc.get(p.id);
                    if current > 0.0 || admit_new {
                        if current == 0.0 {
                            stats.candidates += 1;
                        }
                        let new = acc.add(p.id, xj * p.weight);
                        if policy.l2 {
                            // Early ℓ2 pruning: finish the rest of both
                            // vectors by Cauchy–Schwarz.
                            let l2bound = new + xnorm_before * p.prefix_norm;
                            if l2bound < theta {
                                acc.zero(p.id);
                            }
                        }
                    }
                }
            }
            if policy.ap {
                rs1 -= xj * self.mhat.get(dim);
            }
            if policy.l2 {
                rst -= xj * xj;
                rs2 = rst.max(0.0).sqrt();
            }
        }
    }

    /// Candidate verification (Algorithm 4): applies the `ps1`/`ds1`/`sz2`
    /// bounds, then the exact residual dot product and the threshold.
    fn candidate_verification(&mut self, record: &StreamRecord, out: &mut Vec<Match>) {
        let theta = self.theta;
        let policy = self.policy;
        let x = &record.vector;
        let sx = VectorSummary::of(x);
        let meta = &self.meta;
        let stats = &mut self.stats;

        for (id, c) in self.acc.iter() {
            if c <= 0.0 {
                continue;
            }
            let m = &meta[&id];
            if policy.prunes() {
                // ps1: the residual prefix contributes at most Q[y].
                if c + m.q < theta {
                    continue;
                }
            }
            if policy.ap {
                let r = &m.residual_summary;
                let ds1 = c + (sx.max_weight * r.sum).min(r.max_weight * sx.sum);
                let sz2 = c + (sx.nnz.min(r.nnz) as f64) * sx.max_weight * r.max_weight;
                if ds1 < theta || sz2 < theta {
                    continue;
                }
            }
            stats.full_sims += 1;
            let sim = c + dot(x, &m.residual);
            if sim >= theta {
                stats.pairs_output += 1;
                out.push(Match {
                    id,
                    sim,
                    dt: record.t.delta(m.t),
                });
            }
        }
    }

    /// Index construction (Algorithm 2): adds `record` to the index,
    /// splitting it into an un-indexed residual prefix and an indexed
    /// suffix according to the active bounds.
    pub fn insert(&mut self, record: &StreamRecord) {
        let x = &record.vector;
        if x.is_empty() {
            return;
        }
        let policy = self.policy;
        let theta = self.theta;
        let theta_sq = theta * theta;
        let summary = VectorSummary::of(x);
        let t_secs = record.t.seconds();
        if self.meta.is_empty() {
            // First indexed vector: slide the accumulator's dense window
            // to this id range (candidate ids are always indexed ids).
            self.acc.advance_floor(record.id);
        }

        let mut b1: f64 = 0.0;
        let mut bt: f64 = 0.0;
        let mut boundary: Option<usize> = None;
        let mut q = 0.0;
        // ‖x′_j‖² recurrence for the stored prefix norms; tracks the true
        // prefix mass exactly (meaningful to readers only under ℓ2
        // policies, which are the ones that consult `prefix_norm`).
        let mut mass: f64 = 0.0;
        for (pos, (dim, xj)) in x.iter().enumerate() {
            if boundary.is_none() {
                let (b1_prev, bt_prev) = (b1, bt);
                if policy.ap {
                    // Algorithm 2 writes b1 += x_j·min(m_j, vm_x), but that
                    // refinement is only sound when vectors are processed in
                    // decreasing max-weight order (Bayardo et al. sort the
                    // dataset; a stream cannot). We use the order-free bound
                    // x_j·m_j, which is safe for any processing order.
                    b1 += xj * self.m.get(dim);
                }
                if policy.l2 {
                    bt += xj * xj;
                }
                // The ℓ2 half compares in squared space — no per-
                // coordinate square root; `Q` pays its one sqrt at the
                // crossing.
                let crossed = match (policy.ap, policy.l2) {
                    (false, false) => true,
                    (true, false) => b1 >= theta,
                    (false, true) => bt >= theta_sq,
                    (true, true) => b1 >= theta && bt >= theta_sq,
                };
                if crossed {
                    boundary = Some(pos);
                    q = if policy.prunes() {
                        policy.combine(b1_prev, bt_prev.sqrt())
                    } else {
                        0.0
                    };
                    mass = bt_prev;
                }
            }
            if boundary.is_some() {
                let d = dim as usize;
                if d >= self.lists.len() {
                    self.lists.resize_with(d + 1, PostingBlock::new);
                }
                self.lists[d].push(record.id, xj, mass.sqrt(), t_secs);
                mass += xj * xj;
                self.live_postings += 1;
                self.stats.postings_added += 1;
            }
        }

        let Some(boundary) = boundary else {
            // The whole vector stayed below θ against m: it cannot be
            // similar to anything in this dataset, so it is not indexed
            // at all (pure-AP corner case).
            return;
        };
        if policy.ap {
            // m̂ must cover the *full* vector (residual coordinates
            // included): rs1 bounds dot(x′, y) for whole indexed vectors.
            for (dim, xj) in x.iter() {
                self.mhat.update(dim, xj);
            }
        }
        let residual = x.prefix(boundary);
        self.stats.residual_coords += residual.nnz() as u64;
        self.meta.insert(
            record.id,
            Meta {
                residual_summary: VectorSummary::of(&residual),
                residual,
                summary,
                q,
                t: record.t,
            },
        );
        self.stats.observe_postings(self.live_postings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::vector::unit_vector;

    fn rec(id: u64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::ZERO, unit_vector(entries))
    }

    fn run(policy: BoundPolicy, data: &[StreamRecord], theta: f64) -> Vec<(u64, u64)> {
        let mut m = MaxVector::new();
        for r in data {
            for (d, w) in r.vector.iter() {
                m.update(d, w);
            }
        }
        let mut idx = BatchIndex::with_max_vector(theta, policy, m);
        let mut pairs = Vec::new();
        for r in data {
            for hit in idx.query(r) {
                pairs.push((hit.id.min(r.id), hit.id.max(r.id)));
            }
            idx.insert(r);
        }
        pairs.sort_unstable();
        pairs
    }

    fn policies() -> [BoundPolicy; 4] {
        [
            BoundPolicy::INV,
            BoundPolicy::AP,
            BoundPolicy::L2AP,
            BoundPolicy::L2,
        ]
    }

    #[test]
    fn identical_vectors_found_by_all_policies() {
        let data = vec![
            rec(0, &[(1, 1.0), (2, 2.0)]),
            rec(1, &[(1, 1.0), (2, 2.0)]),
            rec(2, &[(9, 1.0)]),
        ];
        for p in policies() {
            assert_eq!(run(p, &data, 0.99), vec![(0, 1)], "policy {p:?}");
        }
    }

    #[test]
    fn orthogonal_vectors_never_pair() {
        let data = vec![
            rec(0, &[(1, 1.0)]),
            rec(1, &[(2, 1.0)]),
            rec(2, &[(3, 1.0)]),
        ];
        for p in policies() {
            assert!(run(p, &data, 0.1).is_empty(), "policy {p:?}");
        }
    }

    #[test]
    fn partial_overlap_respects_threshold() {
        // dot = 0.5 for two unit vectors sharing one of two equal coords.
        let data = vec![rec(0, &[(1, 1.0), (2, 1.0)]), rec(1, &[(1, 1.0), (3, 1.0)])];
        for p in policies() {
            assert_eq!(run(p, &data, 0.4), vec![(0, 1)], "policy {p:?}");
            assert!(run(p, &data, 0.6).is_empty(), "policy {p:?}");
        }
    }

    #[test]
    fn all_policies_agree_on_small_random_dataset() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<StreamRecord> = (0..80)
            .map(|i| {
                let nnz = rng.random_range(1..6);
                let entries: Vec<(u32, f64)> = (0..nnz)
                    .map(|_| (rng.random_range(0..12u32), rng.random_range(0.1..1.0)))
                    .collect();
                rec(i, &entries)
            })
            .collect();
        for theta in [0.3, 0.6, 0.9] {
            let reference = run(BoundPolicy::INV, &data, theta);
            for p in [BoundPolicy::AP, BoundPolicy::L2AP, BoundPolicy::L2] {
                assert_eq!(run(p, &data, theta), reference, "θ={theta} {p:?}");
            }
        }
    }

    #[test]
    fn pruning_reduces_traversal() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<StreamRecord> = (0..200)
            .map(|i| {
                let entries: Vec<(u32, f64)> = (0..8)
                    .map(|_| (rng.random_range(0..40u32), rng.random_range(0.1..1.0)))
                    .collect();
                rec(i, &entries)
            })
            .collect();
        let theta = 0.8;
        let mut stats = Vec::new();
        for p in [BoundPolicy::INV, BoundPolicy::L2] {
            let mut idx = BatchIndex::new(theta, p);
            for r in &data {
                idx.query(r);
                idx.insert(r);
            }
            stats.push(idx.stats());
        }
        assert!(
            stats[1].postings_added < stats[0].postings_added,
            "L2 should index fewer entries than INV"
        );
        assert!(
            stats[1].entries_traversed < stats[0].entries_traversed,
            "L2 should traverse fewer entries than INV"
        );
    }

    #[test]
    fn empty_vector_is_ignored() {
        let mut idx = BatchIndex::new(0.5, BoundPolicy::L2);
        let r = StreamRecord::new(0, Timestamp::ZERO, SparseVector::empty());
        idx.insert(&r);
        assert_eq!(idx.indexed_vectors(), 0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zero_theta_rejected() {
        BatchIndex::new(0.0, BoundPolicy::L2);
    }
}

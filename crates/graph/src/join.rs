//! The stream-side wiring: [`GraphHandle`] (the shared, queryable
//! graph), [`GraphJoin`] (the [`StreamJoin`] tap feeding it), and
//! [`GraphedEngine`] (the [`Checkpointable`] variant whose edges ride
//! the durable checkpoint).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use sssj_core::{Checkpointable, PairSink, SinkedJoin, StreamJoin};
use sssj_metrics::registry::{Counter, Gauge, Recorder, Registry};
use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord};

use crate::graph::{Edge, ExpiredEdge, GraphStats, SimilarityGraph};
use crate::snapshot::GraphSnapshot;

/// Graph-tier registry handles, resolved once per process.
struct GraphMetrics {
    publishes: &'static Counter,
    touched_nodes: &'static Recorder,
    staleness_ms: &'static Gauge,
    oracle: &'static Gauge,
}

fn graph_metrics() -> &'static GraphMetrics {
    static M: OnceLock<GraphMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let reg = Registry::global();
        GraphMetrics {
            publishes: reg.counter(
                "sssj_graph_snapshot_publishes_total",
                "graph snapshot publications (generation bumps)",
            ),
            touched_nodes: reg.recorder(
                "sssj_graph_touched_nodes",
                "nodes the incremental capture copied per publish (delta size)",
            ),
            staleness_ms: reg.gauge(
                "sssj_graph_staleness_lag_ms",
                "stream-time gap between the write side and the published watermark, in milliseconds (0 when clean)",
            ),
            oracle: reg.gauge(
                "sssj_graph_oracle_lane",
                "1 when SSSJ_GRAPH_ORACLE forces Mutex-path reads, else 0",
            ),
        }
    })
}

/// Publish cadence: a snapshot is republished once the unpublished
/// backlog reaches 1/`PUBLISH_FANOUT` of the live edge count (min
/// [`PUBLISH_MIN_BACKLOG`]). Publication is incremental (touched
/// blocks re-captured, the rest `Arc`-shared with the previous
/// snapshot — see [`GraphSnapshot::capture_from`]), so the cadence
/// bounds how far a wait-free reader's watermark may trail the ingest
/// frontier (`max(live/8, 64)` deliveries) rather than amortizing a
/// full-copy cost.
const PUBLISH_FANOUT: u64 = 8;
/// Floor of the publish backlog threshold (tiny graphs republish per
/// ~64 edges instead of per edge).
const PUBLISH_MIN_BACKLOG: u64 = 64;

/// One edge addition captured for server-push fan-out, drained via
/// [`GraphHandle::take_deltas`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphDelta {
    /// Smaller-side endpoint as delivered (pair orientation preserved).
    pub left: u64,
    /// Other endpoint.
    pub right: u64,
    /// The pair's similarity score.
    pub similarity: f64,
    /// Delivery stamp.
    pub t: f64,
}

/// The write side: the live graph plus publish bookkeeping, all under
/// one mutex that only ingest (and explicit publishes) take.
struct WriteSide {
    graph: SimilarityGraph,
    /// Deliveries (including clock advances) since the last publish.
    pending: u64,
    /// When `Some`, inserted edges are captured for push fan-out.
    deltas: Option<Vec<GraphDelta>>,
}

/// State shared by every clone of a handle.
struct Shared {
    write: Mutex<WriteSide>,
    /// The current snapshot. Readers take this lock only when the
    /// generation moved; publishers replace the `Arc` under it.
    published: Mutex<Arc<GraphSnapshot>>,
    /// Generation of `published`; only mutated under the `write` lock,
    /// read lock-free by every query.
    generation: AtomicU64,
    /// Whether the write side has unpublished changes.
    dirty: AtomicBool,
    /// Forces every read through the write lock (the differential
    /// oracle — the pre-snapshot Mutex behaviour).
    oracle: bool,
}

/// Per-clone snapshot cache: the last `(generation, snapshot)` this
/// clone resolved, making the steady-state read path one atomic load.
struct Cache {
    generation: u64,
    snap: Arc<GraphSnapshot>,
}

/// A cloneable handle to a live [`SimilarityGraph`] with
/// snapshot-swapped (RCU-style) reads.
///
/// The ingest side pushes edges through the [`PairSink`] impl into a
/// write-side graph behind a mutex and publishes immutable
/// [`GraphSnapshot`]s at a bounded cadence; query-side holders (net
/// sessions, the CLI, benches) read from snapshots and **never contend
/// with ingest at steady state**. Queries take the graph's `now` from
/// the caller — pass the stream watermark, so expiry is judged against
/// the data's clock, not the wall clock.
///
/// # Read paths and staleness
///
/// * [`GraphHandle::neighbors`] / [`topk`](GraphHandle::topk) /
///   [`component`](GraphHandle::component) /
///   [`stats`](GraphHandle::stats) are **read-your-own-writes fresh**:
///   if the write side has unpublished changes (or the query's `now`
///   is past the snapshot watermark) they publish first, then answer
///   from the new snapshot. Single-threaded callers see exactly the
///   old Mutex semantics; the publish is amortized by the cadence.
/// * [`GraphHandle::snapshot`] is the scaling read path: wait-free at
///   steady state (one atomic generation load + a per-clone cached
///   `Arc`), never touches the write lock, and returns a consistent
///   state whose [`GraphSnapshot::watermark`] trails the newest
///   delivery by at most `max(live/8, 64)` edges (the publish cadence)
///   — the explicit staleness bound. Event-loop serving and the
///   concurrent benches use this.
///
/// Each clone carries its own snapshot cache (`RefCell`), so a handle
/// is `Send` but not `Sync`: give every thread its own clone.
///
/// # The oracle flag
///
/// `SSSJ_GRAPH_ORACLE=1` (or [`GraphHandle::new_oracle`]) forces every
/// fresh read through the write lock against the live graph — the
/// pre-snapshot Mutex path, kept as the differential oracle (CI runs a
/// forced-oracle lane).
pub struct GraphHandle {
    shared: Arc<Shared>,
    cache: RefCell<Cache>,
}

impl Clone for GraphHandle {
    fn clone(&self) -> Self {
        let cache = self.cache.borrow();
        GraphHandle {
            shared: Arc::clone(&self.shared),
            cache: RefCell::new(Cache {
                generation: cache.generation,
                snap: Arc::clone(&cache.snap),
            }),
        }
    }
}

/// Whether `SSSJ_GRAPH_ORACLE` forces Mutex-path reads (read once).
fn oracle_from_env() -> bool {
    static ORACLE: OnceLock<bool> = OnceLock::new();
    *ORACLE.get_or_init(|| {
        let on = matches!(
            std::env::var("SSSJ_GRAPH_ORACLE").as_deref(),
            Ok("1" | "true" | "yes" | "on")
        );
        graph_metrics().oracle.set(on as i64);
        on
    })
}

impl GraphHandle {
    /// A handle to a fresh graph with the given edge horizon. Consumes
    /// the thread's [`crate::collect_expired_edges_on_next_build`]
    /// arming, so a historical tier attached *around* the spec factory
    /// can turn capture on before the first edge (checkpoint-restored
    /// edges included) enters the graph. Constructors outside the spec
    /// factory should prefer [`GraphHandle::with_options`], which takes
    /// the capture decision explicitly instead of through the
    /// thread-local side channel.
    pub fn new(horizon: f64) -> Self {
        Self::with_options(horizon, crate::take_collect_expired_arming())
    }

    /// A handle to a fresh graph with expired-edge capture set
    /// explicitly — no thread-local arming consumed, so constructing
    /// one (e.g. the net event loop building a serving session) can
    /// never steal an arming intended for a later spec build.
    pub fn with_options(horizon: f64, collect_expired: bool) -> Self {
        Self::build(horizon, collect_expired, oracle_from_env())
    }

    /// A handle whose reads are forced through the write lock (the
    /// Mutex oracle), regardless of `SSSJ_GRAPH_ORACLE` — what the
    /// differential suites compare the snapshot path against.
    pub fn new_oracle(horizon: f64) -> Self {
        Self::build(horizon, false, true)
    }

    fn build(horizon: f64, collect_expired: bool, oracle: bool) -> Self {
        let mut graph = SimilarityGraph::new(horizon);
        if collect_expired {
            graph.set_collect_expired(true);
        }
        let snap = Arc::new(GraphSnapshot::empty(horizon));
        GraphHandle {
            shared: Arc::new(Shared {
                write: Mutex::new(WriteSide {
                    graph,
                    pending: 0,
                    deltas: None,
                }),
                published: Mutex::new(Arc::clone(&snap)),
                generation: AtomicU64::new(0),
                dirty: AtomicBool::new(false),
                oracle,
            }),
            cache: RefCell::new(Cache {
                generation: 0,
                snap,
            }),
        }
    }

    fn write(&self) -> MutexGuard<'_, WriteSide> {
        self.shared.write.lock().expect("graph write lock poisoned")
    }

    /// Publishes the write side as a new snapshot. Caller holds the
    /// write lock, which is what serializes generation bumps. The
    /// capture is incremental: blocks of nodes untouched since the
    /// previous publish are `Arc`-shared with it, so publish cost
    /// scales with what changed, not with the live edge set.
    fn publish_locked(&self, w: &mut WriteSide) -> Arc<GraphSnapshot> {
        let generation = self.shared.generation.load(Ordering::Relaxed) + 1;
        let mut span =
            sssj_metrics::trace::span_with(sssj_metrics::trace::Stage::GraphPublish, generation, 0);
        let mut published = self.shared.published.lock().expect("publish lock poisoned");
        let (captured, touched) = GraphSnapshot::capture_from(&mut w.graph, &published, generation);
        let snap = Arc::new(captured);
        *published = Arc::clone(&snap);
        drop(published);
        self.shared.generation.store(generation, Ordering::Release);
        self.shared.dirty.store(false, Ordering::Release);
        let m = graph_metrics();
        m.publishes.inc();
        m.touched_nodes.record(touched as f64);
        m.staleness_ms.set(0);
        span.set_args(generation, touched as u64);
        w.pending = 0;
        *self.cache.borrow_mut() = Cache {
            generation,
            snap: Arc::clone(&snap),
        };
        snap
    }

    /// Publish or defer after `w.pending` grew: republish once the
    /// backlog reaches the cadence threshold, else just mark dirty.
    fn maybe_publish(&self, w: &mut WriteSide) {
        if w.pending == 0 {
            return;
        }
        let threshold = (w.graph.live_edges() / PUBLISH_FANOUT).max(PUBLISH_MIN_BACKLOG);
        if w.pending >= threshold {
            self.publish_locked(w);
        } else {
            self.shared.dirty.store(true, Ordering::Release);
            // How far the readable snapshot trails the write side, in
            // stream time — the staleness bound a reader observes until
            // the next publish closes the gap.
            let lag = w.graph.now() - self.cache.borrow().snap.watermark();
            if lag.is_finite() && lag > 0.0 {
                graph_metrics().staleness_ms.set((lag * 1e3) as i64);
            }
        }
    }

    /// The current snapshot — the wait-free read path. At steady state
    /// (generation unchanged since this clone last looked) this is one
    /// atomic load plus a cached `Arc` clone; after a publish it
    /// refreshes from the publish cell (a reader-side lock no ingest
    /// path holds for longer than an `Arc` swap). Never blocks on, or
    /// blocks, the ingest lock. Staleness is bounded by the publish
    /// cadence; call [`GraphHandle::publish_now`] to close the gap.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        let generation = self.shared.generation.load(Ordering::Acquire);
        {
            let cache = self.cache.borrow();
            if cache.generation == generation {
                return Arc::clone(&cache.snap);
            }
        }
        let snap = Arc::clone(&self.shared.published.lock().expect("publish lock poisoned"));
        *self.cache.borrow_mut() = Cache {
            generation: snap.generation(),
            snap: Arc::clone(&snap),
        };
        snap
    }

    /// Publishes any unpublished write-side state now and returns the
    /// current snapshot — the event loop's publish hook (pair with
    /// [`GraphHandle::take_deltas`] for push fan-out).
    pub fn publish_now(&self) -> Arc<GraphSnapshot> {
        if !self.shared.dirty.load(Ordering::Acquire) {
            return self.snapshot();
        }
        let mut w = self.write();
        self.publish_locked(&mut w)
    }

    /// Whether the write side has changes no snapshot reflects yet.
    pub fn is_dirty(&self) -> bool {
        self.shared.dirty.load(Ordering::Acquire)
    }

    /// Turns delta capture for push fan-out on or off (off by default;
    /// without a consumer the buffer would grow unboundedly).
    pub fn set_collect_deltas(&self, on: bool) {
        let mut w = self.write();
        w.deltas = if on {
            Some(w.deltas.take().unwrap_or_default())
        } else {
            None
        };
    }

    /// Drains the edge additions captured since the last call (empty
    /// unless [`GraphHandle::set_collect_deltas`] is on). Suppressed
    /// replays (recovery dedup) are not reported.
    pub fn take_deltas(&self) -> Vec<GraphDelta> {
        match &mut self.write().deltas {
            Some(d) => std::mem::take(d),
            None => Vec::new(),
        }
    }

    /// The fresh-read snapshot: publishes first when the write side is
    /// dirty or the query's `now` is past the published watermark, so
    /// the answer reflects every accepted delivery (read-your-own-
    /// writes — the pre-snapshot semantics).
    fn fresh(&self, now: f64) -> Arc<GraphSnapshot> {
        let snap = self.snapshot();
        if !self.shared.dirty.load(Ordering::Acquire) && now <= snap.watermark() {
            return snap;
        }
        let mut w = self.write();
        w.graph.advance(now);
        self.publish_locked(&mut w)
    }

    /// The live neighbours of `node` at stream time `now`, sorted by
    /// neighbour id.
    pub fn neighbors(&self, node: u64, now: f64) -> Vec<Edge> {
        if self.shared.oracle {
            return self.write().graph.neighbors(node, now);
        }
        self.fresh(now).neighbors(node, now)
    }

    /// The `k` best live neighbours of `node` at `now`, best first.
    pub fn topk(&self, node: u64, k: usize, now: f64) -> Vec<Edge> {
        if self.shared.oracle {
            return self.write().graph.topk(node, k, now);
        }
        self.fresh(now).topk(node, k, now)
    }

    /// `node`'s connected component at `now`: `(canonical minimum
    /// member id, size)`, or `None` for a node with no live edge.
    pub fn component(&self, node: u64, now: f64) -> Option<(u64, u64)> {
        if self.shared.oracle {
            return self.write().graph.component(node, now);
        }
        self.fresh(now).component(node, now)
    }

    /// Aggregate graph counters at `now`.
    pub fn stats(&self, now: f64) -> GraphStats {
        if self.shared.oracle {
            return self.write().graph.stats(now);
        }
        self.fresh(now).stats(now)
    }

    /// Accepts one delivered pair as an edge (`t` non-decreasing).
    pub fn add_edge(&self, left: u64, right: u64, similarity: f64, t: f64) {
        let mut w = self.write();
        let before = w.graph.edges_added();
        w.graph.add_edge(left, right, similarity, t);
        if w.graph.edges_added() > before {
            if let Some(d) = &mut w.deltas {
                d.push(GraphDelta {
                    left,
                    right,
                    similarity,
                    t,
                });
            }
        }
        w.pending += 1;
        self.maybe_publish(&mut w);
    }

    /// Accepts a batch of delivered pairs stamped at `t`, under one
    /// lock acquisition and at most one publish.
    pub fn add_edges(&self, pairs: &[SimilarPair], t: f64) {
        if pairs.is_empty() {
            return;
        }
        let mut w = self.write();
        for p in pairs {
            let before = w.graph.edges_added();
            w.graph.add_edge(p.left, p.right, p.similarity, t);
            if w.graph.edges_added() > before {
                if let Some(d) = &mut w.deltas {
                    d.push(GraphDelta {
                        left: p.left,
                        right: p.right,
                        similarity: p.similarity,
                        t,
                    });
                }
            }
            w.pending += 1;
        }
        self.maybe_publish(&mut w);
    }

    /// Live edge count on the write side (no sweep; cheap).
    pub fn live_edges(&self) -> u64 {
        self.write().graph.live_edges()
    }

    /// Newest stream time the graph has observed.
    pub fn now(&self) -> f64 {
        self.write().graph.now()
    }

    /// Turns expired-edge capture on or off (see
    /// [`SimilarityGraph::set_collect_expired`]).
    pub fn set_collect_expired(&self, on: bool) {
        self.write().graph.set_collect_expired(on)
    }

    /// Drains the edges that fell off the horizon since the last drain
    /// (see [`SimilarityGraph::take_expired`]).
    pub fn take_expired(&self) -> Vec<ExpiredEdge> {
        self.write().graph.take_expired()
    }

    /// Read-only window scan: `node`'s stored edges with stamp in
    /// `[lo, hi]`, sorted by neighbour id. Never advances the clock —
    /// the time-travel overlay's live half. Served from the write side
    /// (it needs edges a swept snapshot may have dropped), so this read
    /// does take the ingest lock.
    pub fn neighbors_in_window(&self, node: u64, lo: f64, hi: f64) -> Vec<Edge> {
        self.write().graph.neighbors_in_window(node, lo, hi)
    }

    /// Serialises the live edge set at `now` into the checkpoint aux
    /// format (see [`SimilarityGraph::write_aux`]).
    pub fn write_aux(&self, now: f64, out: &mut Vec<u8>) {
        let mut w = self.write();
        w.graph.write_aux(now, out);
        // The serialisation advanced the clock and swept; republish on
        // the next read.
        self.shared.dirty.store(true, Ordering::Release);
    }

    /// Restores the edge set written by [`GraphHandle::write_aux`] into
    /// an empty graph (see [`SimilarityGraph::load_aux`]).
    pub fn load_aux(&self, bytes: &[u8]) -> Result<(), String> {
        let mut w = self.write();
        w.graph.load_aux(bytes)?;
        self.shared.dirty.store(true, Ordering::Release);
        Ok(())
    }
}

impl PairSink for GraphHandle {
    fn accept(&mut self, pair: &SimilarPair, now: f64) {
        self.add_edge(pair.left, pair.right, pair.similarity, now);
    }
}

/// A [`StreamJoin`] wrapper maintaining a live similarity graph from
/// the inner join's pair output ([`sssj_core::SinkedJoin`] over a
/// [`GraphHandle`]). For the sharded engine the tap wraps the *driver*:
/// workers batch pairs back through the driver's channels, and the sink
/// sees them as the driver surfaces them.
pub struct GraphJoin {
    tap: SinkedJoin<GraphHandle>,
    handle: GraphHandle,
}

impl GraphJoin {
    /// Taps `inner`, feeding a fresh graph whose edges expire `horizon`
    /// seconds after delivery.
    pub fn new(inner: Box<dyn StreamJoin>, horizon: f64) -> Self {
        let handle = GraphHandle::new(horizon);
        GraphJoin {
            tap: SinkedJoin::new(inner, handle.clone()),
            handle,
        }
    }

    /// The queryable graph handle (clone freely).
    pub fn handle(&self) -> GraphHandle {
        self.handle.clone()
    }
}

impl StreamJoin for GraphJoin {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        self.tap.process(record, out);
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        self.tap.finish(out);
    }

    fn stats(&self) -> JoinStats {
        self.tap.stats()
    }

    fn live_postings(&self) -> u64 {
        self.tap.live_postings()
    }

    fn name(&self) -> String {
        format!("graph({})", self.tap.name())
    }

    fn resume_point(&self) -> Option<(u64, f64)> {
        self.tap.resume_point()
    }
}

/// The [`Checkpointable`] graph tap — the durable base of
/// `…&durable=<dir>&graph` pipelines.
///
/// The graph sits *inside* the durability boundary: its live edge set
/// is appended to the engine's checkpoint aux blob, so recovery
/// restores edges whose members are already behind the WAL horizon —
/// the WAL alone could never regenerate them (their records are
/// garbage-collected), and the checkpointed emitted-pair set carries no
/// similarity scores. Replay re-delivers post-checkpoint pairs into the
/// restored graph; the restored-pair suppression set (see
/// [`SimilarityGraph::load_aux`]) keeps those from duplicating edges.
pub struct GraphedEngine {
    inner: Box<dyn Checkpointable>,
    handle: GraphHandle,
    /// Newest delivered timestamp (stamp for finish/quiesce flushes).
    last_t: f64,
}

impl GraphedEngine {
    /// Taps the checkpointable `inner`, feeding a fresh graph.
    pub fn new(inner: Box<dyn Checkpointable>, horizon: f64) -> Self {
        GraphedEngine {
            inner,
            handle: GraphHandle::new(horizon),
            last_t: f64::NEG_INFINITY,
        }
    }

    /// The queryable graph handle (clone freely).
    pub fn handle(&self) -> GraphHandle {
        self.handle.clone()
    }

    /// Pushes `out[start..]` into the graph, stamped at the delivery
    /// watermark.
    fn feed_tail(&mut self, out: &[SimilarPair], start: usize) {
        self.handle.add_edges(&out[start..], self.last_t);
    }
}

impl StreamJoin for GraphedEngine {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let start = out.len();
        self.inner.process(record, out);
        let now = record.t.seconds();
        if now > self.last_t {
            self.last_t = now;
        }
        self.feed_tail(out, start);
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        let start = out.len();
        self.inner.finish(out);
        self.feed_tail(out, start);
    }

    fn stats(&self) -> JoinStats {
        self.inner.stats()
    }

    fn live_postings(&self) -> u64 {
        self.inner.live_postings()
    }

    fn name(&self) -> String {
        format!("graph({})", self.inner.name())
    }

    fn resume_point(&self) -> Option<(u64, f64)> {
        self.inner.resume_point()
    }
}

impl Checkpointable for GraphedEngine {
    /// `u64 inner_len` + the engine's aux + the graph's live edge set.
    fn write_aux(&mut self, out: &mut Vec<u8>) {
        let mut inner = Vec::new();
        self.inner.write_aux(&mut inner);
        out.extend_from_slice(&(inner.len() as u64).to_le_bytes());
        out.extend_from_slice(&inner);
        self.handle.write_aux(self.last_t, out);
    }

    fn read_aux(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.len() < 8 {
            return Err("graph aux: truncated header".into());
        }
        let inner_len = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
        let rest = &bytes[8..];
        if rest.len() < inner_len {
            return Err("graph aux: truncated inner blob".into());
        }
        self.inner.read_aux(&rest[..inner_len])?;
        self.handle.load_aux(&rest[inner_len..])?;
        let restored_now = self.handle.now();
        if restored_now > self.last_t {
            self.last_t = restored_now;
        }
        Ok(())
    }

    fn replay_horizon(&self) -> f64 {
        self.inner.replay_horizon()
    }

    fn quiesce(&mut self, out: &mut Vec<SimilarPair>) {
        let start = out.len();
        self.inner.quiesce(out);
        self.feed_tail(out, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(edges: &[Edge]) -> Vec<u64> {
        edges.iter().map(|e| e.neighbor).collect()
    }

    #[test]
    fn handle_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<GraphHandle>();
        assert_send::<Arc<GraphSnapshot>>();
    }

    #[test]
    fn fresh_reads_see_every_write_immediately() {
        let g = GraphHandle::with_options(10.0, false);
        g.add_edge(0, 1, 0.9, 0.0);
        assert_eq!(ids(&g.neighbors(0, 0.0)), vec![1]);
        g.add_edge(0, 2, 0.8, 1.0);
        assert_eq!(ids(&g.neighbors(0, 1.0)), vec![1, 2]);
        // Expiry through a pure clock advance in the query.
        assert_eq!(ids(&g.neighbors(0, 10.5)), vec![2]);
        assert_eq!(g.stats(10.5).edges, 1);
    }

    #[test]
    fn snapshot_reads_are_stale_bounded_not_fresh() {
        let g = GraphHandle::with_options(f64::INFINITY, false);
        g.add_edge(0, 1, 0.9, 0.0);
        // The write is below the publish cadence: the wait-free path
        // still serves the empty generation-0 snapshot …
        let snap = g.snapshot();
        assert_eq!(snap.generation(), 0);
        assert!(g.is_dirty());
        // … until something publishes.
        let snap = g.publish_now();
        assert_eq!(snap.generation(), 1);
        assert_eq!(ids(&snap.neighbors(0, 0.0)), vec![1]);
        assert!(!g.is_dirty());
        // Steady state: the cached snapshot is returned by pointer.
        assert!(Arc::ptr_eq(&snap, &g.snapshot()));
    }

    #[test]
    fn clones_share_state_but_not_caches() {
        let a = GraphHandle::with_options(f64::INFINITY, false);
        let b = a.clone();
        a.add_edge(0, 1, 0.9, 0.0);
        assert_eq!(ids(&b.neighbors(0, 0.0)), vec![1]);
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert!(Arc::ptr_eq(&sa, &sb), "clones resolve the same snapshot");
    }

    #[test]
    fn cadence_publishes_without_explicit_reads() {
        let g = GraphHandle::with_options(f64::INFINITY, false);
        for i in 0..PUBLISH_MIN_BACKLOG {
            g.add_edge(i, i + 1, 0.9, i as f64);
        }
        let snap = g.snapshot();
        assert!(
            snap.generation() >= 1,
            "backlog {} must have crossed the publish threshold",
            PUBLISH_MIN_BACKLOG
        );
        assert!(snap.live_edges() >= 1);
    }

    #[test]
    fn deltas_capture_inserted_edges_only() {
        let g = GraphHandle::with_options(10.0, false);
        g.set_collect_deltas(true);
        g.add_edge(3, 7, 0.9, 1.0);
        g.add_edge(1, 2, 0.8, 2.0);
        let d = g.take_deltas();
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].left, d[0].right, d[0].t), (3, 7, 1.0));
        assert!(g.take_deltas().is_empty(), "drained");
        g.set_collect_deltas(false);
        g.add_edge(4, 5, 0.7, 3.0);
        assert!(g.take_deltas().is_empty(), "capture off");
    }

    #[test]
    fn oracle_handle_answers_through_the_write_lock() {
        let g = GraphHandle::new_oracle(10.0);
        g.add_edge(0, 1, 0.9, 0.0);
        assert_eq!(ids(&g.neighbors(0, 0.0)), vec![1]);
        assert_eq!(g.component(0, 0.0), Some((0, 2)));
        // The oracle path never publishes on reads.
        assert_eq!(g.snapshot().generation(), 0);
    }

    #[test]
    fn aux_roundtrip_through_the_handle() {
        let g = GraphHandle::with_options(10.0, false);
        g.add_edge(0, 1, 0.9, 1.0);
        g.add_edge(1, 2, 0.8, 2.0);
        let mut aux = Vec::new();
        g.write_aux(2.0, &mut aux);
        let r = GraphHandle::with_options(10.0, false);
        r.load_aux(&aux).unwrap();
        assert_eq!(ids(&r.neighbors(1, 2.0)), vec![0, 2]);
        assert_eq!(r.now(), 2.0);
    }
}

//! The stream-side wiring: [`GraphHandle`] (the shared, queryable
//! graph), [`GraphJoin`] (the [`StreamJoin`] tap feeding it), and
//! [`GraphedEngine`] (the [`Checkpointable`] variant whose edges ride
//! the durable checkpoint).

use std::sync::{Arc, Mutex};

use sssj_core::{Checkpointable, PairSink, SinkedJoin, StreamJoin};
use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord};

use crate::graph::{Edge, ExpiredEdge, GraphStats, SimilarityGraph};

/// A cloneable, thread-safe handle to a live [`SimilarityGraph`].
///
/// The ingest side pushes edges through the [`PairSink`] impl; any
/// number of query-side holders (net sessions, the CLI, benches) ask
/// for neighbours, top-k, components and stats concurrently. Queries
/// take the graph's `now` from the caller — pass the stream watermark,
/// so expiry is judged against the data's clock, not the wall clock.
#[derive(Clone)]
pub struct GraphHandle(Arc<Mutex<SimilarityGraph>>);

impl GraphHandle {
    /// A handle to a fresh graph with the given edge horizon. Consumes
    /// the thread's [`crate::collect_expired_edges_on_next_build`]
    /// arming, so a historical tier attached *around* the spec factory
    /// can turn capture on before the first edge (checkpoint-restored
    /// edges included) enters the graph.
    pub fn new(horizon: f64) -> Self {
        let mut graph = SimilarityGraph::new(horizon);
        if crate::take_collect_expired_arming() {
            graph.set_collect_expired(true);
        }
        GraphHandle(Arc::new(Mutex::new(graph)))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimilarityGraph> {
        self.0.lock().expect("graph lock poisoned")
    }

    /// The live neighbours of `node` at stream time `now`, sorted by
    /// neighbour id.
    pub fn neighbors(&self, node: u64, now: f64) -> Vec<Edge> {
        self.lock().neighbors(node, now)
    }

    /// The `k` best live neighbours of `node` at `now`, best first.
    pub fn topk(&self, node: u64, k: usize, now: f64) -> Vec<Edge> {
        self.lock().topk(node, k, now)
    }

    /// `node`'s connected component at `now`: `(canonical minimum
    /// member id, size)`, or `None` for a node with no live edge.
    pub fn component(&self, node: u64, now: f64) -> Option<(u64, u64)> {
        self.lock().component(node, now)
    }

    /// Aggregate graph counters at `now`.
    pub fn stats(&self, now: f64) -> GraphStats {
        self.lock().stats(now)
    }

    /// Live edge count (no sweep; cheap).
    pub fn live_edges(&self) -> u64 {
        self.lock().live_edges()
    }

    /// Newest stream time the graph has observed.
    pub fn now(&self) -> f64 {
        self.lock().now()
    }

    /// Turns expired-edge capture on or off (see
    /// [`SimilarityGraph::set_collect_expired`]).
    pub fn set_collect_expired(&self, on: bool) {
        self.lock().set_collect_expired(on)
    }

    /// Drains the edges that fell off the horizon since the last drain
    /// (see [`SimilarityGraph::take_expired`]).
    pub fn take_expired(&self) -> Vec<ExpiredEdge> {
        self.lock().take_expired()
    }

    /// Read-only window scan: `node`'s stored edges with stamp in
    /// `[lo, hi]`, sorted by neighbour id. Never advances the clock —
    /// the time-travel overlay's live half.
    pub fn neighbors_in_window(&self, node: u64, lo: f64, hi: f64) -> Vec<Edge> {
        self.lock().neighbors_in_window(node, lo, hi)
    }
}

impl PairSink for GraphHandle {
    fn accept(&mut self, pair: &SimilarPair, now: f64) {
        self.lock()
            .add_edge(pair.left, pair.right, pair.similarity, now);
    }
}

/// A [`StreamJoin`] wrapper maintaining a live similarity graph from
/// the inner join's pair output ([`sssj_core::SinkedJoin`] over a
/// [`GraphHandle`]). For the sharded engine the tap wraps the *driver*:
/// workers batch pairs back through the driver's channels, and the sink
/// sees them as the driver surfaces them.
pub struct GraphJoin {
    tap: SinkedJoin<GraphHandle>,
    handle: GraphHandle,
}

impl GraphJoin {
    /// Taps `inner`, feeding a fresh graph whose edges expire `horizon`
    /// seconds after delivery.
    pub fn new(inner: Box<dyn StreamJoin>, horizon: f64) -> Self {
        let handle = GraphHandle::new(horizon);
        GraphJoin {
            tap: SinkedJoin::new(inner, handle.clone()),
            handle,
        }
    }

    /// The queryable graph handle (clone freely).
    pub fn handle(&self) -> GraphHandle {
        self.handle.clone()
    }
}

impl StreamJoin for GraphJoin {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        self.tap.process(record, out);
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        self.tap.finish(out);
    }

    fn stats(&self) -> JoinStats {
        self.tap.stats()
    }

    fn live_postings(&self) -> u64 {
        self.tap.live_postings()
    }

    fn name(&self) -> String {
        format!("graph({})", self.tap.name())
    }

    fn resume_point(&self) -> Option<(u64, f64)> {
        self.tap.resume_point()
    }
}

/// The [`Checkpointable`] graph tap — the durable base of
/// `…&durable=<dir>&graph` pipelines.
///
/// The graph sits *inside* the durability boundary: its live edge set
/// is appended to the engine's checkpoint aux blob, so recovery
/// restores edges whose members are already behind the WAL horizon —
/// the WAL alone could never regenerate them (their records are
/// garbage-collected), and the checkpointed emitted-pair set carries no
/// similarity scores. Replay re-delivers post-checkpoint pairs into the
/// restored graph; the restored-pair suppression set (see
/// [`SimilarityGraph::load_aux`]) keeps those from duplicating edges.
pub struct GraphedEngine {
    inner: Box<dyn Checkpointable>,
    handle: GraphHandle,
    /// Newest delivered timestamp (stamp for finish/quiesce flushes).
    last_t: f64,
}

impl GraphedEngine {
    /// Taps the checkpointable `inner`, feeding a fresh graph.
    pub fn new(inner: Box<dyn Checkpointable>, horizon: f64) -> Self {
        GraphedEngine {
            inner,
            handle: GraphHandle::new(horizon),
            last_t: f64::NEG_INFINITY,
        }
    }

    /// The queryable graph handle (clone freely).
    pub fn handle(&self) -> GraphHandle {
        self.handle.clone()
    }

    /// Pushes `out[start..]` into the graph, stamped at the delivery
    /// watermark.
    fn feed_tail(&mut self, out: &[SimilarPair], start: usize) {
        if out.len() == start {
            return;
        }
        let mut g = self.handle.lock();
        for p in &out[start..] {
            g.add_edge(p.left, p.right, p.similarity, self.last_t);
        }
    }
}

impl StreamJoin for GraphedEngine {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let start = out.len();
        self.inner.process(record, out);
        let now = record.t.seconds();
        if now > self.last_t {
            self.last_t = now;
        }
        self.feed_tail(out, start);
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        let start = out.len();
        self.inner.finish(out);
        self.feed_tail(out, start);
    }

    fn stats(&self) -> JoinStats {
        self.inner.stats()
    }

    fn live_postings(&self) -> u64 {
        self.inner.live_postings()
    }

    fn name(&self) -> String {
        format!("graph({})", self.inner.name())
    }

    fn resume_point(&self) -> Option<(u64, f64)> {
        self.inner.resume_point()
    }
}

impl Checkpointable for GraphedEngine {
    /// `u64 inner_len` + the engine's aux + the graph's live edge set.
    fn write_aux(&mut self, out: &mut Vec<u8>) {
        let mut inner = Vec::new();
        self.inner.write_aux(&mut inner);
        out.extend_from_slice(&(inner.len() as u64).to_le_bytes());
        out.extend_from_slice(&inner);
        self.handle.lock().write_aux(self.last_t, out);
    }

    fn read_aux(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.len() < 8 {
            return Err("graph aux: truncated header".into());
        }
        let inner_len = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
        let rest = &bytes[8..];
        if rest.len() < inner_len {
            return Err("graph aux: truncated inner blob".into());
        }
        self.inner.read_aux(&rest[..inner_len])?;
        let mut g = self.handle.lock();
        g.load_aux(&rest[inner_len..])?;
        if g.now() > self.last_t {
            self.last_t = g.now();
        }
        Ok(())
    }

    fn replay_horizon(&self) -> f64 {
        self.inner.replay_horizon()
    }

    fn quiesce(&mut self, out: &mut Vec<SimilarPair>) {
        let start = out.len();
        self.inner.quiesce(out);
        self.feed_tail(out, start);
    }
}

//! Immutable, shareable snapshots of the live similarity graph — the
//! read side of the RCU-style split in [`crate::GraphHandle`].
//!
//! A [`GraphSnapshot`] is a consistent copy of the live edge set taken
//! at one instant of the write side's clock (the snapshot
//! **watermark**). Every query method takes `&self`, so any number of
//! threads can serve `neighbors`/`topk`/`component`/`stats` from one
//! snapshot concurrently, with zero coordination and zero effect on
//! ingest. The handle publishes fresh snapshots at a bounded cadence
//! (see the staleness discussion on [`crate::GraphHandle`]).
//!
//! # Time semantics
//!
//! A snapshot answers queries for any `now` with the same horizon rule
//! as the live graph: evaluation time is `t_eval = max(now, watermark)`
//! (the clock never runs backwards) and an edge delivered at `t` is
//! live while `t ≥ t_eval − τ`. At `now ≤ watermark` — the steady
//! state, since the watermark trails the newest delivery by a bounded
//! amount — every stored edge is live (publication sweeps to the
//! watermark's cutoff) and component/stats answers come from a map
//! memoized once per snapshot. At `now > watermark` the snapshot
//! re-filters against the later cutoff, so answers stay exact for
//! callers racing ahead of the publish cadence (edges *delivered* after
//! the watermark are invisible by construction — that is the documented
//! staleness bound, not an error).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use sssj_collections::FxBuildHasher;

use crate::graph::{Edge, GraphStats, RankedEdge, UnionFind};

/// Memoized component view at the snapshot watermark.
struct ComponentMap {
    /// node → (canonical minimum member id, component size).
    by_node: HashMap<u64, (u64, u64), FxBuildHasher>,
    count: u64,
}

/// One immutable published state of the graph. See the [module
/// docs](self) for the time semantics.
pub struct GraphSnapshot {
    /// Publication counter of the owning handle (monotone).
    generation: u64,
    /// The write side's clock at publication: queries at `now ≤
    /// watermark` are exact; later deliveries are not visible.
    watermark: f64,
    /// Edge horizon τ (same rule as [`crate::SimilarityGraph`]).
    horizon: f64,
    /// Per-node adjacency, stamp-ordered. Blocks are `Arc`-shared with
    /// earlier snapshots: incremental publication reuses every block
    /// the write side did not touch, so a reused block may still carry
    /// entries that expired after it was captured. Every stored *node*
    /// has at least one live edge at the watermark (dead blocks are
    /// pruned at capture — stamp order makes that an O(1) newest-entry
    /// check), but per-edge liveness is always re-established through
    /// [`GraphSnapshot::live_slice`]'s cutoff filter.
    adj: HashMap<u64, Arc<[Edge]>, FxBuildHasher>,
    /// Live (undirected) edge count at the watermark.
    live_edges: u64,
    /// Components at the watermark, built on first use.
    components: OnceLock<ComponentMap>,
}

impl GraphSnapshot {
    /// The empty snapshot a fresh handle publishes as generation 0.
    pub(crate) fn empty(horizon: f64) -> Self {
        GraphSnapshot {
            generation: 0,
            watermark: f64::NEG_INFINITY,
            horizon,
            adj: HashMap::default(),
            live_edges: 0,
            components: OnceLock::new(),
        }
    }

    /// Captures `graph` as snapshot `generation`, reusing `prev`'s
    /// blocks for every node the write side did not touch since the
    /// last capture. Cost is O(touched edges + stored nodes) pointer
    /// work — cloning the map bumps refcounts, refreshing a touched
    /// node copies only its live entries, and pruning checks one
    /// newest-entry stamp per node — instead of re-copying the whole
    /// live edge set, which is what makes a publish cheap enough to sit
    /// on the serving path's read-your-writes check.
    /// Returns the snapshot plus the touched-node count (the delta's
    /// size — what the incremental capture actually copied), which the
    /// publisher reports to telemetry.
    pub(crate) fn capture_from(
        graph: &mut crate::SimilarityGraph,
        prev: &GraphSnapshot,
        generation: u64,
    ) -> (Self, usize) {
        let horizon = graph.horizon();
        let (watermark, live_edges, delta) = graph.snapshot_delta();
        let touched = delta.len();
        let cutoff = watermark - horizon;
        let mut adj = prev.adj.clone();
        for (node, block) in delta {
            if block.is_empty() {
                adj.remove(&node);
            } else {
                adj.insert(node, block);
            }
        }
        // Blocks are stamp-ordered, so the newest entry alone tells
        // whether any edge is still live; prune dead blocks so nodes
        // the delta never mentions again cannot accumulate.
        adj.retain(|_, block| block.last().is_some_and(|e| e.t >= cutoff));
        let snap = GraphSnapshot {
            generation,
            watermark,
            horizon,
            adj,
            live_edges,
            components: OnceLock::new(),
        };
        (snap, touched)
    }

    /// Publication counter of the owning handle (monotone across
    /// publishes; 0 is the empty pre-ingest snapshot).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The write side's clock at publication — the staleness bound:
    /// edges delivered after this stream time are not in this snapshot.
    pub fn watermark(&self) -> f64 {
        self.watermark
    }

    /// The edge horizon τ.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Live edge count at the watermark.
    pub fn live_edges(&self) -> u64 {
        self.live_edges
    }

    /// The expiry cutoff for a query at `now`: `max(now, watermark) − τ`.
    #[inline]
    fn cutoff(&self, now: f64) -> f64 {
        let t_eval = if now > self.watermark {
            now
        } else {
            self.watermark
        };
        t_eval - self.horizon
    }

    /// The live suffix of `node`'s stamp-ordered block at `cutoff`
    /// (expiry keeps `t ≥ cutoff`, exactly like the live graph).
    fn live_slice(&self, node: u64, cutoff: f64) -> &[Edge] {
        let Some(block) = self.adj.get(&node) else {
            return &[];
        };
        let start = block.partition_point(|e| e.t < cutoff);
        &block[start..]
    }

    /// The live neighbours of `node` at `now`, sorted by neighbour id.
    pub fn neighbors(&self, node: u64, now: f64) -> Vec<Edge> {
        let mut out: Vec<Edge> = self.live_slice(node, self.cutoff(now)).to_vec();
        out.sort_by_key(|e| e.neighbor);
        out
    }

    /// The `k` highest-scoring live neighbours of `node` at `now`, best
    /// first (ties towards the smaller neighbour id) — the same
    /// k-heap-with-SIMD-prefilter selection as the live graph, over
    /// the snapshot's flat block.
    pub fn topk(&self, node: u64, k: usize, now: f64) -> Vec<Edge> {
        if k == 0 {
            return Vec::new();
        }
        let entries = self.live_slice(node, self.cutoff(now));
        let seed = entries.len().min(k);
        let mut heap = std::collections::BinaryHeap::with_capacity(k + 1);
        for e in &entries[..seed] {
            heap.push(RankedEdge(*e));
        }
        let mut idx = [0u32; 64];
        for chunk in entries[seed..].chunks(idx.len()) {
            let root_sim = heap.peek().map_or(f64::NEG_INFINITY, |r| r.0.similarity);
            let kept = sssj_kernels::select_ge_strided(
                Edge::as_words(chunk),
                Edge::WORDS,
                Edge::SIMILARITY_WORD,
                root_sim,
                &mut idx[..chunk.len()],
            );
            for &i in &idx[..kept] {
                heap.push(RankedEdge(chunk[i as usize]));
                if heap.len() > k {
                    heap.pop();
                }
            }
        }
        heap.into_sorted_vec().into_iter().map(|r| r.0).collect()
    }

    /// The connected component of `node` at `now`: `(canonical minimum
    /// member id, size)`, or `None` when the node has no live edge. At
    /// `now ≤ watermark` this is one lookup in the memoized map; past
    /// the watermark it walks the filtered component.
    pub fn component(&self, node: u64, now: f64) -> Option<(u64, u64)> {
        if now <= self.watermark {
            return self.component_map().by_node.get(&node).copied();
        }
        let cutoff = self.cutoff(now);
        if self.live_slice(node, cutoff).is_empty() {
            return None;
        }
        // BFS over the cutoff-filtered adjacency: O(component).
        let mut seen: HashMap<u64, (), FxBuildHasher> = HashMap::default();
        let mut stack = vec![node];
        let (mut min_id, mut size) = (node, 0u64);
        while let Some(x) = stack.pop() {
            if seen.insert(x, ()).is_some() {
                continue;
            }
            size += 1;
            min_id = min_id.min(x);
            for e in self.live_slice(x, cutoff) {
                if !seen.contains_key(&e.neighbor) {
                    stack.push(e.neighbor);
                }
            }
        }
        Some((min_id, size))
    }

    /// Aggregate counters at `now`. Memoized at the watermark; a query
    /// past the watermark re-filters the whole snapshot (O(edges)).
    pub fn stats(&self, now: f64) -> GraphStats {
        if now <= self.watermark {
            return GraphStats {
                nodes: self.adj.len() as u64,
                edges: self.live_edges,
                components: self.component_map().count,
            };
        }
        let cutoff = self.cutoff(now);
        let mut uf = UnionFind::default();
        let (mut nodes, mut edges) = (0u64, 0u64);
        for &node in self.adj.keys() {
            let live = self.live_slice(node, cutoff);
            if live.is_empty() {
                continue;
            }
            nodes += 1;
            uf.add(node);
            for e in live {
                if node < e.neighbor {
                    edges += 1;
                    uf.union(node, e.neighbor);
                }
            }
        }
        GraphStats {
            nodes,
            edges,
            components: uf.components(),
        }
    }

    /// The component map at the watermark, built once per snapshot.
    /// Reused blocks can hold entries that expired after their capture,
    /// so the build filters every block at the watermark's cutoff;
    /// pruning at capture guarantees each stored node keeps at least
    /// one live edge.
    fn component_map(&self) -> &ComponentMap {
        self.components.get_or_init(|| {
            let cutoff = self.cutoff(self.watermark);
            let mut uf = UnionFind::default();
            for &node in self.adj.keys() {
                let live = self.live_slice(node, cutoff);
                if live.is_empty() {
                    continue;
                }
                uf.add(node);
                for e in live {
                    if node < e.neighbor {
                        uf.union(node, e.neighbor);
                    }
                }
            }
            let mut by_node: HashMap<u64, (u64, u64), FxBuildHasher> = HashMap::default();
            for &node in self.adj.keys() {
                let Some(root) = uf.find(node) else { continue };
                let info = uf.info_of(root).expect("every root has aggregates");
                by_node.insert(node, info);
            }
            ComponentMap {
                by_node,
                count: uf.components(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::SimilarityGraph;

    fn ids(edges: &[crate::Edge]) -> Vec<u64> {
        edges.iter().map(|e| e.neighbor).collect()
    }

    /// A from-scratch capture: every node in a fresh graph is in the
    /// touched set, so an incremental capture over the empty snapshot
    /// is a full one.
    fn capture(g: &mut SimilarityGraph) -> super::GraphSnapshot {
        let empty = super::GraphSnapshot::empty(g.horizon());
        super::GraphSnapshot::capture_from(g, &empty, 1).0
    }

    #[test]
    fn snapshot_answers_match_the_live_graph_at_the_watermark() {
        let mut g = SimilarityGraph::new(10.0);
        g.add_edge(0, 1, 0.9, 0.0);
        g.add_edge(0, 2, 0.8, 5.0);
        g.add_edge(3, 4, 0.7, 6.0);
        let snap = capture(&mut g);
        assert_eq!(snap.watermark(), 6.0);
        assert_eq!(snap.live_edges(), 3);
        assert_eq!(ids(&snap.neighbors(0, 6.0)), vec![1, 2]);
        assert_eq!(ids(&snap.topk(0, 1, 6.0)), vec![1]);
        assert_eq!(snap.component(0, 6.0), Some((0, 3)));
        assert_eq!(snap.component(4, 6.0), Some((3, 2)));
        assert_eq!(snap.component(99, 6.0), None);
        let s = snap.stats(6.0);
        assert_eq!((s.nodes, s.edges, s.components), (5, 3, 2));
    }

    #[test]
    fn snapshot_refilters_past_the_watermark() {
        let mut g = SimilarityGraph::new(10.0);
        g.add_edge(0, 1, 0.9, 0.0);
        g.add_edge(0, 2, 0.8, 5.0);
        let snap = capture(&mut g);
        // t=0 edge is live at the watermark (and at t=τ exactly) …
        assert_eq!(ids(&snap.neighbors(0, 10.0)), vec![1, 2], "t=τ still live");
        // … and expires when a caller races past the publish cadence.
        assert_eq!(ids(&snap.neighbors(0, 10.1)), vec![2]);
        assert_eq!(ids(&snap.topk(0, 5, 10.1)), vec![2]);
        assert_eq!(snap.component(1, 10.1), None);
        assert_eq!(snap.component(0, 10.1), Some((0, 2)));
        let s = snap.stats(10.1);
        assert_eq!((s.nodes, s.edges, s.components), (2, 1, 1));
        // A query *before* the watermark evaluates at the watermark —
        // the clock never runs backwards.
        assert_eq!(ids(&snap.neighbors(0, -5.0)), vec![1, 2]);
    }

    #[test]
    fn snapshot_is_immutable_under_later_ingest() {
        let mut g = SimilarityGraph::new(5.0);
        g.add_edge(0, 1, 0.9, 0.0);
        let snap = capture(&mut g);
        g.add_edge(0, 2, 0.8, 1.0);
        g.add_edge(5, 6, 0.7, 100.0); // expires everything older
        assert_eq!(ids(&snap.neighbors(0, 0.0)), vec![1]);
        assert_eq!(snap.stats(0.0).edges, 1);
    }
}

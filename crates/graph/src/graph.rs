//! The horizon-aware similarity graph: adjacency storage, top-k
//! selection, and epoch-rebuilt connected components.
//!
//! # Storage
//!
//! Per-node adjacency reuses the flat single-allocation block idiom of
//! the posting lists ([`sssj_collections::TimedBlock`]): edges are
//! appended in delivery-time order — the join delivers pairs at
//! non-decreasing stream time — so horizon expiry at `now − τ` is a
//! binary search plus an O(1) front cut, and a neighbour scan is a flat
//! slice walk. Every edge is stored twice (once per endpoint), stamped
//! with its delivery time and carrying the similarity score for
//! ranking.
//!
//! # Connected components
//!
//! Edge *additions* are incremental unions on a union-find; edge
//! *expiry* cannot be (union-find does not support deletions), so the
//! structure is rebuilt per **epoch**: the graph tracks live-edge
//! stamps in a monotone queue, and the first component query after any
//! stamp falls off the horizon rebuilds the union-find from the live
//! edge set (sweeping expired adjacency and empty nodes in the same
//! pass). Between rebuilds, additions keep the structure exact, so
//! query results always equal a from-scratch recomputation — the
//! property `tests/differential.rs` asserts.
//!
//! # Recovery dedup
//!
//! When the graph is restored from checkpoint aux state
//! ([`SimilarityGraph::load_aux`]), WAL replay re-delivers some of the
//! restored pairs. Each unordered id pair is emitted at most once per
//! engine history (ids are arrival ordinals), so restored pairs go into
//! a suppression set mirroring the durable layer's own: a re-delivered
//! restored pair is dropped and removed from the set, and the set is
//! cleared wholesale once the stream passes the restored watermark plus
//! twice the horizon (no engine re-delivers later than that — MiniBatch,
//! the laggiest, probes pairs at most `2τ` apart). Fresh graphs carry an
//! empty set: the hot-path branch is one `is_empty` check.

use std::collections::{HashMap, HashSet, VecDeque};

use sssj_collections::{FxBuildHasher, TimedBlock, TimedEntry};

/// One directed half of a stored edge: the far endpoint, the similarity
/// score, and the delivery stamp.
///
/// `repr(C)` so adjacency runs expose a flat word view
/// ([`Edge::as_words`]) to the strided SIMD scan kernels.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub struct Edge {
    /// The far endpoint's record id.
    pub neighbor: u64,
    /// The (time-decayed) similarity the pair was emitted with.
    pub similarity: f64,
    /// Delivery stamp: the stream time at which the join handed the
    /// pair back.
    pub t: f64,
}

impl Edge {
    /// 64-bit words per edge in the flat view.
    pub const WORDS: usize = 3;
    /// Word offset of `similarity` within the flat view.
    pub const SIMILARITY_WORD: usize = 1;
    /// Word offset of the delivery stamp `t` within the flat view.
    pub const TIME_WORD: usize = 2;

    /// Reinterprets a run of edges as the raw 64-bit words the strided
    /// scan kernels consume (`stride = WORDS`, similarity at offset
    /// [`Self::SIMILARITY_WORD`]).
    pub fn as_words(edges: &[Edge]) -> &[u64] {
        const _: () = assert!(
            std::mem::size_of::<Edge>() == Edge::WORDS * 8 && std::mem::align_of::<Edge>() == 8
        );
        // SAFETY: repr(C) with the layout asserted above; u64 has no
        // validity requirements beyond initialised bytes.
        unsafe { std::slice::from_raw_parts(edges.as_ptr().cast(), edges.len() * Edge::WORDS) }
    }
}

impl TimedEntry for Edge {
    #[inline]
    fn time(&self) -> f64 {
        self.t
    }
}

/// Ranking order for top-k selection: `RankedEdge`s compare
/// *worse-is-greater* under (similarity desc, neighbour id asc), so a
/// max-heap of them keeps the worst retained edge at the root and an
/// ascending sort is best-first. Similarities are finite (`total_cmp`
/// is their numeric order). Shared with the snapshot read path so both
/// sides rank identically.
pub(crate) struct RankedEdge(pub(crate) Edge);

impl PartialEq for RankedEdge {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for RankedEdge {}

impl PartialOrd for RankedEdge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankedEdge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .similarity
            .total_cmp(&self.0.similarity)
            .then(self.0.neighbor.cmp(&other.0.neighbor))
    }
}

/// Aggregate counters reported by [`SimilarityGraph::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Nodes with at least one live edge.
    pub nodes: u64,
    /// Live (in-horizon) edges.
    pub edges: u64,
    /// Connected components over the live edges.
    pub components: u64,
}

/// Union-find with union-by-size and per-root aggregates, keyed by
/// sparse node ids. The canonical representative reported for a
/// component is its **minimum member id**, which is stable across
/// rebuilds (actual tree roots are not). Shared with the snapshot read
/// path, whose memoized component map is built with the same structure.
#[derive(Default)]
pub(crate) struct UnionFind {
    parent: HashMap<u64, u64, FxBuildHasher>,
    /// root → (minimum member id, member count).
    info: HashMap<u64, (u64, u64), FxBuildHasher>,
}

impl UnionFind {
    fn clear(&mut self) {
        self.parent.clear();
        self.info.clear();
    }

    /// Ensures `x` exists as a singleton set.
    pub(crate) fn add(&mut self, x: u64) {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.parent.entry(x) {
            slot.insert(x);
            self.info.insert(x, (x, 1));
        }
    }

    /// The root of `x`'s set, with path compression; `None` when `x` is
    /// not in the structure.
    pub(crate) fn find(&mut self, x: u64) -> Option<u64> {
        let mut root = *self.parent.get(&x)?;
        while root != self.parent[&root] {
            root = self.parent[&root];
        }
        // Compress the walked path.
        let mut cur = x;
        while cur != root {
            let next = self.parent[&cur];
            self.parent.insert(cur, root);
            cur = next;
        }
        Some(root)
    }

    pub(crate) fn union(&mut self, a: u64, b: u64) {
        self.add(a);
        self.add(b);
        let ra = self.find(a).expect("just added");
        let rb = self.find(b).expect("just added");
        if ra == rb {
            return;
        }
        let (ma, sa) = self.info[&ra];
        let (mb, sb) = self.info[&rb];
        let (big, small) = if sa >= sb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(small, big);
        self.info.remove(&small);
        self.info.insert(big, (ma.min(mb), sa + sb));
    }

    pub(crate) fn components(&self) -> u64 {
        self.info.len() as u64
    }

    /// The `(minimum member id, size)` aggregate of `root`'s set.
    pub(crate) fn info_of(&self, root: u64) -> Option<(u64, u64)> {
        self.info.get(&root).copied()
    }
}

/// One touched node's freshly captured live adjacency block, as
/// returned by [`SimilarityGraph::snapshot_delta`] — an empty block
/// means the node no longer has live edges.
pub(crate) type NodeBlock = (u64, std::sync::Arc<[Edge]>);

/// The incrementally maintained, horizon-aware similarity graph. See
/// the [module docs](self) for the design.
pub struct SimilarityGraph {
    /// Edge horizon τ: an edge delivered at `t` is live while
    /// `now − t ≤ τ`. Infinite disables expiry.
    horizon: f64,
    adj: HashMap<u64, TimedBlock<Edge>, FxBuildHasher>,
    /// Live-edge delivery stamps, oldest first (delivery time is
    /// non-decreasing, so this is a monotone queue); its length is the
    /// live edge count.
    stamps: VecDeque<f64>,
    /// Newest stream time observed.
    now: f64,
    /// Stamps expired since the last sweep — triggers adjacency GC.
    expired_since_sweep: usize,
    uf: UnionFind,
    /// Whether `uf` reflects exactly the live edge set.
    uf_valid: bool,
    /// Recovery suppression set (see the module docs).
    restored: HashSet<(u64, u64), FxBuildHasher>,
    /// Stream time after which `restored` can be cleared wholesale.
    restored_deadline: f64,
    /// Edges ever accepted (monotone; diagnostics).
    edges_added: u64,
    /// Nodes whose adjacency gained an entry since the last
    /// [`SimilarityGraph::snapshot_delta`] drain — the incremental
    /// capture's work list. Over-approximating is safe (a refresh of an
    /// unchanged node is wasted work, not a wrong answer); only missing
    /// a changed node would be a bug, so every insert funnels through
    /// [`SimilarityGraph::insert_edge`], which records both endpoints.
    touched: HashSet<u64, FxBuildHasher>,
    /// When set, expired edges are captured into `retired` instead of
    /// vanishing — the historical tier's feed.
    collect_expired: bool,
    /// Edges that fell off the horizon since the last
    /// [`SimilarityGraph::take_expired`], canonical orientation
    /// (`left < right`), in no particular stamp order (expiry is lazy
    /// and per-block).
    retired: Vec<ExpiredEdge>,
}

/// One edge that fell off the live horizon, captured for the
/// historical tier. Canonical orientation: `left < right`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpiredEdge {
    /// Smaller endpoint id.
    pub left: u64,
    /// Larger endpoint id.
    pub right: u64,
    /// The pair's similarity score.
    pub similarity: f64,
    /// Delivery stamp (stream time the edge was added).
    pub t: f64,
}

/// Captures the about-to-expire prefix of one adjacency block into
/// `retired`. Blocks are stamp-ordered, so the expiring entries are a
/// prefix; only the `node < neighbor` orientation is recorded — the
/// mirror entry under the other endpoint captures (or already captured)
/// the same edge, and the reader dedups anyway.
fn capture_expired(retired: &mut Vec<ExpiredEdge>, node: u64, entries: &[Edge], cutoff: f64) {
    for e in entries {
        if e.t >= cutoff {
            break;
        }
        if node < e.neighbor {
            retired.push(ExpiredEdge {
                left: node,
                right: e.neighbor,
                similarity: e.similarity,
                t: e.t,
            });
        }
    }
}

impl SimilarityGraph {
    /// An empty graph whose edges expire `horizon` seconds after
    /// delivery (`f64::INFINITY` keeps everything).
    pub fn new(horizon: f64) -> Self {
        assert!(horizon >= 0.0, "graph horizon must be >= 0, got {horizon}");
        SimilarityGraph {
            horizon,
            adj: HashMap::default(),
            stamps: VecDeque::new(),
            now: f64::NEG_INFINITY,
            expired_since_sweep: 0,
            uf: UnionFind::default(),
            uf_valid: true,
            restored: HashSet::default(),
            restored_deadline: f64::NEG_INFINITY,
            edges_added: 0,
            touched: HashSet::default(),
            collect_expired: false,
            retired: Vec::new(),
        }
    }

    /// Turns expired-edge capture on or off (off by default: without a
    /// consumer the buffer would grow unboundedly).
    pub fn set_collect_expired(&mut self, on: bool) {
        self.collect_expired = on;
        if !on {
            self.retired = Vec::new();
        }
    }

    /// Drains the edges that expired since the last call (empty unless
    /// [`SimilarityGraph::set_collect_expired`] is on). Within one
    /// graph's lifetime each edge is captured exactly once (from its
    /// smaller endpoint's block), but a crash/restore cycle re-expires
    /// edges restored from the checkpoint aux, so consumers spanning
    /// restarts dedup on `(left, right, similarity, t)`.
    pub fn take_expired(&mut self) -> Vec<ExpiredEdge> {
        std::mem::take(&mut self.retired)
    }

    /// The edge horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The expiry cutoff at `self.now`.
    #[inline]
    fn cutoff(&self) -> f64 {
        self.now - self.horizon
    }

    /// Advances the graph clock and expires stamps that fell off the
    /// horizon. Cheap when nothing expired (one front peek).
    pub fn advance(&mut self, now: f64) {
        if now > self.now {
            self.now = now;
        }
        let cutoff = self.cutoff();
        let mut popped = 0usize;
        while self.stamps.front().is_some_and(|&t| t < cutoff) {
            self.stamps.pop_front();
            popped += 1;
        }
        if popped > 0 {
            // Expiry may disconnect components: rebuild lazily.
            self.uf_valid = false;
            self.expired_since_sweep += popped;
            // Adjacency blocks expire lazily on access; once the dead
            // volume rivals the live volume, sweep so untouched nodes
            // release memory too.
            if self.expired_since_sweep > self.stamps.len().max(1024) {
                self.sweep();
            }
        }
    }

    /// Accepts one delivered pair as an edge. `t` must be
    /// non-decreasing across calls (stream delivery order).
    pub fn add_edge(&mut self, left: u64, right: u64, similarity: f64, t: f64) {
        self.advance(t);
        if !self.restored.is_empty() {
            if self.now > self.restored_deadline {
                self.restored = HashSet::default();
            } else if self.restored.remove(&(left, right)) {
                return; // replay re-delivered a restored edge
            }
        }
        self.insert_edge(left, right, similarity, t);
        if self.uf_valid {
            self.uf.union(left, right);
        }
    }

    /// The raw insert: adjacency + stamp queue, no suppression, no
    /// union (used by [`SimilarityGraph::load_aux`] before the
    /// union-find exists).
    fn insert_edge(&mut self, left: u64, right: u64, similarity: f64, t: f64) {
        self.touched.insert(left);
        self.touched.insert(right);
        self.stamps.push_back(t);
        self.adj.entry(left).or_default().push(Edge {
            neighbor: right,
            similarity,
            t,
        });
        self.adj.entry(right).or_default().push(Edge {
            neighbor: left,
            similarity,
            t,
        });
        self.edges_added += 1;
    }

    /// Expires every adjacency block and drops empty nodes.
    fn sweep(&mut self) {
        let cutoff = self.cutoff();
        // Moved out so the retain closure (borrowing `adj`) can push.
        let mut retired = std::mem::take(&mut self.retired);
        let collect = self.collect_expired;
        self.adj.retain(|&node, block| {
            if collect {
                capture_expired(&mut retired, node, block.entries(), cutoff);
            }
            block.expire_before_strided(cutoff, Edge::WORDS, Edge::TIME_WORD, Edge::as_words);
            !block.is_empty()
        });
        self.retired = retired;
        self.expired_since_sweep = 0;
    }

    /// Rebuilds the union-find from the live edge set (sweeping in the
    /// same pass) if it is stale.
    fn ensure_components(&mut self) {
        if self.uf_valid {
            return;
        }
        self.sweep();
        self.uf.clear();
        for (&node, block) in &self.adj {
            self.uf.add(node);
            for e in block.entries() {
                if node < e.neighbor {
                    self.uf.union(node, e.neighbor);
                }
            }
        }
        self.uf_valid = true;
    }

    /// The live neighbours of `node` at `now`, sorted by neighbour id.
    pub fn neighbors(&mut self, node: u64, now: f64) -> Vec<Edge> {
        self.advance(now);
        let cutoff = self.cutoff();
        let Some(block) = self.adj.get_mut(&node) else {
            return Vec::new();
        };
        if self.collect_expired {
            capture_expired(&mut self.retired, node, block.entries(), cutoff);
        }
        block.expire_before_strided(cutoff, Edge::WORDS, Edge::TIME_WORD, Edge::as_words);
        let mut out: Vec<Edge> = block.entries().to_vec();
        out.sort_by_key(|e| e.neighbor);
        out
    }

    /// The edges of `node` whose stamp lies in `[lo, hi]`, sorted by
    /// neighbour id — a read-only window scan for time-travel overlays.
    /// Unlike [`SimilarityGraph::neighbors`] this neither advances the
    /// clock nor expires anything, so it is safe to call with a `hi` in
    /// the past.
    pub fn neighbors_in_window(&self, node: u64, lo: f64, hi: f64) -> Vec<Edge> {
        let Some(block) = self.adj.get(&node) else {
            return Vec::new();
        };
        let mut out: Vec<Edge> = block
            .entries()
            .iter()
            .filter(|e| e.t >= lo && e.t <= hi)
            .copied()
            .collect();
        out.sort_by_key(|e| e.neighbor);
        out
    }

    /// The `k` highest-scoring live neighbours of `node` at `now`,
    /// best first (ties broken towards the smaller neighbour id),
    /// served from a k-sized heap over the flat adjacency scan.
    pub fn topk(&mut self, node: u64, k: usize, now: f64) -> Vec<Edge> {
        self.advance(now);
        if k == 0 {
            return Vec::new();
        }
        let cutoff = self.cutoff();
        let Some(block) = self.adj.get_mut(&node) else {
            return Vec::new();
        };
        if self.collect_expired {
            capture_expired(&mut self.retired, node, block.entries(), cutoff);
        }
        block.expire_before_strided(cutoff, Edge::WORDS, Edge::TIME_WORD, Edge::as_words);
        // A k-sized heap of the best edges seen so far, rooted at the
        // current worst (RankedEdge orders worse-is-greater). O(d log k)
        // over the degree, O(k) memory — `k` is a query parameter
        // (small). Seed it with the first k edges, then let the SIMD
        // similarity filter skip chunks of edges that cannot displace
        // the root: once the heap holds k, push+pop of an edge scoring
        // strictly below the root is an identity. The filter keeps ties
        // (`≥`, they may still win on neighbour id) and the root's score
        // only rises, so over-selection is harmless and under-selection
        // impossible — output is exactly the full-heap scan's.
        let entries = block.entries();
        let seed = entries.len().min(k);
        let mut heap = std::collections::BinaryHeap::with_capacity(k + 1);
        for e in &entries[..seed] {
            heap.push(RankedEdge(*e));
        }
        let mut idx = [0u32; 64];
        for chunk in entries[seed..].chunks(idx.len()) {
            let root_sim = heap.peek().map_or(f64::NEG_INFINITY, |r| r.0.similarity);
            let kept = sssj_kernels::select_ge_strided(
                Edge::as_words(chunk),
                Edge::WORDS,
                Edge::SIMILARITY_WORD,
                root_sim,
                &mut idx[..chunk.len()],
            );
            for &i in &idx[..kept] {
                heap.push(RankedEdge(chunk[i as usize]));
                if heap.len() > k {
                    heap.pop();
                }
            }
        }
        // Ascending RankedEdge order is best-first.
        heap.into_sorted_vec().into_iter().map(|r| r.0).collect()
    }

    /// The connected component of `node` at `now`: its canonical
    /// representative (minimum member id) and size, or `None` when the
    /// node has no live edge.
    pub fn component(&mut self, node: u64, now: f64) -> Option<(u64, u64)> {
        self.advance(now);
        self.ensure_components();
        // A node may linger in the union-find only via live edges (the
        // rebuild sweeps); between rebuilds every union came from a
        // live addition, but the *endpoint* may have expired since —
        // check liveness through the adjacency, not the union-find.
        let cutoff = self.cutoff();
        let collect = self.collect_expired;
        let retired = &mut self.retired;
        let block = self.adj.get_mut(&node)?;
        if collect {
            capture_expired(retired, node, block.entries(), cutoff);
        }
        block.expire_before_strided(cutoff, Edge::WORDS, Edge::TIME_WORD, Edge::as_words);
        if block.is_empty() {
            return None;
        }
        let root = self.uf.find(node)?;
        let (min_id, size) = *self.uf.info.get(&root)?;
        Some((min_id, size))
    }

    /// Aggregate counters at `now`.
    pub fn stats(&mut self, now: f64) -> GraphStats {
        self.advance(now);
        // When the union-find is valid, nothing has expired since its
        // last rebuild (which swept) or since the graph was born: every
        // adjacency entry is live and the component count is exact, so
        // a steady-state stats poll is O(1). Otherwise the component
        // query path rebuilds (and sweeps) once.
        self.ensure_components();
        GraphStats {
            nodes: self.adj.len() as u64,
            edges: self.stamps.len() as u64,
            components: self.uf.components(),
        }
    }

    /// Live edge count (cheap; does not sweep).
    pub fn live_edges(&self) -> u64 {
        self.stamps.len() as u64
    }

    /// Edges ever accepted.
    pub fn edges_added(&self) -> u64 {
        self.edges_added
    }

    /// Newest stream time observed.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Estimated heap footprint of the adjacency storage, bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.adj.values().map(|b| b.heap_bytes()).sum()
    }

    /// The capture feed for incremental snapshot publication: drains
    /// the touched-node set and returns `(now, live edge count,
    /// fresh live blocks for exactly those nodes)` — an empty block
    /// means the node is gone. Untouched nodes are the publisher's
    /// problem (it reuses their previous blocks). No global sweep
    /// unless the historical tier is listening: expired-edge capture
    /// promises each edge retires exactly once and publication used to
    /// be what forced timely sweeps, so a collecting graph still sweeps
    /// here; without a collector, touched blocks are expired in place
    /// and the rest keep expiring lazily at the [`advance`] cadence.
    ///
    /// [`advance`]: SimilarityGraph::advance
    pub(crate) fn snapshot_delta(&mut self) -> (f64, u64, Vec<NodeBlock>) {
        if self.collect_expired && self.expired_since_sweep > 0 {
            self.sweep();
        }
        let cutoff = self.cutoff();
        let touched = std::mem::take(&mut self.touched);
        let mut delta = Vec::with_capacity(touched.len());
        for node in touched {
            let mut gone = true;
            let block: std::sync::Arc<[Edge]> = match self.adj.get_mut(&node) {
                Some(block) => {
                    block.expire_before_strided(
                        cutoff,
                        Edge::WORDS,
                        Edge::TIME_WORD,
                        Edge::as_words,
                    );
                    gone = block.is_empty();
                    std::sync::Arc::from(block.entries())
                }
                None => std::sync::Arc::from(&[][..]),
            };
            if gone {
                self.adj.remove(&node);
            }
            delta.push((node, block));
        }
        (self.now, self.stamps.len() as u64, delta)
    }

    // -----------------------------------------------------------------
    // Checkpoint aux (the durable integration).
    // -----------------------------------------------------------------

    /// Serialises the live edge set at `now` (sweeping first):
    /// `u64 n`, then per edge `u64 left, u64 right, f64 sim, f64 t`,
    /// all little-endian. Each edge is written once (`left < right`).
    pub fn write_aux(&mut self, now: f64, out: &mut Vec<u8>) {
        self.advance(now);
        self.sweep();
        let count_at = out.len();
        out.extend_from_slice(&0u64.to_le_bytes());
        let mut n = 0u64;
        for (&node, block) in &self.adj {
            for e in block.entries() {
                if node < e.neighbor {
                    out.extend_from_slice(&node.to_le_bytes());
                    out.extend_from_slice(&e.neighbor.to_le_bytes());
                    out.extend_from_slice(&e.similarity.to_le_bytes());
                    out.extend_from_slice(&e.t.to_le_bytes());
                    n += 1;
                }
            }
        }
        out[count_at..count_at + 8].copy_from_slice(&n.to_le_bytes());
    }

    /// Restores the edge set written by [`SimilarityGraph::write_aux`]
    /// into an empty graph and arms the replay suppression set.
    pub fn load_aux(&mut self, bytes: &[u8]) -> Result<(), String> {
        if self.edges_added != 0 {
            return Err("graph aux must load into an empty graph".into());
        }
        let mut r = Reader(bytes);
        let n = r.u64()?;
        let mut edges = Vec::with_capacity(n.min(1 << 24) as usize);
        for _ in 0..n {
            let l = r.u64()?;
            let rgt = r.u64()?;
            let sim = f64::from_bits(r.u64()?);
            let t = f64::from_bits(r.u64()?);
            if !(sim.is_finite() && t.is_finite()) {
                return Err("graph aux: non-finite edge field".into());
            }
            edges.push((l, rgt, sim, t));
        }
        if !r.0.is_empty() {
            return Err(format!("graph aux: {} trailing bytes", r.0.len()));
        }
        // Stamps must enter the monotone queue in order.
        edges.sort_by(|a, b| a.3.partial_cmp(&b.3).expect("finite stamps"));
        for &(l, rgt, sim, t) in &edges {
            self.insert_edge(l, rgt, sim, t);
            self.restored.insert((l, rgt));
            if t > self.now {
                self.now = t;
            }
        }
        // No engine re-delivers a pair later than the restored
        // watermark plus 2× the horizon (MiniBatch probes at most 2τ
        // apart); past that the set is dead weight and is cleared.
        self.restored_deadline = self.now + 2.0 * self.horizon;
        self.uf_valid = false;
        Ok(())
    }
}

/// A bounds-checked little-endian byte reader.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn u64(&mut self) -> Result<u64, String> {
        if self.0.len() < 8 {
            return Err("graph aux: truncated".into());
        }
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(edges: &[Edge]) -> Vec<u64> {
        edges.iter().map(|e| e.neighbor).collect()
    }

    #[test]
    fn edges_expire_at_the_horizon() {
        let mut g = SimilarityGraph::new(10.0);
        g.add_edge(0, 1, 0.9, 0.0);
        g.add_edge(0, 2, 0.8, 5.0);
        assert_eq!(ids(&g.neighbors(0, 5.0)), vec![1, 2]);
        // t=0 edge dies once now − t > τ.
        assert_eq!(ids(&g.neighbors(0, 10.0)), vec![1, 2], "t=τ still live");
        assert_eq!(ids(&g.neighbors(0, 10.1)), vec![2]);
        assert_eq!(g.neighbors(1, 10.1).len(), 0);
        assert_eq!(g.stats(10.1).edges, 1);
    }

    #[test]
    fn topk_ranks_by_similarity_with_id_tiebreak() {
        let mut g = SimilarityGraph::new(f64::INFINITY);
        g.add_edge(0, 1, 0.7, 0.0);
        g.add_edge(0, 2, 0.9, 1.0);
        g.add_edge(0, 3, 0.8, 2.0);
        g.add_edge(0, 4, 0.8, 3.0);
        let top = g.topk(0, 3, 3.0);
        assert_eq!(ids(&top), vec![2, 3, 4], "0.9, then 0.8 ties by id");
        assert_eq!(ids(&g.topk(0, 10, 3.0)), vec![2, 3, 4, 1]);
        assert!(g.topk(0, 0, 3.0).is_empty());
        assert!(g.topk(99, 3, 3.0).is_empty());
    }

    #[test]
    fn topk_simd_prefilter_matches_full_heap_scan() {
        // High-degree node (several SIMD chunks) with heavy similarity
        // ties so the `≥` filter's tie-keeping and the heap's id
        // tiebreak both get exercised; oracle is the plain all-push
        // k-heap the prefilter claims to reproduce exactly.
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut g = SimilarityGraph::new(f64::INFINITY);
        let mut edges = Vec::new();
        for i in 0..500u64 {
            let sim = (rng.random_range(0..20u32) as f64) / 20.0;
            g.add_edge(0, i + 1, sim, i as f64 * 0.01);
            edges.push(Edge {
                neighbor: i + 1,
                similarity: sim,
                t: i as f64 * 0.01,
            });
        }
        for k in [1, 3, 17, 64, 200, 600] {
            let mut heap = std::collections::BinaryHeap::new();
            for e in &edges {
                heap.push(RankedEdge(*e));
                if heap.len() > k {
                    heap.pop();
                }
            }
            let want: Vec<u64> = heap
                .into_sorted_vec()
                .into_iter()
                .map(|r| r.0.neighbor)
                .collect();
            assert_eq!(ids(&g.topk(0, k, 5.0)), want, "k={k}");
        }
    }

    #[test]
    fn strided_expiry_matches_binary_search() {
        // Degree past the SIMD threshold (> 128) so the strided kernel
        // path actually runs; the horizon semantics must be identical
        // to the generic binary-search expiry.
        let mut g = SimilarityGraph::new(2.0);
        for i in 0..300u64 {
            g.add_edge(0, i + 1, 0.9, i as f64 * 0.01);
        }
        // now = 4.0 ⇒ cutoff 2.0 ⇒ edges with t < 2.0 (i < 200) die.
        let live = g.neighbors(0, 4.0);
        assert_eq!(live.len(), 100);
        assert!(live.iter().all(|e| e.t >= 2.0));
    }

    #[test]
    fn components_merge_and_split_with_expiry() {
        let mut g = SimilarityGraph::new(10.0);
        g.add_edge(0, 1, 0.9, 0.0); // bridge, expires first
        g.add_edge(1, 2, 0.9, 6.0);
        g.add_edge(3, 4, 0.9, 6.0);
        // One component {0,1,2}, one {3,4}.
        assert_eq!(g.component(2, 6.0), Some((0, 3)));
        assert_eq!(g.component(3, 6.0), Some((3, 2)));
        assert_eq!(g.stats(6.0).components, 2);
        // The bridge expires: 0 drops out, {1,2} remains.
        assert_eq!(g.component(1, 11.0), Some((1, 2)));
        assert_eq!(g.component(0, 11.0), None);
        let s = g.stats(11.0);
        assert_eq!((s.nodes, s.edges, s.components), (4, 2, 2));
    }

    #[test]
    fn incremental_unions_between_rebuilds_stay_exact() {
        let mut g = SimilarityGraph::new(100.0);
        g.add_edge(0, 1, 0.9, 0.0);
        assert_eq!(g.component(0, 0.0), Some((0, 2))); // builds the UF
        g.add_edge(2, 3, 0.9, 1.0); // incremental singleton pair
        g.add_edge(1, 2, 0.9, 2.0); // incremental merge
        assert_eq!(g.component(3, 2.0), Some((0, 4)));
    }

    #[test]
    fn aux_roundtrip_restores_edges_and_suppresses_replay() {
        let mut g = SimilarityGraph::new(10.0);
        g.add_edge(0, 1, 0.9, 1.0);
        g.add_edge(1, 2, 0.8, 2.0);
        let mut aux = Vec::new();
        g.write_aux(2.0, &mut aux);

        let mut r = SimilarityGraph::new(10.0);
        r.load_aux(&aux).unwrap();
        assert_eq!(ids(&r.neighbors(1, 2.0)), vec![0, 2]);
        assert_eq!(r.live_edges(), 2);
        // Replay re-delivers (0,1): suppressed, not duplicated.
        r.add_edge(0, 1, 0.9, 1.0);
        assert_eq!(r.live_edges(), 2);
        assert_eq!(ids(&r.neighbors(0, 2.0)), vec![1]);
        // A genuinely new pair still lands.
        r.add_edge(2, 3, 0.7, 3.0);
        assert_eq!(r.live_edges(), 3);
        assert_eq!(r.component(3, 3.0), Some((0, 4)));
    }

    #[test]
    fn aux_rejects_garbage() {
        let mut g = SimilarityGraph::new(10.0);
        assert!(g.load_aux(&[1, 2, 3]).is_err());
        let mut ok = Vec::new();
        SimilarityGraph::new(10.0).write_aux(0.0, &mut ok);
        ok.push(0);
        let mut g = SimilarityGraph::new(10.0);
        assert!(g.load_aux(&ok).is_err(), "trailing bytes");
    }

    #[test]
    fn sweep_releases_expired_nodes() {
        let mut g = SimilarityGraph::new(1.0);
        for i in 0..3000u64 {
            g.add_edge(2 * i, 2 * i + 1, 0.9, i as f64);
        }
        // Every edge but the last few expired; the add-path sweep must
        // keep the node table bounded (≤ ~2 nodes per expired edge in
        // the 1024-expiry amortisation window) without any query.
        assert!(
            g.adj.len() < 2100,
            "sweep must GC dead nodes: {}",
            g.adj.len()
        );
        assert_eq!(g.stats(2999.0).edges, 2);
    }
}

#![warn(missing_docs)]
//! `sssj-graph` — a live similarity-graph query subsystem over the
//! join's pair stream.
//!
//! Every engine in the workspace ends at the same place: a flat stream
//! of similar pairs the caller drains and drops. A production
//! deployment (the ROADMAP's heavy-traffic north star) needs that
//! output as **queryable live state** — *who is similar to item X right
//! now*, *X's top-k neighbours*, *which cluster is X in* — not a
//! firehose. This crate maintains exactly that: an incrementally
//! updated, horizon-aware similarity graph consumed from any engine's
//! pair output, opening a read-heavy query-serving workload on top of
//! the write-heavy join path.
//!
//! * [`SimilarityGraph`] — the store: per-node adjacency in the flat
//!   single-allocation block idiom of the posting lists
//!   ([`sssj_collections::TimedBlock`]), edges stamped with delivery
//!   time and expired at `now − τ` by binary search; top-k neighbour
//!   queries served from a k-sized heap; connected components via
//!   union-find that grows incrementally on additions and is rebuilt
//!   per epoch when expiry invalidates it.
//! * [`GraphJoin`] / [`GraphHandle`] — the ingest tap
//!   ([`sssj_core::PairSink`] behind [`sssj_core::SinkedJoin`]) and the
//!   cloneable query handle. For sharded engines the tap hangs off the
//!   *driver*, which already funnels every worker's batched pair
//!   returns.
//! * [`GraphSnapshot`] — the read-scaling half: the handle batches
//!   ingest into a write-side graph behind one mutex and publishes
//!   immutable snapshots (RCU-style `Arc` swap) at a bounded cadence,
//!   so concurrent readers ([`GraphHandle::snapshot`]) are wait-free at
//!   steady state and never contend with ingest. Staleness is explicit
//!   — [`GraphSnapshot::watermark`] — and bounded by the cadence;
//!   `SSSJ_GRAPH_ORACLE=1` forces the old Mutex read path as the
//!   differential oracle.
//! * [`GraphedEngine`] — the [`sssj_core::Checkpointable`] variant: in
//!   `…&durable=<dir>&graph` pipelines the graph lives inside the
//!   durability boundary and its live edge set rides the checkpoint aux
//!   blob, so recovery restores edges whose member records are already
//!   behind the WAL horizon.
//!
//! # Spec integration
//!
//! The `graph` wrapper key stands a graph up declaratively through the
//! one spec factory — [`register_spec_builder`] hooks the constructors
//! into [`sssj_core::JoinSpec::build`]:
//!
//! ```
//! sssj_graph::register_spec_builder();
//! let spec: sssj_core::JoinSpec = "str-l2?theta=0.6&tau=10&graph".parse().unwrap();
//! let (mut join, graph) = sssj_graph::build_with_handle(&spec).unwrap();
//! # use sssj_core::StreamJoin;
//! # use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};
//! let mut out = Vec::new();
//! for (i, t) in [0.0, 1.0, 2.0].into_iter().enumerate() {
//!     let r = StreamRecord::new(i as u64, Timestamp::new(t), unit_vector(&[(7, 1.0)]));
//!     join.process(&r, &mut out);
//! }
//! // Three near-duplicates: record 1 is similar to both 0 and 2.
//! assert_eq!(graph.neighbors(1, 2.0).len(), 2);
//! assert_eq!(graph.component(0, 2.0), Some((0, 3)));
//! let top = graph.topk(1, 1, 2.0);
//! assert_eq!(top[0].neighbor, 0, "equal scores tie-break to the smaller id");
//! ```
//!
//! The query surface is wired through every serving layer: the net
//! protocol's `QUERY neighbors|topk|component|stats` and
//! `SUBSCRIBE <node>` verbs (see `sssj_net::protocol`), the CLI's
//! `sssj graph` command, and `serve`/`net-serve` sessions configured
//! with a `…&graph` spec.

pub mod graph;
pub mod join;
pub mod snapshot;

use std::cell::RefCell;

use sssj_core::{Checkpointable, JoinSpec, SpecError, StreamJoin, WrapperSpec};

pub use graph::{Edge, ExpiredEdge, GraphStats, SimilarityGraph};
pub use join::{GraphDelta, GraphHandle, GraphJoin, GraphedEngine};
pub use snapshot::GraphSnapshot;

thread_local! {
    /// The handle of the most recent graph built on this thread through
    /// the spec hooks. `JoinSpec::build` type-erases its product, so the
    /// hooks park each fresh handle here for [`build_with_handle`] to
    /// collect — build is synchronous, making the slot race-free.
    static LAST_HANDLE: RefCell<Option<GraphHandle>> = const { RefCell::new(None) };
    /// One-shot arming for expired-edge capture, consumed by the next
    /// [`GraphHandle::new`] on this thread (see
    /// [`collect_expired_edges_on_next_build`]).
    static COLLECT_NEXT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn stash(handle: GraphHandle) {
    LAST_HANDLE.with(|slot| *slot.borrow_mut() = Some(handle));
}

/// Arms expired-edge capture for the next graph built on this thread
/// (one-shot). The historical tier calls this before building a
/// `…&durable&graph&history` pipeline: the graph is constructed deep
/// inside the type-erased spec factory, and capture must be on *before*
/// recovery restores checkpointed edges — otherwise edges expiring
/// during replay would vanish instead of reaching the compactor.
pub fn collect_expired_edges_on_next_build() {
    COLLECT_NEXT.with(|c| c.set(true));
}

/// Consumes the one-shot arming (internal; `GraphHandle::new` calls it).
pub(crate) fn take_collect_expired_arming() -> bool {
    COLLECT_NEXT.with(|c| c.replace(false))
}

/// Takes the handle stashed by the most recent graph build on this
/// thread, if any. Builders that *compose* the graph hooks (the
/// historical tier drives [`sssj_store::DurableJoin`]: the graph is
/// built inside `DurableJoin::open`, several layers below the caller)
/// use this to recover the handle `build_with_handle` cannot reach.
///
/// [`sssj_store::DurableJoin`]: https://docs.rs/sssj-store
pub fn take_stashed_handle() -> Option<GraphHandle> {
    LAST_HANDLE.with(|slot| slot.borrow_mut().take())
}

/// Registers the graph constructors with the [`sssj_core::spec`]
/// factory, so `…&graph` [`JoinSpec`]s build a [`GraphJoin`] (or, under
/// `durable=`, a [`GraphedEngine`] inside the durable base). Idempotent;
/// every workspace binary calls it at startup (via
/// `sssj_net::register_spec_builders`).
pub fn register_spec_builder() {
    sssj_core::spec::register_graph_builder(|inner, spec| {
        let join = GraphJoin::new(inner, spec.horizon());
        stash(join.handle());
        Box::new(join) as Box<dyn StreamJoin>
    });
    sssj_core::spec::register_graph_checkpointable_builder(|spec| {
        let mut bare = spec.clone();
        bare.wrappers.clear();
        let inner = bare.build_checkpointable()?;
        let engine = GraphedEngine::new(inner, spec.horizon());
        stash(engine.handle());
        Ok(Box::new(engine) as Box<dyn Checkpointable>)
    });
}

/// Builds a `graph`-wrapped spec through the one factory **and** hands
/// back the graph's query handle — what the net session and the CLI use
/// so queries can be served against the running join. Fails with
/// [`SpecError::Invalid`] when the spec has no `graph` wrapper.
pub fn build_with_handle(spec: &JoinSpec) -> Result<(Box<dyn StreamJoin>, GraphHandle), SpecError> {
    register_spec_builder();
    if !spec
        .wrappers
        .iter()
        .any(|w| matches!(w, WrapperSpec::Graph))
    {
        return Err(SpecError::Invalid(
            "build_with_handle requires a graph-wrapped spec (append &graph)".into(),
        ));
    }
    LAST_HANDLE.with(|slot| slot.borrow_mut().take());
    let join = spec.build()?;
    let handle = LAST_HANDLE
        .with(|slot| slot.borrow_mut().take())
        .expect("the graph hook stashes a handle for every graph build");
    Ok((join, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_core::{run_stream, StreamJoin};
    use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};

    fn rec(id: u64, t: f64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::new(t), unit_vector(entries))
    }

    #[test]
    fn spec_factory_builds_a_graph_join() {
        register_spec_builder();
        let spec: JoinSpec = "str-l2?theta=0.6&tau=10&graph".parse().unwrap();
        let mut join = spec.build().unwrap();
        assert_eq!(join.name(), "graph(STR-L2)");
        join.finish(&mut Vec::new());
    }

    #[test]
    fn build_with_handle_requires_the_wrapper() {
        let spec: JoinSpec = "str-l2?theta=0.6&tau=10".parse().unwrap();
        assert!(matches!(
            build_with_handle(&spec),
            Err(SpecError::Invalid(_))
        ));
    }

    #[test]
    fn graph_tracks_the_pair_stream_with_expiry() {
        let spec: JoinSpec = "str-l2?theta=0.5&tau=5&graph".parse().unwrap();
        let (mut join, graph) = build_with_handle(&spec).unwrap();
        let stream: Vec<StreamRecord> = [
            (0u64, 0.0),
            (1, 1.0),
            (2, 8.0), // 0-1 edge (t=1) expires at 8-5=3 cutoff? 1 < 3: yes
            (3, 8.5),
        ]
        .into_iter()
        .map(|(i, t)| rec(i, t, &[(7, 1.0)]))
        .collect();
        let pairs = run_stream(join.as_mut(), &stream);
        // Graph edges mirror the emitted pairs, minus expiry.
        assert!(!pairs.is_empty());
        let now = 8.5;
        // The (0,1) edge (delivered at t=1) is long expired.
        assert!(graph.neighbors(0, now).is_empty());
        // 2 and 3 pair with each other (Δt=0.5).
        assert_eq!(graph.neighbors(2, now).len(), 1);
        assert_eq!(graph.component(3, now), Some((2, 2)));
        let s = graph.stats(now);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn double_build_on_one_thread_keeps_handles_and_arming_distinct() {
        // Two graph builds back to back on one thread: each
        // `build_with_handle` must hand back its *own* graph's handle,
        // and the one-shot expired-edge arming must apply to exactly
        // the next build — the regression the thread-local stash
        // invited (a stale stash or a stolen arming would corrupt the
        // second pipeline silently).
        let spec: JoinSpec = "str-l2?theta=0.6&tau=1&graph".parse().unwrap();
        collect_expired_edges_on_next_build();
        let (mut j1, g1) = build_with_handle(&spec).unwrap();
        let (mut j2, g2) = build_with_handle(&spec).unwrap();
        let stream: Vec<StreamRecord> = [(0u64, 0.0), (1, 0.5), (2, 10.0), (3, 10.2)]
            .into_iter()
            .map(|(i, t)| rec(i, t, &[(7, 1.0)]))
            .collect();
        let p1 = run_stream(j1.as_mut(), &stream);
        let p2 = run_stream(j2.as_mut(), &stream);
        assert!(!p1.is_empty() && p1.len() == p2.len());
        // The graphs are distinct instances fed by their own joins;
        // the stats query sweeps, which is what captures expiry.
        assert_eq!(g1.stats(10.2), g2.stats(10.2));
        // g1 consumed the arming: it captured the expired (0,1) edge;
        // g2 (built second, unarmed) captured nothing.
        assert!(!g1.take_expired().is_empty(), "first build was armed");
        assert!(g2.take_expired().is_empty(), "arming is one-shot");
    }

    #[test]
    fn explicit_constructor_never_consumes_the_arming() {
        // A handle built directly (the net event loop's path) must not
        // steal an arming intended for the next spec build.
        collect_expired_edges_on_next_build();
        let _side = GraphHandle::with_options(1.0, false);
        let spec: JoinSpec = "str-l2?theta=0.6&tau=1&graph".parse().unwrap();
        let (mut j, g) = build_with_handle(&spec).unwrap();
        let stream: Vec<StreamRecord> = [(0u64, 0.0), (1, 0.5), (2, 10.0), (3, 10.2)]
            .into_iter()
            .map(|(i, t)| rec(i, t, &[(7, 1.0)]))
            .collect();
        run_stream(j.as_mut(), &stream);
        g.stats(10.2); // sweep, capturing the expired (0,1) edge
        assert!(
            !g.take_expired().is_empty(),
            "the spec build still got the arming"
        );
    }

    #[test]
    fn sharded_driver_feeds_the_sink() {
        sssj_parallel::register_spec_builder();
        let spec: JoinSpec = "sharded?theta=0.5&tau=10&shards=2&inner=str-l2&graph"
            .parse()
            .unwrap();
        let (mut join, graph) = build_with_handle(&spec).unwrap();
        assert_eq!(join.name(), "graph(STR-L2x2)");
        let stream: Vec<StreamRecord> = (0..20)
            .map(|i| rec(i, i as f64 * 0.1, &[(7, 1.0)]))
            .collect();
        let pairs = run_stream(join.as_mut(), &stream);
        assert_eq!(graph.live_edges() as usize, pairs.len());
        assert_eq!(graph.stats(1.9).components, 1);
        assert_eq!(graph.neighbors(0, 1.9).len(), 19);
    }
}

//! Concurrency differential suite for the snapshot read path: one
//! ingest thread hammers a handle while N query threads read snapshots,
//! and **every** answer must equal a brute-force replay of the delivery
//! log truncated at that snapshot's own watermark.
//!
//! Verification is post-hoc by construction: delivery stamps are
//! strictly increasing, and the ingest thread logs each edge *before*
//! adding it, so for any published watermark `w` the graph state equals
//! exactly the log prefix with `t ≤ w` (an edge logged but unadded at
//! publish time has `t > w`). Checking against the live graph instead
//! would race — by the time a probe is compared the writer may have
//! advanced past `w` and swept edges that were live at `w`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use sssj_graph::{GraphHandle, GraphStats, SimilarityGraph};

/// left, right, sim, stamp — stamps strictly increasing.
type LogEntry = (u64, u64, f64, f64);

/// One snapshot observation taken by a query thread.
struct Probe {
    watermark: f64,
    node: u64,
    neighbors: Vec<(u64, f64)>,
    topk: Vec<(u64, f64)>,
    component: Option<(u64, u64)>,
    stats: GraphStats,
}

/// Deterministic clustered edge stream: ids in a few dozen clusters so
/// components merge and split as the horizon slides.
fn edge_stream(n: usize) -> Vec<LogEntry> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..n)
        .map(|i| {
            let cluster = next() % 24;
            let a = cluster * 8 + next() % 8;
            let mut b = cluster * 8 + next() % 8;
            if b == a {
                b = cluster * 8 + (a + 1) % 8;
            }
            let sim = 0.5 + (next() % 1000) as f64 / 2000.0;
            (a.min(b), a.max(b), sim, i as f64 * 0.05)
        })
        .collect()
}

fn pairs_of(edges: &[sssj_graph::Edge]) -> Vec<(u64, f64)> {
    edges.iter().map(|e| (e.neighbor, e.similarity)).collect()
}

#[test]
fn snapshot_reads_under_concurrent_ingest_match_the_log_prefix() {
    const HORIZON: f64 = 20.0;
    const EDGES: usize = 12_000;
    const QUERY_THREADS: usize = 3;

    let stream = Arc::new(edge_stream(EDGES));
    let handle = GraphHandle::with_options(HORIZON, false);
    // The log the verifier replays: filled strictly ahead of the graph.
    let log: Arc<Mutex<Vec<LogEntry>>> = Arc::new(Mutex::new(Vec::with_capacity(EDGES)));
    let done = Arc::new(AtomicBool::new(false));

    let ingest = {
        let (handle, log, done, stream) = (
            handle.clone(),
            Arc::clone(&log),
            Arc::clone(&done),
            Arc::clone(&stream),
        );
        std::thread::spawn(move || {
            for &(l, r, sim, t) in stream.iter() {
                log.lock().unwrap().push((l, r, sim, t));
                handle.add_edge(l, r, sim, t);
            }
            done.store(true, Ordering::Release);
        })
    };

    let queriers: Vec<_> = (0..QUERY_THREADS)
        .map(|q| {
            let (handle, done, stream) = (handle.clone(), Arc::clone(&done), Arc::clone(&stream));
            std::thread::spawn(move || {
                let mut probes = Vec::new();
                let mut i = q;
                while !done.load(Ordering::Acquire) || probes.len() < 50 {
                    let snap = handle.snapshot();
                    let w = snap.watermark();
                    // Probe a node likely to be live near the watermark.
                    let node = stream[(i * 37) % stream.len()].0;
                    i += 1;
                    probes.push(Probe {
                        watermark: w,
                        node,
                        neighbors: pairs_of(&snap.neighbors(node, w)),
                        topk: pairs_of(&snap.topk(node, 3, w)),
                        component: snap.component(node, w),
                        stats: snap.stats(w),
                    });
                    if probes.len() >= 4000 {
                        break;
                    }
                }
                probes
            })
        })
        .collect();

    ingest.join().unwrap();
    let mut probes: Vec<Probe> = queriers
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let log = Arc::try_unwrap(log).ok().unwrap().into_inner().unwrap();
    assert_eq!(log.len(), EDGES);
    assert!(
        probes.iter().any(|p| p.watermark.is_finite()),
        "at least some probes must have seen published state"
    );

    // Replay the log incrementally, verifying probes in watermark order.
    probes.sort_by(|a, b| a.watermark.total_cmp(&b.watermark));
    let mut oracle = SimilarityGraph::new(HORIZON);
    let mut cursor = 0usize;
    for p in &probes {
        while cursor < log.len() && log[cursor].3 <= p.watermark {
            let (l, r, sim, t) = log[cursor];
            oracle.add_edge(l, r, sim, t);
            cursor += 1;
        }
        let w = p.watermark;
        assert_eq!(
            p.neighbors,
            pairs_of(&oracle.neighbors(p.node, w)),
            "neighbors({}) at watermark {w}",
            p.node
        );
        assert_eq!(
            p.topk,
            pairs_of(&oracle.topk(p.node, 3, w)),
            "topk({}) at watermark {w}",
            p.node
        );
        assert_eq!(
            p.component,
            oracle.component(p.node, w),
            "component({}) at watermark {w}",
            p.node
        );
        assert_eq!(p.stats, oracle.stats(w), "stats at watermark {w}");
    }
}

#[test]
fn snapshot_and_oracle_handles_agree_on_the_same_stream() {
    // The flagged Mutex path and the snapshot path, fed identically,
    // must answer identically at any query time — including times that
    // advance the clock past the last delivery.
    const HORIZON: f64 = 10.0;
    let snapshotting = GraphHandle::with_options(HORIZON, false);
    let oracle = GraphHandle::new_oracle(HORIZON);
    for &(l, r, sim, t) in &edge_stream(3_000) {
        snapshotting.add_edge(l, r, sim, t);
        oracle.add_edge(l, r, sim, t);
    }
    let last_t = 3_000.0 * 0.05;
    for now in [last_t * 0.5, last_t, last_t + HORIZON * 0.5] {
        for node in 0..192u64 {
            assert_eq!(
                pairs_of(&snapshotting.neighbors(node, now)),
                pairs_of(&oracle.neighbors(node, now)),
                "neighbors({node}) at {now}"
            );
            assert_eq!(
                pairs_of(&snapshotting.topk(node, 4, now)),
                pairs_of(&oracle.topk(node, 4, now)),
                "topk({node}) at {now}"
            );
            assert_eq!(
                snapshotting.component(node, now),
                oracle.component(node, now),
                "component({node}) at {now}"
            );
        }
        assert_eq!(snapshotting.stats(now), oracle.stats(now), "stats at {now}");
    }
}

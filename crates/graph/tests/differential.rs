//! Differential suite for the live similarity graph: after **any
//! prefix** of the stream, graph queries — neighbour sets, top-k,
//! components — must equal a brute-force recomputation from the
//! engine's emitted-pair log, for str/mb/decay/sharded inners × random
//! horizons.
//!
//! The brute force consumes the *same delivery log* the graph does
//! (pairs as they surface from `process`/`finish`, stamped with the
//! delivering record's time), so engines that report with delay
//! (MiniBatch windows, sharded batches — whose delivery timing is even
//! nondeterministic across runs) are compared against their own
//! observed behaviour, which is exactly the graph's contract: it
//! mirrors the pair *stream*, not a hypothetical oracle.

use proptest::prelude::*;
use sssj_core::{JoinSpec, StreamJoin};
use sssj_graph::{build_with_handle, GraphHandle};
use sssj_types::{SimilarPair, SparseVectorBuilder, StreamRecord, Timestamp};

/// One delivery-log entry: the pair plus its delivery stamp.
type LogEntry = (u64, u64, f64, f64); // left, right, sim, stamp

/// Brute-force model of the graph at `now`: live log entries only.
struct BruteForce<'a> {
    log: &'a [LogEntry],
    horizon: f64,
    now: f64,
}

impl BruteForce<'_> {
    fn live(&self) -> impl Iterator<Item = &LogEntry> + '_ {
        self.log.iter().filter(|e| self.now - e.3 <= self.horizon)
    }

    /// `(neighbor, sim)` pairs of `node`, sorted by neighbour id.
    fn neighbors(&self, node: u64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .live()
            .filter_map(|&(l, r, sim, _)| {
                if l == node {
                    Some((r, sim))
                } else if r == node {
                    Some((l, sim))
                } else {
                    None
                }
            })
            .collect();
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// Top-k by (sim desc, neighbour id asc).
    fn topk(&self, node: u64, k: usize) -> Vec<(u64, f64)> {
        let mut all = self.neighbors(node);
        all.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite sims")
                .then(a.0.cmp(&b.0))
        });
        all.truncate(k);
        all
    }

    /// `(min member id, size)` of `node`'s component, `None` if isolated.
    fn component(&self, node: u64) -> Option<(u64, u64)> {
        // Tiny union-find over the live node set.
        let mut nodes: Vec<u64> = self.live().flat_map(|&(l, r, _, _)| [l, r]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let idx = |x: u64| nodes.binary_search(&x).ok();
        idx(node)?;
        let mut parent: Vec<usize> = (0..nodes.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(l, r, _, _) in self.live() {
            let (a, b) = (idx(l).unwrap(), idx(r).unwrap());
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
        }
        let root = find(&mut parent, idx(node).unwrap());
        let members: Vec<u64> = (0..nodes.len())
            .filter(|&i| find(&mut parent, i) == root)
            .map(|i| nodes[i])
            .collect();
        Some((members[0], members.len() as u64))
    }

    fn stats(&self) -> (u64, u64, u64) {
        let mut nodes: Vec<u64> = self.live().flat_map(|&(l, r, _, _)| [l, r]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let edges = self.live().count() as u64;
        let mut components = 0u64;
        let mut seen = vec![false; nodes.len()];
        for (i, &n) in nodes.iter().enumerate() {
            if !seen[i] {
                components += 1;
                // Mark n's whole component via repeated BFS over live edges.
                let mut stack = vec![n];
                while let Some(x) = stack.pop() {
                    let xi = nodes.binary_search(&x).unwrap();
                    if seen[xi] {
                        continue;
                    }
                    seen[xi] = true;
                    for &(l, r, _, _) in self.live() {
                        if l == x {
                            stack.push(r);
                        } else if r == x {
                            stack.push(l);
                        }
                    }
                }
            }
        }
        (nodes.len() as u64, edges, components)
    }
}

fn clustered_stream(seed: u64, n: usize, clusters: u32) -> Vec<StreamRecord> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n as u64)
        .map(|i| {
            t += rng.random_range(0.0..0.4);
            let u: f64 = rng.random_range(0.0..1.0);
            let cluster = ((u * u) * clusters as f64) as u32;
            let base = cluster * 32;
            let entries: Vec<(u32, f64)> = (0..rng.random_range(1..6))
                .map(|_| {
                    let dim = if rng.random_range(0.0..1.0) < 0.05 {
                        rng.random_range(0..clusters * 32)
                    } else {
                        base + rng.random_range(0..12u32)
                    };
                    (dim, rng.random_range(0.1..1.0))
                })
                .collect();
            let mut b = SparseVectorBuilder::with_capacity(entries.len());
            for (d, w) in entries {
                b.push(d, w);
            }
            StreamRecord::new(i, Timestamp::new(t), b.build_normalized().unwrap())
        })
        .collect()
}

fn graph_neighbors(graph: &GraphHandle, node: u64, now: f64) -> Vec<(u64, f64)> {
    graph
        .neighbors(node, now)
        .iter()
        .map(|e| (e.neighbor, e.similarity))
        .collect()
}

fn graph_topk(graph: &GraphHandle, node: u64, k: usize, now: f64) -> Vec<(u64, f64)> {
    graph
        .topk(node, k, now)
        .iter()
        .map(|e| (e.neighbor, e.similarity))
        .collect()
}

/// Drives `spec` (graph wrapper appended) over the stream, probing the
/// graph against the brute-force log every `probe_every` records and at
/// the end. Returns the delivered-pair count as a sanity signal.
fn assert_graph_matches_log(spec: &str, stream: &[StreamRecord], probe_every: usize) -> usize {
    sssj_parallel::register_spec_builder();
    let spec: JoinSpec = format!("{spec}&graph")
        .parse()
        .unwrap_or_else(|e| panic!("{spec}: {e}"));
    let horizon = spec.horizon();
    let (mut join, graph) = build_with_handle(&spec).unwrap();
    let mut log: Vec<LogEntry> = Vec::new();
    let mut out: Vec<SimilarPair> = Vec::new();
    let mut last_t = f64::NEG_INFINITY;
    let mut probe_nodes: Vec<u64> = Vec::new();
    for (i, record) in stream.iter().enumerate() {
        out.clear();
        join.process(record, &mut out);
        last_t = last_t.max(record.t.seconds());
        for p in &out {
            log.push((p.left, p.right, p.similarity, last_t));
            probe_nodes.push(p.left);
        }
        if (i + 1) % probe_every == 0 {
            probe(&graph, &log, horizon, last_t, record.id, &probe_nodes);
        }
    }
    out.clear();
    join.finish(&mut out);
    for p in &out {
        log.push((p.left, p.right, p.similarity, last_t));
    }
    probe(
        &graph,
        &log,
        horizon,
        last_t,
        stream.last().map_or(0, |r| r.id),
        &probe_nodes,
    );
    log.len()
}

fn probe(
    graph: &GraphHandle,
    log: &[LogEntry],
    horizon: f64,
    now: f64,
    newest_id: u64,
    probe_nodes: &[u64],
) {
    let bf = BruteForce { log, horizon, now };
    // Probe a deterministic sample: recent pair members, the newest
    // record, and a node id that never appears.
    let mut nodes: Vec<u64> = probe_nodes.iter().rev().take(8).copied().collect();
    nodes.push(newest_id);
    nodes.push(u64::MAX);
    for node in nodes {
        let expected = bf.neighbors(node);
        let got = graph_neighbors(graph, node, now);
        assert_eq!(got, expected, "neighbors({node}) at now={now}");
        for k in [1usize, 3] {
            let expected = bf.topk(node, k);
            let got = graph_topk(graph, node, k, now);
            assert_eq!(got, expected, "topk({node}, {k}) at now={now}");
        }
        let expected = bf.component(node);
        let got = graph.component(node, now);
        assert_eq!(got, expected, "component({node}) at now={now}");
    }
    let (nodes, edges, components) = bf.stats();
    let s = graph.stats(now);
    assert_eq!(
        (s.nodes, s.edges, s.components),
        (nodes, edges, components),
        "stats at now={now}"
    );
}

#[test]
fn str_graph_matches_brute_force() {
    let stream = clustered_stream(41, 400, 6);
    for tau in [2.0, 7.5, 30.0] {
        let n = assert_graph_matches_log(&format!("str-l2?theta=0.5&tau={tau}"), &stream, 25);
        assert!(n > 0, "tau={tau}: the workload must produce pairs");
    }
}

#[test]
fn mb_graph_matches_brute_force() {
    // MB delivers within-window pairs late; the graph must mirror the
    // delivery log, late stamps included.
    let stream = clustered_stream(43, 350, 6);
    assert_graph_matches_log("mb-l2?theta=0.5&tau=5", &stream, 30);
}

#[test]
fn decay_graph_matches_brute_force() {
    let stream = clustered_stream(47, 300, 6);
    assert_graph_matches_log("decay?theta=0.5&model=window:6", &stream, 30);
}

#[test]
fn sharded_graph_matches_brute_force() {
    // The sink hangs off the driver: batched, nondeterministically
    // interleaved worker returns all funnel through one tap, and the
    // graph must agree with the log of that exact run.
    let stream = clustered_stream(53, 400, 6);
    for inner in ["str-l2", "mb-l2ap"] {
        assert_graph_matches_log(
            &format!("sharded?theta=0.5&tau=8&shards=3&inner={inner}"),
            &stream,
            40,
        );
    }
}

#[test]
fn topk_engine_graph_matches_brute_force() {
    // Even pair-dropping engines are valid graph sources: the graph
    // mirrors whatever stream they emit.
    let stream = clustered_stream(59, 250, 4);
    assert_graph_matches_log("topk-l2?theta=0.4&tau=6&k=2", &stream, 25);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random streams × random horizon × engine family: the graph
    /// always equals the brute-force recomputation at every probe.
    #[test]
    fn graph_queries_match_brute_force(
        seed in 0u64..500,
        n in 40usize..160,
        tau in 1.0f64..20.0,
        engine in prop_oneof![
            Just("str-l2"),
            Just("mb-l2"),
            Just("decay"),
            Just("sharded"),
        ],
    ) {
        let stream = clustered_stream(seed, n, 4);
        let spec = match engine {
            "decay" => format!("decay?theta=0.5&model=window:{tau}"),
            "sharded" => format!("sharded?theta=0.5&tau={tau}&shards=2&inner=str-l2"),
            e => format!("{e}?theta=0.5&tau={tau}"),
        };
        assert_graph_matches_log(&spec, &stream, 17);
    }
}

//! The durable integration: a `…&durable=<dir>&graph` pipeline
//! checkpoints the live edge set as engine aux, so a resumed session's
//! graph equals the uninterrupted one — without duplicated edges from
//! WAL replay and without relying on replay to regenerate edges whose
//! earlier member is behind the WAL horizon.

use std::path::PathBuf;

use sssj_core::{JoinSpec, StreamJoin};
use sssj_graph::build_with_handle;
use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sssj-graph-durable-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn rec(id: u64, t: f64, dim: u32) -> StreamRecord {
    StreamRecord::new(id, Timestamp::new(t), unit_vector(&[(dim, 1.0)]))
}

fn registered() {
    sssj_store::register_spec_builder();
    sssj_graph::register_spec_builder();
}

#[test]
fn clean_restart_restores_the_graph_without_duplicates() {
    registered();
    let dir = fresh_dir("clean");
    let spec: JoinSpec = format!("str-l2?theta=0.7&tau=10&durable={}&graph", dir.display())
        .parse()
        .unwrap();

    // First incarnation: records 0,1,2 on one dimension → 3 edges.
    let (mut join, graph) = build_with_handle(&spec).unwrap();
    assert_eq!(join.name(), "graph(STR-L2)+wal");
    let mut out = Vec::new();
    for (i, t) in [(0u64, 0.0), (1, 1.0), (2, 2.0)] {
        join.process(&rec(i, t, 7), &mut out);
    }
    join.finish(&mut out); // publishes the final checkpoint (graph aux)
    assert_eq!(out.len(), 3);
    assert_eq!(graph.live_edges(), 3);
    drop(join);

    // Second incarnation resumes: the graph is restored from aux, and
    // the checkpoint suppressed the replay tail — but even a re-played
    // pair must not duplicate an edge.
    let (mut join, graph) = build_with_handle(&spec).unwrap();
    assert_eq!(join.resume_point(), Some((3, 2.0)));
    assert_eq!(graph.live_edges(), 3, "restored from checkpoint aux");
    assert_eq!(graph.component(0, 2.0), Some((0, 3)));
    // A new arrival pairs with all three recovered records; the graph
    // grows to 6 edges, never 7+.
    let mut out = Vec::new();
    join.process(&rec(3, 2.5, 7), &mut out);
    join.finish(&mut out);
    assert_eq!(out.len(), 3, "{out:?}");
    assert_eq!(graph.live_edges(), 6);
    assert_eq!(graph.component(3, 2.5), Some((0, 4)));
    drop(join);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_without_checkpoint_rebuilds_the_graph_from_replay() {
    registered();
    let dir = fresh_dir("crash");
    let spec: JoinSpec = format!("str-l2?theta=0.7&tau=10&durable={}&graph", dir.display())
        .parse()
        .unwrap();

    let (mut join, _graph) = build_with_handle(&spec).unwrap();
    let mut out = Vec::new();
    for (i, t) in [(0u64, 0.0), (1, 1.0)] {
        join.process(&rec(i, t, 7), &mut out);
    }
    assert_eq!(out.len(), 1);
    drop(join); // crash: no finish, no checkpoint — WAL only

    let (mut join, graph) = build_with_handle(&spec).unwrap();
    // Replay regenerated the pair straight into the graph.
    assert_eq!(graph.live_edges(), 1);
    assert_eq!(graph.neighbors(0, 1.0).len(), 1);
    // The replay tail re-emits it (at-least-once), but the graph
    // counted it once.
    let mut out = Vec::new();
    join.process(&rec(2, 1.5, 7), &mut out);
    assert_eq!(graph.live_edges(), 3);
    join.finish(&mut out);
    drop(join);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_durable_graph_round_trips() {
    registered();
    sssj_parallel::register_spec_builder();
    let dir = fresh_dir("sharded");
    let spec: JoinSpec = format!(
        "sharded?theta=0.7&tau=10&shards=2&inner=str-l2&durable={}&graph",
        dir.display()
    )
    .parse()
    .unwrap();

    let (mut join, graph) = build_with_handle(&spec).unwrap();
    let mut out = Vec::new();
    for (i, t) in [(0u64, 0.0), (1, 0.5), (2, 1.0)] {
        join.process(&rec(i, t, 7), &mut out);
    }
    join.finish(&mut out);
    assert_eq!(graph.live_edges(), 3);
    drop(join);

    let (mut join, graph) = build_with_handle(&spec).unwrap();
    assert_eq!(graph.live_edges(), 3, "restored through the sharded cut");
    assert_eq!(graph.stats(1.0).components, 1);
    join.finish(&mut Vec::new());
    drop(join);
    let _ = std::fs::remove_dir_all(&dir);
}

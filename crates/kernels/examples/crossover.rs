//! Measures the probe↔merge crossover: for each |long|/|short| ratio,
//! times the merge and probe kernels under runtime dispatch and prints
//! which wins. Used to calibrate `sssj_types::PROBE_CROSSOVER`.

use std::hint::black_box;
use std::time::Instant;

fn sparse(n: usize, vocab: u32, seed: u64) -> (Vec<u32>, Vec<f64>) {
    // Tiny xorshift so the example needs no dev-deps.
    let mut s = seed | 1;
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut dims: Vec<u32> = (0..n * 2).map(|_| (next() % vocab as u64) as u32).collect();
    dims.sort_unstable();
    dims.dedup();
    dims.truncate(n);
    let weights = dims
        .iter()
        .map(|_| (next() % 1000) as f64 / 1000.0 + 0.01)
        .collect();
    (dims, weights)
}

fn time_ns(mut f: impl FnMut() -> f64) -> f64 {
    // Warm up, then best-of-5 × 20k iterations.
    for _ in 0..5_000 {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..20_000 {
            black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / 20_000.0);
    }
    best
}

fn main() {
    println!("lane: {}", sssj_kernels::active_lane().name());
    for short_n in [4usize, 8, 16] {
        for ratio in [4usize, 8, 12, 16, 20, 24, 32, 48, 64] {
            let long_n = short_n * ratio;
            let (sd, sw) = sparse(short_n, 60_000, 9 + short_n as u64);
            let (ld, lw) = sparse(long_n, 60_000, 77 + ratio as u64);
            if sd.len() < short_n || ld.len() < long_n {
                continue;
            }
            let merge = time_ns(|| sssj_kernels::dot_merge(&sd, &sw, &ld, &lw));
            let probe = time_ns(|| sssj_kernels::dot_probe(&sd, &sw, &ld, &lw));
            println!(
                "short={short_n:>2} ratio={ratio:>2} long={long_n:>4}  merge={merge:>7.1}ns  \
                 probe={probe:>7.1}ns  winner={}",
                if probe < merge { "probe" } else { "merge" }
            );
        }
    }
}

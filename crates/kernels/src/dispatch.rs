//! Runtime lane selection: CPU feature detection, environment override,
//! and an in-process force switch for A/B harnesses.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// An instruction-set lane a kernel can execute on, ordered from the
/// portable baseline upward. Every kernel supports [`Lane::Scalar`];
/// wider lanes are selected only when the CPU advertises them.
#[repr(u8)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// Portable Rust — the reference implementation of every kernel.
    Scalar = 1,
    /// SSE4.1: 128-bit integer compares (`pcmpeqd`) for the dim lanes.
    Sse41 = 2,
    /// AVX2: 256-bit `f64` arithmetic and gathers.
    Avx2 = 3,
}

impl Lane {
    fn from_u8(v: u8) -> Option<Lane> {
        match v {
            1 => Some(Lane::Scalar),
            2 => Some(Lane::Sse41),
            3 => Some(Lane::Avx2),
            _ => None,
        }
    }

    /// The lane's name as accepted by the `SSSJ_KERNELS` variable.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Scalar => "scalar",
            Lane::Sse41 => "sse4.1",
            Lane::Avx2 => "avx2",
        }
    }
}

/// In-process override installed by [`force_lane`]; `0` means "none".
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The widest lane the CPU supports. Cached after the first probe.
fn hardware_max() -> Lane {
    static HW: OnceLock<Lane> = OnceLock::new();
    *HW.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Lane::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse4.1") {
                return Lane::Sse41;
            }
        }
        Lane::Scalar
    })
}

/// The lane selected by the environment (or the hardware maximum when no
/// variable is set). Read once; [`force_lane`] exists because this cache
/// makes later `set_var` calls invisible.
fn detected() -> Lane {
    static DETECTED: OnceLock<Lane> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let requested = match std::env::var("SSSJ_KERNELS").as_deref() {
            Ok("scalar") => Some(Lane::Scalar),
            Ok("sse4.1") | Ok("sse41") => Some(Lane::Sse41),
            Ok("avx2") => Some(Lane::Avx2),
            // Unknown values fall through to auto rather than aborting:
            // a typo in CI must not silently change *correctness*, and
            // every lane computes the same answers.
            _ => None,
        };
        let requested = match requested {
            Some(lane) => Some(lane),
            None if std::env::var("SSSJ_FORCE_SCALAR").as_deref() == Ok("1") => Some(Lane::Scalar),
            None => None,
        };
        match requested {
            Some(lane) => lane.min(hardware_max()),
            None => hardware_max(),
        }
    })
}

/// The lane kernels will dispatch to right now.
///
/// Resolution order: [`force_lane`] override, then the `SSSJ_KERNELS`
/// environment variable (`scalar` | `sse4.1` | `avx2` | `auto`; the alias
/// `SSSJ_FORCE_SCALAR=1` also selects scalar), then the widest lane the
/// CPU supports. Requests are clamped to the hardware maximum, so asking
/// for `avx2` on an SSE-only machine degrades rather than faulting.
#[inline]
pub fn active_lane() -> Lane {
    match Lane::from_u8(FORCED.load(Ordering::Relaxed)) {
        Some(lane) => lane.min(hardware_max()),
        None => detected(),
    }
}

/// Forces every subsequent kernel call in this process onto `lane`
/// (clamped to the hardware maximum); `None` restores environment/auto
/// selection. This is the A/B switch used by the differential tests and
/// the micro benchmarks — the environment variable alone cannot serve,
/// because [`active_lane`] caches it on first use.
///
/// The override is process-global; concurrent benchmark threads flipping
/// it race benignly (every lane is correct) but will blur an A/B timing.
pub fn force_lane(lane: Option<Lane>) {
    FORCED.store(lane.map_or(0, |l| l as u8), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_ordered() {
        assert!(Lane::Scalar < Lane::Sse41);
        assert!(Lane::Sse41 < Lane::Avx2);
    }

    #[test]
    fn force_overrides_and_restores() {
        let auto = active_lane();
        force_lane(Some(Lane::Scalar));
        assert_eq!(active_lane(), Lane::Scalar);
        force_lane(None);
        assert_eq!(active_lane(), auto);
    }

    #[test]
    fn forced_lane_is_clamped_to_hardware() {
        force_lane(Some(Lane::Avx2));
        assert!(active_lane() <= super::hardware_max());
        force_lane(None);
    }

    #[test]
    fn names_roundtrip() {
        for lane in [Lane::Scalar, Lane::Sse41, Lane::Avx2] {
            assert!(!lane.name().is_empty());
        }
    }
}

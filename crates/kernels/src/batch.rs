//! Candidate-batch kernels: fused decay-bound lookup, score delta and
//! prune-threshold computation over a batch of packed postings.
//!
//! A posting batch arrives as raw 64-bit words — [`POSTING_WORDS`] per
//! posting, laid out `[id, weight, prefix_norm, t]` (the `#[repr(C)]`
//! layout of `sssj_collections::PackedPosting`, bit-cast by its
//! `as_words`). Weights and times travel as `f64` bit patterns; ids stay
//! integral and are only ever *moved*, never operated on, so routing
//! them through `f64` lanes is bit-preserving.
//!
//! **Bit-exact contract.** Every kernel here performs per-entry
//! independent arithmetic in the same operation order as its scalar
//! reference (no FMA, no reassociation), so the wide paths return
//! bit-identical outputs. The quantized decay lookup reproduces
//! `DecayTable::upper` exactly for every non-NaN gap: `Δt·inv_step` is
//! clamped into `[0, len-1]` *before* truncation, which matches the
//! reference's saturating `as usize` cast on both ends.
//!
//! Tiers: scalar reference + AVX2 (the wins are the 4×4 posting
//! transpose and the table gather, both 256-bit ideas; SSE4.1 falls back
//! to scalar).

use crate::dispatch::{active_lane, Lane};

/// Words per packed posting: `[id, weight, prefix_norm, t]`.
pub const POSTING_WORDS: usize = 4;
/// Word offset of the posting id.
pub const POSTING_ID: usize = 0;
/// Word offset of the posting weight (`f64` bits).
pub const POSTING_WEIGHT: usize = 1;
/// Word offset of the posting prefix norm (`f64` bits).
pub const POSTING_PREFIX: usize = 2;
/// Word offset of the posting timestamp (`f64` bits).
pub const POSTING_TIME: usize = 3;

/// Per-dimension invariants of the STR L2 candidate loop, fixed across
/// one posting-list traversal.
#[derive(Clone, Copy, Debug)]
pub struct L2BatchParams {
    /// The query's weight on this dimension.
    pub xj: f64,
    /// The query's arrival time.
    pub now: f64,
    /// `‖x‖` of the query prefix *before* this dimension.
    pub xnorm_before: f64,
    /// The query's remaining-suffix norm on this dimension.
    pub rs2: f64,
    /// `θ − ε`: the admission/prune threshold with safety slack.
    pub theta_slack: f64,
    /// `1/step` of the quantized decay table (must be positive — callers
    /// handle degenerate tables on the exact scalar path).
    pub inv_step: f64,
}

fn check_batch(raw: &[u64], outs: &[usize]) -> usize {
    assert_eq!(raw.len() % POSTING_WORDS, 0, "raw posting words");
    let n = raw.len() / POSTING_WORDS;
    for &len in outs {
        assert!(len >= n, "output buffer shorter than batch: {len} < {n}");
    }
    n
}

/// Fused STR-L2 candidate batch: for each posting, the decay upper bound
/// from the quantized table, the score delta `xj·w`, the prune threshold
/// `θₛ − ‖x₍<j₎‖·pn·df`, and the admission flag `rs2·df ≥ θₛ`.
///
/// `raw` is the packed-posting word stream; outputs are parallel arrays
/// of at least `raw.len()/4` entries. Gaps `now − t` must not be NaN.
pub fn l2_candidate_batch(
    raw: &[u64],
    p: &L2BatchParams,
    factors: &[f64],
    out_ids: &mut [u64],
    out_deltas: &mut [f64],
    out_prune_below: &mut [f64],
    out_admit: &mut [u8],
) {
    let n = check_batch(
        raw,
        &[
            out_ids.len(),
            out_deltas.len(),
            out_prune_below.len(),
            out_admit.len(),
        ],
    );
    assert!(!factors.is_empty() && p.inv_step > 0.0, "degenerate table");
    match active_lane() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: lane selection verified the feature; lengths checked.
        Lane::Avx2 => unsafe {
            l2_candidate_batch_avx2(
                raw,
                p,
                factors,
                out_ids,
                out_deltas,
                out_prune_below,
                out_admit,
            )
        },
        _ => l2_candidate_batch_scalar(
            0,
            n,
            raw,
            p,
            factors,
            out_ids,
            out_deltas,
            out_prune_below,
            out_admit,
        ),
    }
}

/// Scalar reference for [`l2_candidate_batch`] over entries `[from, to)`.
#[allow(clippy::too_many_arguments)]
fn l2_candidate_batch_scalar(
    from: usize,
    to: usize,
    raw: &[u64],
    p: &L2BatchParams,
    factors: &[f64],
    out_ids: &mut [u64],
    out_deltas: &mut [f64],
    out_prune_below: &mut [f64],
    out_admit: &mut [u8],
) {
    let max_idx = (factors.len() - 1) as f64;
    for i in from..to {
        let b = i * POSTING_WORDS;
        let w = f64::from_bits(raw[b + POSTING_WEIGHT]);
        let pn = f64::from_bits(raw[b + POSTING_PREFIX]);
        let t = f64::from_bits(raw[b + POSTING_TIME]);
        let dt = p.now - t;
        let pos = (dt * p.inv_step).min(max_idx).max(0.0);
        let df = factors[pos as usize];
        out_ids[i] = raw[b + POSTING_ID];
        out_deltas[i] = p.xj * w;
        out_prune_below[i] = p.theta_slack - p.xnorm_before * pn * df;
        out_admit[i] = (p.rs2 * df >= p.theta_slack) as u8;
    }
}

/// Like [`l2_candidate_batch`] but with per-posting decay factors `dfs`
/// supplied by the caller (the generic decay-model path computes them
/// with an exact transcendental; the kernel vectorizes the rest).
///
/// `rs2` may be `-∞` to veto admission wholesale: `-∞·df ≥ θₛ` is false
/// for every `df ≥ 0` (including the `NaN` from `-∞·0`, which compares
/// false under both scalar `>=` and the ordered SIMD predicate).
pub fn candidate_batch_with_df(
    raw: &[u64],
    dfs: &[f64],
    p: &L2BatchParams,
    out_ids: &mut [u64],
    out_deltas: &mut [f64],
    out_prune_below: &mut [f64],
    out_admit: &mut [u8],
) {
    let n = check_batch(
        raw,
        &[
            dfs.len(),
            out_ids.len(),
            out_deltas.len(),
            out_prune_below.len(),
            out_admit.len(),
        ],
    );
    match active_lane() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: lane selection verified the feature; lengths checked.
        Lane::Avx2 => unsafe {
            candidate_batch_with_df_avx2(
                raw,
                dfs,
                p,
                out_ids,
                out_deltas,
                out_prune_below,
                out_admit,
            )
        },
        _ => candidate_batch_with_df_scalar(
            0,
            n,
            raw,
            dfs,
            p,
            out_ids,
            out_deltas,
            out_prune_below,
            out_admit,
        ),
    }
}

/// Scalar reference for [`candidate_batch_with_df`] over `[from, to)`.
#[allow(clippy::too_many_arguments)]
fn candidate_batch_with_df_scalar(
    from: usize,
    to: usize,
    raw: &[u64],
    dfs: &[f64],
    p: &L2BatchParams,
    out_ids: &mut [u64],
    out_deltas: &mut [f64],
    out_prune_below: &mut [f64],
    out_admit: &mut [u8],
) {
    for i in from..to {
        let b = i * POSTING_WORDS;
        let w = f64::from_bits(raw[b + POSTING_WEIGHT]);
        let pn = f64::from_bits(raw[b + POSTING_PREFIX]);
        let df = dfs[i];
        out_ids[i] = raw[b + POSTING_ID];
        out_deltas[i] = p.xj * w;
        out_prune_below[i] = p.theta_slack - p.xnorm_before * pn * df;
        out_admit[i] = (p.rs2 * df >= p.theta_slack) as u8;
    }
}

/// The INV-index batch: ids and score deltas `xj·w` only (no norms, no
/// admission — INV admits every touched candidate).
pub fn posting_products(raw: &[u64], xj: f64, out_ids: &mut [u64], out_deltas: &mut [f64]) {
    let n = check_batch(raw, &[out_ids.len(), out_deltas.len()]);
    match active_lane() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: lane selection verified the feature; lengths checked.
        Lane::Avx2 => unsafe { posting_products_avx2(raw, xj, out_ids, out_deltas) },
        _ => posting_products_scalar(0, n, raw, xj, out_ids, out_deltas),
    }
}

fn posting_products_scalar(
    from: usize,
    to: usize,
    raw: &[u64],
    xj: f64,
    out_ids: &mut [u64],
    out_deltas: &mut [f64],
) {
    for i in from..to {
        let b = i * POSTING_WORDS;
        out_ids[i] = raw[b + POSTING_ID];
        out_deltas[i] = xj * f64::from_bits(raw[b + POSTING_WEIGHT]);
    }
}

/// Batched quantized decay bound: `out[i] = factors[clamp(dts[i]·inv_step)]`,
/// the vector form of `DecayTable::upper`. Requires a non-degenerate
/// table (`inv_step > 0`) and non-NaN gaps; negative gaps saturate to
/// bin 0 and over-horizon gaps clamp to the last bin, exactly like the
/// scalar table.
pub fn decay_upper_batch(dts: &[f64], inv_step: f64, factors: &[f64], out: &mut [f64]) {
    assert!(out.len() >= dts.len());
    assert!(!factors.is_empty() && inv_step > 0.0, "degenerate table");
    match active_lane() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: lane selection verified the feature; lengths checked.
        Lane::Avx2 => unsafe { decay_upper_batch_avx2(dts, inv_step, factors, out) },
        _ => decay_upper_batch_scalar(0, dts.len(), dts, inv_step, factors, out),
    }
}

fn decay_upper_batch_scalar(
    from: usize,
    to: usize,
    dts: &[f64],
    inv_step: f64,
    factors: &[f64],
    out: &mut [f64],
) {
    let max_idx = (factors.len() - 1) as f64;
    for i in from..to {
        let pos = (dts[i] * inv_step).min(max_idx).max(0.0);
        out[i] = factors[pos as usize];
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Loads postings `i..i+4` from the word stream and transposes them
    /// into `(ids, weights, prefix_norms, times)` column vectors. Pure
    /// data movement — bit-preserving for the integral id lane.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx2` and that `raw` holds at least
    /// `4·(i+4)` words.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn transpose4(raw: &[u64], i: usize) -> (__m256d, __m256d, __m256d, __m256d) {
        let base = raw.as_ptr().add(4 * i) as *const f64;
        let r0 = _mm256_loadu_pd(base);
        let r1 = _mm256_loadu_pd(base.add(4));
        let r2 = _mm256_loadu_pd(base.add(8));
        let r3 = _mm256_loadu_pd(base.add(12));
        let t0 = _mm256_unpacklo_pd(r0, r1); // id0 id1 pn0 pn1
        let t1 = _mm256_unpackhi_pd(r0, r1); // w0  w1  t0  t1
        let t2 = _mm256_unpacklo_pd(r2, r3);
        let t3 = _mm256_unpackhi_pd(r2, r3);
        (
            _mm256_permute2f128_pd::<0x20>(t0, t2), // ids
            _mm256_permute2f128_pd::<0x31>(t1, t3), // times
            _mm256_permute2f128_pd::<0x20>(t1, t3), // weights
            _mm256_permute2f128_pd::<0x31>(t0, t2), // prefix norms
        )
    }

    /// Table lookup: clamp `pos` into `[0, max_idx]`, truncate, gather.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx2`; `factors.len() - 1` must equal
    /// the value `max_idx` was built from.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_clamped(
        factors: &[f64],
        pos: __m256d,
        max_idx: __m256d,
        zero: __m256d,
    ) -> __m256d {
        let clamped = _mm256_max_pd(_mm256_min_pd(pos, max_idx), zero);
        let idx = _mm256_cvttpd_epi32(clamped);
        _mm256_i32gather_pd::<8>(factors.as_ptr(), idx)
    }

    /// Splits an admission movemask into four 0/1 bytes.
    #[inline]
    pub fn store_admit(out: &mut [u8], i: usize, mask: i32) {
        let m = mask as u32;
        out[i] = (m & 1) as u8;
        out[i + 1] = ((m >> 1) & 1) as u8;
        out[i + 2] = ((m >> 2) & 1) as u8;
        out[i + 3] = ((m >> 3) & 1) as u8;
    }
}

/// # Safety
///
/// Caller must have verified `avx2` and output lengths ≥ `raw.len()/4`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn l2_candidate_batch_avx2(
    raw: &[u64],
    p: &L2BatchParams,
    factors: &[f64],
    out_ids: &mut [u64],
    out_deltas: &mut [f64],
    out_prune_below: &mut [f64],
    out_admit: &mut [u8],
) {
    use std::arch::x86_64::*;
    let n = raw.len() / POSTING_WORDS;
    let max_idx = _mm256_set1_pd((factors.len() - 1) as f64);
    let zero = _mm256_setzero_pd();
    let nowv = _mm256_set1_pd(p.now);
    let invs = _mm256_set1_pd(p.inv_step);
    let xjv = _mm256_set1_pd(p.xj);
    let xnbv = _mm256_set1_pd(p.xnorm_before);
    let rs2v = _mm256_set1_pd(p.rs2);
    let tsv = _mm256_set1_pd(p.theta_slack);
    let mut i = 0usize;
    while i + 4 <= n {
        let (ids, times, weights, pns) = avx2::transpose4(raw, i);
        let dt = _mm256_sub_pd(nowv, times);
        let df = avx2::gather_clamped(factors, _mm256_mul_pd(dt, invs), max_idx, zero);
        _mm256_storeu_pd(out_ids.as_mut_ptr().add(i) as *mut f64, ids);
        _mm256_storeu_pd(out_deltas.as_mut_ptr().add(i), _mm256_mul_pd(xjv, weights));
        let pb = _mm256_sub_pd(tsv, _mm256_mul_pd(_mm256_mul_pd(xnbv, pns), df));
        _mm256_storeu_pd(out_prune_below.as_mut_ptr().add(i), pb);
        let admit = _mm256_cmp_pd::<_CMP_GE_OQ>(_mm256_mul_pd(rs2v, df), tsv);
        avx2::store_admit(out_admit, i, _mm256_movemask_pd(admit));
        i += 4;
    }
    l2_candidate_batch_scalar(
        i,
        n,
        raw,
        p,
        factors,
        out_ids,
        out_deltas,
        out_prune_below,
        out_admit,
    );
}

/// # Safety
///
/// Caller must have verified `avx2` and output lengths ≥ `raw.len()/4`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn candidate_batch_with_df_avx2(
    raw: &[u64],
    dfs: &[f64],
    p: &L2BatchParams,
    out_ids: &mut [u64],
    out_deltas: &mut [f64],
    out_prune_below: &mut [f64],
    out_admit: &mut [u8],
) {
    use std::arch::x86_64::*;
    let n = raw.len() / POSTING_WORDS;
    let xjv = _mm256_set1_pd(p.xj);
    let xnbv = _mm256_set1_pd(p.xnorm_before);
    let rs2v = _mm256_set1_pd(p.rs2);
    let tsv = _mm256_set1_pd(p.theta_slack);
    let mut i = 0usize;
    while i + 4 <= n {
        let (ids, _times, weights, pns) = avx2::transpose4(raw, i);
        let df = _mm256_loadu_pd(dfs.as_ptr().add(i));
        _mm256_storeu_pd(out_ids.as_mut_ptr().add(i) as *mut f64, ids);
        _mm256_storeu_pd(out_deltas.as_mut_ptr().add(i), _mm256_mul_pd(xjv, weights));
        let pb = _mm256_sub_pd(tsv, _mm256_mul_pd(_mm256_mul_pd(xnbv, pns), df));
        _mm256_storeu_pd(out_prune_below.as_mut_ptr().add(i), pb);
        let admit = _mm256_cmp_pd::<_CMP_GE_OQ>(_mm256_mul_pd(rs2v, df), tsv);
        avx2::store_admit(out_admit, i, _mm256_movemask_pd(admit));
        i += 4;
    }
    candidate_batch_with_df_scalar(
        i,
        n,
        raw,
        dfs,
        p,
        out_ids,
        out_deltas,
        out_prune_below,
        out_admit,
    );
}

/// # Safety
///
/// Caller must have verified `avx2` and output lengths ≥ `raw.len()/4`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn posting_products_avx2(raw: &[u64], xj: f64, out_ids: &mut [u64], out_deltas: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = raw.len() / POSTING_WORDS;
    let xjv = _mm256_set1_pd(xj);
    let mut i = 0usize;
    while i + 4 <= n {
        let (ids, _times, weights, _pns) = avx2::transpose4(raw, i);
        _mm256_storeu_pd(out_ids.as_mut_ptr().add(i) as *mut f64, ids);
        _mm256_storeu_pd(out_deltas.as_mut_ptr().add(i), _mm256_mul_pd(xjv, weights));
        i += 4;
    }
    posting_products_scalar(i, n, raw, xj, out_ids, out_deltas);
}

/// # Safety
///
/// Caller must have verified `avx2` and `out.len() >= dts.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn decay_upper_batch_avx2(dts: &[f64], inv_step: f64, factors: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let max_idx = _mm256_set1_pd((factors.len() - 1) as f64);
    let zero = _mm256_setzero_pd();
    let invs = _mm256_set1_pd(inv_step);
    let mut i = 0usize;
    while i + 4 <= dts.len() {
        let dt = _mm256_loadu_pd(dts.as_ptr().add(i));
        let df = avx2::gather_clamped(factors, _mm256_mul_pd(dt, invs), max_idx, zero);
        _mm256_storeu_pd(out.as_mut_ptr().add(i), df);
        i += 4;
    }
    decay_upper_batch_scalar(i, dts.len(), dts, inv_step, factors, out);
}

//! Sparse·sparse and sparse·dense dot-product kernels.
//!
//! All slices follow the `SparseVector` layout: parallel `(dims, weights)`
//! arrays with **strictly increasing** dimension ids. That invariant is a
//! precondition here — it guarantees each dim matches at most once inside
//! a 4-wide compare window, which is what makes the merge path gather-free.

use crate::dispatch::{active_lane, Lane};

/// Dot product by simultaneous scan of two sorted dim arrays.
///
/// The wide paths compare a 4-dim window of `a` against all four
/// rotations of a 4-dim window of `b` (`pcmpeqd` + shuffles — no
/// gathers), mask the products and advance whichever window's maximum is
/// smaller. **Tolerance contract:** the AVX2 path keeps four partial
/// accumulators and the SSE4.1 path visits a window's matches in
/// rotation order rather than dim order, so either may differ from the
/// scalar reference by summation-order rounding (relative error ≲ 1e-12
/// for unit vectors).
pub fn dot_merge(ad: &[u32], aw: &[f64], bd: &[u32], bw: &[f64]) -> f64 {
    debug_assert_eq!(ad.len(), aw.len());
    debug_assert_eq!(bd.len(), bw.len());
    match active_lane() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: lane selection verified the feature.
        Lane::Avx2 => unsafe { dot_merge_avx2(ad, aw, bd, bw) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: lane selection verified the feature.
        Lane::Sse41 => unsafe { dot_merge_sse41(ad, aw, bd, bw) },
        _ => dot_merge_scalar(ad, aw, bd, bw),
    }
}

/// Dot product by probing each coordinate of the short side inside the
/// long side.
///
/// The wide paths replace the binary search with an 8-wide monotone
/// linear scan (compare, movemask, count-trailing-ones) resumed from the
/// previous landing point. **Bit-exact contract:** only the *search* is
/// vectorized; products are added one short-coordinate at a time in the
/// same order as the scalar reference, so all lanes return identical
/// bits. Above a 64× length imbalance every lane falls back to the
/// binary-search reference, keeping the probe `O(short · log long)`.
pub fn dot_probe(sd: &[u32], sw: &[f64], ld: &[u32], lw: &[f64]) -> f64 {
    debug_assert_eq!(sd.len(), sw.len());
    debug_assert_eq!(ld.len(), lw.len());
    if sd.is_empty() || ld.len() > 64 * sd.len() {
        return dot_probe_scalar(sd, sw, ld, lw);
    }
    match active_lane() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: lane selection verified the feature.
        Lane::Avx2 => unsafe { dot_probe_avx2(sd, sw, ld, lw) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: lane selection verified the feature.
        Lane::Sse41 => unsafe { dot_probe_sse41(sd, sw, ld, lw) },
        _ => dot_probe_scalar(sd, sw, ld, lw),
    }
}

/// Dot product of a sparse vector against a dense array indexed by dim;
/// out-of-range dims contribute zero.
///
/// The AVX2 path gathers four dense weights per step while the window's
/// largest dim stays in range (dims are sorted, so one compare guards
/// all four lanes); the remainder — and every dim past the dense end —
/// runs through the scalar bounds-checked tail. **Tolerance contract:**
/// four partial accumulators, same bound as [`dot_merge`]. There is no
/// SSE4.1 tier (the win here is the gather).
pub fn dot_dense(ad: &[u32], aw: &[f64], dense: &[f64]) -> f64 {
    debug_assert_eq!(ad.len(), aw.len());
    match active_lane() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: lane selection verified the feature.
        Lane::Avx2 => unsafe { dot_dense_avx2(ad, aw, dense) },
        _ => dot_dense_scalar(ad, aw, dense),
    }
}

/// Scalar [`dot_merge`]: the classic two-pointer sorted merge. This is
/// the portable reference the wide paths are differential-tested against.
pub fn dot_merge_scalar(ad: &[u32], aw: &[f64], bd: &[u32], bw: &[f64]) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut acc = 0.0;
    while i < ad.len() && j < bd.len() {
        match ad[i].cmp(&bd[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += aw[i] * bw[j];
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Scalar [`dot_probe`]: binary-search each short coordinate in the
/// not-yet-consumed suffix of the long side. Portable reference; also
/// the fallback for extreme (>64×) imbalance on every lane.
pub fn dot_probe_scalar(sd: &[u32], sw: &[f64], ld: &[u32], lw: &[f64]) -> f64 {
    let mut lo = 0;
    let mut acc = 0.0;
    for (&d, &w) in sd.iter().zip(sw) {
        if lo >= ld.len() {
            break;
        }
        match ld[lo..].binary_search(&d) {
            Ok(k) => {
                acc += w * lw[lo + k];
                lo += k + 1;
            }
            Err(k) => lo += k,
        }
    }
    acc
}

/// Scalar [`dot_dense`]: one bounds-checked lookup per sparse coordinate.
pub fn dot_dense_scalar(ad: &[u32], aw: &[f64], dense: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&d, &w) in ad.iter().zip(aw) {
        if let Some(&m) = dense.get(d as usize) {
            acc += w * m;
        }
    }
    acc
}

/// Finishes a scalar two-pointer merge from positions `(i, j)`.
fn merge_tail(ad: &[u32], aw: &[f64], bd: &[u32], bw: &[f64], mut i: usize, mut j: usize) -> f64 {
    let mut acc = 0.0;
    while i < ad.len() && j < bd.len() {
        match ad[i].cmp(&bd[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += aw[i] * bw[j];
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Sums the four lanes of a 256-bit accumulator (lo+hi, then pairwise).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX support.
    #[target_feature(enable = "avx")]
    pub unsafe fn hsum4(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd::<1>(v);
        let s = _mm_add_pd(lo, hi);
        let s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
        _mm_cvtsd_f64(s)
    }
}

/// The 4×4 compare-all-rotations merge window.
///
/// # Safety
///
/// Caller must have verified `avx2`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_merge_avx2(ad: &[u32], aw: &[f64], bd: &[u32], bw: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let mut i = 0usize;
    let mut j = 0usize;
    let mut acc = _mm256_setzero_pd();
    while i + 4 <= ad.len() && j + 4 <= bd.len() {
        let da = _mm_loadu_si128(ad.as_ptr().add(i).cast());
        let db = _mm_loadu_si128(bd.as_ptr().add(j).cast());
        let wa = _mm256_loadu_pd(aw.as_ptr().add(i));
        let wb = _mm256_loadu_pd(bw.as_ptr().add(j));
        // Rotation r aligns a-lane k with b-lane (k+r) mod 4; strictly
        // increasing dims mean at most one rotation matches per lane, so
        // masking products into the accumulator cannot double-count.
        let m0 = _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(da, db));
        acc = _mm256_add_pd(
            acc,
            _mm256_and_pd(_mm256_castsi256_pd(m0), _mm256_mul_pd(wa, wb)),
        );
        let m1 = _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(da, _mm_shuffle_epi32::<0x39>(db)));
        acc = _mm256_add_pd(
            acc,
            _mm256_and_pd(
                _mm256_castsi256_pd(m1),
                _mm256_mul_pd(wa, _mm256_permute4x64_pd::<0x39>(wb)),
            ),
        );
        let m2 = _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(da, _mm_shuffle_epi32::<0x4E>(db)));
        acc = _mm256_add_pd(
            acc,
            _mm256_and_pd(
                _mm256_castsi256_pd(m2),
                _mm256_mul_pd(wa, _mm256_permute4x64_pd::<0x4E>(wb)),
            ),
        );
        let m3 = _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(da, _mm_shuffle_epi32::<0x93>(db)));
        acc = _mm256_add_pd(
            acc,
            _mm256_and_pd(
                _mm256_castsi256_pd(m3),
                _mm256_mul_pd(wa, _mm256_permute4x64_pd::<0x93>(wb)),
            ),
        );
        // Advance whichever window tops out lower: everything in it is
        // below the other side's remaining dims. Ties advance both.
        let amax = *ad.get_unchecked(i + 3);
        let bmax = *bd.get_unchecked(j + 3);
        if amax <= bmax {
            i += 4;
        }
        if bmax <= amax {
            j += 4;
        }
    }
    x86::hsum4(acc) + merge_tail(ad, aw, bd, bw, i, j)
}

/// 128-bit merge window: vector dim compares, scalar adds per match bit.
///
/// # Safety
///
/// Caller must have verified `sse4.1`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn dot_merge_sse41(ad: &[u32], aw: &[f64], bd: &[u32], bw: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let mut i = 0usize;
    let mut j = 0usize;
    let mut acc = 0.0f64;
    while i + 4 <= ad.len() && j + 4 <= bd.len() {
        let da = _mm_loadu_si128(ad.as_ptr().add(i).cast());
        let db = _mm_loadu_si128(bd.as_ptr().add(j).cast());
        let mut fold = |eq: __m128i, r: usize| {
            let mut m = _mm_movemask_ps(_mm_castsi128_ps(eq)) as u32;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                acc += aw[i + k] * bw[j + (k + r) % 4];
                m &= m - 1;
            }
        };
        fold(_mm_cmpeq_epi32(da, db), 0);
        fold(_mm_cmpeq_epi32(da, _mm_shuffle_epi32::<0x39>(db)), 1);
        fold(_mm_cmpeq_epi32(da, _mm_shuffle_epi32::<0x4E>(db)), 2);
        fold(_mm_cmpeq_epi32(da, _mm_shuffle_epi32::<0x93>(db)), 3);
        let amax = *ad.get_unchecked(i + 3);
        let bmax = *bd.get_unchecked(j + 3);
        if amax <= bmax {
            i += 4;
        }
        if bmax <= amax {
            j += 4;
        }
    }
    acc + merge_tail(ad, aw, bd, bw, i, j)
}

/// Shared body of the wide probe paths. `$scan(d, lo)` inspects one full
/// vector window starting at `lo` (availability is checked before the
/// call) and returns the index of the first long dim `>= d` inside it,
/// or `None` when the whole window is below `d`.
macro_rules! probe_body {
    ($sd:ident, $sw:ident, $ld:ident, $lw:ident, $lo:ident, $acc:ident, $scan:expr) => {
        'outer: for (&d, &w) in $sd.iter().zip($sw) {
            loop {
                if $lo + WIDTH > $ld.len() {
                    // Not enough dims left for a vector: scalar remainder.
                    while $lo < $ld.len() && $ld[$lo] < d {
                        $lo += 1;
                    }
                    if $lo >= $ld.len() {
                        break 'outer;
                    }
                    if $ld[$lo] == d {
                        $acc += w * $lw[$lo];
                        $lo += 1;
                    }
                    break;
                }
                match $scan(d, $lo) {
                    Some(k) => {
                        // First long dim >= d lands at k.
                        if $ld[k] == d {
                            $acc += w * $lw[k];
                            $lo = k + 1;
                        } else {
                            $lo = k;
                        }
                        break;
                    }
                    // A full window of dims < d: skip it.
                    None => $lo += WIDTH,
                }
            }
            if $lo >= $ld.len() {
                break;
            }
        }
    };
}

/// 8-wide monotone probe scan.
///
/// # Safety
///
/// Caller must have verified `avx2`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_probe_avx2(sd: &[u32], sw: &[f64], ld: &[u32], lw: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    const WIDTH: usize = 8;
    let bias = _mm256_set1_epi32(i32::MIN);
    let mut lo = 0usize;
    let mut acc = 0.0f64;
    probe_body!(sd, sw, ld, lw, lo, acc, |d: u32, lo: usize| {
        let v = _mm256_loadu_si256(ld.as_ptr().add(lo).cast());
        let dv = _mm256_set1_epi32(d as i32);
        // Unsigned `ld < d` via sign-bias then signed compare-greater.
        let lt = _mm256_cmpgt_epi32(_mm256_xor_si256(dv, bias), _mm256_xor_si256(v, bias));
        let m = _mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32;
        if m == 0xFF {
            None
        } else {
            Some(lo + (!m & 0xFF).trailing_zeros() as usize)
        }
    });
    acc
}

/// 4-wide monotone probe scan.
///
/// # Safety
///
/// Caller must have verified `sse4.1`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn dot_probe_sse41(sd: &[u32], sw: &[f64], ld: &[u32], lw: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    const WIDTH: usize = 4;
    let bias = _mm_set1_epi32(i32::MIN);
    let mut lo = 0usize;
    let mut acc = 0.0f64;
    probe_body!(sd, sw, ld, lw, lo, acc, |d: u32, lo: usize| {
        let v = _mm_loadu_si128(ld.as_ptr().add(lo).cast());
        let dv = _mm_set1_epi32(d as i32);
        let lt = _mm_cmpgt_epi32(_mm_xor_si128(dv, bias), _mm_xor_si128(v, bias));
        let m = _mm_movemask_ps(_mm_castsi128_ps(lt)) as u32;
        if m == 0xF {
            None
        } else {
            Some(lo + (!m & 0xF).trailing_zeros() as usize)
        }
    });
    acc
}

/// Gathered sparse·dense loop.
///
/// # Safety
///
/// Caller must have verified `avx2`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_dense_avx2(ad: &[u32], aw: &[f64], dense: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    // Guarantee every gathered index is both in range and representable
    // as a non-negative i32 (the gather's index type).
    let lim = dense.len().min(1usize << 31);
    let mut acc = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 4 <= ad.len() && (*ad.get_unchecked(i + 3) as usize) < lim {
        let vi = _mm_loadu_si128(ad.as_ptr().add(i).cast());
        let vd = _mm256_i32gather_pd::<8>(dense.as_ptr(), vi);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(vd, _mm256_loadu_pd(aw.as_ptr().add(i))));
        i += 4;
    }
    let mut total = x86::hsum4(acc);
    for k in i..ad.len() {
        if let Some(&m) = dense.get(ad[k] as usize) {
            total += aw[k] * m;
        }
    }
    total
}

//! Strided scans over packed time-ordered entry blocks.
//!
//! A `TimedBlock<T>` stores its entries contiguously; when `T` is
//! `#[repr(C)]` with only 64-bit fields, the live region bit-casts to a
//! `&[u64]` word stream (`PackedPosting::as_words`, `Edge::as_words`).
//! These kernels walk one `f64` field of each entry — `stride` words per
//! entry, the field at word `offset` — with AVX2 gathers.
//!
//! **Exactness contract.** Both kernels are pure comparisons with no
//! arithmetic: every lane returns identical results bit for bit. The
//! ordered SIMD predicates treat NaN as *false*, as do the scalar
//! references (`!(t < cutoff)` stops; `v >= min` rejects).

use crate::dispatch::{active_lane, Lane};

fn entry_count(words: &[u64], stride: usize, offset: usize) -> usize {
    assert!(stride >= 1 && offset < stride, "bad stride/offset");
    assert_eq!(words.len() % stride, 0, "words not a whole entry count");
    words.len() / stride
}

/// The number of leading entries whose time field is `< cutoff` — the
/// expiry partition point of a time-ordered block.
///
/// Equivalent to `partition_point(|e| e.t < cutoff)` when times are
/// non-decreasing, but a forward scan: expiry batches are short (the
/// engines call this on bounded chunks), so the branch-free 4-wide scan
/// beats a binary search's mispredicts.
pub fn partition_time_strided(words: &[u64], stride: usize, offset: usize, cutoff: f64) -> usize {
    let n = entry_count(words, stride, offset);
    match active_lane() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: lane selection verified the feature; layout checked.
        Lane::Avx2 => unsafe { partition_time_avx2(words, stride, offset, cutoff, n) },
        _ => partition_time_scalar(words, stride, offset, cutoff, 0, n),
    }
}

// `!(t < cutoff)` rather than `t >= cutoff`: a NaN timestamp must stop
// the expiry scan (fail-safe: keep the entry), exactly matching the
// AVX2 path's `_CMP_LT_OQ` mask where NaN compares not-less.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn partition_time_scalar(
    words: &[u64],
    stride: usize,
    offset: usize,
    cutoff: f64,
    from: usize,
    n: usize,
) -> usize {
    for i in from..n {
        let t = f64::from_bits(words[i * stride + offset]);
        if !(t < cutoff) {
            return i;
        }
    }
    n
}

/// Collects into `out_idx` the indices of entries whose `f64` field at
/// `offset` is `>= min`, returning how many qualified. `out_idx` must
/// hold at least one slot per entry.
///
/// This is the graph top-k filter: with a full candidate heap, only
/// edges at least as similar as the heap root can change the answer, and
/// they are rare — the kernel turns the scan into compares + movemask
/// and leaves the heap to the survivors.
pub fn select_ge_strided(
    words: &[u64],
    stride: usize,
    offset: usize,
    min: f64,
    out_idx: &mut [u32],
) -> usize {
    let n = entry_count(words, stride, offset);
    assert!(out_idx.len() >= n, "index buffer shorter than block");
    assert!(n <= u32::MAX as usize);
    match active_lane() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: lane selection verified the feature; lengths checked.
        Lane::Avx2 => unsafe { select_ge_avx2(words, stride, offset, min, out_idx, n) },
        _ => select_ge_scalar(words, stride, offset, min, out_idx, 0, n, 0),
    }
}

#[allow(clippy::too_many_arguments)]
fn select_ge_scalar(
    words: &[u64],
    stride: usize,
    offset: usize,
    min: f64,
    out_idx: &mut [u32],
    from: usize,
    n: usize,
    mut count: usize,
) -> usize {
    for i in from..n {
        let v = f64::from_bits(words[i * stride + offset]);
        if v >= min {
            out_idx[count] = i as u32;
            count += 1;
        }
    }
    count
}

/// # Safety
///
/// Caller must have verified `avx2`; `words` must hold `n` entries of
/// `stride` words.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn partition_time_avx2(
    words: &[u64],
    stride: usize,
    offset: usize,
    cutoff: f64,
    n: usize,
) -> usize {
    use std::arch::x86_64::*;
    let cut = _mm256_set1_pd(cutoff);
    let s = stride as i32;
    let idx = _mm_set_epi32(3 * s, 2 * s, s, 0);
    let mut g = 0usize;
    while (g + 1) * 4 <= n {
        let base = words.as_ptr().add(g * 4 * stride + offset) as *const f64;
        let t = _mm256_i32gather_pd::<8>(base, idx);
        let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(t, cut);
        let m = _mm256_movemask_pd(lt) as u32;
        if m != 0xF {
            // First lane where `t < cutoff` fails.
            return g * 4 + (!m & 0xF).trailing_zeros() as usize;
        }
        g += 1;
    }
    partition_time_scalar(words, stride, offset, cutoff, g * 4, n)
}

/// # Safety
///
/// Caller must have verified `avx2`; `out_idx.len() >= n`; `words` must
/// hold `n` entries of `stride` words.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn select_ge_avx2(
    words: &[u64],
    stride: usize,
    offset: usize,
    min: f64,
    out_idx: &mut [u32],
    n: usize,
) -> usize {
    use std::arch::x86_64::*;
    let minv = _mm256_set1_pd(min);
    let s = stride as i32;
    let idx = _mm_set_epi32(3 * s, 2 * s, s, 0);
    let mut count = 0usize;
    let mut g = 0usize;
    while (g + 1) * 4 <= n {
        let base = words.as_ptr().add(g * 4 * stride + offset) as *const f64;
        let v = _mm256_i32gather_pd::<8>(base, idx);
        let ge = _mm256_cmp_pd::<_CMP_GE_OQ>(v, minv);
        let mut m = _mm256_movemask_pd(ge) as u32;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            *out_idx.get_unchecked_mut(count) = (g * 4 + k) as u32;
            count += 1;
            m &= m - 1;
        }
        g += 1;
    }
    select_ge_scalar(words, stride, offset, min, out_idx, g * 4, n, count)
}

#![warn(missing_docs)]
//! Runtime-dispatched SIMD kernels for the join's sparse inner loops.
//!
//! Every engine in this workspace funnels its per-record work through a
//! handful of primitives: the sorted-merge / probe dot products, the
//! sparse·dense dot against the running-max vector, the fused
//! decay-bound + score-delta + prune-threshold computation over a
//! posting batch, and the time/similarity scans over packed
//! `TimedBlock` entries. This crate implements each of them once, with
//! a portable scalar **reference** and wider x86-64 paths selected at
//! runtime — the `crates/store/src/crc.rs` hardware/fallback pattern,
//! grown into a module.
//!
//! # Dispatch rules
//!
//! [`active_lane`] picks the lane per call (a relaxed atomic load plus a
//! cached feature probe — noise next to any kernel body):
//!
//! 1. an in-process [`force_lane`] override, if set (benchmark A/B);
//! 2. the `SSSJ_KERNELS` environment variable — `scalar`, `sse4.1`,
//!    `avx2`, or `auto` (alias: `SSSJ_FORCE_SCALAR=1`), read once;
//! 3. otherwise the widest lane the CPU reports via
//!    `is_x86_feature_detected!`.
//!
//! Requests are clamped to the hardware maximum, and any kernel without
//! an implementation at the selected lane silently uses the next lower
//! one (e.g. the batch kernels are AVX2-or-scalar). On non-x86-64
//! targets everything is scalar and the SIMD modules compile away.
//!
//! # Tolerance contract
//!
//! Each public kernel documents one of two guarantees, and the
//! differential tests enforce them per lane:
//!
//! * **bit-exact** — the wide path performs the same floating-point
//!   operations in the same order as the scalar reference (no FMA, no
//!   reassociation); outputs are identical bits. This holds for
//!   [`dot_probe`], all batch kernels, and the scans (pure compares).
//! * **summation-order tolerance** — multi-lane accumulators reassociate
//!   the reduction; results differ from the reference only by rounding,
//!   within `1e-12` relative for unit-normalised inputs. This holds for
//!   [`dot_merge`] and [`dot_dense`]. The join's pruning math already
//!   carries a `PRUNE_EPS = 1e-12` slack precisely so that ulp-level
//!   rearrangements cannot change the output pair set.
//!
//! # How to add a kernel
//!
//! 1. Write the scalar version first and export it from [`mod@reference`];
//!    it is the spec, the portable fallback, and the test oracle.
//! 2. Add `#[cfg(target_arch = "x86_64")] #[target_feature(enable =
//!    "...")] unsafe fn` variants, with a `# Safety` note saying the
//!    caller verified the feature; dispatch on [`active_lane`] in the
//!    public wrapper, validating slice lengths *before* the unsafe call.
//! 3. State the contract (bit-exact or tolerance) in the doc, and add a
//!    differential test in `tests/differential.rs` that exercises every
//!    lane via [`force_lane`] across lengths, alignments and edge values.
//! 4. Keep preconditions explicit: sortedness, stride layout, non-NaN
//!    gaps. Debug-assert the cheap ones.

pub mod dispatch;

mod batch;
mod dot;
mod scan;

pub use batch::{
    candidate_batch_with_df, decay_upper_batch, l2_candidate_batch, posting_products,
    L2BatchParams, POSTING_ID, POSTING_PREFIX, POSTING_TIME, POSTING_WEIGHT, POSTING_WORDS,
};
pub use dispatch::{active_lane, force_lane, Lane};
pub use dot::{dot_dense, dot_merge, dot_probe};
pub use scan::{partition_time_strided, select_ge_strided};

/// The scalar reference implementations, exported for differential
/// testing and for callers that need reproducible-order arithmetic
/// regardless of dispatch (the batch and scan kernels are bit-exact on
/// every lane, so only the dot kernels appear here).
pub mod reference {
    pub use crate::dot::{
        dot_dense_scalar as dot_dense, dot_merge_scalar as dot_merge, dot_probe_scalar as dot_probe,
    };
}

//! Differential tests: every kernel, every lane, against the scalar
//! reference — bit-exact where the kernel contracts it, within the
//! documented summation-order tolerance otherwise.

use proptest::collection::vec;
use proptest::proptest;
use sssj_kernels::{
    candidate_batch_with_df, decay_upper_batch, dot_dense, dot_merge, dot_probe, force_lane,
    l2_candidate_batch, partition_time_strided, posting_products, reference, select_ge_strided,
    L2BatchParams, Lane, POSTING_WORDS,
};
use std::sync::Mutex;

/// Serializes sections that flip the process-global lane override.
static LANE_LOCK: Mutex<()> = Mutex::new(());

const LANES: [Lane; 3] = [Lane::Scalar, Lane::Sse41, Lane::Avx2];

/// Runs `f` once per lane (clamped to hardware) and returns the results
/// keyed by the requested lane; always restores auto dispatch.
fn on_each_lane<T>(f: impl Fn() -> T) -> Vec<(Lane, T)> {
    let _g = LANE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = LANES
        .iter()
        .map(|&l| {
            force_lane(Some(l));
            (l, f())
        })
        .collect();
    force_lane(None);
    out
}

/// Sorts by dim, drops duplicate dims: a valid strictly-increasing
/// sparse layout from arbitrary `(dim, weight)` pairs.
fn sparse(pairs: Vec<(u32, f64)>) -> (Vec<u32>, Vec<f64>) {
    let mut pairs = pairs;
    pairs.sort_by_key(|p| p.0);
    pairs.dedup_by_key(|p| p.0);
    pairs.into_iter().unzip()
}

fn assert_close(got: f64, want: f64, what: &str) {
    let tol = 1e-12 * want.abs().max(1.0);
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got}, want {want} (tol {tol})"
    );
}

proptest! {
    #[test]
    fn merge_lanes_match_reference(
        a in vec((0u32..500, -2.0..2.0f64), 0..48),
        b in vec((0u32..500, -2.0..2.0f64), 0..48),
    ) {
        let (ad, aw) = sparse(a);
        let (bd, bw) = sparse(b);
        let want = reference::dot_merge(&ad, &aw, &bd, &bw);
        for (lane, got) in on_each_lane(|| dot_merge(&ad, &aw, &bd, &bw)) {
            assert_close(got, want, &format!("dot_merge on {lane:?}"));
        }
    }

    #[test]
    fn probe_lanes_are_bit_exact(
        s in vec((0u32..400, -2.0..2.0f64), 0..10),
        l in vec((0u32..400, -2.0..2.0f64), 0..200),
    ) {
        let (sd, sw) = sparse(s);
        let (ld, lw) = sparse(l);
        let want = reference::dot_probe(&sd, &sw, &ld, &lw);
        for (lane, got) in on_each_lane(|| dot_probe(&sd, &sw, &ld, &lw)) {
            assert!(
                got.to_bits() == want.to_bits(),
                "dot_probe on {lane:?}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn dense_lanes_match_reference(
        a in vec((0u32..600, -2.0..2.0f64), 0..48),
        dense in vec(-2.0..2.0f64, 0..500),
    ) {
        let (ad, aw) = sparse(a);
        let want = reference::dot_dense(&ad, &aw, &dense);
        for (lane, got) in on_each_lane(|| dot_dense(&ad, &aw, &dense)) {
            assert_close(got, want, &format!("dot_dense on {lane:?}"));
        }
    }

    #[test]
    fn l2_batch_lanes_are_bit_exact(
        postings in vec((proptest::num::u64::ANY, -1.0..1.0f64, 0.0..1.0f64, 0.0..50.0f64), 0..19),
        xj in -1.0..1.0f64,
        lambda in 0.01..0.5f64,
    ) {
        let raw = pack(&postings);
        let (factors, inv_step) = table(lambda, 60.0);
        let p = L2BatchParams {
            xj,
            now: 50.0,
            xnorm_before: 0.8,
            rs2: 0.6,
            theta_slack: 0.5 - 1e-12,
            inv_step,
        };
        let n = postings.len();
        let runs = on_each_lane(|| {
            let mut ids = vec![0u64; n];
            let mut deltas = vec![0.0f64; n];
            let mut prune = vec![0.0f64; n];
            let mut admit = vec![0u8; n];
            l2_candidate_batch(&raw, &p, &factors, &mut ids, &mut deltas, &mut prune, &mut admit);
            (ids, deltas, prune, admit)
        });
        assert_lanes_bit_equal(runs);
    }

    #[test]
    fn with_df_lanes_are_bit_exact(
        postings in vec((proptest::num::u64::ANY, -1.0..1.0f64, 0.0..1.0f64, 0.0..50.0f64), 0..19),
        dfs_raw in vec(0.0..1.0f64, 19),
        xj in -1.0..1.0f64,
    ) {
        let raw = pack(&postings);
        let n = postings.len();
        let dfs = &dfs_raw[..n];
        let p = L2BatchParams {
            xj,
            now: 0.0,
            xnorm_before: 0.7,
            rs2: 0.9,
            theta_slack: 0.4,
            inv_step: 1.0,
        };
        let runs = on_each_lane(|| {
            let mut ids = vec![0u64; n];
            let mut deltas = vec![0.0f64; n];
            let mut prune = vec![0.0f64; n];
            let mut admit = vec![0u8; n];
            candidate_batch_with_df(&raw, dfs, &p, &mut ids, &mut deltas, &mut prune, &mut admit);
            (ids, deltas, prune, admit)
        });
        assert_lanes_bit_equal(runs);
    }

    #[test]
    fn decay_upper_batch_matches_table_formula(
        dts in vec(-5.0..120.0f64, 0..23),
        lambda in 0.01..0.5f64,
    ) {
        let (factors, inv_step) = table(lambda, 100.0);
        // The scalar `DecayTable::upper` formula: saturating cast + clamp.
        let expect: Vec<f64> = dts
            .iter()
            .map(|&dt| {
                let idx = (dt * inv_step) as usize;
                factors[idx.min(factors.len() - 1)]
            })
            .collect();
        for (lane, got) in on_each_lane(|| {
            let mut out = vec![0.0f64; dts.len()];
            decay_upper_batch(&dts, inv_step, &factors, &mut out);
            out
        }) {
            for (g, e) in got.iter().zip(&expect) {
                assert!(g.to_bits() == e.to_bits(), "decay_upper on {lane:?}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn partition_matches_partition_point(
        gaps in vec(0.0..3.0f64, 0..40),
        cut in 0.0..60.0f64,
        stride in 3usize..5,
    ) {
        // Monotone non-decreasing times, as a TimedBlock guarantees.
        let mut t = 0.0;
        let times: Vec<f64> = gaps.iter().map(|g| { t += g; t }).collect();
        let offset = stride - 1;
        let mut words = vec![0u64; times.len() * stride];
        for (i, &ti) in times.iter().enumerate() {
            words[i * stride + offset] = ti.to_bits();
        }
        let want = times.partition_point(|&ti| ti < cut);
        for (lane, got) in on_each_lane(|| partition_time_strided(&words, stride, offset, cut)) {
            assert_eq!(got, want, "partition on {lane:?}");
        }
    }

    #[test]
    fn select_ge_matches_filter(
        vals in vec(-1.0..1.0f64, 0..60),
        min in -1.0..1.0f64,
        stride in 3usize..5,
    ) {
        let mut words = vec![0u64; vals.len() * stride];
        for (i, &v) in vals.iter().enumerate() {
            words[i * stride + 1] = v.to_bits();
        }
        let want: Vec<u32> = (0..vals.len() as u32).filter(|&i| vals[i as usize] >= min).collect();
        for (lane, got) in on_each_lane(|| {
            let mut idx = vec![0u32; vals.len()];
            let m = select_ge_strided(&words, stride, 1, min, &mut idx);
            idx.truncate(m);
            idx
        }) {
            assert_eq!(got, want, "select_ge on {lane:?}");
        }
    }
}

fn pack(postings: &[(u64, f64, f64, f64)]) -> Vec<u64> {
    let mut raw = Vec::with_capacity(postings.len() * POSTING_WORDS);
    for &(id, w, pn, t) in postings {
        raw.extend_from_slice(&[id, w.to_bits(), pn.to_bits(), t.to_bits()]);
    }
    raw
}

/// A quantized decay table built the same way `DecayTable::new` builds
/// one (replicated here — a dev-dependency on `sssj-types` would cycle).
fn table(lambda: f64, horizon: f64) -> (Vec<f64>, f64) {
    const BINS: usize = 256;
    let step = horizon / BINS as f64;
    let factors = (0..=BINS)
        .map(|i| (-lambda * i as f64 * step).exp())
        .collect();
    (factors, 1.0 / step)
}

type BatchOut = (Vec<u64>, Vec<f64>, Vec<f64>, Vec<u8>);

fn assert_lanes_bit_equal(runs: Vec<(Lane, BatchOut)>) {
    let (_, base) = &runs[0];
    for (lane, out) in &runs[1..] {
        assert_eq!(out.0, base.0, "ids differ on {lane:?}");
        assert_eq!(out.3, base.3, "admit differs on {lane:?}");
        for (field, (got, want)) in [(&out.1, &base.1), (&out.2, &base.2)]
            .iter()
            .enumerate()
            .map(|(f, (g, w))| (f, (g.iter(), w.iter())))
            .flat_map(|(f, (g, w))| g.zip(w).map(move |p| (f, p)))
        {
            assert!(
                got.to_bits() == want.to_bits(),
                "field {field} differs on {lane:?}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn probe_extreme_imbalance_uses_binary_search_everywhere() {
    let sd = [700u32];
    let sw = [2.0f64];
    let ld: Vec<u32> = (0..500).map(|i| i * 2).collect();
    let lw: Vec<f64> = (0..500).map(|i| 0.5 + i as f64).collect();
    let want = reference::dot_probe(&sd, &sw, &ld, &lw);
    for (lane, got) in on_each_lane(|| dot_probe(&sd, &sw, &ld, &lw)) {
        assert!(got.to_bits() == want.to_bits(), "{lane:?}");
    }
    assert_eq!(want, 2.0 * (0.5 + 350.0));
}

#[test]
fn merge_identical_and_disjoint_windows() {
    // All-match (every rotation-0 lane fires) and no-match interleaves,
    // long enough to drive the 4-wide window loop plus tails.
    let d: Vec<u32> = (0..23).map(|i| i * 2).collect();
    let w: Vec<f64> = (0..23).map(|i| 0.1 + i as f64 * 0.03).collect();
    let want_self = reference::dot_merge(&d, &w, &d, &w);
    let odd: Vec<u32> = (0..23).map(|i| i * 2 + 1).collect();
    for (lane, (same, none)) in
        on_each_lane(|| (dot_merge(&d, &w, &d, &w), dot_merge(&d, &w, &odd, &w)))
    {
        assert_close(same, want_self, &format!("self merge on {lane:?}"));
        assert_eq!(none, 0.0, "disjoint merge on {lane:?}");
    }
}

#[test]
fn merge_cross_rotation_matches() {
    // Offsets that only rotations 1–3 catch: a's window lanes match b's
    // at +1/+2/+3 positions.
    let ad = [1u32, 5, 9, 13, 17, 21, 25, 29];
    let bd = [0u32, 1, 5, 9, 13, 17, 21, 30];
    let aw: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
    let bw: Vec<f64> = (0..8).map(|i| 2.0 + i as f64 * 0.5).collect();
    let want = reference::dot_merge(&ad, &aw, &bd, &bw);
    for (lane, got) in on_each_lane(|| dot_merge(&ad, &aw, &bd, &bw)) {
        assert_close(got, want, &format!("rotation merge on {lane:?}"));
    }
}

#[test]
fn neg_infinity_rs2_vetoes_admission_on_every_lane() {
    // -∞ · 0 = NaN must read as "not admitted" under both the scalar
    // `>=` and the ordered SIMD predicate.
    let postings: Vec<(u64, f64, f64, f64)> = (0..9).map(|i| (i, 0.5, 0.5, i as f64)).collect();
    let raw = pack(&postings);
    let dfs = vec![0.0f64; 9];
    let p = L2BatchParams {
        xj: 0.3,
        now: 10.0,
        xnorm_before: 0.5,
        rs2: f64::NEG_INFINITY,
        theta_slack: 0.4,
        inv_step: 1.0,
    };
    for (lane, admit) in on_each_lane(|| {
        let mut ids = vec![0u64; 9];
        let mut deltas = vec![0.0f64; 9];
        let mut prune = vec![0.0f64; 9];
        let mut admit = vec![1u8; 9];
        candidate_batch_with_df(
            &raw,
            &dfs,
            &p,
            &mut ids,
            &mut deltas,
            &mut prune,
            &mut admit,
        );
        admit
    }) {
        assert_eq!(admit, vec![0u8; 9], "{lane:?}");
    }
}

#[test]
fn posting_products_lanes_are_bit_exact() {
    let postings: Vec<(u64, f64, f64, f64)> = (0..13)
        .map(|i| (u64::MAX - i, 0.01 * i as f64 - 0.05, 0.2, i as f64))
        .collect();
    let raw = pack(&postings);
    let runs = on_each_lane(|| {
        let mut ids = vec![0u64; 13];
        let mut deltas = vec![0.0f64; 13];
        posting_products(&raw, -0.37, &mut ids, &mut deltas);
        (ids, deltas)
    });
    let (_, base) = &runs[0];
    for (lane, out) in &runs[1..] {
        assert_eq!(out.0, base.0, "ids differ on {lane:?}");
        for (g, w) in out.1.iter().zip(&base.1) {
            assert!(g.to_bits() == w.to_bits(), "delta differs on {lane:?}");
        }
    }
}

#[test]
fn select_ge_treats_nan_as_below() {
    let vals = [0.5, f64::NAN, 0.9, 0.1, f64::NAN, 0.7, 0.8, 0.2, 0.95];
    let mut words = vec![0u64; vals.len() * 3];
    for (i, v) in vals.iter().enumerate() {
        words[i * 3 + 1] = v.to_bits();
    }
    for (lane, got) in on_each_lane(|| {
        let mut idx = vec![0u32; vals.len()];
        let m = select_ge_strided(&words, 3, 1, 0.7, &mut idx);
        idx.truncate(m);
        idx
    }) {
        assert_eq!(got, vec![2, 5, 6, 8], "{lane:?}");
    }
}

#[test]
fn empty_inputs_are_zero_everywhere() {
    for (lane, (m, p, d)) in on_each_lane(|| {
        (
            dot_merge(&[], &[], &[], &[]),
            dot_probe(&[], &[], &[1], &[1.0]),
            dot_dense(&[], &[], &[1.0]),
        )
    }) {
        assert_eq!((m, p, d), (0.0, 0.0, 0.0), "{lane:?}");
    }
}

//! Fuzz-style property tests: the protocol parser and the session state
//! machine must be total — any input yields a clean result, never a
//! panic, and every request gets a well-formed response.

use proptest::prelude::*;
use sssj_net::{Request, Response, Session, SessionDefaults};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary text (including control characters and non-ASCII) never
    /// panics the request parser.
    #[test]
    fn request_parse_is_total(line in ".*") {
        let _ = Request::parse(&line);
    }

    /// Arbitrary text never panics the response parser either (the
    /// client runs it on whatever the socket delivers).
    #[test]
    fn response_parse_is_total(line in ".*") {
        let _ = Response::parse(&line);
    }

    /// Near-miss inputs built from real verbs and junk operands parse or
    /// error, never panic — and a parsed request's Display re-parses.
    #[test]
    fn grammar_near_misses(
        verb in prop::sample::select(vec!["V", "T", "CONFIG", "STATS", "FINISH", "QUIT", "v", "VV", ""]),
        operands in proptest::collection::vec("[ -~]{0,12}", 0..5),
    ) {
        let line = format!("{} {}", verb, operands.join(" "));
        if let Ok(req) = Request::parse(&line) {
            let printed = req.to_string();
            prop_assert!(
                Request::parse(&printed).is_ok(),
                "Display output {printed:?} must re-parse"
            );
        }
    }
}

/// A generator of syntactically valid request lines with plausible and
/// edge-case operands.
fn request_line() -> impl Strategy<Value = String> {
    prop_oneof![
        // Vector records with random timestamps (possibly decreasing).
        (
            -100.0f64..100.0,
            proptest::collection::vec((0u32..50, 0.01f64..2.0), 1..5)
        )
            .prop_map(|(t, entries)| {
                let body: Vec<String> = entries.iter().map(|(d, w)| format!("{d}:{w}")).collect();
                format!("V {t} {}", body.join(" "))
            }),
        // Text records.
        (-100.0f64..100.0, "[a-z ]{0,30}").prop_map(|(t, text)| format!("T {t} {text}")),
        // Configs, valid and invalid values alike.
        (0.01f64..1.5, -0.5f64..1.0, 0.0f64..20.0).prop_map(|(theta, lambda, slack)| {
            format!("CONFIG theta={theta} lambda={lambda} slack={slack}")
        }),
        Just("STATS".to_string()),
        Just("FINISH".to_string()),
        Just("QUIT".to_string()),
        // Garbage that must become E responses.
        Just("V".to_string()),
        Just("BANANA 1 2 3".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The session survives any sequence of requests, and each handled
    /// request produces exactly one terminal response (OK / E / S / BYE)
    /// preceded only by pairs.
    #[test]
    fn session_is_total_and_responses_are_well_formed(
        lines in proptest::collection::vec(request_line(), 1..40),
    ) {
        let mut session = Session::new(SessionDefaults::default());
        let mut responses = Vec::new();
        for line in &lines {
            let Ok(request) = Request::parse(line) else {
                continue; // parse errors are handled by the server loop
            };
            responses.clear();
            let keep = session.handle(request, &mut responses);
            // Exactly one terminal response, at the end.
            let terminals = responses
                .iter()
                .filter(|r| {
                    matches!(
                        r,
                        Response::Ok(_) | Response::Err(_) | Response::Stats(_) | Response::Bye
                    )
                })
                .count();
            prop_assert_eq!(terminals, 1, "responses: {:?}", responses);
            prop_assert!(
                matches!(
                    responses.last(),
                    Some(Response::Ok(_) | Response::Err(_) | Response::Stats(_) | Response::Bye)
                ),
                "terminal must come last: {:?}",
                responses
            );
            // Every non-terminal response is a pair, and the OK count
            // matches the pair count.
            if let Some(Response::Ok(n)) = responses.last() {
                prop_assert_eq!(*n as usize, responses.len() - 1);
            }
            for r in &responses[..responses.len() - 1] {
                prop_assert!(matches!(r, Response::Pair(_)), "{:?}", responses);
            }
            // Every response line round-trips through the wire format.
            for r in &responses {
                prop_assert_eq!(&Response::parse(&r.to_string()).unwrap(), r);
            }
            if !keep {
                break; // QUIT
            }
        }
    }
}

//! End-to-end over TCP: a graph-wrapped session serves QUERY and
//! SUBSCRIBE through the real server and client.

use sssj_net::{ConfigRequest, JoinClient, Server, ServerOptions};

#[test]
fn graph_queries_and_subscriptions_over_the_wire() {
    let server = Server::bind("127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = JoinClient::connect(server.local_addr()).unwrap();
    client
        .configure(ConfigRequest {
            spec: Some("str-l2?theta=0.5&tau=10&graph".parse().unwrap()),
            ..Default::default()
        })
        .unwrap();
    client.subscribe(0).unwrap();

    assert!(client.send_vector(0.0, &[(7, 1.0)]).unwrap().is_empty());
    let pairs = client.send_vector(1.0, &[(7, 1.0)]).unwrap();
    assert_eq!(pairs.len(), 1);
    client.send_vector(2.0, &[(7, 1.0)]).unwrap();

    // The subscription pushed updates for node 0 alongside the pairs.
    let updates = client.take_updates();
    assert_eq!(updates.len(), 2, "{updates:?}");
    assert!(updates.iter().all(|(node, _)| *node == 0));

    // Graph queries answer over the same connection.
    let n = client.query_neighbors(1).unwrap();
    assert_eq!(n.len(), 2);
    let top = client.query_topk(1, 1).unwrap();
    assert_eq!(top.len(), 1);
    assert_eq!(top[0].key(), (0, 1));
    assert_eq!(client.query_component(2).unwrap(), (0, 3));
    let stats = client.graph_stats().unwrap();
    assert_eq!(
        stats,
        vec![
            ("nodes".to_string(), 3),
            ("edges".to_string(), 3),
            ("components".to_string(), 1),
        ]
    );

    // A non-graph session refuses queries with a server error.
    let mut plain = JoinClient::connect(server.local_addr()).unwrap();
    plain
        .configure(ConfigRequest {
            theta: Some(0.5),
            ..Default::default()
        })
        .unwrap();
    assert!(matches!(
        plain.query_neighbors(0),
        Err(sssj_net::NetError::Server(m)) if m.contains("no graph")
    ));

    client.quit().unwrap();
    server.shutdown();
}

//! End-to-end tests of the join service over real loopback sockets.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::thread;

use sssj_baseline::brute_force_stream;
use sssj_core::Framework;
use sssj_data::{generate, preset, Preset};
use sssj_index::IndexKind;
use sssj_net::{ConfigRequest, JoinClient, NetError, Server, ServerOptions, SessionMode};
use sssj_types::SimilarPair;

fn server() -> Server {
    Server::bind("127.0.0.1:0", ServerOptions::default()).expect("bind loopback")
}

fn keys(pairs: &[SimilarPair]) -> Vec<(u64, u64)> {
    let mut k: Vec<_> = pairs.iter().map(|p| p.key()).collect();
    k.sort_unstable();
    k.dedup();
    k
}

#[test]
fn basic_session_reports_near_duplicates() {
    let server = server();
    let mut client = JoinClient::connect(server.local_addr()).unwrap();
    client
        .configure(ConfigRequest {
            theta: Some(0.7),
            lambda: Some(0.1),
            ..Default::default()
        })
        .unwrap();
    assert!(client.send_vector(0.0, &[(7, 1.0)]).unwrap().is_empty());
    let pairs = client.send_vector(1.0, &[(7, 1.0)]).unwrap();
    assert_eq!(keys(&pairs), vec![(0, 1)]);
    assert!((pairs[0].similarity - (-0.1f64).exp()).abs() < 1e-9);
    let stats = client.stats().unwrap();
    assert_eq!(stats.records, 2);
    assert_eq!(stats.pairs, 1);
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn server_matches_brute_force_on_a_preset_stream() {
    let records = generate(&preset(Preset::Rcv1, 300));
    let (theta, lambda) = (0.6, 0.01);
    let want = keys(&brute_force_stream(&records, theta, lambda));

    let server = server();
    let mut client = JoinClient::connect(server.local_addr()).unwrap();
    client
        .configure(ConfigRequest {
            theta: Some(theta),
            lambda: Some(lambda),
            index: Some(IndexKind::L2),
            ..Default::default()
        })
        .unwrap();
    let mut got = Vec::new();
    for r in &records {
        got.extend(client.send_record(r).unwrap());
    }
    got.extend(client.finish().unwrap());
    client.quit().unwrap();
    server.shutdown();

    // Server ids are session ordinals == positions == generated ids here.
    assert_eq!(keys(&got), want);
}

#[test]
fn minibatch_session_flushes_on_finish() {
    let server = server();
    let mut client = JoinClient::connect(server.local_addr()).unwrap();
    client
        .configure(ConfigRequest {
            theta: Some(0.7),
            lambda: Some(0.01),
            framework: Some(Framework::MiniBatch),
            ..Default::default()
        })
        .unwrap();
    // Two identical vectors close in time, within one MB window.
    assert!(client.send_vector(0.0, &[(3, 1.0)]).unwrap().is_empty());
    assert!(client.send_vector(1.0, &[(3, 1.0)]).unwrap().is_empty());
    let flushed = client.finish().unwrap();
    assert_eq!(keys(&flushed), vec![(0, 1)]);
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn concurrent_sessions_are_isolated() {
    let server = server();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            thread::spawn(move || {
                let mut client = JoinClient::connect(addr).unwrap();
                client
                    .configure(ConfigRequest {
                        theta: Some(0.7),
                        lambda: Some(0.1),
                        ..Default::default()
                    })
                    .unwrap();
                // Each session uses its own dimension: pairs never cross
                // sessions, and each session sees exactly one pair.
                let dim = 100 + i as u32;
                assert!(client.send_vector(0.0, &[(dim, 1.0)]).unwrap().is_empty());
                let pairs = client.send_vector(1.0, &[(dim, 1.0)]).unwrap();
                assert_eq!(keys(&pairs), vec![(0, 1)]);
                let stats = client.stats().unwrap();
                assert_eq!(stats.records, 2, "session {i} saw foreign records");
                client.quit().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.sessions_started(), 4);
    server.shutdown();
}

#[test]
fn text_mode_sessions_tokenize_server_side() {
    let server = server();
    let mut client = JoinClient::connect(server.local_addr()).unwrap();
    client
        .configure(ConfigRequest {
            theta: Some(0.8),
            lambda: Some(0.001),
            mode: Some(SessionMode::Text),
            ..Default::default()
        })
        .unwrap();
    assert!(client
        .send_text(0.0, "breaking news big event downtown")
        .unwrap()
        .is_empty());
    let pairs = client
        .send_text(5.0, "breaking news big event downtown")
        .unwrap();
    assert_eq!(keys(&pairs), vec![(0, 1)]);
    // Embedded newlines are rejected client-side before hitting the wire.
    assert!(matches!(
        client.send_text(6.0, "two\nlines"),
        Err(NetError::Protocol(_))
    ));
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn out_of_order_with_slack_still_joins() {
    let server = server();
    let mut client = JoinClient::connect(server.local_addr()).unwrap();
    client
        .configure(ConfigRequest {
            theta: Some(0.7),
            lambda: Some(0.1),
            slack: Some(10.0),
            ..Default::default()
        })
        .unwrap();
    client.send_vector(2.0, &[(7, 1.0)]).unwrap();
    client.send_vector(1.0, &[(7, 1.0)]).unwrap(); // 1 late, within slack
    let mut got = client.finish().unwrap();
    got = keys(&got)
        .into_iter()
        .map(|(l, r)| SimilarPair::new(l, r, 1.0))
        .collect();
    assert_eq!(got.len(), 1);
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn server_errors_keep_session_alive() {
    let server = server();
    let mut client = JoinClient::connect(server.local_addr()).unwrap();
    // Out-of-order without slack → server error…
    client.send_vector(5.0, &[(1, 1.0)]).unwrap();
    assert!(matches!(
        client.send_vector(1.0, &[(1, 1.0)]),
        Err(NetError::Server(_))
    ));
    // …but the session keeps working.
    client.send_vector(6.0, &[(1, 1.0)]).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.records, 2);
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn raw_socket_malformed_lines_get_error_responses() {
    let server = server();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writer
        .write_all(b"BLURB nonsense\nV 1.0 3:0.5\nQUIT\n")
        .unwrap();
    writer.flush().unwrap();

    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("E "), "got {line:?}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "OK 0");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "BYE");
    server.shutdown();
}

#[test]
fn oversized_line_closes_connection_with_error() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions {
            max_line_bytes: 256,
            ..Default::default()
        },
    )
    .unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let huge = vec![b'x'; 10_000];
    writer.write_all(&huge).unwrap();
    writer.flush().unwrap();

    let mut response = String::new();
    reader.read_to_string(&mut response).unwrap(); // server closes
    assert!(response.starts_with("E "), "got {response:?}");
    server.shutdown();
}

#[test]
fn eof_without_quit_is_a_clean_close() {
    let server = server();
    {
        let mut client = JoinClient::connect(server.local_addr()).unwrap();
        client.send_vector(0.0, &[(1, 1.0)]).unwrap();
        // Drop without QUIT: the server must treat EOF as session end.
    }
    // The server still accepts new sessions afterwards.
    let mut client = JoinClient::connect(server.local_addr()).unwrap();
    client.send_vector(0.0, &[(1, 1.0)]).unwrap();
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn shutdown_with_idle_clients_does_not_hang() {
    let server = server();
    let addr = server.local_addr();
    // Idle client that never sends anything.
    let _idle = TcpStream::connect(addr).unwrap();
    // Client mid-session.
    let mut client = JoinClient::connect(addr).unwrap();
    client.send_vector(0.0, &[(1, 1.0)]).unwrap();
    // Must return promptly despite both open connections.
    server.shutdown();
}

#[test]
fn blank_lines_are_ignored() {
    let server = server();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"\n\n  \nSTATS\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    // An event-loop server prefixes the S line with its stall-probe
    // reading; blank lines themselves must produce no reply either way.
    if line.starts_with("G loop_stalls=") {
        line.clear();
        reader.read_line(&mut line).unwrap();
    }
    assert!(line.starts_with("S "), "got {line:?}");
    server.shutdown();
}

#[test]
fn stats_and_metrics_report_the_serving_shape() {
    let server = server();
    let mut client = JoinClient::connect(server.local_addr()).unwrap();
    client.send_vector(0.0, &[(7, 1.0)]).unwrap();
    client.send_vector(1.0, &[(7, 1.0)]).unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.records, 2);
    assert!(!stats.shared, "per-session server");
    match std::env::var("SSSJ_NET_ENGINE").as_deref() {
        Ok("threaded") => {
            assert_eq!(stats.engine, sssj_net::EngineLabel::Threaded);
            assert_eq!(client.loop_stalls(), None, "no loop to stall");
        }
        _ => {
            assert_eq!(stats.engine, sssj_net::EngineLabel::EventLoop);
            assert!(
                client.loop_stalls().is_some(),
                "event-loop STATS carries the stall probe"
            );
        }
    }

    let lines = client.metrics().unwrap();
    if sssj_metrics::telemetry_enabled() {
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("sssj_net_requests_total")),
            "scrape must include the per-verb request counter"
        );
    } else {
        assert!(lines.is_empty(), "off lane answers an empty scrape");
    }
    client.quit().unwrap();
    server.shutdown();
}

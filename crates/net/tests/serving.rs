//! End-to-end tests of shared-pipeline serving over real loopback
//! sockets: the multiplexed event-loop engine, real server-push
//! `SUBSCRIBE`, the threaded shared baseline, and wire compatibility
//! for clients that never subscribe.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use sssj_net::{
    ConfigRequest, JoinClient, NetError, Server, ServerEngine, ServerOptions, SessionDefaults,
};

/// A shared-pipeline server over the paper's streaming join with the
/// live graph wrapper — the spec every connection serves, since shared
/// mode refuses `CONFIG`.
fn shared_options(engine: ServerEngine) -> ServerOptions {
    ServerOptions {
        defaults: SessionDefaults {
            spec: "str-l2?theta=0.5&tau=1000&graph".parse().unwrap(),
            ..Default::default()
        },
        engine,
        shared: true,
        ..Default::default()
    }
}

#[test]
fn shared_event_loop_pushes_updates_to_passive_subscribers() {
    let server = Server::bind("127.0.0.1:0", shared_options(ServerEngine::EventLoop)).unwrap();
    let mut sub = JoinClient::connect(server.local_addr()).unwrap();
    sub.subscribe(0).unwrap();
    sub.subscribe(1).unwrap();

    // A *different* connection ingests; the subscriber never writes
    // another byte.
    let mut ingest = JoinClient::connect(server.local_addr()).unwrap();
    for t in 0..3 {
        ingest.send_vector(t as f64, &[(7, 1.0)]).unwrap();
    }

    // Pairs (0,1), (0,2), (1,2) touch the watched endpoints 0,1 / 0 / 1
    // → four pushed frames, arriving without any request from us.
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while got.len() < 4 && Instant::now() < deadline {
        got.extend(sub.poll_updates(Duration::from_millis(200)).unwrap());
    }
    assert_eq!(got.len(), 4, "{got:?}");
    assert!(got.iter().all(|(node, _)| *node == 0 || *node == 1));
    assert_eq!(got.iter().filter(|(n, _)| *n == 0).count(), 2);
    assert_eq!(sub.dropped_updates(), 0);

    // Old-client wire compat: the ingest connection never subscribed,
    // so no `U`/`D` frame ever reached it.
    assert!(ingest.take_updates().is_empty());
    assert_eq!(ingest.dropped_updates(), 0);
    server.shutdown();
}

#[test]
fn shared_event_loop_reads_see_your_own_writes() {
    let server = Server::bind("127.0.0.1:0", shared_options(ServerEngine::EventLoop)).unwrap();
    let mut a = JoinClient::connect(server.local_addr()).unwrap();
    assert!(a.send_vector(0.0, &[(3, 1.0)]).unwrap().is_empty());
    assert_eq!(a.send_vector(1.0, &[(3, 1.0)]).unwrap().len(), 1);

    // The loop publishes a fresh snapshot before flushing replies: by
    // the time `OK` for the ingest arrived, the very next query sees
    // the new edge — no sleep, no retry.
    assert_eq!(a.query_neighbors(0).unwrap().len(), 1);

    // `CONFIG` is refused: the shared pipeline is fixed by the operator.
    assert!(matches!(
        a.configure(ConfigRequest {
            theta: Some(0.9),
            ..Default::default()
        }),
        Err(NetError::Server(_))
    ));

    // QUIT closes only this connection; the pipeline survives for the
    // next client.
    a.quit().unwrap();
    let mut b = JoinClient::connect(server.local_addr()).unwrap();
    let stats = b.graph_stats().unwrap();
    assert_eq!(
        stats,
        vec![
            ("nodes".to_string(), 2),
            ("edges".to_string(), 1),
            ("components".to_string(), 1),
        ]
    );
    server.shutdown();
}

#[test]
fn pushed_frames_land_only_between_replies() {
    let server = Server::bind("127.0.0.1:0", shared_options(ServerEngine::EventLoop)).unwrap();
    let addr = server.local_addr();

    // A raw-socket subscriber that keeps querying while another client
    // ingests, so pushes and replies compete for the same connection.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"SUBSCRIBE 0\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "OK 0");

    const RECORDS: u64 = 200;
    let ingest = thread::spawn(move || {
        let mut c = JoinClient::connect(addr).unwrap();
        for t in 0..RECORDS {
            c.send_vector(t as f64 * 1e-3, &[(7, 1.0)]).unwrap();
        }
        c.quit().unwrap();
    });

    // Every record pairs with node 0, so RECORDS-1 updates must reach
    // us — and `U`/`D` must never split a reply (P-lines … OK).
    let mut in_reply = false;
    let mut pushed = 0u64;
    let mut dropped = 0u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    while pushed + dropped < RECORDS - 1 {
        assert!(
            Instant::now() < deadline,
            "saw {pushed} pushes + {dropped} drops, want {}",
            RECORDS - 1
        );
        writer.write_all(b"QUERY neighbors 0\n").unwrap();
        loop {
            line.clear();
            assert_ne!(reader.read_line(&mut line).unwrap(), 0, "server closed");
            let l = line.trim();
            if l.starts_with("P ") {
                in_reply = true;
            } else if l.starts_with("OK") {
                in_reply = false;
                break;
            } else if let Some(rest) = l.strip_prefix("U ") {
                assert!(!in_reply, "push frame inside a reply: {rest:?}");
                pushed += 1;
            } else if let Some(rest) = l.strip_prefix("D ") {
                assert!(!in_reply, "drop report inside a reply: {rest:?}");
                dropped += rest.parse::<u64>().unwrap();
            } else {
                panic!("unexpected frame {l:?}");
            }
        }
    }
    ingest.join().unwrap();
    assert_eq!(pushed + dropped, RECORDS - 1);
    // The default queue (1024) never overflowed at this rate.
    assert_eq!(dropped, 0);
    server.shutdown();
}

#[test]
fn push_queue_overflow_drops_oldest_and_reports_coalesced_d() {
    let mut options = shared_options(ServerEngine::EventLoop);
    options.push_queue_cap = 1;
    let server = Server::bind("127.0.0.1:0", options).unwrap();
    let mut sub = JoinClient::connect(server.local_addr()).unwrap();
    sub.subscribe(0).unwrap();

    // One pipelined write delivers a whole batch into (typically) a
    // single loop iteration: its deltas all hit the 1-slot queue before
    // the next drain, so all but the newest drop and are reported as a
    // coalesced `D <n>`.
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut received = 0u64;
    for round in 0..50u64 {
        let mut batch = String::new();
        for i in 0..32u64 {
            batch.push_str(&format!("V {} 7:1.0\n", (round * 32 + i) as f64 * 1e-3));
        }
        writer.write_all(batch.as_bytes()).unwrap();
        let mut line = String::new();
        let mut oks = 0;
        while oks < 32 {
            line.clear();
            reader.read_line(&mut line).unwrap();
            let l = line.trim();
            if l.starts_with("OK") {
                oks += 1;
            } else {
                assert!(l.starts_with("P "), "unexpected ingest reply {l:?}");
            }
        }
        received += sub.poll_updates(Duration::from_millis(300)).unwrap().len() as u64;
        if sub.dropped_updates() > 0 {
            break;
        }
    }
    assert!(
        sub.dropped_updates() > 0,
        "no overflow after 50 pipelined batches (received {received})"
    );
    // Dropping is lossy, not fatal: the connection still serves.
    assert!(!sub.graph_stats().unwrap().is_empty());
    server.shutdown();
}

#[test]
fn threaded_shared_serializes_one_pipeline_without_push() {
    let server = Server::bind("127.0.0.1:0", shared_options(ServerEngine::Threaded)).unwrap();
    let mut a = JoinClient::connect(server.local_addr()).unwrap();
    let mut b = JoinClient::connect(server.local_addr()).unwrap();

    // Real push needs the event loop; the threaded baseline says so.
    assert!(matches!(
        b.subscribe(0),
        Err(NetError::Server(m)) if m.contains("event-loop")
    ));
    // `CONFIG` is refused in shared mode here too.
    assert!(matches!(
        a.configure(ConfigRequest {
            theta: Some(0.9),
            ..Default::default()
        }),
        Err(NetError::Server(_))
    ));

    // Both connections drive the same join.
    a.send_vector(0.0, &[(5, 1.0)]).unwrap();
    a.send_vector(1.0, &[(5, 1.0)]).unwrap();
    assert_eq!(b.query_neighbors(0).unwrap().len(), 1);

    // QUIT closes one connection, not the pipeline.
    b.quit().unwrap();
    let mut c = JoinClient::connect(server.local_addr()).unwrap();
    assert_eq!(c.query_component(1).unwrap(), (0, 2));
    a.send_vector(2.0, &[(5, 1.0)]).unwrap();
    server.shutdown();
}

#[test]
fn threaded_engine_still_serves_per_session_clients() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions {
            engine: ServerEngine::Threaded,
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = JoinClient::connect(server.local_addr()).unwrap();
    client
        .configure(ConfigRequest {
            theta: Some(0.7),
            lambda: Some(0.1),
            ..Default::default()
        })
        .unwrap();
    assert!(client.send_vector(0.0, &[(7, 1.0)]).unwrap().is_empty());
    assert_eq!(client.send_vector(1.0, &[(7, 1.0)]).unwrap().len(), 1);
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn scan_poll_backend_serves_shared_push_too() {
    // Force the portable fallback poller. The variable stays set until
    // a full round-trip proves the loop (and hence its poller) exists —
    // `bind` does not wait for the loop thread to start.
    std::env::set_var("SSSJ_NET_POLL", "scan");
    let server = Server::bind("127.0.0.1:0", shared_options(ServerEngine::EventLoop)).unwrap();
    let mut sub = JoinClient::connect(server.local_addr()).unwrap();
    sub.subscribe(0).unwrap();
    std::env::remove_var("SSSJ_NET_POLL");

    let mut ingest = JoinClient::connect(server.local_addr()).unwrap();
    assert!(ingest.send_vector(0.0, &[(9, 1.0)]).unwrap().is_empty());
    assert_eq!(ingest.send_vector(1.0, &[(9, 1.0)]).unwrap().len(), 1);
    assert_eq!(ingest.query_neighbors(1).unwrap().len(), 1);

    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got = Vec::new();
    while got.is_empty() && Instant::now() < deadline {
        got.extend(sub.poll_updates(Duration::from_millis(200)).unwrap());
    }
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].0, 0);
    server.shutdown();
}

//! The TCP server, with two serving engines behind one [`Server`] API.
//!
//! * [`ServerEngine::EventLoop`] (default) — every connection on one
//!   thread, multiplexed over readiness events (epoll on Linux x86-64,
//!   a portable scan fallback elsewhere; see `poll`, crate-private).
//!   Scales
//!   to many concurrent connections without a thread per socket, gives
//!   each connection a fairness quantum (no head-of-line blocking
//!   between an ingest firehose and query clients), applies
//!   backpressure to slow readers via bounded per-connection write
//!   buffers, and is the only engine that does real server-push
//!   `SUBSCRIBE` in shared mode. The loop's architecture is documented
//!   in `event_loop` (crate-private).
//! * [`ServerEngine::Threaded`] — the original thread-per-connection
//!   engine, kept as the differential baseline: blocking reads with a
//!   poll timeout, one OS thread per session.
//!
//! Orthogonally, [`ServerOptions::shared`] selects the session model:
//! per-connection pipelines (every connection is an independent join —
//! the paper's single-core-per-join shape) or one **shared** pipeline
//! all connections feed and query. In shared mode the event loop serves
//! queries from the graph's published snapshot (wait-free reads, see
//! `sssj_graph::GraphSnapshot`) while the threaded engine serializes
//! every request behind one mutex — which is exactly the baseline the
//! `bench-latency --net` harness compares against.
//!
//! Shutdown: [`Server::shutdown`] sets a flag, wakes the engine with a
//! loopback connection, and joins every thread. In-flight requests
//! complete before connections close.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use sssj_metrics::registry::{Gauge, Registry};

use crate::protocol::{EngineLabel, Request, Response, MAX_LINE_BYTES};
use crate::session::{Session, SessionDefaults};

/// `sssj_net_connections`: currently open connections, whichever engine
/// serves them. Resolved once; shared by both engines.
pub(crate) fn connections_gauge() -> &'static Gauge {
    static G: std::sync::OnceLock<&'static Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| Registry::global().gauge("sssj_net_connections", "open client connections"))
}

/// Which serving engine [`Server::bind`] starts. The compiled-in
/// default is the event loop; the `SSSJ_NET_ENGINE` environment
/// variable (`eventloop` | `threaded`) overrides
/// [`ServerOptions::default`], and an explicit field value overrides
/// both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerEngine {
    /// One thread, readiness-multiplexed connections (default).
    EventLoop,
    /// One OS thread per connection (the differential baseline).
    Threaded,
}

impl ServerEngine {
    /// The environment default: `SSSJ_NET_ENGINE=threaded` selects the
    /// thread-per-connection baseline, anything else the event loop.
    pub fn from_env() -> ServerEngine {
        match std::env::var("SSSJ_NET_ENGINE").as_deref() {
            Ok("threaded") => ServerEngine::Threaded,
            _ => ServerEngine::EventLoop,
        }
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Defaults every session starts from (overridable via `CONFIG` on
    /// per-session servers; fixed in shared mode).
    pub defaults: SessionDefaults,
    /// How often an idle session checks the shutdown flag (also the
    /// event loop's maximum sleep).
    pub poll_interval: Duration,
    /// Per-line size cap; longer lines close the connection.
    pub max_line_bytes: usize,
    /// The serving engine (see [`ServerEngine`]).
    pub engine: ServerEngine,
    /// One shared pipeline instead of per-connection sessions: every
    /// connection feeds/queries the same join, `SUBSCRIBE` is real
    /// server push (event-loop engine), and `CONFIG` is refused.
    pub shared: bool,
    /// Per-connection bound on queued pushed updates (shared event-loop
    /// mode). Overflow drops oldest and reports one coalesced `D <n>`.
    pub push_queue_cap: usize,
    /// Per-connection write-buffer backpressure threshold (bytes): a
    /// connection whose un-flushed output exceeds this stops being read
    /// from until it drains.
    pub write_buf_cap: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            defaults: SessionDefaults::default(),
            poll_interval: Duration::from_millis(50),
            max_line_bytes: MAX_LINE_BYTES,
            engine: ServerEngine::from_env(),
            shared: false,
            push_queue_cap: 1024,
            write_buf_cap: 256 * 1024,
        }
    }
}

/// A running join server. Dropping it (or calling [`Server::shutdown`])
/// stops accepting, closes idle sessions and joins all threads.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    started: Arc<AtomicU64>,
}

impl Server {
    /// Binds and starts serving in background threads. Use
    /// `"127.0.0.1:0"` to let the OS pick a free port and read it back
    /// with [`Server::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, options: ServerOptions) -> io::Result<Server> {
        // A panicking server dumps its flight recorder: the last events
        // before the crash are usually the diagnosis.
        sssj_metrics::trace::install_panic_hook();
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let started = Arc::new(AtomicU64::new(0));

        let accept_stop = Arc::clone(&stop);
        let accept_sessions = Arc::clone(&sessions);
        let accept_started = Arc::clone(&started);
        let accept_thread = match options.engine {
            ServerEngine::EventLoop => thread::Builder::new()
                .name("sssj-net-loop".into())
                .spawn(move || {
                    crate::event_loop::run(listener, options, accept_stop, accept_started)
                })
                .expect("spawn event-loop thread"),
            ServerEngine::Threaded => thread::Builder::new()
                .name("sssj-net-accept".into())
                .spawn(move || {
                    // Threaded shared mode: one session, every connection
                    // behind its mutex — the serialization baseline.
                    let shared = options.shared.then(|| {
                        crate::register_spec_builders();
                        let mut s = Session::new(options.defaults.clone());
                        s.set_serving_info(EngineLabel::Threaded, true);
                        Arc::new(Mutex::new(s))
                    });
                    for stream in listener.incoming() {
                        if accept_stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        accept_started.fetch_add(1, Ordering::SeqCst);
                        let stop = Arc::clone(&accept_stop);
                        let options = options.clone();
                        let shared = shared.clone();
                        let handle = thread::Builder::new()
                            .name("sssj-net-session".into())
                            .spawn(move || serve_connection(stream, options, shared, &stop))
                            .expect("spawn session thread");
                        accept_sessions.lock().expect("sessions lock").push(handle);
                    }
                })
                .expect("spawn accept thread"),
        };

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            sessions,
            started,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of sessions accepted so far.
    pub fn sessions_started(&self) -> u64 {
        self.started.load(Ordering::SeqCst)
    }

    /// Stops accepting, lets sessions notice the flag, and joins every
    /// thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .sessions
            .lock()
            .expect("sessions lock")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads `\n`-terminated lines from a stream whose reads time out, so the
/// loop can poll a shutdown flag between partial reads without ever
/// losing buffered bytes (unlike `BufRead::read_line`, whose buffer is
/// unspecified after an error).
struct LineReader<R> {
    inner: R,
    pending: Vec<u8>,
    scanned: usize,
    chunk: [u8; 4096],
}

enum LineEvent {
    Line(String),
    Eof,
    Stopped,
    TooLong,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R) -> Self {
        LineReader {
            inner,
            pending: Vec::new(),
            scanned: 0,
            chunk: [0; 4096],
        }
    }

    fn take_line(&mut self, newline_at: usize) -> String {
        let rest = self.pending.split_off(newline_at + 1);
        let mut line = std::mem::replace(&mut self.pending, rest);
        line.pop(); // the newline
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        self.scanned = 0;
        String::from_utf8_lossy(&line).into_owned()
    }

    /// Blocks (in poll-sized steps) until a full line, EOF, the shutdown
    /// flag, or the size cap.
    fn read_line(&mut self, stop: &AtomicBool, max: usize) -> io::Result<LineEvent> {
        loop {
            if let Some(i) = self.pending[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
            {
                return Ok(LineEvent::Line(self.take_line(self.scanned + i)));
            }
            self.scanned = self.pending.len();
            if self.pending.len() > max {
                return Ok(LineEvent::TooLong);
            }
            if stop.load(Ordering::SeqCst) {
                return Ok(LineEvent::Stopped);
            }
            match self.inner.read(&mut self.chunk) {
                Ok(0) => return Ok(LineEvent::Eof),
                Ok(n) => self.pending.extend_from_slice(&self.chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    continue; // poll tick: re-check the stop flag
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    options: ServerOptions,
    shared: Option<Arc<Mutex<Session>>>,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(options.poll_interval));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader::new(stream);
    let mut session = match shared {
        Some(_) => None,
        None => {
            let mut s = Session::new(options.defaults);
            s.set_serving_info(EngineLabel::Threaded, false);
            Some(s)
        }
    };
    let mut responses = Vec::new();
    connections_gauge().add(1);

    loop {
        match reader.read_line(stop, options.max_line_bytes) {
            Ok(LineEvent::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                responses.clear();
                let keep_alive = match Request::parse(&line) {
                    Ok(req) => match (&shared, &mut session) {
                        // Shared threaded mode: every request behind the
                        // one session's mutex. Connection-scoped verbs
                        // are intercepted — QUIT must not seal the
                        // pipeline for everyone, and server push needs
                        // the event-loop engine's out-of-band writes.
                        (Some(sh), _) => match req {
                            Request::Config(_) => {
                                responses.push(Response::Err(
                                    "shared server: the pipeline is fixed by the \
                                     operator (CONFIG needs a per-session server)"
                                        .into(),
                                ));
                                true
                            }
                            Request::Subscribe { .. } => {
                                responses.push(Response::Err(
                                    "shared SUBSCRIBE needs the event-loop engine \
                                     (server push; restart without \
                                     SSSJ_NET_ENGINE=threaded)"
                                        .into(),
                                ));
                                true
                            }
                            Request::Quit => {
                                responses.push(Response::Bye);
                                false
                            }
                            other => sh
                                .lock()
                                .expect("shared session lock")
                                .handle(other, &mut responses),
                        },
                        (None, Some(session)) => session.handle(req, &mut responses),
                        (None, None) => unreachable!("per-session connections own a session"),
                    },
                    Err(e) => {
                        responses.push(Response::Err(e.to_string()));
                        true
                    }
                };
                if write_responses(&mut writer, &responses).is_err() {
                    break;
                }
                if !keep_alive {
                    break;
                }
            }
            Ok(LineEvent::TooLong) => {
                let _ = write_responses(
                    &mut writer,
                    &[Response::Err("line exceeds size cap".into())],
                );
                break;
            }
            Ok(LineEvent::Eof) | Ok(LineEvent::Stopped) | Err(_) => break,
        }
    }
    let _ = writer.flush();
    let _ = writer.shutdown(Shutdown::Both);
    connections_gauge().add(-1);
}

fn write_responses(w: &mut impl Write, responses: &[Response]) -> io::Result<()> {
    let mut buf = String::new();
    for r in responses {
        buf.push_str(&r.to_string());
        buf.push('\n');
    }
    w.write_all(buf.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reader_splits_and_strips_crlf() {
        let data: &[u8] = b"one\r\ntwo\nthree";
        let mut r = LineReader::new(data);
        let stop = AtomicBool::new(false);
        match r.read_line(&stop, 100).unwrap() {
            LineEvent::Line(l) => assert_eq!(l, "one"),
            _ => panic!("expected line"),
        }
        match r.read_line(&stop, 100).unwrap() {
            LineEvent::Line(l) => assert_eq!(l, "two"),
            _ => panic!("expected line"),
        }
        // Trailing bytes without a newline: EOF (partial line dropped —
        // the protocol requires terminated lines).
        assert!(matches!(r.read_line(&stop, 100).unwrap(), LineEvent::Eof));
    }

    #[test]
    fn line_reader_enforces_size_cap() {
        let long = vec![b'x'; 300];
        let mut r = LineReader::new(&long[..]);
        let stop = AtomicBool::new(false);
        assert!(matches!(
            r.read_line(&stop, 100).unwrap(),
            LineEvent::TooLong
        ));
    }

    #[test]
    fn line_reader_observes_stop_flag() {
        struct NeverReady;
        impl Read for NeverReady {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(ErrorKind::WouldBlock, "not ready"))
            }
        }
        let mut r = LineReader::new(NeverReady);
        let stop = AtomicBool::new(true);
        assert!(matches!(
            r.read_line(&stop, 100).unwrap(),
            LineEvent::Stopped
        ));
    }

    #[test]
    fn line_reader_handles_split_reads() {
        // A reader that yields one byte at a time exercises resumed scans.
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut r = LineReader::new(OneByte(b"hello\nworld\n", 0));
        let stop = AtomicBool::new(false);
        for want in ["hello", "world"] {
            match r.read_line(&stop, 100).unwrap() {
                LineEvent::Line(l) => assert_eq!(l, want),
                _ => panic!("expected line"),
            }
        }
    }
}

//! The per-connection session state machine.
//!
//! [`Session`] is deliberately socket-free: it maps one [`Request`] to a
//! sequence of [`Response`]s, so the whole protocol behaviour is unit-
//! testable without networking. The server (see [`crate::server`]) only
//! adds framing: read a line, parse, `handle`, write the responses.

use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use sssj_core::{
    EngineSpec, Framework, JoinSpec, ReorderBuffer, SpecError, StreamJoin, WrapperSpec,
};
use sssj_graph::{Edge, GraphHandle, GraphStats};
use sssj_metrics::registry::{Counter, Recorder, Registry};
use sssj_segments::HistoryHandle;
use sssj_textsim::Tokenizer;
use sssj_types::{SimilarPair, SparseVectorBuilder, StreamRecord, Timestamp};

use crate::protocol::{
    ConfigRequest, EngineLabel, GraphQuery, Request, Response, SessionMode, SessionStats,
};

/// Request verbs as metric label values, indexed by [`verb_index`].
const VERB_NAMES: [&str; 10] = [
    "config",
    "vector",
    "text",
    "stats",
    "metrics",
    "query",
    "subscribe",
    "finish",
    "quit",
    "trace",
];

fn verb_index(request: &Request) -> usize {
    match request {
        Request::Config(_) => 0,
        Request::Vector { .. } => 1,
        Request::Text { .. } => 2,
        Request::Stats => 3,
        Request::Metrics => 4,
        Request::Query(_) => 5,
        Request::Subscribe { .. } => 6,
        Request::Finish => 7,
        Request::Quit => 8,
        Request::Trace { .. } => 9,
    }
}

/// Server-side ceiling on one `TRACE n` reply, so a client cannot ask
/// for unbounded drain work (the rings hold 4096 events per thread).
const MAX_TRACE_EVENTS: u64 = 65_536;

struct VerbHandles {
    requests: &'static Counter,
    seconds: &'static Recorder,
}

/// Per-verb request counters and latency recorders, resolved once —
/// `handle` indexes this table with [`verb_index`], so the per-request
/// cost is two striped bumps, never a registry lookup.
fn verb_metrics() -> &'static [VerbHandles] {
    static M: OnceLock<Vec<VerbHandles>> = OnceLock::new();
    M.get_or_init(|| {
        let reg = Registry::global();
        VERB_NAMES
            .iter()
            .map(|v| VerbHandles {
                requests: reg.counter_with(
                    "sssj_net_requests_total",
                    "protocol requests handled, by verb",
                    &[("verb", v)],
                ),
                seconds: reg.recorder_with(
                    "sssj_net_request_seconds",
                    "request handling latency, by verb",
                    &[("verb", v)],
                ),
            })
            .collect()
    })
}

/// The slow-query threshold from `SSSJ_SLOW_MS` (milliseconds, read
/// once). `None` — the default — disables the probe entirely, so the
/// hot path never formats a request it will not log.
fn slow_threshold_ms() -> Option<f64> {
    static T: OnceLock<Option<f64>> = OnceLock::new();
    *T.get_or_init(|| {
        std::env::var("SSSJ_SLOW_MS")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|t| t.is_finite() && *t >= 0.0)
    })
}

/// Logs one slow request to stderr, rate-limited to roughly one line
/// per second process-wide so a pathological stream cannot flood the
/// log. Counted (unsampled) in `sssj_net_slow_requests_total` either
/// way.
fn log_slow_request(repr: &str, elapsed_ms: f64, generation: u64, trace_id: u64) {
    static LAST: Mutex<Option<Instant>> = Mutex::new(None);
    let mut last = LAST.lock().expect("slow-log clock poisoned");
    let due = last.is_none_or(|at| at.elapsed().as_secs_f64() >= 1.0);
    if due {
        *last = Some(Instant::now());
        eprintln!(
            "sssj: slow request ({elapsed_ms:.1} ms, snapshot generation {generation}): {repr}"
        );
        // With tracing on, the offending request's span tree — its
        // journey through ingest, shards, WAL, graph — follows the line.
        if trace_id != 0 {
            let tree = sssj_metrics::trace::format_span_tree(trace_id);
            if !tree.is_empty() {
                eprint!("{tree}");
            }
        }
    }
}

/// Server-side defaults a session starts from; `CONFIG` overrides them
/// per session. The join pipeline is a full [`JoinSpec`], so any variant
/// the workspace implements can be the server default.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionDefaults {
    /// The join pipeline (engine, index, θ/λ, wrappers).
    pub spec: JoinSpec,
    /// Payload interpretation.
    pub mode: SessionMode,
}

impl Default for SessionDefaults {
    fn default() -> Self {
        SessionDefaults {
            spec: JoinSpec::new(0.7, 0.01),
            mode: SessionMode::Vector,
        }
    }
}

/// The join behind a session: plain, or wrapped in a reorder buffer when
/// the client asked for out-of-order tolerance. The wrapper is kept
/// explicit (not type-erased) so late records can be reported as `E`
/// responses rather than silently dropped.
enum SessionJoin {
    Plain(Box<dyn StreamJoin>),
    Reordered(ReorderBuffer<Box<dyn StreamJoin>>),
}

impl SessionJoin {
    fn stats(&self) -> sssj_metrics::JoinStats {
        match self {
            SessionJoin::Plain(j) => j.stats(),
            SessionJoin::Reordered(j) => j.stats(),
        }
    }

    fn live_postings(&self) -> u64 {
        match self {
            SessionJoin::Plain(j) => j.live_postings(),
            SessionJoin::Reordered(j) => j.live_postings(),
        }
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        match self {
            SessionJoin::Plain(j) => j.finish(out),
            SessionJoin::Reordered(j) => j.finish(out),
        }
    }

    fn resume_point(&self) -> Option<(u64, f64)> {
        match self {
            SessionJoin::Plain(j) => j.resume_point(),
            SessionJoin::Reordered(j) => j.resume_point(),
        }
    }
}

/// One client session: configuration, the running join, and id/time
/// bookkeeping.
pub struct Session {
    defaults: SessionDefaults,
    current: SessionDefaults,
    /// Slack of the current spec's outermost reorder wrapper (0 = none).
    slack: f64,
    join: SessionJoin,
    /// The live graph handle when the spec carries the `graph` wrapper —
    /// what `QUERY`/`SUBSCRIBE` are served from.
    graph: Option<GraphHandle>,
    /// The historical tier's handle when the spec carries `history=` —
    /// what `QUERY … at=<t>` and the stats history boundary are served
    /// from.
    history: Option<HistoryHandle>,
    /// The current spec's horizon τ (the time-travel window width).
    horizon: f64,
    /// Nodes with live `SUBSCRIBE`s (insertion order; deduplicated).
    subs: Vec<u64>,
    tokenizer: Tokenizer,
    next_id: u64,
    last_t: f64,
    records: u64,
    pairs: u64,
    started: bool,
    finished: bool,
    /// Serve watermark-time `QUERY`s from the published [`GraphSnapshot`]
    /// instead of the freshness path (see [`Session::set_snapshot_reads`]).
    ///
    /// [`GraphSnapshot`]: sssj_graph::GraphSnapshot
    snapshot_reads: bool,
    /// Which serving engine hosts this session (`STATS` reports it).
    engine_label: EngineLabel,
    /// Whether this session feeds a shared pipeline (`STATS` reports it).
    shared: bool,
}

/// Builds the session's join through the one spec factory. An outermost
/// reorder wrapper is split off and kept un-type-erased so late records
/// can be reported as `E` responses rather than silently dropped;
/// everything inside it comes from [`JoinSpec::build`] — except that a
/// `graph`-wrapped spec goes through `sssj_graph::build_with_handle`,
/// which is the same factory path plus the query handle `QUERY`/
/// `SUBSCRIBE` are served from. Returns the join, that wrapper's slack,
/// and the graph handle (if any).
type BuiltJoin = (SessionJoin, f64, Option<GraphHandle>, Option<HistoryHandle>);

fn build_join(spec: &JoinSpec) -> Result<BuiltJoin, SpecError> {
    // Validate the *whole* spec first, so an invalid outer wrapper
    // combination cannot slip through the split.
    spec.validate()?;
    let (inner, slack) = spec.split_outer_reorder();
    let (join, graph, history) = if inner
        .wrappers
        .iter()
        .any(|w| matches!(w, WrapperSpec::History(_)))
    {
        let (join, graph, history) = sssj_segments::build_with_handles(&inner)?;
        (join, graph, Some(history))
    } else if inner
        .wrappers
        .iter()
        .any(|w| matches!(w, WrapperSpec::Graph))
    {
        let (join, handle) = sssj_graph::build_with_handle(&inner)?;
        (join, Some(handle), None)
    } else {
        (inner.build()?, None, None)
    };
    Ok(match slack {
        Some(slack) if slack > 0.0 => (
            SessionJoin::Reordered(ReorderBuffer::new(join, slack)),
            slack,
            graph,
            history,
        ),
        _ => (SessionJoin::Plain(join), 0.0, graph, history),
    })
}

/// Emits an edge list as `P <node> <nbr> <sim>` lines plus the counting
/// `OK` terminator — the framing every edge-valued `QUERY` uses.
fn push_edges(out: &mut Vec<Response>, node: u64, edges: Vec<Edge>) {
    let n = edges.len() as u64;
    out.extend(
        edges
            .into_iter()
            .map(|e| Response::Pair(SimilarPair::new(node, e.neighbor, e.similarity))),
    );
    out.push(Response::Ok(n));
}

impl Session {
    /// Creates a session with the server's defaults.
    ///
    /// Panics when the default spec cannot be built — server defaults
    /// are operator-supplied configuration, not client input. Client
    /// `CONFIG` requests never panic; they answer `E` lines.
    pub fn new(defaults: SessionDefaults) -> Self {
        crate::register_spec_builders();
        let (join, slack, graph, history) = build_join(&defaults.spec)
            .unwrap_or_else(|e| panic!("invalid server default spec {}: {e}", defaults.spec));
        // A durable default spec may have *resumed* from its manifest:
        // continue id assignment and the timestamp watermark where the
        // previous incarnation stopped.
        let (next_id, last_t) = join.resume_point().unwrap_or((0, f64::NEG_INFINITY));
        let horizon = defaults.spec.horizon();
        Session {
            current: defaults.clone(),
            defaults,
            slack,
            join,
            graph,
            history,
            horizon,
            subs: Vec::new(),
            tokenizer: Tokenizer::new(),
            next_id,
            last_t,
            records: 0,
            pairs: 0,
            started: false,
            finished: false,
            snapshot_reads: false,
            engine_label: EngineLabel::Unknown,
            shared: false,
        }
    }

    /// Stamps the serving shape `STATS` reports (`engine=`/`shared=`) —
    /// the server calls this once when it adopts the session.
    pub fn set_serving_info(&mut self, engine: EngineLabel, shared: bool) {
        self.engine_label = engine;
        self.shared = shared;
    }

    /// The configuration currently in effect.
    pub fn current_config(&self) -> &SessionDefaults {
        &self.current
    }

    /// When on, watermark-time `QUERY`s (no `at=`) answer from the
    /// graph's *published snapshot* — wait-free for the reader and
    /// consistent at the snapshot's own watermark — instead of the
    /// freshness path, which takes the ingest lock to fold in pending
    /// edges first. The shared event-loop server turns this on so
    /// queries never contend with ingest; it publishes after every
    /// request batch, so a client that saw its `OK` also sees its edges
    /// (read-your-writes across request/response turns). Off by default:
    /// a session that owns its pipeline wants fresh answers.
    pub fn set_snapshot_reads(&mut self, on: bool) {
        self.snapshot_reads = on;
    }

    /// The live graph handle (a cheap clone), when the spec carries the
    /// `graph` wrapper — the server's publish/fan-out hooks use it.
    pub fn graph_handle(&self) -> Option<GraphHandle> {
        self.graph.clone()
    }

    /// Handles one request, appending the responses. Returns `false`
    /// when the session must close (after `QUIT`).
    ///
    /// Both serving engines funnel every request through here, so this
    /// is where the per-verb telemetry, the trace scope, and the
    /// slow-query probe live. With telemetry and tracing off and no
    /// `SSSJ_SLOW_MS` threshold the request goes straight to dispatch —
    /// not even a clock read.
    pub fn handle(&mut self, request: Request, out: &mut Vec<Response>) -> bool {
        let slow_ms = slow_threshold_ms();
        let telemetry = sssj_metrics::telemetry_enabled();
        if !telemetry && !sssj_metrics::trace_enabled() && slow_ms.is_none() {
            return self.dispatch(request, out);
        }
        let verb = verb_index(&request);
        // Format the request up front only when the slow probe is armed:
        // dispatch consumes it, and the probe logs the parsed form.
        let repr = slow_ms.map(|_| request.to_string());
        // Every request gets its own trace id; spans recorded anywhere
        // downstream — ingest, shard fan-out, WAL, graph publish — nest
        // under this scope, so one record's journey is reconstructible.
        let _trace = sssj_metrics::trace::scope(sssj_metrics::trace::next_trace_id());
        let mut span =
            sssj_metrics::trace::span_with(sssj_metrics::trace::Stage::NetRequest, verb as u64, 0);
        let started = Instant::now();
        let keep = self.dispatch(request, out);
        let elapsed = started.elapsed();
        span.set_args(verb as u64, out.len() as u64);
        let trace_id = span.trace_id();
        drop(span);
        if telemetry {
            let m = &verb_metrics()[verb];
            m.requests.inc();
            m.seconds.record_duration(elapsed);
        }
        if let (Some(threshold), Some(repr)) = (slow_ms, repr) {
            let elapsed_ms = elapsed.as_secs_f64() * 1e3;
            if elapsed_ms > threshold {
                if telemetry {
                    Registry::global()
                        .counter(
                            "sssj_net_slow_requests_total",
                            "requests over the SSSJ_SLOW_MS threshold",
                        )
                        .inc();
                }
                sssj_metrics::trace::instant(
                    sssj_metrics::trace::Stage::SlowRequest,
                    verb as u64,
                    elapsed_ms as u64,
                );
                log_slow_request(&repr, elapsed_ms, self.snapshot_generation(), trace_id);
            }
        }
        keep
    }

    /// Graph snapshot generation visible to this session (0 without a
    /// graph or before the first publish).
    fn snapshot_generation(&self) -> u64 {
        self.graph
            .as_ref()
            .map(|g| g.snapshot().generation())
            .unwrap_or(0)
    }

    fn dispatch(&mut self, request: Request, out: &mut Vec<Response>) -> bool {
        match request {
            Request::Config(c) => self.handle_config(c, out),
            Request::Vector { t, entries } => self.handle_vector(t, &entries, out),
            Request::Text { t, text } => self.handle_text(t, &text, out),
            Request::Query(q) => self.handle_query(q, out),
            Request::Subscribe { node } => {
                if self.graph.is_none() {
                    out.push(Response::Err(
                        "session has no graph (configure a graph-wrapped spec, \
                         e.g. CONFIG spec=str-l2?theta=0.7&tau=10&graph)"
                            .into(),
                    ));
                } else {
                    if !self.subs.contains(&node) {
                        self.subs.push(node);
                    }
                    out.push(Response::Ok(0));
                }
            }
            Request::Stats => {
                let s = self.join.stats();
                out.push(Response::Stats(SessionStats {
                    records: self.records,
                    pairs: self.pairs,
                    entries_traversed: s.entries_traversed,
                    candidates: s.candidates,
                    full_sims: s.full_sims,
                    live_postings: self.join.live_postings(),
                    engine: self.engine_label,
                    shared: self.shared,
                    generation: self.snapshot_generation(),
                }));
            }
            Request::Metrics => {
                // Empty with SSSJ_TELEMETRY=off: frozen counters would
                // scrape as zeros, which reads as data. Absence does not.
                let text = if sssj_metrics::telemetry_enabled() {
                    Registry::global().prometheus()
                } else {
                    String::new()
                };
                let mut n = 0u64;
                for line in text.lines() {
                    out.push(Response::Metric(line.to_string()));
                    n += 1;
                }
                out.push(Response::Ok(n));
            }
            Request::Trace { max } => {
                // Drain before the header so `dropped=` covers exactly
                // the events this reply could have carried.
                let dump = sssj_metrics::trace::drain_last(max.min(MAX_TRACE_EVENTS) as usize);
                out.push(Response::TraceLine(format!(
                    "# now={} watermark={} dropped={}",
                    dump.now_ns, self.last_t, dump.dropped
                )));
                out.extend(
                    dump.events
                        .iter()
                        .map(|ev| Response::TraceLine(ev.to_wire())),
                );
                out.push(Response::Ok(1 + dump.events.len() as u64));
            }
            Request::Finish => {
                if self.finished {
                    out.push(Response::Ok(0));
                    return true;
                }
                let mut pairs = Vec::new();
                self.join.finish(&mut pairs);
                self.finished = true;
                self.emit(pairs, out);
            }
            Request::Quit => {
                out.push(Response::Bye);
                return false;
            }
        }
        true
    }

    fn handle_config(&mut self, c: ConfigRequest, out: &mut Vec<Response>) {
        if self.started {
            out.push(Response::Err("CONFIG must precede the first record".into()));
            return;
        }
        // The spec replaces the pipeline wholesale; scalar keys override
        // its fields on top (in that order — see the protocol docs).
        let mut spec = c.spec.unwrap_or_else(|| self.defaults.spec.clone());
        if let Some(theta) = c.theta {
            spec.theta = theta;
        }
        if let Some(lambda) = c.lambda {
            spec.lambda = lambda;
        }
        if let Some(index) = c.index {
            spec.index = index;
        }
        if let Some(framework) = c.framework {
            spec.engine = match framework {
                Framework::Streaming => EngineSpec::Streaming,
                Framework::MiniBatch => EngineSpec::MiniBatch,
            };
        }
        if let Some(slack) = c.slack {
            if !(slack.is_finite() && slack >= 0.0) {
                out.push(Response::Err(format!("slack must be ≥ 0: {slack}")));
                return;
            }
            // Replace any outer reorder wrapper with the requested slack.
            if let (inner, Some(_)) = spec.split_outer_reorder() {
                spec = inner;
            }
            if slack > 0.0 {
                spec.wrappers.push(WrapperSpec::Reorder(slack));
            }
        }
        // Validate by building: every error — out-of-range parameter,
        // invalid wrapper combination, unregistered engine — comes back
        // as an `E` line and the session stays on its previous join.
        match build_join(&spec) {
            Ok((join, slack, graph, history)) => {
                // Resuming a durable store (`…&durable=<dir>` with an
                // existing manifest): the session continues the
                // recovered stream — ids restart after the ingested
                // prefix, the watermark at the recovered timestamp, and
                // the replay tail surfaces with the first record's
                // response.
                let (next_id, last_t) = join.resume_point().unwrap_or((0, f64::NEG_INFINITY));
                self.next_id = next_id;
                self.last_t = last_t;
                self.join = join;
                self.graph = graph;
                self.history = history;
                self.horizon = spec.horizon();
                self.subs.clear();
                self.slack = slack;
                self.current = SessionDefaults {
                    spec,
                    mode: c.mode.unwrap_or(self.defaults.mode),
                };
                out.push(Response::Ok(0));
            }
            Err(e) => out.push(Response::Err(e.to_string())),
        }
    }

    fn handle_vector(&mut self, t: f64, entries: &[(u32, f64)], out: &mut Vec<Response>) {
        if self.current.mode != SessionMode::Vector {
            out.push(Response::Err("session is in text mode; use T".into()));
            return;
        }
        let mut b = SparseVectorBuilder::with_capacity(entries.len());
        for &(d, w) in entries {
            b.push(d, w);
        }
        match b.build_normalized() {
            Ok(v) => self.ingest(t, v, out),
            Err(e) => out.push(Response::Err(format!("bad vector: {e}"))),
        }
    }

    fn handle_text(&mut self, t: f64, text: &str, out: &mut Vec<Response>) {
        if self.current.mode != SessionMode::Text {
            out.push(Response::Err("session is in vector mode; use V".into()));
            return;
        }
        match self.tokenizer.unit_vector(text) {
            Ok(v) => self.ingest(t, v, out),
            // Token-free text can never join anything: accept and move on
            // without consuming an id, mirroring the CLI `serve` command.
            Err(_) => out.push(Response::Ok(0)),
        }
    }

    fn ingest(&mut self, t: f64, vector: sssj_types::SparseVector, out: &mut Vec<Response>) {
        if self.finished {
            out.push(Response::Err(
                "session already finished; open a new connection".into(),
            ));
            return;
        }
        let record = StreamRecord::new(self.next_id, Timestamp::new(t), vector);
        let mut pairs = Vec::new();
        match &mut self.join {
            SessionJoin::Plain(join) => {
                if t < self.last_t {
                    out.push(Response::Err(format!(
                        "out-of-order timestamp {t} < {} (configure slack= to tolerate)",
                        self.last_t
                    )));
                    return;
                }
                join.process(&record, &mut pairs);
            }
            SessionJoin::Reordered(join) => {
                if let Err(late) = join.push(&record, &mut pairs) {
                    out.push(Response::Err(format!(
                        "record at t={t} is more than slack={} late (released up to t={})",
                        self.slack, late.released_up_to
                    )));
                    return;
                }
            }
        }
        self.started = true;
        self.next_id += 1;
        self.records += 1;
        if t > self.last_t {
            self.last_t = t;
        }
        self.emit(pairs, out);
    }

    fn emit(&mut self, pairs: Vec<SimilarPair>, out: &mut Vec<Response>) {
        let n = pairs.len() as u64;
        self.pairs += n;
        // Pushed subscription updates ride between the P lines and the
        // OK; they are not counted (wire compatibility for clients that
        // never subscribe).
        let updates: Vec<Response> = if self.subs.is_empty() {
            Vec::new()
        } else {
            pairs
                .iter()
                .flat_map(|p| {
                    [p.left, p.right]
                        .into_iter()
                        .filter(|node| self.subs.contains(node))
                        .map(|node| Response::Update { node, pair: *p })
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        out.extend(pairs.into_iter().map(Response::Pair));
        out.extend(updates);
        out.push(Response::Ok(n));
    }

    /// Serves one `QUERY` — at the session's stream watermark, or (with
    /// `at=<t>` on a history session) at historical time `t` from the
    /// segment-tier overlay.
    fn handle_query(&mut self, query: GraphQuery, out: &mut Vec<Response>) {
        let at = match query {
            GraphQuery::Neighbors { at, .. }
            | GraphQuery::TopK { at, .. }
            | GraphQuery::Component { at, .. } => at,
            GraphQuery::Stats => None,
        };
        if let Some(t) = at {
            self.handle_history_query(query, t, out);
            return;
        }
        let Some(graph) = &self.graph else {
            out.push(Response::Err(
                "session has no graph (configure a graph-wrapped spec, \
                 e.g. CONFIG spec=str-l2?theta=0.7&tau=10&graph)"
                    .into(),
            ));
            return;
        };
        if self.snapshot_reads {
            // Shared event-loop serving: answer from the published
            // snapshot, evaluated at its own watermark. Publication is
            // lazy — `publish_now` folds any unpublished ingest in
            // before answering (read-your-writes across the loop's
            // connections) and is a wait-free cached-`Arc` load when
            // nothing changed, so pure-ingest iterations never pay a
            // capture and idle queries never take a lock.
            let snap = graph.publish_now();
            let now = snap.watermark();
            match query {
                GraphQuery::Neighbors { node, .. } => {
                    push_edges(out, node, snap.neighbors(node, now));
                }
                GraphQuery::TopK { node, k, .. } => {
                    push_edges(out, node, snap.topk(node, k as usize, now));
                }
                GraphQuery::Component { node, .. } => {
                    let (root, size) = snap.component(node, now).unwrap_or((node, 0));
                    out.push(Response::Graph(vec![
                        ("root".into(), root),
                        ("size".into(), size),
                    ]));
                }
                GraphQuery::Stats => {
                    let fields = self.stats_fields(snap.stats(now), now);
                    out.push(Response::Graph(fields));
                }
            }
            return;
        }
        let now = self.last_t;
        match query {
            GraphQuery::Neighbors { node, .. } => {
                push_edges(out, node, graph.neighbors(node, now));
            }
            GraphQuery::TopK { node, k, .. } => {
                push_edges(out, node, graph.topk(node, k as usize, now));
            }
            GraphQuery::Component { node, .. } => {
                let (root, size) = graph.component(node, now).unwrap_or((node, 0));
                out.push(Response::Graph(vec![
                    ("root".into(), root),
                    ("size".into(), size),
                ]));
            }
            GraphQuery::Stats => {
                let fields = self.stats_fields(graph.stats(now), now);
                out.push(Response::Graph(fields));
            }
        }
    }

    /// The `QUERY stats` G-line fields for counters `s` at time `now`.
    /// The history boundary rides the same G line as extra fields (times
    /// in saturating integer milliseconds), so history-unaware clients
    /// keep parsing it unchanged.
    fn stats_fields(&self, s: GraphStats, now: f64) -> Vec<(String, u64)> {
        let mut fields = vec![
            ("nodes".into(), s.nodes),
            ("edges".into(), s.edges),
            ("components".into(), s.components),
        ];
        if let Some(history) = &self.history {
            let b = history.boundary();
            let ms = |t: f64| (t.max(0.0) * 1000.0).round() as u64;
            fields.push(("history_segments".into(), b.segments));
            fields.push(("history_oldest_ms".into(), ms(b.oldest_t.unwrap_or(0.0))));
            fields.push((
                "watermark_ms".into(),
                ms(if now.is_finite() { now } else { 0.0 }),
            ));
        }
        fields
    }

    /// Serves one `QUERY … at=<t>` from the historical overlay.
    fn handle_history_query(&mut self, query: GraphQuery, t: f64, out: &mut Vec<Response>) {
        let Some(history) = &self.history else {
            out.push(Response::Err(
                "at= needs a history-wrapped spec (append &history=<dir> \
                 after durable=; the live graph has already expired that window)"
                    .into(),
            ));
            return;
        };
        let graph = self.graph.as_ref();
        match query {
            GraphQuery::Neighbors { node, .. } => {
                let edges = history.neighbors_at(graph, node, t, self.horizon);
                let n = edges.len() as u64;
                out.extend(
                    edges
                        .into_iter()
                        .map(|e| Response::Pair(SimilarPair::new(node, e.neighbor, e.similarity))),
                );
                out.push(Response::Ok(n));
            }
            GraphQuery::TopK { node, k, .. } => {
                let edges = history.topk_at(graph, node, k as usize, t, self.horizon);
                let n = edges.len() as u64;
                out.extend(
                    edges
                        .into_iter()
                        .map(|e| Response::Pair(SimilarPair::new(node, e.neighbor, e.similarity))),
                );
                out.push(Response::Ok(n));
            }
            GraphQuery::Component { node, .. } => {
                let (root, size) = history
                    .component_at(graph, node, t, self.horizon)
                    .unwrap_or((node, 0));
                out.push(Response::Graph(vec![
                    ("root".into(), root),
                    ("size".into(), size),
                ]));
            }
            GraphQuery::Stats => unreachable!("stats has no at= form"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle_line(s: &mut Session, line: &str) -> Vec<Response> {
        let mut out = Vec::new();
        s.handle(Request::parse(line).unwrap(), &mut out);
        out
    }

    fn ok_count(responses: &[Response]) -> u64 {
        match responses.last() {
            Some(Response::Ok(n)) => *n,
            other => panic!("expected OK, got {other:?}"),
        }
    }

    #[test]
    fn history_session_serves_time_travel() {
        let root = std::env::temp_dir().join(format!("sssj-net-history-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let spec: JoinSpec = format!(
            "str-l2?theta=0.6&tau=4&durable={}&graph&history={}",
            root.join("wal").display(),
            root.join("hist").display()
        )
        .parse()
        .unwrap();
        let mut s = Session::new(SessionDefaults {
            spec,
            mode: SessionMode::Vector,
        });
        handle_line(&mut s, "V 0.0 7:1.0");
        assert_eq!(ok_count(&handle_line(&mut s, "V 1.0 7:1.0")), 1);
        for i in 0..40 {
            handle_line(&mut s, &format!("V {} {}:1.0", 10.0 + i as f64, 1000 + i));
        }
        // Live: the 0–1 edge (t=1) has long expired under τ=4.
        assert_eq!(ok_count(&handle_line(&mut s, "QUERY neighbors 0")), 0);
        // Time travel to t=2 sees it again.
        let r = handle_line(&mut s, "QUERY neighbors 0 at=2.0");
        assert_eq!(ok_count(&r), 1);
        match &r[0] {
            Response::Pair(p) => assert_eq!(p.key(), (0, 1)),
            other => panic!("expected pair, got {other:?}"),
        }
        assert_eq!(ok_count(&handle_line(&mut s, "QUERY topk 1 5 at=2.0")), 1);
        let r = handle_line(&mut s, "QUERY component 1 at=2.0");
        assert_eq!(
            r[0],
            Response::Graph(vec![("root".into(), 0), ("size".into(), 2)])
        );
        // Before the stream began, nothing existed.
        assert_eq!(ok_count(&handle_line(&mut s, "QUERY neighbors 0 at=-5")), 0);
        // The stats G line reports the history boundary fields.
        let r = handle_line(&mut s, "QUERY stats");
        match &r[0] {
            Response::Graph(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert!(keys.contains(&"history_segments"), "{keys:?}");
                assert!(keys.contains(&"history_oldest_ms"), "{keys:?}");
                let wm = fields
                    .iter()
                    .find(|(k, _)| k == "watermark_ms")
                    .expect("watermark field");
                assert_eq!(wm.1, 49_000);
            }
            other => panic!("expected G reply, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshot_reads_serve_the_published_watermark() {
        let mut s = Session::new(SessionDefaults {
            spec: "str-l2?theta=0.6&tau=100&graph".parse().unwrap(),
            mode: SessionMode::Vector,
        });
        s.set_snapshot_reads(true);
        handle_line(&mut s, "V 0.0 7:1.0");
        assert_eq!(ok_count(&handle_line(&mut s, "V 1.0 7:1.0")), 1);
        // Publication is lazy: ingest alone leaves the write side dirty
        // and nothing captured …
        let g = s.graph_handle().expect("graph spec");
        assert!(g.is_dirty());
        assert_eq!(g.snapshot().generation(), 0);
        // … and the query folds the backlog in before answering
        // (read-your-writes without a per-record capture).
        let r = handle_line(&mut s, "QUERY neighbors 0");
        assert!(!g.is_dirty());
        assert_eq!(ok_count(&r), 1);
        match &r[0] {
            Response::Pair(p) => assert_eq!(p.key(), (0, 1)),
            other => panic!("expected pair, got {other:?}"),
        }
        let r = handle_line(&mut s, "QUERY stats");
        assert_eq!(
            r[0],
            Response::Graph(vec![
                ("nodes".into(), 2),
                ("edges".into(), 1),
                ("components".into(), 1),
            ])
        );
    }

    #[test]
    fn at_query_without_history_is_an_error() {
        let mut s = Session::new(SessionDefaults {
            spec: "str-l2?theta=0.7&tau=10&graph".parse().unwrap(),
            mode: SessionMode::Vector,
        });
        handle_line(&mut s, "V 0.0 7:1.0");
        let r = handle_line(&mut s, "QUERY neighbors 0 at=0.0");
        assert!(matches!(&r[0], Response::Err(m) if m.contains("history")));
    }

    #[test]
    fn near_duplicates_pair_up() {
        let mut s = Session::new(SessionDefaults::default());
        assert_eq!(ok_count(&handle_line(&mut s, "V 0.0 7:1.0")), 0);
        let r = handle_line(&mut s, "V 1.0 7:1.0");
        assert_eq!(ok_count(&r), 1);
        match &r[0] {
            Response::Pair(p) => {
                assert_eq!(p.key(), (0, 1));
                assert!((p.similarity - (-0.01f64).exp()).abs() < 1e-12);
            }
            other => panic!("expected pair, got {other:?}"),
        }
    }

    #[test]
    fn config_changes_threshold() {
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "CONFIG theta=0.99 lambda=1.0");
        handle_line(&mut s, "V 0.0 7:1.0");
        // e^{-1.0·1.0} ≈ 0.37 < 0.99: no pair under the stricter config.
        assert_eq!(ok_count(&handle_line(&mut s, "V 1.0 7:1.0")), 0);
    }

    #[test]
    fn config_after_first_record_is_rejected() {
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "V 0.0 7:1.0");
        let r = handle_line(&mut s, "CONFIG theta=0.5");
        assert!(matches!(&r[0], Response::Err(m) if m.contains("precede")));
    }

    #[test]
    fn out_of_order_rejected_without_slack() {
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "V 5.0 7:1.0");
        let r = handle_line(&mut s, "V 1.0 7:1.0");
        assert!(matches!(&r[0], Response::Err(m) if m.contains("out-of-order")));
        // The record was not consumed: the next id is still 1.
        let r = handle_line(&mut s, "V 6.0 8:1.0");
        assert_eq!(ok_count(&r), 0);
        handle_line(&mut s, "STATS");
        assert_eq!(s.records, 2);
    }

    #[test]
    fn slack_tolerates_bounded_disorder() {
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "CONFIG slack=10 theta=0.7 lambda=0.01");
        handle_line(&mut s, "V 5.0 7:1.0");
        let r = handle_line(&mut s, "V 1.0 7:1.0"); // 4 late, within slack
        assert!(!matches!(&r[0], Response::Err(_)), "{r:?}");
        let r = handle_line(&mut s, "FINISH");
        assert_eq!(ok_count(&r), 1, "pair reported at flush");
    }

    #[test]
    fn slack_still_rejects_hopelessly_late_records() {
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "CONFIG slack=1");
        handle_line(&mut s, "V 0.0 7:1.0");
        handle_line(&mut s, "V 100.0 7:1.0"); // watermark 99: releases t=0
        handle_line(&mut s, "V 200.0 7:1.0"); // watermark 199: releases t=100
        let r = handle_line(&mut s, "V 2.0 7:1.0"); // behind released t=100
        assert!(matches!(&r[0], Response::Err(m) if m.contains("late")));
    }

    #[test]
    fn text_mode_tokenises() {
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "CONFIG mode=text theta=0.9 lambda=0.001");
        assert_eq!(
            ok_count(&handle_line(&mut s, "T 0.0 rust streaming join")),
            0
        );
        let r = handle_line(&mut s, "T 1.0 rust streaming join");
        assert_eq!(ok_count(&r), 1);
        // Token-free text is accepted but joins nothing.
        assert_eq!(ok_count(&handle_line(&mut s, "T 2.0 !!! ...")), 0);
    }

    #[test]
    fn wrong_verb_for_mode_is_an_error() {
        let mut s = Session::new(SessionDefaults::default());
        let r = handle_line(&mut s, "T 0.0 hello");
        assert!(matches!(&r[0], Response::Err(m) if m.contains("vector mode")));
        handle_line(&mut s, "CONFIG mode=text");
        let r = handle_line(&mut s, "V 0.0 1:1.0");
        assert!(matches!(&r[0], Response::Err(m) if m.contains("text mode")));
    }

    #[test]
    fn stats_report_session_counters() {
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "V 0.0 7:1.0");
        handle_line(&mut s, "V 1.0 7:1.0");
        let r = handle_line(&mut s, "STATS");
        match &r[0] {
            Response::Stats(st) => {
                assert_eq!(st.records, 2);
                assert_eq!(st.pairs, 1);
                assert!(st.live_postings > 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn finish_flushes_minibatch_and_seals_session() {
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "CONFIG framework=mb theta=0.7 lambda=0.01");
        handle_line(&mut s, "V 0.0 7:1.0");
        handle_line(&mut s, "V 1.0 7:1.0");
        let r = handle_line(&mut s, "FINISH");
        assert_eq!(
            ok_count(&r),
            1,
            "MB reports the within-window pair at flush"
        );
        let r = handle_line(&mut s, "V 2.0 7:1.0");
        assert!(matches!(&r[0], Response::Err(m) if m.contains("finished")));
        // FINISH is idempotent.
        assert_eq!(ok_count(&handle_line(&mut s, "FINISH")), 0);
    }

    #[test]
    fn directly_built_bad_config_is_an_error_not_a_panic() {
        use crate::protocol::ConfigRequest;
        for bad in [
            ConfigRequest {
                theta: Some(2.0),
                ..Default::default()
            },
            ConfigRequest {
                theta: Some(f64::NAN),
                ..Default::default()
            },
            ConfigRequest {
                lambda: Some(-1.0),
                ..Default::default()
            },
            ConfigRequest {
                slack: Some(f64::INFINITY),
                ..Default::default()
            },
        ] {
            let mut s = Session::new(SessionDefaults::default());
            let mut out = Vec::new();
            s.handle(Request::Config(bad), &mut out);
            assert!(matches!(&out[0], Response::Err(_)), "{out:?}");
        }
    }

    #[test]
    fn spec_negotiates_extended_variants() {
        // Top-k over the wire: two matches for the third record, k=1
        // keeps only the better one.
        let mut s = Session::new(SessionDefaults::default());
        let r = handle_line(&mut s, "CONFIG spec=topk-l2?theta=0.3&lambda=0.01&k=1");
        assert!(matches!(r[0], Response::Ok(0)), "{r:?}");
        handle_line(&mut s, "V 0.0 1:1.0");
        handle_line(&mut s, "V 0.5 1:1.0 2:1.0");
        let r = handle_line(&mut s, "V 1.0 1:1.0");
        assert_eq!(ok_count(&r), 1, "{r:?}");

        // The approximate LSH engine is reachable too.
        let mut s = Session::new(SessionDefaults::default());
        let r = handle_line(&mut s, "CONFIG spec=lsh?theta=0.7&lambda=0.1");
        assert!(matches!(r[0], Response::Ok(0)), "{r:?}");
        handle_line(&mut s, "V 0.0 7:1.0 8:2.0");
        let r = handle_line(&mut s, "V 1.0 7:1.0 8:2.0");
        assert_eq!(ok_count(&r), 1, "identical signatures always collide");

        // And the sharded engine (pairs may surface at FINISH).
        let mut s = Session::new(SessionDefaults::default());
        let r = handle_line(
            &mut s,
            "CONFIG spec=sharded-l2?theta=0.7&lambda=0.1&shards=2",
        );
        assert!(matches!(r[0], Response::Ok(0)), "{r:?}");
        handle_line(&mut s, "V 0.0 7:1.0");
        let n = ok_count(&handle_line(&mut s, "V 1.0 7:1.0"));
        let m = ok_count(&handle_line(&mut s, "FINISH"));
        assert_eq!(n + m, 1, "the sharded pair must arrive by FINISH");
    }

    #[test]
    fn sharded_inner_specs_negotiate_over_the_wire() {
        // The inner engine spec round-trips through CONFIG: MB workers
        // behind the sharded driver, reported by FINISH at the latest.
        for (config_line, canonical) in [
            (
                "CONFIG spec=sharded?theta=0.7&lambda=0.1&shards=2&inner=mb-l2",
                "sharded?theta=0.7&lambda=0.1&shards=2&inner=mb-l2",
            ),
            (
                "CONFIG spec=sharded?theta=0.7&shards=2&inner=decay&model=window:10",
                "sharded?theta=0.7&shards=2&inner=decay&model=window:10",
            ),
            (
                "CONFIG spec=sharded?theta=0.7&lambda=0.1&shards=2&inner=lsh",
                "sharded?theta=0.7&lambda=0.1&shards=2&inner=lsh\
                 &bits=256&bands=32&verify=exact",
            ),
        ] {
            let mut s = Session::new(SessionDefaults::default());
            let r = handle_line(&mut s, config_line);
            assert!(matches!(r[0], Response::Ok(0)), "{config_line}: {r:?}");
            assert_eq!(
                s.current_config().spec.to_string(),
                canonical,
                "{config_line}"
            );
            handle_line(&mut s, "V 0.0 7:1.0");
            let n = ok_count(&handle_line(&mut s, "V 1.0 7:1.0"));
            let m = ok_count(&handle_line(&mut s, "FINISH"));
            assert_eq!(n + m, 1, "{config_line}: pair must arrive by FINISH");
        }

        // CONFIGJ speaks the same inner mapping.
        let mut s = Session::new(SessionDefaults::default());
        let r = handle_line(
            &mut s,
            "CONFIGJ {\"engine\":\"sharded\",\"index\":\"l2ap\",\"theta\":0.7,\
             \"lambda\":0.1,\"shards\":2,\"inner\":\"mb\"}",
        );
        assert!(matches!(r[0], Response::Ok(0)), "{r:?}");
        assert_eq!(
            s.current_config().spec.to_string(),
            "sharded?theta=0.7&lambda=0.1&shards=2&inner=mb-l2ap"
        );
    }

    #[test]
    fn scalar_keys_override_the_spec() {
        let mut s = Session::new(SessionDefaults::default());
        // theta= overrides the spec's theta; e^{-1} ≈ 0.37 < 0.99.
        handle_line(&mut s, "CONFIG spec=str-l2?theta=0.5&lambda=1.0 theta=0.99");
        handle_line(&mut s, "V 0.0 7:1.0");
        assert_eq!(ok_count(&handle_line(&mut s, "V 1.0 7:1.0")), 0);
    }

    #[test]
    fn configj_and_spec_reorder_work_over_the_session() {
        let mut s = Session::new(SessionDefaults::default());
        let r = handle_line(
            &mut s,
            "CONFIGJ {\"engine\":\"str\",\"index\":\"l2\",\"theta\":0.7,\
             \"lambda\":0.01,\"wrappers\":[[\"reorder\",10]]}",
        );
        assert!(matches!(r[0], Response::Ok(0)), "{r:?}");
        handle_line(&mut s, "V 5.0 7:1.0");
        let r = handle_line(&mut s, "V 1.0 7:1.0"); // 4 late, within slack
        assert!(!matches!(&r[0], Response::Err(_)), "{r:?}");
        assert_eq!(ok_count(&handle_line(&mut s, "FINISH")), 1);
    }

    #[test]
    fn invalid_spec_is_an_error_and_session_survives() {
        let mut s = Session::new(SessionDefaults::default());
        let mut out = Vec::new();
        // Parse-level garbage is rejected by the wire parser; a
        // structurally valid but unbuildable spec must come back as E.
        s.handle(
            Request::Config(ConfigRequest {
                spec: Some(sssj_core::JoinSpec {
                    engine: sssj_core::EngineSpec::TopK(0),
                    ..sssj_core::JoinSpec::new(0.7, 0.01)
                }),
                ..Default::default()
            }),
            &mut out,
        );
        assert!(
            matches!(&out[0], Response::Err(m) if m.contains("k >= 1")),
            "{out:?}"
        );
        // The previous join is still live.
        handle_line(&mut s, "V 0.0 7:1.0");
        assert_eq!(ok_count(&handle_line(&mut s, "V 1.0 7:1.0")), 1);
    }

    #[test]
    fn durable_spec_resumes_the_session_from_the_manifest() {
        let dir = std::env::temp_dir().join(format!(
            "sssj-net-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = format!(
            "CONFIG spec=str-l2?theta=0.7&lambda=0.01&durable={}",
            dir.display()
        );

        // First incarnation: two records, one pair, clean FINISH (which
        // publishes a checkpoint).
        let mut s = Session::new(SessionDefaults::default());
        let r = handle_line(&mut s, &config);
        assert!(matches!(r[0], Response::Ok(0)), "{r:?}");
        handle_line(&mut s, "V 0.0 7:1.0");
        assert_eq!(ok_count(&handle_line(&mut s, "V 1.0 7:1.0")), 1);
        handle_line(&mut s, "FINISH");
        drop(s);

        // Second incarnation resumes: ids continue after the recovered
        // prefix and new arrivals pair with pre-restart records.
        let mut s = Session::new(SessionDefaults::default());
        let r = handle_line(&mut s, &config);
        assert!(matches!(r[0], Response::Ok(0)), "{r:?}");
        let r = handle_line(&mut s, "V 1.5 7:1.0");
        assert_eq!(ok_count(&r), 2, "pairs with both recovered records: {r:?}");
        let keys: Vec<(u64, u64)> = r
            .iter()
            .filter_map(|resp| match resp {
                Response::Pair(p) => Some(p.key()),
                _ => None,
            })
            .collect();
        assert!(
            keys.contains(&(0, 2)) && keys.contains(&(1, 2)),
            "resumed ids must continue at 2: {keys:?}"
        );
        // The recovered watermark still rejects out-of-order input.
        let r = handle_line(&mut s, "V 0.5 7:1.0");
        assert!(matches!(&r[0], Response::Err(m) if m.contains("out-of-order")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn graph_session_serves_queries_and_subscriptions() {
        let mut s = Session::new(SessionDefaults::default());
        // Queries before a graph config are errors, not panics.
        let r = handle_line(&mut s, "QUERY stats");
        assert!(matches!(&r[0], Response::Err(m) if m.contains("no graph")));
        let r = handle_line(&mut s, "SUBSCRIBE 0");
        assert!(matches!(&r[0], Response::Err(m) if m.contains("no graph")));

        let r = handle_line(&mut s, "CONFIG spec=str-l2?theta=0.5&tau=10&graph");
        assert!(matches!(r[0], Response::Ok(0)), "{r:?}");
        handle_line(&mut s, "SUBSCRIBE 0");
        handle_line(&mut s, "V 0.0 7:1.0");
        // Record 1 pairs with 0: one P line, one pushed U line for the
        // subscription, OK still counts only the P line.
        let r = handle_line(&mut s, "V 1.0 7:1.0");
        assert!(
            matches!(&r[0], Response::Pair(p) if p.key() == (0, 1)),
            "{r:?}"
        );
        assert!(
            matches!(&r[1], Response::Update { node: 0, pair } if pair.key() == (0, 1)),
            "{r:?}"
        );
        assert_eq!(ok_count(&r), 1, "{r:?}");
        handle_line(&mut s, "V 2.0 7:1.0");

        // neighbors / topk answer P-framed edge lists.
        let r = handle_line(&mut s, "QUERY neighbors 1");
        assert_eq!(ok_count(&r), 2, "{r:?}");
        let r = handle_line(&mut s, "QUERY topk 1 1");
        assert_eq!(ok_count(&r), 1, "{r:?}");
        match &r[0] {
            Response::Pair(p) => assert_eq!(p.key(), (0, 1), "tie → smaller id"),
            other => panic!("expected edge, got {other:?}"),
        }

        // component / stats answer G lines.
        let r = handle_line(&mut s, "QUERY component 2");
        assert_eq!(
            r,
            vec![Response::Graph(vec![
                ("root".into(), 0),
                ("size".into(), 3)
            ])]
        );
        let r = handle_line(&mut s, "QUERY component 99");
        assert_eq!(
            r,
            vec![Response::Graph(vec![
                ("root".into(), 99),
                ("size".into(), 0)
            ])]
        );
        let r = handle_line(&mut s, "QUERY stats");
        assert_eq!(
            r,
            vec![Response::Graph(vec![
                ("nodes".into(), 3),
                ("edges".into(), 3),
                ("components".into(), 1),
            ])]
        );
    }

    #[test]
    fn graph_queries_respect_the_stream_watermark() {
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "CONFIG spec=str-l2?theta=0.5&tau=5&graph");
        handle_line(&mut s, "V 0.0 7:1.0");
        handle_line(&mut s, "V 1.0 7:1.0");
        assert_eq!(ok_count(&handle_line(&mut s, "QUERY neighbors 0")), 1);
        // Advancing the stream far enough expires the edge — queries
        // are judged at the watermark, not the wall clock.
        handle_line(&mut s, "V 20.0 9:1.0");
        assert_eq!(ok_count(&handle_line(&mut s, "QUERY neighbors 0")), 0);
        let r = handle_line(&mut s, "QUERY component 0");
        assert_eq!(
            r,
            vec![Response::Graph(vec![
                ("root".into(), 0),
                ("size".into(), 0)
            ])]
        );
    }

    #[test]
    fn stats_reports_serving_shape() {
        let mut s = Session::new(SessionDefaults {
            spec: "str-l2?theta=0.5&tau=10&graph".parse().unwrap(),
            mode: SessionMode::Vector,
        });
        s.set_serving_info(EngineLabel::EventLoop, true);
        handle_line(&mut s, "V 0.0 7:1.0");
        handle_line(&mut s, "V 1.0 7:1.0");
        // Force a publish so the generation is visible.
        s.graph_handle().expect("graph spec").publish_now();
        let r = handle_line(&mut s, "STATS");
        match &r[0] {
            Response::Stats(st) => {
                assert_eq!(st.engine, EngineLabel::EventLoop);
                assert!(st.shared);
                assert!(st.generation > 0, "publish bumps the generation");
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // The S line round-trips the new keys through the wire format.
        let line = r[0].to_string();
        assert_eq!(Response::parse(&line).unwrap(), r[0]);
    }

    #[test]
    fn metrics_reply_is_prometheus_parseable() {
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "V 0.0 7:1.0");
        handle_line(&mut s, "V 1.0 7:1.0");
        let r = handle_line(&mut s, "METRICS");
        if !sssj_metrics::telemetry_enabled() {
            assert_eq!(r, vec![Response::Ok(0)], "off lane answers an empty scrape");
            return;
        }
        let (lines, tail) = r.split_at(r.len() - 1);
        assert_eq!(tail[0], Response::Ok(lines.len() as u64));
        let mut saw_records = false;
        for resp in lines {
            let Response::Metric(line) = resp else {
                panic!("expected M line, got {resp:?}");
            };
            // Prometheus text exposition: comments or `name[{labels}] value`.
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "{line}"
                );
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
            if name.starts_with("sssj_core_records_total") {
                saw_records = true;
            }
        }
        assert!(saw_records, "scrape must include the ingest counter");
    }

    #[test]
    fn trace_dump_answers_header_and_events() {
        use sssj_metrics::trace::{Stage, TraceEvent};
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "V 0.0 7:1.0");
        handle_line(&mut s, "V 1.0 7:1.0");
        let r = handle_line(&mut s, "TRACE 4096");
        let (lines, tail) = r.split_at(r.len() - 1);
        assert_eq!(tail[0], Response::Ok(lines.len() as u64));
        let Response::TraceLine(header) = &lines[0] else {
            panic!("expected R header, got {:?}", lines[0]);
        };
        assert!(header.starts_with("# now="), "{header}");
        assert!(header.contains(" watermark=1 "), "{header}");
        assert!(header.contains(" dropped="), "{header}");
        if !sssj_metrics::trace_enabled() {
            assert_eq!(lines.len(), 1, "off lane answers the bare header");
            return;
        }
        let events: Vec<TraceEvent> = lines[1..]
            .iter()
            .map(|resp| match resp {
                Response::TraceLine(l) => {
                    TraceEvent::from_wire(l).unwrap_or_else(|| panic!("bad event line {l:?}"))
                }
                other => panic!("expected R line, got {other:?}"),
            })
            .collect();
        // The two V requests left NetRequest spans, each enclosing an
        // Ingest span stamped with the request's trace id.
        let ingest: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.stage == Stage::Ingest && e.trace_id != 0)
            .collect();
        assert!(!ingest.is_empty(), "{events:?}");
        assert!(
            events
                .iter()
                .any(|e| e.stage == Stage::NetRequest && e.trace_id == ingest[0].trace_id),
            "ingest span must share its request's trace id: {events:?}"
        );
    }

    #[test]
    fn quit_closes_session() {
        let mut s = Session::new(SessionDefaults::default());
        let mut out = Vec::new();
        let keep = s.handle(Request::parse("QUIT").unwrap(), &mut out);
        assert!(!keep);
        assert_eq!(out, vec![Response::Bye]);
    }

    #[test]
    fn duplicate_dims_coalesce_instead_of_erroring() {
        let mut s = Session::new(SessionDefaults::default());
        handle_line(&mut s, "V 0.0 1:0.5 1:0.5"); // sums to a single coord
        assert_eq!(ok_count(&handle_line(&mut s, "V 0.0 1:1.0")), 1);
    }

    #[test]
    fn bad_vector_reports_error_and_continues() {
        // The wire parser rejects empty vectors, but the session guards
        // against directly constructed requests too (e.g. future binary
        // front ends).
        let mut s = Session::new(SessionDefaults::default());
        let mut out = Vec::new();
        s.handle(
            Request::Vector {
                t: 0.0,
                entries: vec![],
            },
            &mut out,
        );
        assert!(matches!(&out[0], Response::Err(m) if m.contains("bad vector")));
        assert_eq!(ok_count(&handle_line(&mut s, "V 0.0 1:1.0")), 0);
    }
}

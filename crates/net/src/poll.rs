//! Readiness polling for the event-loop engine.
//!
//! Two backends behind one [`Poller`] enum, selected at startup:
//!
//! * **epoll** (Linux x86-64) — the real multiplexer. The workspace
//!   carries no FFI dependency, so the three `epoll_*` system calls are
//!   issued directly with inline assembly (the kernel ABI is stable;
//!   the syscall numbers below are part of it). Level-triggered, which
//!   keeps the event loop's interest bookkeeping simple: an fd with
//!   buffered output stays writable-interesting until drained.
//! * **scan** — the portable fallback (and the `SSSJ_NET_POLL=scan`
//!   override, used by tests to cover both backends on one machine).
//!   Every registered fd is reported ready each tick after a short
//!   sleep; the loop's non-blocking reads/writes then discover real
//!   readiness themselves via `WouldBlock`. Costs one wakeup per
//!   millisecond while idle — acceptable for a fallback, not for the
//!   benchmarked path.
//!
//! Tokens are opaque `u64`s chosen by the caller (the event loop uses
//! slab indices); one fd maps to one token.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What the caller wants to hear about for one fd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake when the fd is readable (or closed by the peer).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

/// One readiness report.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable now (includes peer hang-up/error: a read will not block).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! The epoll syscall surface, straight to the kernel ABI
    //! (x86-64 numbers: `epoll_create1`=291, `epoll_ctl`=233,
    //! `epoll_wait`=232, `close`=3).

    use std::io;

    /// `struct epoll_event` — packed on x86-64 (12 bytes), per the ABI.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Raw x86-64 syscall (up to 4 arguments). The kernel clobbers
    /// `rcx`/`r11`; everything else is preserved.
    unsafe fn syscall4(n: i64, a1: i64, a2: i64, a3: i64, a4: i64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if (-4095..0).contains(&ret) {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1() -> io::Result<i32> {
        // SAFETY: no pointers; the kernel validates the flag.
        check(unsafe { syscall4(291, EPOLL_CLOEXEC as i64, 0, 0, 0) }).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(
        epfd: i32,
        op: i32,
        fd: i32,
        event: Option<&mut EpollEvent>,
    ) -> io::Result<()> {
        let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is null (DEL) or a live, writable EpollEvent.
        check(unsafe { syscall4(233, epfd as i64, op as i64, fd as i64, ptr as i64) }).map(|_| ())
    }

    pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the buffer outlives the call and its length bounds the
        // kernel's writes.
        let n = check(unsafe {
            syscall4(
                232,
                epfd as i64,
                events.as_mut_ptr() as i64,
                events.len() as i64,
                timeout_ms as i64,
            )
        })?;
        Ok(n as usize)
    }

    pub fn close(fd: i32) {
        // SAFETY: plain close; errors are ignoreable on teardown.
        let _ = unsafe { syscall4(3, fd as i64, 0, 0, 0) };
    }
}

/// The epoll backend. Only built on Linux x86-64 — the only target the
/// raw syscall stubs cover.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) struct Epoll {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            epfd: sys::epoll_create1()?,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            m |= sys::EPOLLIN;
        }
        if interest.write {
            m |= sys::EPOLLOUT;
        }
        m
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: Self::mask(interest),
            data: token,
        };
        sys::epoll_ctl(self.epfd, op, fd, Some(&mut ev))
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = match sys::epoll_wait(self.epfd, &mut self.buf, ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &self.buf[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                // ERR/HUP surface as readable: the next read returns the
                // error or EOF and the loop retires the connection.
                readable: bits & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                writable: bits & (sys::EPOLLOUT | sys::EPOLLERR) != 0,
            });
        }
        if n == self.buf.len() {
            // Full buffer: more events may be pending; grow for next time.
            self.buf
                .resize(self.buf.len() * 2, sys::EpollEvent { events: 0, data: 0 });
        }
        Ok(())
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Drop for Epoll {
    fn drop(&mut self) {
        sys::close(self.epfd);
    }
}

/// The portable fallback: remember registrations, report everything
/// ready each tick after a short sleep (capped by the caller's timeout).
pub(crate) struct Scan {
    regs: Vec<(RawFd, u64, Interest)>,
}

impl Scan {
    fn wait(&self, out: &mut Vec<Event>, timeout: Duration) {
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
        for &(_, token, interest) in &self.regs {
            out.push(Event {
                token,
                readable: interest.read,
                writable: interest.write,
            });
        }
    }
}

/// The backend-selected poller. See the [module docs](self).
pub(crate) enum Poller {
    /// Real multiplexing (Linux x86-64).
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Epoll(Epoll),
    /// Portable sleep-and-scan fallback.
    Scan(Scan),
}

impl Poller {
    /// Picks the best available backend; `SSSJ_NET_POLL=scan` forces the
    /// fallback (tests use this to cover both on one machine).
    pub fn new() -> Poller {
        let forced_scan = std::env::var("SSSJ_NET_POLL").is_ok_and(|v| v == "scan");
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if !forced_scan {
            if let Ok(e) = Epoll::new() {
                return Poller::Epoll(e);
            }
        }
        let _ = forced_scan;
        Poller::Scan(Scan { regs: Vec::new() })
    }

    /// The selected backend's name (test labels).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn backend(&self) -> &'static str {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Poller::Epoll(_) => "epoll",
            Poller::Scan(_) => "scan",
        }
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Poller::Epoll(e) => e.ctl(sys::EPOLL_CTL_ADD, fd, token, interest),
            Poller::Scan(s) => {
                s.regs.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Changes the interest set of an already-registered fd.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Poller::Epoll(e) => e.ctl(sys::EPOLL_CTL_MOD, fd, token, interest),
            Poller::Scan(s) => {
                for reg in &mut s.regs {
                    if reg.0 == fd {
                        reg.1 = token;
                        reg.2 = interest;
                    }
                }
                Ok(())
            }
        }
    }

    /// Stops watching `fd`. Call *before* closing the fd.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Poller::Epoll(e) => e.ctl(
                sys::EPOLL_CTL_DEL,
                fd,
                0,
                Interest {
                    read: false,
                    write: false,
                },
            ),
            Poller::Scan(s) => {
                s.regs.retain(|&(f, _, _)| f != fd);
                Ok(())
            }
        }
    }

    /// Waits up to `timeout` for readiness, appending reports to
    /// `events` (cleared first).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Poller::Epoll(e) => e.wait(events, timeout),
            Poller::Scan(s) => {
                s.wait(events, timeout);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn scan_poller() -> Poller {
        Poller::Scan(Scan { regs: Vec::new() })
    }

    fn backends() -> Vec<Poller> {
        // Exercise the real backend where it exists, plus the fallback
        // everywhere.
        let mut v = vec![Poller::new(), scan_poller()];
        v.dedup_by(|a, b| a.backend() == b.backend());
        v
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poller
                .register(
                    listener.as_raw_fd(),
                    7,
                    Interest {
                        read: true,
                        write: false,
                    },
                )
                .unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(
                !events.iter().any(|e| e.token == 7 && e.readable) || poller.backend() == "scan",
                "[{}] spurious readiness before connect",
                poller.backend()
            );
            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let mut woke = false;
            for _ in 0..200 {
                poller.wait(&mut events, Duration::from_millis(25)).unwrap();
                if events.iter().any(|e| e.token == 7 && e.readable) {
                    woke = true;
                    break;
                }
            }
            assert!(woke, "[{}] connect never reported", poller.backend());
            poller.deregister(listener.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn stream_reports_writable_and_then_readable() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (mut server_side, _) = listener.accept().unwrap();
            client.set_nonblocking(true).unwrap();
            poller
                .register(
                    client.as_raw_fd(),
                    42,
                    Interest {
                        read: true,
                        write: true,
                    },
                )
                .unwrap();
            let mut events = Vec::new();
            let mut writable = false;
            let mut readable = false;
            server_side.write_all(b"hi\n").unwrap();
            for _ in 0..200 {
                poller.wait(&mut events, Duration::from_millis(25)).unwrap();
                for e in &events {
                    if e.token == 42 {
                        writable |= e.writable;
                        readable |= e.readable;
                    }
                }
                if writable && readable {
                    break;
                }
            }
            assert!(writable, "[{}] never writable", poller.backend());
            assert!(readable, "[{}] never readable", poller.backend());
            // Interest can be narrowed: reregister read-only.
            poller
                .reregister(
                    client.as_raw_fd(),
                    42,
                    Interest {
                        read: true,
                        write: false,
                    },
                )
                .unwrap();
            poller.wait(&mut events, Duration::from_millis(25)).unwrap();
            assert!(
                events.iter().all(|e| e.token != 42 || !e.writable),
                "[{}] writable after narrowing interest",
                poller.backend()
            );
            poller.deregister(client.as_raw_fd()).unwrap();
        }
    }
}

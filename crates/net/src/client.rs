//! A synchronous client for the join service.
//!
//! Every request is answered before the next is sent, so the client is a
//! thin request–response wrapper: send a line, read `P` lines until the
//! terminating `OK`/`E`. Pair ids are *server-assigned* arrival ordinals
//! (0, 1, 2, … per session); [`JoinClient::records_sent`] mirrors the
//! server's counter so callers can map ids back to their own records.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sssj_types::{SimilarPair, StreamRecord};

use crate::protocol::{ConfigRequest, GraphQuery, Request, Response, SessionStats};

/// Client-side errors.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent something the client cannot parse, or closed the
    /// connection mid-response.
    Protocol(String),
    /// The server answered `E <message>`.
    Server(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// A connected session with a join server.
///
/// ```no_run
/// use sssj_net::{ConfigRequest, JoinClient};
///
/// let mut client = JoinClient::connect("127.0.0.1:7878")?;
/// client.configure(ConfigRequest {
///     theta: Some(0.7),
///     lambda: Some(0.01),
///     ..Default::default()
/// })?;
/// let pairs = client.send_vector(12.5, &[(3, 0.6), (9, 0.8)])?;
/// for p in pairs {
///     println!("records {} and {} are similar: {}", p.left, p.right, p.similarity);
/// }
/// client.quit()?;
/// # Ok::<(), sssj_net::NetError>(())
/// ```
pub struct JoinClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    records_sent: u64,
    /// Pushed `U` subscription updates collected while reading other
    /// responses; drained by [`JoinClient::take_updates`].
    updates: Vec<(u64, SimilarPair)>,
    /// Running total of updates the server reported dropping (`D` lines
    /// from its bounded push queue).
    dropped: u64,
    /// The event loop's stall count from the most recent `STATS` reply
    /// (`None` until a server reported one — threaded servers do not).
    loop_stalls: Option<u64>,
}

impl JoinClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<JoinClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        JoinClient::from_stream(stream)
    }

    /// Connects with a timeout on the TCP handshake.
    pub fn connect_timeout(
        addr: &std::net::SocketAddr,
        timeout: Duration,
    ) -> Result<JoinClient, NetError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        JoinClient::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> Result<JoinClient, NetError> {
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(JoinClient {
            reader: BufReader::new(stream),
            writer,
            records_sent: 0,
            updates: Vec::new(),
            dropped: 0,
            loop_stalls: None,
        })
    }

    /// Records accepted by the server in this session so far — the id the
    /// *next* record will receive.
    pub fn records_sent(&self) -> u64 {
        self.records_sent
    }

    fn send_line(&mut self, request: &Request) -> Result<(), NetError> {
        let mut line = request.to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, NetError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(NetError::Protocol("server closed the connection".into()));
        }
        Response::parse(&line).map_err(|e| NetError::Protocol(e.to_string()))
    }

    /// Reads `P` lines until the terminating `OK`; `E` becomes
    /// [`NetError::Server`]. Pushed `U` updates are collected aside
    /// (see [`JoinClient::take_updates`]) and never counted.
    fn read_pairs(&mut self) -> Result<Vec<SimilarPair>, NetError> {
        let mut pairs = Vec::new();
        loop {
            match self.read_response()? {
                Response::Pair(p) => pairs.push(p),
                Response::Update { node, pair } => self.updates.push((node, pair)),
                Response::Dropped(n) => self.dropped += n,
                Response::Ok(n) => {
                    if n as usize != pairs.len() {
                        return Err(NetError::Protocol(format!(
                            "server announced {n} pairs but sent {}",
                            pairs.len()
                        )));
                    }
                    return Ok(pairs);
                }
                Response::Err(m) => return Err(NetError::Server(m)),
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected response {other:?} while reading pairs"
                    )))
                }
            }
        }
    }

    /// Reconfigures the session; must precede the first record.
    pub fn configure(&mut self, config: ConfigRequest) -> Result<(), NetError> {
        self.send_line(&Request::Config(config))?;
        self.read_pairs().map(|_| ())
    }

    /// Sends one pre-vectorised record (weights are normalised
    /// server-side); returns the pairs it completed.
    pub fn send_vector(
        &mut self,
        t: f64,
        entries: &[(u32, f64)],
    ) -> Result<Vec<SimilarPair>, NetError> {
        self.send_line(&Request::Vector {
            t,
            entries: entries.to_vec(),
        })?;
        let pairs = self.read_pairs()?;
        self.records_sent += 1;
        Ok(pairs)
    }

    /// Sends an existing [`StreamRecord`]. The server assigns its own id
    /// (the session ordinal), which may differ from `record.id`.
    pub fn send_record(&mut self, record: &StreamRecord) -> Result<Vec<SimilarPair>, NetError> {
        let entries: Vec<(u32, f64)> = record.vector.iter().collect();
        self.send_vector(record.t.seconds(), &entries)
    }

    /// Sends one raw-text record (text-mode sessions); returns the pairs
    /// it completed.
    pub fn send_text(&mut self, t: f64, text: &str) -> Result<Vec<SimilarPair>, NetError> {
        if text.contains('\n') {
            return Err(NetError::Protocol("text may not contain newlines".into()));
        }
        self.send_line(&Request::Text {
            t,
            text: text.to_string(),
        })?;
        let pairs = self.read_pairs()?;
        self.records_sent += 1;
        Ok(pairs)
    }

    /// Fetches the session's work counters. An event-loop server
    /// prefixes the `S` line with `G loop_stalls=<n>` — the loop's
    /// stall-probe reading — which is stashed aside (see
    /// [`JoinClient::loop_stalls`]); pushed `U`/`D` frames are collected
    /// as usual.
    pub fn stats(&mut self) -> Result<SessionStats, NetError> {
        self.send_line(&Request::Stats)?;
        loop {
            match self.read_response()? {
                Response::Stats(s) => return Ok(s),
                Response::Graph(fields) => {
                    if let Some(&(_, n)) = fields.iter().find(|(k, _)| k == "loop_stalls") {
                        self.loop_stalls = Some(n);
                    }
                }
                Response::Update { node, pair } => self.updates.push((node, pair)),
                Response::Dropped(n) => self.dropped += n,
                Response::Err(m) => return Err(NetError::Server(m)),
                other => return Err(NetError::Protocol(format!("expected stats, got {other:?}"))),
            }
        }
    }

    /// The serving loop's stall count as of the last [`JoinClient::stats`]
    /// call (`None` before one, or against a threaded server, which has
    /// no loop to stall).
    pub fn loop_stalls(&self) -> Option<u64> {
        self.loop_stalls
    }

    /// Fetches the server's process-global metric registry (`METRICS`):
    /// the Prometheus text-exposition lines, `M ` prefixes stripped.
    /// Empty when the server runs with `SSSJ_TELEMETRY=off`.
    pub fn metrics(&mut self) -> Result<Vec<String>, NetError> {
        self.send_line(&Request::Metrics)?;
        let mut lines = Vec::new();
        loop {
            match self.read_response()? {
                Response::Metric(line) => lines.push(line),
                Response::Update { node, pair } => self.updates.push((node, pair)),
                Response::Dropped(n) => self.dropped += n,
                Response::Ok(n) => {
                    if n as usize != lines.len() {
                        return Err(NetError::Protocol(format!(
                            "server announced {n} metric lines but sent {}",
                            lines.len()
                        )));
                    }
                    return Ok(lines);
                }
                Response::Err(m) => return Err(NetError::Server(m)),
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected response {other:?} while reading metrics"
                    )))
                }
            }
        }
    }

    /// Dumps the server's flight recorder (`TRACE n`): the raw reply
    /// lines, `R ` prefixes stripped. The first line is the watermark-
    /// clocked header (`# now=… watermark=… dropped=…`); each following
    /// line is one event ([`sssj_metrics::trace::TraceEvent::from_wire`]
    /// parses them). Header-only when the server runs with
    /// `SSSJ_TRACE=off`.
    pub fn trace(&mut self, max: u64) -> Result<Vec<String>, NetError> {
        self.send_line(&Request::Trace { max })?;
        let mut lines = Vec::new();
        loop {
            match self.read_response()? {
                Response::TraceLine(line) => lines.push(line),
                Response::Update { node, pair } => self.updates.push((node, pair)),
                Response::Dropped(n) => self.dropped += n,
                Response::Ok(n) => {
                    if n as usize != lines.len() {
                        return Err(NetError::Protocol(format!(
                            "server announced {n} trace lines but sent {}",
                            lines.len()
                        )));
                    }
                    return Ok(lines);
                }
                Response::Err(m) => return Err(NetError::Server(m)),
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected response {other:?} while reading a trace"
                    )))
                }
            }
        }
    }

    /// Signals end-of-stream and returns the flushed pairs (MiniBatch
    /// sessions report their trailing windows here).
    pub fn finish(&mut self) -> Result<Vec<SimilarPair>, NetError> {
        self.send_line(&Request::Finish)?;
        self.read_pairs()
    }

    /// The pushed subscription updates received so far (each is the
    /// subscribed node plus the pair that touched it), oldest first.
    /// On a per-session server updates arrive interleaved with the
    /// responses to `V`/`T`/`FINISH` requests after a
    /// [`JoinClient::subscribe`]; on a shared event-loop server they
    /// are pushed out of band and also show up via
    /// [`JoinClient::poll_updates`].
    pub fn take_updates(&mut self) -> Vec<(u64, SimilarPair)> {
        std::mem::take(&mut self.updates)
    }

    /// How many pushed updates the server has reported **dropping** for
    /// this connection so far (coalesced `D <n>` lines from its bounded
    /// push queue — see the protocol docs). Monotone; a non-zero value
    /// means [`JoinClient::take_updates`] is missing that many edges.
    pub fn dropped_updates(&self) -> u64 {
        self.dropped
    }

    /// Passively listens for pushed frames for up to `timeout` without
    /// sending anything — the server-push half of `SUBSCRIBE` on a
    /// shared server, where updates are triggered by *other* clients'
    /// ingest. Returns the updates that arrived (also recording drop
    /// reports); the connection's read deadline is restored afterwards.
    pub fn poll_updates(&mut self, timeout: Duration) -> Result<Vec<(u64, SimilarPair)>, NetError> {
        let deadline = std::time::Instant::now() + timeout;
        let stream = self.reader.get_ref().try_clone()?;
        let mut line = String::new();
        loop {
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            stream.set_read_timeout(Some(remaining))?;
            // Accumulate into one buffer across timeouts: a read that
            // dies mid-line keeps its partial bytes for the next pass.
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    stream.set_read_timeout(None)?;
                    return Err(NetError::Protocol("server closed the connection".into()));
                }
                Ok(_) => {
                    let parsed =
                        Response::parse(&line).map_err(|e| NetError::Protocol(e.to_string()));
                    line.clear();
                    match parsed? {
                        Response::Update { node, pair } => self.updates.push((node, pair)),
                        Response::Dropped(n) => self.dropped += n,
                        other => {
                            stream.set_read_timeout(None)?;
                            return Err(NetError::Protocol(format!(
                                "unexpected frame {other:?} while idle (only pushed U/D \
                                 frames may arrive between requests)"
                            )));
                        }
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(e) => {
                    stream.set_read_timeout(None)?;
                    return Err(e.into());
                }
            }
        }
        stream.set_read_timeout(None)?;
        Ok(self.take_updates())
    }

    /// Subscribes to pushed edge updates for `node` (graph sessions).
    pub fn subscribe(&mut self, node: u64) -> Result<(), NetError> {
        self.send_line(&Request::Subscribe { node })?;
        self.read_pairs().map(|_| ())
    }

    /// `QUERY neighbors <node>`: every live neighbour of `node` as
    /// pairs `(node, neighbour)` with the edge similarity.
    pub fn query_neighbors(&mut self, node: u64) -> Result<Vec<SimilarPair>, NetError> {
        self.query_neighbors_at(node, None)
    }

    /// `QUERY neighbors <node> at=<t>`: `node`'s neighbours as of
    /// historical time `t` (`None` = the live watermark). Times behind
    /// the live window need a `history=`-wrapped session.
    pub fn query_neighbors_at(
        &mut self,
        node: u64,
        at: Option<f64>,
    ) -> Result<Vec<SimilarPair>, NetError> {
        self.send_line(&Request::Query(GraphQuery::Neighbors { node, at }))?;
        self.read_pairs()
    }

    /// `QUERY topk <node> <k>`: the `k` best live neighbours, best
    /// first.
    pub fn query_topk(&mut self, node: u64, k: u32) -> Result<Vec<SimilarPair>, NetError> {
        self.query_topk_at(node, k, None)
    }

    /// `QUERY topk <node> <k> at=<t>`: the `k` best neighbours as of
    /// historical time `t` (`None` = the live watermark).
    pub fn query_topk_at(
        &mut self,
        node: u64,
        k: u32,
        at: Option<f64>,
    ) -> Result<Vec<SimilarPair>, NetError> {
        self.send_line(&Request::Query(GraphQuery::TopK { node, k, at }))?;
        self.read_pairs()
    }

    /// `QUERY component <node>`: the node's connected component as
    /// `(canonical root, size)`; size 0 means the node has no live edge.
    pub fn query_component(&mut self, node: u64) -> Result<(u64, u64), NetError> {
        self.query_component_at(node, None)
    }

    /// `QUERY component <node> at=<t>`: the component as of historical
    /// time `t` (`None` = the live watermark).
    pub fn query_component_at(
        &mut self,
        node: u64,
        at: Option<f64>,
    ) -> Result<(u64, u64), NetError> {
        self.send_line(&Request::Query(GraphQuery::Component { node, at }))?;
        let fields = self.read_graph_fields()?;
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|&(_, v)| v)
                .ok_or_else(|| NetError::Protocol(format!("G reply missing {key}=")))
        };
        Ok((get("root")?, get("size")?))
    }

    /// `QUERY stats`: the graph's aggregate counters as the server's
    /// ordered `key=value` fields (`nodes`, `edges`, `components`).
    pub fn graph_stats(&mut self) -> Result<Vec<(String, u64)>, NetError> {
        self.send_line(&Request::Query(GraphQuery::Stats))?;
        self.read_graph_fields()
    }

    /// Reads one `G` response (collecting any pushed `U` lines aside).
    fn read_graph_fields(&mut self) -> Result<Vec<(String, u64)>, NetError> {
        loop {
            match self.read_response()? {
                Response::Graph(fields) => return Ok(fields),
                Response::Update { node, pair } => self.updates.push((node, pair)),
                Response::Dropped(n) => self.dropped += n,
                Response::Err(m) => return Err(NetError::Server(m)),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected a G reply, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Closes the session gracefully.
    pub fn quit(mut self) -> Result<(), NetError> {
        self.send_line(&Request::Quit)?;
        match self.read_response()? {
            Response::Bye => Ok(()),
            other => Err(NetError::Protocol(format!("expected BYE, got {other:?}"))),
        }
    }
}

//! The wire protocol: line-delimited, human-readable text.
//!
//! One request or response per `\n`-terminated line. Requests flow client
//! to server, responses server to client. Every request is answered; a
//! `V`/`T` request is answered by zero or more `P` lines followed by one
//! `OK <count>` line, so the client always knows when the response is
//! complete. The session state machine lives in
//! [`crate::session::Session`]; this module is pure parsing/formatting
//! and is round-trip property-tested.
//!
//! ```text
//! client → server                         server → client
//! ------------------------------------    -----------------------------
//! CONFIG spec=str-l2?theta=0.7&reorder=5  OK 0            (or E <msg>)
//! CONFIG theta=0.7 lambda=0.1 index=l2    OK 0
//! CONFIGJ {"engine":"str","theta":0.7}    OK 0
//! V 12.5 3:0.6 9:0.8                      P 0 4 0.8231…   zero or more
//! T 13.0 some raw text                    OK 2            always last
//! STATS                                   [G loop_stalls=0] S records=5 pairs=2 …
//! METRICS                                 M <text line> … / OK <count>
//! TRACE 256                               R <event line> … / OK <count>
//! FINISH                                  P … / OK <count>
//! QUERY neighbors 4                       P 4 0 0.82… / OK <count>
//! QUERY topk 4 3                          P 4 9 0.93… / OK <count>
//! QUERY component 4                       G root=0 size=17
//! QUERY stats                             G nodes=40 edges=95 components=3
//! SUBSCRIBE 4                             OK 0
//! QUIT                                    BYE
//! ```
//!
//! # Scraping telemetry: `METRICS`
//!
//! `METRICS` exports the process-global registry
//! ([`sssj_metrics::Registry`]) in Prometheus text exposition format,
//! one `M`-prefixed line per exposition line:
//!
//! ```text
//! metrics-reply := ( "M" text-line )* "OK" <line-count>
//! text-line     := "# HELP" … | "# TYPE" … | sample-line
//! sample-line   := name [ "{" label ( "," label )* "}" ] " " value
//! ```
//!
//! Strip the leading `M ` from every line and the remainder is a valid
//! Prometheus scrape body (recorders surface as true histograms:
//! cumulative `_bucket{le=…}` series over the populated buckets plus
//! `le="+Inf"`, then `_sum`/`_count` samples). Like `STATS`, the
//! reply is clocked at the session's watermark: counters include every
//! record the server accepted before the `METRICS` line was read, so on
//! a quiesced stream `sssj_core_records_total` equals the number of
//! records fed and `sssj_core_pairs_total` the number of `P` lines
//! emitted — the invariant the CI serve-smoke asserts. The reply is
//! empty (`OK 0`) when the server runs with `SSSJ_TELEMETRY=off`.
//!
//! Relatedly, an event-loop server prefixes every `STATS` reply with one
//! `G loop_stalls=<n>` line — its stall probe's reading (loop iterations
//! whose work overran the poll interval). The probe line is emitted
//! regardless of the telemetry switch; threaded servers, having no loop,
//! send the bare `S` line.
//!
//! # Dumping the flight recorder: `TRACE`
//!
//! `TRACE [n]` dumps the newest `n` (default 256) events from the
//! process-wide flight recorder ([`sssj_metrics::trace`]), one
//! `R`-prefixed line per event, oldest first:
//!
//! ```text
//! trace-request := "TRACE" [ max-events ]
//! trace-reply   := "R" header ( "R" event )* "OK" <R-line-count>
//! header        := "# now=" ns " watermark=" t " dropped=" count
//! event         := ts_ns dur_ns stage kind tid depth trace_id a b
//! stage         := "ingest" | "candidates" | "router.flush"
//!                | "shard.record" | "wal.append" | "wal.fsync"
//!                | "checkpoint" | "graph.publish" | "segment.compaction"
//!                | "net.request" | "loop.stall" | "slow.request"
//! kind          := "X" (complete span, dur_ns > 0 possible)
//!                | "i" (instant, dur_ns = 0)
//! ```
//!
//! The header's `now=` is the server's trace clock (nanoseconds since
//! its first probe — the same clock as every event's `ts_ns`, so a
//! client can compute event age), `watermark=` is the session's stream
//! watermark (the reply is clocked like `STATS`: events from every
//! record accepted before the `TRACE` line was read are visible), and
//! `dropped=` counts events lost to ring wrap process-wide. `OK` counts
//! every `R` line including the header. Events carry a `trace_id`
//! correlating one request's journey across stages and threads; 0 means
//! unattributed. With `SSSJ_TRACE=off` the reply is the bare header
//! (`OK 1`) with `dropped=0`. `sssj trace <addr>` converts a dump to
//! Chrome trace-event JSON loadable in Perfetto/`chrome://tracing`.
//!
//! # Negotiating the join: the spec grammar
//!
//! A session runs one join pipeline, described by a
//! [`sssj_core::JoinSpec`]. `CONFIG` accepts the spec's compact text
//! form under the `spec=` key — the full grammar is documented in
//! [`sssj_core::spec`]:
//!
//! ```text
//! spec    := engine [ "-" index ] [ "?" param ( "&" param )* ]
//! engine  := "str" | "mb" | "decay" | "topk" | "lsh" | "sharded"
//! index   := "l2" | "l2ap" | "ap" | "inv"
//! param   := theta= | lambda= | tau= | model= | bounds= | k= | shards=
//!          | inner= | bits= | bands= | seed= | verify= | reorder=
//!          | checked | snapshot
//! ```
//!
//! so *every* join variant the workspace implements — not just the
//! classic framework × index grid — is reachable over the wire, e.g.
//! `CONFIG spec=topk-l2?theta=0.5&lambda=0.01&k=3`,
//! `CONFIG spec=lsh?theta=0.7&lambda=0.01&verify=est` or a sharded
//! pipeline with its inner engine spelled out,
//! `CONFIG spec=sharded?theta=0.7&lambda=0.01&shards=4&inner=mb-l2ap`
//! (the inner spec round-trips through negotiation like any other
//! parameter). The compact form
//! is whitespace-free, so it embeds in the line protocol's `key=value`
//! framing unchanged. The scalar keys (`theta=`, `lambda=`, `index=`,
//! `framework=`, `slack=`) are retained for simple clients and apply
//! *on top of* the spec (they override its corresponding fields), in
//! the order: spec first, then scalars.
//!
//! `CONFIGJ` carries the same spec as a single JSON object
//! ([`sssj_core::JoinSpec::to_json`] /
//! [`sssj_core::JoinSpec::from_json`]) for programmatic clients, e.g.
//! `CONFIGJ {"engine":"topk","index":"l2","theta":0.5,"lambda":0.01,"k":3}`.
//!
//! # Querying the live graph: `QUERY` and `SUBSCRIBE`
//!
//! A session configured with a `graph`-wrapped spec (e.g.
//! `CONFIG spec=str-l2?theta=0.7&tau=10&graph`) maintains a live
//! similarity graph over its pair stream (`sssj-graph`) and serves it
//! over four query verbs, evaluated at the session's stream watermark
//! (the newest accepted timestamp — the data's clock, not the wall
//! clock):
//!
//! ```text
//! QUERY neighbors <node>      every live neighbour of <node>, one
//!                             `P <node> <nbr> <sim>` line each
//!                             (neighbour-id order), then `OK <count>`
//! QUERY topk <node> <k>       the k best neighbours, best first
//!                             (similarity desc, id asc ties), same framing
//! QUERY component <node>      `G root=<min-member-id> size=<n>`;
//!                             `G root=<node> size=0` for an edgeless node
//! QUERY stats                 `G nodes=<n> edges=<e> components=<c>`;
//!                             on a history session three extra fields
//!                             follow: `history_segments=<n>
//!                             history_oldest_ms=<ms> watermark_ms=<ms>`
//!                             (times in integer milliseconds)
//! SUBSCRIBE <node>            `OK 0`; from then on, every delivered pair
//!                             touching <node> additionally produces a
//!                             pushed `U <node> <left> <right> <sim>` line
//! ```
//!
//! `U` lines are *push* traffic in the netidx sense — the server
//! volunteers them as edges are emitted; they are not counted by any
//! `OK <count>` (which keeps counting `P` lines only), so
//! pre-subscription clients remain wire-compatible. On a session whose
//! spec has no `graph` wrapper, every `QUERY`/`SUBSCRIBE` answers
//! `E session has no graph …`.
//!
//! ## Push framing: where `U` (and `D`) lines may appear
//!
//! On a *per-session* server (every connection owns its own pipeline)
//! the only ingest is the subscriber's own, so updates ride the
//! subscriber's response stream: `U` lines appear between the `P` lines
//! and the `OK` of the `V`/`T`/`FINISH` request that surfaced them.
//!
//! On a *shared* event-loop server (`--shared`: all connections feed
//! and query one pipeline) `SUBSCRIBE` is real server push — updates
//! triggered by **other** clients' ingest arrive out of band, without
//! the subscriber writing anything. Framing rule:
//!
//! ```text
//! response-stream := ( reply | push )*
//! reply           := P* ( "OK" n | "E" msg ) | "G" fields | "S" fields | "BYE"
//! push            := [ "D" n ] "U" node left right sim
//! ```
//!
//! pushed frames are inserted only at *reply boundaries* — never between
//! a reply's `P` lines and its terminating `OK` — so a synchronous
//! client can keep reading `P*`-then-`OK` and set pushed lines aside.
//! Each subscriber has a **bounded** per-connection push queue
//! (drop-oldest): when a slow reader overflows it, the discarded
//! updates are coalesced into one `D <count>` line preceding the
//! surviving `U` lines. Updates are deduplicated per delivered edge,
//! not per subscription: an edge touching two of one connection's
//! subscribed nodes yields two `U` lines (one per node), exactly like
//! the per-session framing.
//!
//! ## Time travel: the `at=` suffix
//!
//! `neighbors`, `topk` and `component` accept one optional trailing
//! `at=<t>` token — evaluate the query *as of* stream time `t` (edges
//! delivered in `[t − τ, t]`) instead of the live watermark:
//!
//! ```text
//! at-query := "QUERY" kind args "at=" t
//! kind     := "neighbors" | "topk" | "component"
//! t        := finite decimal stream time (the data's clock)
//! ```
//!
//! On a `history=`-wrapped session (`sssj-segments`) the answer
//! overlays the live window with the compacted segment tier, so any
//! `t` back to the history floor (`QUERY stats` reports it) answers
//! exactly; on a graph-only session `at=` answers `E …` — the expired
//! edges are gone. `QUERY stats` takes no `at=`.
//!
//! # Durable sessions: resuming from a manifest
//!
//! A `durable=<dir>` parameter (the `sssj-store` wrapper) makes the
//! session's state survive crashes:
//! `CONFIG spec=str-l2?theta=0.7&tau=10&durable=/var/sssj` *creates*
//! the store on first use and **resumes** it whenever `<dir>` already
//! holds a manifest — the server reloads the last checkpoint, replays
//! the WAL tail, and the session continues the recovered stream: record
//! ids restart *after* the ingested prefix (so `P` lines keep referring
//! to pre-crash records), the monotonic-timestamp watermark picks up at
//! the recovered stamp, and any pairs whose pre-crash delivery cannot
//! be proven are re-emitted with the first record's response
//! (at-least-once; pairs delivered before the last checkpoint are never
//! repeated). A producer that replays its own stream should skip the
//! first `ingested` records — the count a resumed session starts ids
//! at.

use std::fmt;

use sssj_core::{Framework, JoinSpec};
use sssj_index::IndexKind;
use sssj_types::SimilarPair;

/// Maximum accepted line length (64 KiB) — guards the server against a
/// client streaming an unbounded line.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Events a bare `TRACE` (no count) returns.
pub const DEFAULT_TRACE_EVENTS: u64 = 256;

/// How a session interprets payload lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionMode {
    /// `V <t> <dim>:<weight> …` — pre-vectorised input.
    Vector,
    /// `T <t> <raw text…>` — server-side tokenisation + TF weighting.
    Text,
}

impl SessionMode {
    fn parse(s: &str) -> Option<SessionMode> {
        match s {
            "vector" => Some(SessionMode::Vector),
            "text" => Some(SessionMode::Text),
            _ => None,
        }
    }
}

impl fmt::Display for SessionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SessionMode::Vector => "vector",
            SessionMode::Text => "text",
        })
    }
}

/// Session parameters carried by a `CONFIG`/`CONFIGJ` request. Fields
/// left `None` keep the server's defaults. When `spec` is present it is
/// applied first and the scalar fields override it.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ConfigRequest {
    /// A complete join pipeline description (compact form via
    /// `CONFIG spec=…`, JSON via `CONFIGJ`).
    pub spec: Option<JoinSpec>,
    /// Similarity threshold `θ`.
    pub theta: Option<f64>,
    /// Decay rate `λ`.
    pub lambda: Option<f64>,
    /// Index kind (`inv`, `l2ap`, `l2`, `ap`).
    pub index: Option<IndexKind>,
    /// Framework (`str`, `mb`).
    pub framework: Option<Framework>,
    /// Payload interpretation.
    pub mode: Option<SessionMode>,
    /// Out-of-order tolerance: records may arrive up to `slack` time
    /// units late and are re-sorted server-side (see
    /// [`sssj_core::ReorderBuffer`]). Zero (the default) requires sorted
    /// input.
    pub slack: Option<f64>,
}

/// A graph query (`QUERY …`), served by sessions whose spec carries the
/// `graph` wrapper. See the [module docs](self) for the grammar. A
/// trailing `at=<t>` on `neighbors`/`topk`/`component` evaluates the
/// query at historical time `t` instead of the live watermark — the
/// session needs a `history=`-wrapped spec (`sssj-segments`) for any
/// `t` whose edges have already expired.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphQuery {
    /// `QUERY neighbors <node> [at=<t>]` — every neighbour live at the
    /// watermark (or at `t`).
    Neighbors {
        /// The queried record id.
        node: u64,
        /// Historical evaluation time (`None` = the live watermark).
        at: Option<f64>,
    },
    /// `QUERY topk <node> <k> [at=<t>]` — the `k` best neighbours.
    TopK {
        /// The queried record id.
        node: u64,
        /// How many neighbours to return.
        k: u32,
        /// Historical evaluation time (`None` = the live watermark).
        at: Option<f64>,
    },
    /// `QUERY component <node> [at=<t>]` — the node's connected
    /// component.
    Component {
        /// The queried record id.
        node: u64,
        /// Historical evaluation time (`None` = the live watermark).
        at: Option<f64>,
    },
    /// `QUERY stats` — aggregate graph counters.
    Stats,
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Reconfigure the session (only before the first record).
    Config(ConfigRequest),
    /// A pre-vectorised record: timestamp + sparse entries.
    Vector {
        /// Arrival timestamp.
        t: f64,
        /// `(dimension, weight)` entries; weights need not be normalised.
        entries: Vec<(u32, f64)>,
    },
    /// A raw-text record, tokenised server-side (text mode only).
    Text {
        /// Arrival timestamp.
        t: f64,
        /// The raw text.
        text: String,
    },
    /// Ask for the session's work counters.
    Stats,
    /// Ask for the process-global metric registry (Prometheus text
    /// exposition, one `M` line per exposition line).
    Metrics,
    /// Ask for the newest flight-recorder events (`TRACE [n]`; one `R`
    /// line per event after the `R #`-prefixed header line).
    Trace {
        /// Maximum events to return (the server may cap it).
        max: u64,
    },
    /// A live-graph query (graph-wrapped sessions only).
    Query(GraphQuery),
    /// Subscribe to pushed `U` edge updates for one node
    /// (graph-wrapped sessions only).
    Subscribe {
        /// The record id to watch.
        node: u64,
    },
    /// End-of-stream: flush buffered pairs (MiniBatch reports late).
    Finish,
    /// Close the session.
    Quit,
}

/// Parse errors carry the reason; the server reports them as `E` lines
/// and keeps the session alive.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn err(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

fn parse_timestamp(s: Option<&str>) -> Result<f64, ProtocolError> {
    let s = s.ok_or_else(|| err("missing timestamp"))?;
    let t: f64 = s
        .parse()
        .map_err(|e| err(format!("bad timestamp {s:?}: {e}")))?;
    if !t.is_finite() {
        return Err(err(format!("non-finite timestamp {s:?}")));
    }
    Ok(t)
}

impl Request {
    /// Parses one request line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim_start()),
            None => (line, ""),
        };
        match verb {
            "CONFIG" => {
                let mut c = ConfigRequest::default();
                for kv in rest.split_ascii_whitespace() {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| err(format!("CONFIG expects key=value, got {kv:?}")))?;
                    match k {
                        "spec" => {
                            c.spec = Some(
                                v.parse::<JoinSpec>()
                                    .map_err(|e| err(format!("bad spec {v:?}: {e}")))?,
                            );
                        }
                        "theta" => {
                            let x: f64 = v
                                .parse()
                                .map_err(|e| err(format!("bad theta {v:?}: {e}")))?;
                            if !(x > 0.0 && x <= 1.0) {
                                return Err(err(format!("theta out of (0, 1]: {v}")));
                            }
                            c.theta = Some(x);
                        }
                        "lambda" => {
                            let x: f64 = v
                                .parse()
                                .map_err(|e| err(format!("bad lambda {v:?}: {e}")))?;
                            if !(x.is_finite() && x >= 0.0) {
                                return Err(err(format!("lambda must be ≥ 0: {v}")));
                            }
                            c.lambda = Some(x);
                        }
                        "index" => {
                            c.index = Some(
                                IndexKind::parse(v)
                                    .ok_or_else(|| err(format!("unknown index {v:?}")))?,
                            );
                        }
                        "framework" => {
                            c.framework = Some(
                                Framework::parse(v)
                                    .ok_or_else(|| err(format!("unknown framework {v:?}")))?,
                            );
                        }
                        "mode" => {
                            c.mode = Some(
                                SessionMode::parse(v)
                                    .ok_or_else(|| err(format!("unknown mode {v:?}")))?,
                            );
                        }
                        "slack" => {
                            let x: f64 = v
                                .parse()
                                .map_err(|e| err(format!("bad slack {v:?}: {e}")))?;
                            if !(x.is_finite() && x >= 0.0) {
                                return Err(err(format!("slack must be ≥ 0: {v}")));
                            }
                            c.slack = Some(x);
                        }
                        other => return Err(err(format!("unknown CONFIG key {other:?}"))),
                    }
                }
                Ok(Request::Config(c))
            }
            "CONFIGJ" => {
                let spec = JoinSpec::from_json(rest).map_err(|e| err(format!("CONFIGJ: {e}")))?;
                Ok(Request::Config(ConfigRequest {
                    spec: Some(spec),
                    ..Default::default()
                }))
            }
            "V" => {
                let mut parts = rest.split_ascii_whitespace();
                let t = parse_timestamp(parts.next())?;
                let mut entries = Vec::new();
                for tok in parts {
                    let (d, w) = tok
                        .split_once(':')
                        .ok_or_else(|| err(format!("expected dim:weight, got {tok:?}")))?;
                    let dim: u32 = d
                        .parse()
                        .map_err(|e| err(format!("bad dimension {d:?}: {e}")))?;
                    let weight: f64 = w
                        .parse()
                        .map_err(|e| err(format!("bad weight {w:?}: {e}")))?;
                    if !weight.is_finite() || weight <= 0.0 {
                        return Err(err(format!("weight must be positive: {w}")));
                    }
                    entries.push((dim, weight));
                }
                if entries.is_empty() {
                    return Err(err("vector has no entries"));
                }
                Ok(Request::Vector { t, entries })
            }
            "T" => {
                let (t_str, text) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
                let t = parse_timestamp(if t_str.is_empty() { None } else { Some(t_str) })?;
                Ok(Request::Text {
                    t,
                    text: text.to_string(),
                })
            }
            "STATS" => Ok(Request::Stats),
            "METRICS" => Ok(Request::Metrics),
            "TRACE" => {
                let mut parts = rest.split_ascii_whitespace();
                let max = match parts.next() {
                    None => DEFAULT_TRACE_EVENTS,
                    Some(s) => {
                        let n: u64 = s
                            .parse()
                            .map_err(|e| err(format!("TRACE: bad count {s:?}: {e}")))?;
                        if n == 0 {
                            return Err(err("TRACE: count must be >= 1"));
                        }
                        n
                    }
                };
                if parts.next().is_some() {
                    return Err(err("TRACE: trailing arguments"));
                }
                Ok(Request::Trace { max })
            }
            "QUERY" => {
                let mut parts = rest.split_ascii_whitespace();
                let kind = parts
                    .next()
                    .ok_or_else(|| err("QUERY expects neighbors|topk|component|stats"))?;
                let mut node = |what: &str| -> Result<u64, ProtocolError> {
                    let s = parts
                        .next()
                        .ok_or_else(|| err(format!("QUERY {what}: missing node id")))?;
                    s.parse()
                        .map_err(|e| err(format!("QUERY {what}: bad node id {s:?}: {e}")))
                };
                let mut query = match kind {
                    "neighbors" => GraphQuery::Neighbors {
                        node: node("neighbors")?,
                        at: None,
                    },
                    "topk" => {
                        let n = node("topk")?;
                        let k_str = parts.next().ok_or_else(|| err("QUERY topk: missing k"))?;
                        let k: u32 = k_str
                            .parse()
                            .map_err(|e| err(format!("QUERY topk: bad k {k_str:?}: {e}")))?;
                        if k == 0 {
                            return Err(err("QUERY topk: k must be >= 1"));
                        }
                        GraphQuery::TopK {
                            node: n,
                            k,
                            at: None,
                        }
                    }
                    "component" => GraphQuery::Component {
                        node: node("component")?,
                        at: None,
                    },
                    "stats" => GraphQuery::Stats,
                    other => {
                        return Err(err(format!(
                            "unknown QUERY kind {other:?} (neighbors|topk|component|stats)"
                        )))
                    }
                };
                // Optional trailing `at=<t>`: evaluate at historical
                // time t instead of the live watermark.
                if let Some(tok) = parts.next() {
                    let at_slot = match &mut query {
                        GraphQuery::Neighbors { at, .. }
                        | GraphQuery::TopK { at, .. }
                        | GraphQuery::Component { at, .. } => Some(at),
                        GraphQuery::Stats => None,
                    };
                    match (at_slot, tok.strip_prefix("at=")) {
                        (Some(at), Some(t_str)) => {
                            let t: f64 = t_str
                                .parse()
                                .map_err(|e| err(format!("QUERY: bad at={t_str:?}: {e}")))?;
                            if !t.is_finite() {
                                return Err(err("QUERY: at= must be finite"));
                            }
                            *at = Some(t);
                        }
                        (None, Some(_)) => {
                            return Err(err("QUERY stats takes no at= (history is in its output)"))
                        }
                        (_, None) => {
                            return Err(err(format!("QUERY: unexpected argument {tok:?}")))
                        }
                    }
                }
                if parts.next().is_some() {
                    return Err(err("QUERY: trailing arguments"));
                }
                Ok(Request::Query(query))
            }
            "SUBSCRIBE" => {
                let mut parts = rest.split_ascii_whitespace();
                let s = parts
                    .next()
                    .ok_or_else(|| err("SUBSCRIBE: missing node id"))?;
                let node: u64 = s
                    .parse()
                    .map_err(|e| err(format!("SUBSCRIBE: bad node id {s:?}: {e}")))?;
                if parts.next().is_some() {
                    return Err(err("SUBSCRIBE: trailing arguments"));
                }
                Ok(Request::Subscribe { node })
            }
            "FINISH" => Ok(Request::Finish),
            "QUIT" => Ok(Request::Quit),
            "" => Err(err("empty request")),
            other => Err(err(format!("unknown verb {other:?}"))),
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Config(c) => {
                write!(f, "CONFIG")?;
                if let Some(x) = &c.spec {
                    write!(f, " spec={x}")?;
                }
                if let Some(x) = c.theta {
                    write!(f, " theta={x}")?;
                }
                if let Some(x) = c.lambda {
                    write!(f, " lambda={x}")?;
                }
                if let Some(x) = c.index {
                    write!(f, " index={}", x.to_string().to_ascii_lowercase())?;
                }
                if let Some(x) = c.framework {
                    write!(f, " framework={}", x.to_string().to_ascii_lowercase())?;
                }
                if let Some(x) = c.mode {
                    write!(f, " mode={x}")?;
                }
                if let Some(x) = c.slack {
                    write!(f, " slack={x}")?;
                }
                Ok(())
            }
            Request::Vector { t, entries } => {
                write!(f, "V {t}")?;
                for (d, w) in entries {
                    write!(f, " {d}:{w}")?;
                }
                Ok(())
            }
            Request::Text { t, text } => write!(f, "T {t} {text}"),
            Request::Stats => f.write_str("STATS"),
            Request::Metrics => f.write_str("METRICS"),
            Request::Trace { max } => write!(f, "TRACE {max}"),
            Request::Query(q) => {
                let at = match q {
                    GraphQuery::Neighbors { node, at } => {
                        write!(f, "QUERY neighbors {node}")?;
                        at
                    }
                    GraphQuery::TopK { node, k, at } => {
                        write!(f, "QUERY topk {node} {k}")?;
                        at
                    }
                    GraphQuery::Component { node, at } => {
                        write!(f, "QUERY component {node}")?;
                        at
                    }
                    GraphQuery::Stats => {
                        f.write_str("QUERY stats")?;
                        &None
                    }
                };
                if let Some(t) = at {
                    write!(f, " at={t}")?;
                }
                Ok(())
            }
            Request::Subscribe { node } => write!(f, "SUBSCRIBE {node}"),
            Request::Finish => f.write_str("FINISH"),
            Request::Quit => f.write_str("QUIT"),
        }
    }
}

/// Which serving engine answered a `STATS` request (the `engine=` key
/// of the `S` line).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineLabel {
    /// The server did not say (pre-PR9 server, or a synthesized value).
    #[default]
    Unknown,
    /// Thread-per-connection serving.
    Threaded,
    /// The single-thread multiplexed event loop.
    EventLoop,
}

impl EngineLabel {
    fn parse(s: &str) -> Option<EngineLabel> {
        match s {
            "threaded" => Some(EngineLabel::Threaded),
            "eventloop" => Some(EngineLabel::EventLoop),
            "unknown" => Some(EngineLabel::Unknown),
            _ => None,
        }
    }
}

impl fmt::Display for EngineLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EngineLabel::Unknown => "unknown",
            EngineLabel::Threaded => "threaded",
            EngineLabel::EventLoop => "eventloop",
        })
    }
}

/// Session work counters reported by `STATS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Records accepted so far.
    pub records: u64,
    /// Pairs reported so far.
    pub pairs: u64,
    /// Posting entries traversed during candidate generation.
    pub entries_traversed: u64,
    /// Candidates generated.
    pub candidates: u64,
    /// Full similarities computed.
    pub full_sims: u64,
    /// Live posting entries (memory proxy).
    pub live_postings: u64,
    /// Which serving engine answered (`engine=threaded|eventloop`).
    pub engine: EngineLabel,
    /// Whether the session feeds a shared pipeline (`shared=0|1`).
    pub shared: bool,
    /// Graph snapshot generation at answer time (`generation=`; 0 when
    /// the session has no graph or nothing was published yet).
    pub generation: u64,
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// One similar pair (`P <left> <right> <similarity>`).
    Pair(SimilarPair),
    /// Request completed; for `V`/`T`/`FINISH` carries the number of `P`
    /// lines that preceded it.
    Ok(u64),
    /// Request failed; the session stays open.
    Err(String),
    /// Stats snapshot.
    Stats(SessionStats),
    /// A pushed edge update for a subscribed node
    /// (`U <node> <left> <right> <sim>`). Not counted by `OK <count>`.
    Update {
        /// The subscribed node this update is for.
        node: u64,
        /// The delivered pair forming the new edge.
        pair: SimilarPair,
    },
    /// `D <n>`: the server's bounded push queue overflowed and `n`
    /// subscription updates were discarded (oldest first) before the
    /// `U` lines that follow. Push traffic like `U` — never counted by
    /// `OK <count>`; a slow subscriber sees one coalesced `D` per drain,
    /// not one line per drop.
    Dropped(u64),
    /// One Prometheus text-exposition line of a `METRICS` reply
    /// (`M <line>`), emitted zero or more times before the `OK <count>`.
    Metric(String),
    /// One flight-recorder line of a `TRACE` reply (`R <payload>`): the
    /// `# now=… watermark=… dropped=…` header first, then one wire-form
    /// event per line ([`sssj_metrics::trace::TraceEvent::to_wire`]).
    TraceLine(String),
    /// A graph scalar answer (`G key=value …`, e.g. `component` /
    /// `stats` replies), insertion-ordered.
    Graph(Vec<(String, u64)>),
    /// Session closed by the server (answer to `QUIT`).
    Bye,
}

impl Response {
    /// Parses one response line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Response, ProtocolError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim_start()),
            None => (line, ""),
        };
        match verb {
            "P" => {
                let mut p = rest.split_ascii_whitespace();
                let left: u64 = p
                    .next()
                    .ok_or_else(|| err("P: missing left id"))?
                    .parse()
                    .map_err(|e| err(format!("P: bad left id: {e}")))?;
                let right: u64 = p
                    .next()
                    .ok_or_else(|| err("P: missing right id"))?
                    .parse()
                    .map_err(|e| err(format!("P: bad right id: {e}")))?;
                let similarity: f64 = p
                    .next()
                    .ok_or_else(|| err("P: missing similarity"))?
                    .parse()
                    .map_err(|e| err(format!("P: bad similarity: {e}")))?;
                Ok(Response::Pair(SimilarPair::new(left, right, similarity)))
            }
            "OK" => {
                let n: u64 = rest
                    .parse()
                    .map_err(|e| err(format!("OK: bad count {rest:?}: {e}")))?;
                Ok(Response::Ok(n))
            }
            "E" => Ok(Response::Err(rest.to_string())),
            "S" => {
                fn num(kv: &str, v: &str) -> Result<u64, ProtocolError> {
                    v.parse()
                        .map_err(|e| err(format!("S: bad value in {kv:?}: {e}")))
                }
                let mut s = SessionStats::default();
                for kv in rest.split_ascii_whitespace() {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| err(format!("S: expected key=value, got {kv:?}")))?;
                    match k {
                        "records" => s.records = num(kv, v)?,
                        "pairs" => s.pairs = num(kv, v)?,
                        "entries" => s.entries_traversed = num(kv, v)?,
                        "candidates" => s.candidates = num(kv, v)?,
                        "full_sims" => s.full_sims = num(kv, v)?,
                        "live_postings" => s.live_postings = num(kv, v)?,
                        "engine" => {
                            s.engine = EngineLabel::parse(v)
                                .ok_or_else(|| err(format!("S: unknown engine {v:?}")))?
                        }
                        "shared" => s.shared = num(kv, v)? != 0,
                        "generation" => s.generation = num(kv, v)?,
                        // Forward compatibility: ignore unknown counters.
                        _ => {}
                    }
                }
                Ok(Response::Stats(s))
            }
            "M" => Ok(Response::Metric(rest.to_string())),
            "R" => Ok(Response::TraceLine(rest.to_string())),
            "U" => {
                let mut p = rest.split_ascii_whitespace();
                let mut num = |what: &str| -> Result<u64, ProtocolError> {
                    p.next()
                        .ok_or_else(|| err(format!("U: missing {what}")))?
                        .parse()
                        .map_err(|e| err(format!("U: bad {what}: {e}")))
                };
                let node = num("node")?;
                let left = num("left id")?;
                let right = num("right id")?;
                let similarity: f64 = p
                    .next()
                    .ok_or_else(|| err("U: missing similarity"))?
                    .parse()
                    .map_err(|e| err(format!("U: bad similarity: {e}")))?;
                Ok(Response::Update {
                    node,
                    pair: SimilarPair::new(left, right, similarity),
                })
            }
            "D" => {
                let n: u64 = rest
                    .parse()
                    .map_err(|e| err(format!("D: bad count {rest:?}: {e}")))?;
                Ok(Response::Dropped(n))
            }
            "G" => {
                let mut fields = Vec::new();
                for kv in rest.split_ascii_whitespace() {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| err(format!("G: expected key=value, got {kv:?}")))?;
                    let v: u64 = v
                        .parse()
                        .map_err(|e| err(format!("G: bad value in {kv:?}: {e}")))?;
                    fields.push((k.to_string(), v));
                }
                if fields.is_empty() {
                    return Err(err("G: no fields"));
                }
                Ok(Response::Graph(fields))
            }
            "BYE" => Ok(Response::Bye),
            other => Err(err(format!("unknown response verb {other:?}"))),
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Pair(p) => write!(f, "P {} {} {}", p.left, p.right, p.similarity),
            Response::Ok(n) => write!(f, "OK {n}"),
            Response::Err(msg) => write!(f, "E {}", msg.replace('\n', " ")),
            Response::Stats(s) => write!(
                f,
                "S records={} pairs={} entries={} candidates={} full_sims={} live_postings={} \
                 engine={} shared={} generation={}",
                s.records,
                s.pairs,
                s.entries_traversed,
                s.candidates,
                s.full_sims,
                s.live_postings,
                s.engine,
                s.shared as u8,
                s.generation
            ),
            Response::Metric(line) => write!(f, "M {}", line.replace('\n', " ")),
            Response::TraceLine(line) => write!(f, "R {}", line.replace('\n', " ")),
            Response::Update { node, pair } => write!(
                f,
                "U {node} {} {} {}",
                pair.left, pair.right, pair.similarity
            ),
            Response::Dropped(n) => write!(f, "D {n}"),
            Response::Graph(fields) => {
                f.write_str("G")?;
                for (k, v) in fields {
                    write!(f, " {k}={v}")?;
                }
                Ok(())
            }
            Response::Bye => f.write_str("BYE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_vector_request() {
        let r = Request::parse("V 12.5 3:0.6 9:0.8").unwrap();
        assert_eq!(
            r,
            Request::Vector {
                t: 12.5,
                entries: vec![(3, 0.6), (9, 0.8)],
            }
        );
    }

    #[test]
    fn parse_config_request() {
        let r = Request::parse("CONFIG theta=0.7 lambda=0.01 index=l2 framework=str").unwrap();
        match r {
            Request::Config(c) => {
                assert_eq!(c.theta, Some(0.7));
                assert_eq!(c.lambda, Some(0.01));
                assert_eq!(c.index, Some(IndexKind::L2));
                assert_eq!(c.framework, Some(Framework::Streaming));
                assert_eq!(c.mode, None);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parse_config_spec_request() {
        let r = Request::parse("CONFIG spec=topk-l2?theta=0.5&lambda=0.01&k=3 mode=text").unwrap();
        match r {
            Request::Config(c) => {
                let spec = c.spec.expect("spec parsed");
                assert_eq!(spec.to_string(), "topk-l2?theta=0.5&lambda=0.01&k=3");
                assert_eq!(c.mode, Some(SessionMode::Text));
            }
            other => panic!("wrong request: {other:?}"),
        }
        // Display → parse round-trips the spec-carrying config.
        let req = Request::Config(ConfigRequest {
            spec: Some("str-l2?theta=0.8&lambda=0.1&reorder=2".parse().unwrap()),
            ..Default::default()
        });
        assert_eq!(Request::parse(&req.to_string()).unwrap(), req);
    }

    #[test]
    fn configj_parses_json_spec() {
        let r = Request::parse(
            "CONFIGJ {\"engine\":\"lsh\",\"theta\":0.7,\"lambda\":0.01,\
             \"bits\":128,\"bands\":16,\"verify\":\"est\"}",
        )
        .unwrap();
        match r {
            Request::Config(c) => {
                let spec = c.spec.expect("spec parsed");
                assert_eq!(
                    spec.to_string(),
                    "lsh?theta=0.7&lambda=0.01&bits=128&bands=16&verify=est"
                );
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parse_text_request_keeps_whole_text() {
        let r = Request::parse("T 3.0 the quick  brown fox").unwrap();
        assert_eq!(
            r,
            Request::Text {
                t: 3.0,
                text: "the quick  brown fox".into(),
            }
        );
    }

    #[test]
    fn bare_verbs() {
        assert_eq!(Request::parse("STATS").unwrap(), Request::Stats);
        assert_eq!(Request::parse("METRICS").unwrap(), Request::Metrics);
        assert_eq!(Request::parse("FINISH\r\n").unwrap(), Request::Finish);
        assert_eq!(Request::parse("QUIT").unwrap(), Request::Quit);
    }

    #[test]
    fn trace_request_roundtrips() {
        assert_eq!(
            Request::parse("TRACE").unwrap(),
            Request::Trace {
                max: DEFAULT_TRACE_EVENTS
            }
        );
        let req = Request::Trace { max: 1024 };
        assert_eq!(Request::parse("TRACE 1024").unwrap(), req);
        assert_eq!(Request::parse(&req.to_string()).unwrap(), req);
        for bad in ["TRACE 0", "TRACE x", "TRACE -1", "TRACE 5 6"] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn trace_lines_roundtrip() {
        for line in [
            "# now=123456 watermark=12.5 dropped=0",
            "1500 2000 net.request X 3 0 9 1 2",
            "4000 0 loop.stall i 3 0 0 0 0",
        ] {
            let resp = Response::parse(&format!("R {line}")).unwrap();
            assert_eq!(resp, Response::TraceLine(line.to_string()));
            assert_eq!(Response::parse(&resp.to_string()).unwrap(), resp);
        }
    }

    #[test]
    fn stats_serving_shape_fields_roundtrip() {
        let s = Response::parse(
            "S records=5 pairs=2 entries=9 candidates=4 full_sims=3 live_postings=8 \
             engine=eventloop shared=1 generation=7",
        )
        .unwrap();
        match s {
            Response::Stats(s) => {
                assert_eq!(s.engine, EngineLabel::EventLoop);
                assert!(s.shared);
                assert_eq!(s.generation, 7);
            }
            other => panic!("wrong response: {other:?}"),
        }
        // A pre-PR9 S line (no serving-shape keys) still parses.
        let s = Response::parse("S records=5 pairs=2").unwrap();
        match s {
            Response::Stats(s) => {
                assert_eq!(s.engine, EngineLabel::Unknown);
                assert!(!s.shared);
                assert_eq!(s.generation, 0);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn metric_lines_roundtrip() {
        for line in [
            "# HELP sssj_core_records_total records ingested",
            "# TYPE sssj_core_records_total counter",
            "sssj_core_records_total 6003",
            "sssj_net_requests_total{verb=\"query\"} 42",
        ] {
            let resp = Response::parse(&format!("M {line}")).unwrap();
            assert_eq!(resp, Response::Metric(line.to_string()));
            assert_eq!(Response::parse(&resp.to_string()).unwrap(), resp);
        }
    }

    #[test]
    fn query_and_subscribe_roundtrip() {
        for (line, req) in [
            (
                "QUERY neighbors 5",
                Request::Query(GraphQuery::Neighbors { node: 5, at: None }),
            ),
            (
                "QUERY topk 5 3",
                Request::Query(GraphQuery::TopK {
                    node: 5,
                    k: 3,
                    at: None,
                }),
            ),
            (
                "QUERY component 9",
                Request::Query(GraphQuery::Component { node: 9, at: None }),
            ),
            (
                "QUERY neighbors 5 at=12.5",
                Request::Query(GraphQuery::Neighbors {
                    node: 5,
                    at: Some(12.5),
                }),
            ),
            (
                "QUERY topk 5 3 at=0.25",
                Request::Query(GraphQuery::TopK {
                    node: 5,
                    k: 3,
                    at: Some(0.25),
                }),
            ),
            (
                "QUERY component 9 at=-4",
                Request::Query(GraphQuery::Component {
                    node: 9,
                    at: Some(-4.0),
                }),
            ),
            ("QUERY stats", Request::Query(GraphQuery::Stats)),
            ("SUBSCRIBE 7", Request::Subscribe { node: 7 }),
        ] {
            assert_eq!(Request::parse(line).unwrap(), req, "{line}");
            assert_eq!(Request::parse(&req.to_string()).unwrap(), req, "{line}");
        }
        // Malformed at= forms are rejected.
        for bad in [
            "QUERY stats at=3",
            "QUERY neighbors 5 at=nan",
            "QUERY neighbors 5 at=",
            "QUERY neighbors 5 когда=3",
            "QUERY topk 5 3 at=1 at=2",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn update_and_graph_responses_roundtrip() {
        for (line, resp) in [
            (
                "U 4 0 4 0.75",
                Response::Update {
                    node: 4,
                    pair: SimilarPair::new(0, 4, 0.75),
                },
            ),
            (
                "G root=0 size=17",
                Response::Graph(vec![("root".into(), 0), ("size".into(), 17)]),
            ),
            ("D 3", Response::Dropped(3)),
            ("D 0", Response::Dropped(0)),
            (
                "G nodes=40 edges=95 components=3",
                Response::Graph(vec![
                    ("nodes".into(), 40),
                    ("edges".into(), 95),
                    ("components".into(), 3),
                ]),
            ),
        ] {
            assert_eq!(Response::parse(line).unwrap(), resp, "{line}");
            assert_eq!(Response::parse(&resp.to_string()).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn rejects_malformed_graph_requests() {
        for bad in [
            "QUERY",
            "QUERY everything",
            "QUERY neighbors",
            "QUERY neighbors x",
            "QUERY topk 5",
            "QUERY topk 5 0",
            "QUERY topk 5 k",
            "QUERY component 5 6",
            "QUERY stats 5",
            "SUBSCRIBE",
            "SUBSCRIBE x",
            "SUBSCRIBE 1 2",
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
        for bad in [
            "U 1 2 3",
            "U 1 2 3 x",
            "G",
            "G root",
            "G root=x",
            "D",
            "D x",
            "D -1",
        ] {
            assert!(Response::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "WHAT 1 2 3",
            "V",
            "V notanumber 1:0.5",
            "V inf 1:0.5",
            "V 1.0",
            "V 1.0 3",
            "V 1.0 x:0.5",
            "V 1.0 3:-0.5",
            "V 1.0 3:nan",
            "CONFIG theta",
            "CONFIG theta=2.0",
            "CONFIG lambda=-1",
            "CONFIG index=quantum",
            "CONFIG mode=binary",
            "CONFIG slack=-1",
            "CONFIG slack=inf",
            "CONFIG flux=9",
            "CONFIG spec=quantum",
            "CONFIG spec=topk-l2?k=0",
            "CONFIGJ",
            "CONFIGJ not json",
            "CONFIGJ {\"volume\":11}",
            "T",
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_malformed_responses() {
        for bad in [
            "",
            "Z 1",
            "P 1",
            "P 1 2",
            "P 1 2 x",
            "OK",
            "OK x",
            "S a",
            "S engine=warp",
            "S shared=x",
        ] {
            assert!(Response::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn stats_roundtrip_ignores_unknown_keys() {
        let s = Response::parse("S records=5 pairs=2 entries=100 future_counter=9").unwrap();
        match s {
            Response::Stats(s) => {
                assert_eq!(s.records, 5);
                assert_eq!(s.pairs, 2);
                assert_eq!(s.entries_traversed, 100);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    proptest! {
        /// Display → parse is the identity for vector requests.
        #[test]
        fn vector_request_roundtrips(
            t in -1e6f64..1e6,
            entries in proptest::collection::vec((0u32..1_000_000, 1e-6f64..1e6), 1..20),
        ) {
            let req = Request::Vector { t, entries };
            let line = req.to_string();
            prop_assert_eq!(Request::parse(&line).unwrap(), req);
        }

        /// Display → parse is the identity for pair responses.
        #[test]
        fn pair_response_roundtrips(
            left in 0u64..1_000_000,
            right in 0u64..1_000_000,
            sim in 0.0f64..=1.0,
        ) {
            let resp = Response::Pair(SimilarPair::new(left, right, sim));
            let line = resp.to_string();
            prop_assert_eq!(Response::parse(&line).unwrap(), resp);
        }

        /// Stats responses round-trip, serving-shape fields included.
        #[test]
        fn stats_response_roundtrips(
            records in 0u64..u64::MAX,
            pairs in 0u64..u64::MAX,
            entries in 0u64..u64::MAX,
            engine in prop_oneof![
                Just(EngineLabel::Unknown),
                Just(EngineLabel::Threaded),
                Just(EngineLabel::EventLoop),
            ],
            shared in proptest::bool::ANY,
            generation in 0u64..u64::MAX,
        ) {
            let resp = Response::Stats(SessionStats {
                records,
                pairs,
                entries_traversed: entries,
                candidates: 1,
                full_sims: 2,
                live_postings: 3,
                engine,
                shared,
                generation,
            });
            let line = resp.to_string();
            prop_assert_eq!(Response::parse(&line).unwrap(), resp);
        }
    }
}

//! The multiplexed serving engine: every connection on one thread,
//! driven by readiness events from [`crate::poll`].
//!
//! # Architecture
//!
//! One iteration of the loop:
//!
//! 1. **Wait** for readiness (zero timeout when a connection still has
//!    buffered complete lines — the fairness quantum, not the network,
//!    paused it).
//! 2. **Accept** every pending connection; register it non-blocking.
//! 3. **Read** from readable connections into per-connection buffers
//!    (bounded per iteration, skipped under backpressure).
//! 4. **Process** up to a fixed quantum of complete lines per
//!    connection, appending responses to its write buffer — so one
//!    firehose ingest connection cannot starve query connections
//!    (no head-of-line blocking between sessions).
//! 5. **Publish + fan out** (shared mode): if ingest dirtied the graph,
//!    publish a fresh snapshot and route the captured edge deltas to
//!    every subscribed connection's bounded push queue.
//! 6. **Drain** push queues into write buffers — only at reply
//!    boundaries, so pushed `U`/`D` frames never interleave inside a
//!    `P*`-then-`OK` reply.
//! 7. **Flush** write buffers (non-blocking; what does not fit stays
//!    buffered and turns on write interest).
//! 8. **Re-arm interest**: read is withdrawn while a connection's
//!    backlog exceeds `write_buf_cap` (backpressure — a slow reader
//!    stops being read from, it does not stall the loop), write is
//!    armed only while output is pending.
//!
//! # Session modes
//!
//! *Per-session* (default): each connection owns a [`Session`] — its own
//! pipeline, its own stream — exactly the threaded engine's semantics.
//!
//! *Shared* ([`crate::ServerOptions::shared`]): all connections feed and
//! query **one** session. Queries are served from the graph's published
//! snapshot ([`Session::set_snapshot_reads`]) so they never contend
//! with ingest; `SUBSCRIBE` becomes real server push (step 5);
//! `CONFIG` answers `E` (the operator fixed the pipeline); `QUIT`
//! closes only the issuing connection. `FINISH` seals the shared
//! pipeline for everyone — intended for the end of the stream, not a
//! client departure.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use sssj_graph::GraphHandle;
use sssj_metrics::registry::{Counter, Registry};
use sssj_types::SimilarPair;

use crate::poll::{Event, Interest, Poller};
use crate::protocol::{EngineLabel, Request, Response};
use crate::server::{connections_gauge, ServerOptions};
use crate::session::Session;

/// Lines processed per connection per iteration before yielding to the
/// other connections. Kept small on purpose: a quantum is the
/// head-of-line wait another connection's QUERY can see behind a
/// saturated ingest connection, and a join step can be expensive, so a
/// large quantum trades tail latency for nothing — per-iteration
/// overhead is a poll syscall and a slab scan, orders of magnitude
/// cheaper than eight join steps.
const QUANTUM: usize = 8;
/// Bytes read from one connection per iteration (several quanta worth).
const READ_BURST: usize = 64 * 1024;
/// The accept listener's poll token; connections use their slab index.
const LISTENER_TOKEN: u64 = u64::MAX;

/// The event loop's registry handles, resolved once.
struct LoopMetrics {
    /// `sssj_net_loop_stalls_total`: iterations whose work (everything
    /// between two poll waits) overran the poll interval — each one is
    /// latency every other connection observed. Also surfaced as the
    /// `G loop_stalls=<n>` line preceding every `S` reply, so the probe
    /// works over the wire even with telemetry off.
    stalls: &'static Counter,
    /// `sssj_net_push_dropped_updates_total`: subscription updates
    /// discarded by bounded push queues (the sum of all `D` counts).
    push_drops: &'static Counter,
    /// `sssj_net_backpressure_events_total`: read-interest withdrawals —
    /// a connection's un-flushed output crossed `write_buf_cap` and the
    /// loop stopped reading from it until it drains.
    backpressure: &'static Counter,
}

fn loop_metrics() -> &'static LoopMetrics {
    static M: OnceLock<LoopMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let reg = Registry::global();
        LoopMetrics {
            stalls: reg.counter(
                "sssj_net_loop_stalls_total",
                "event-loop iterations whose work overran the poll interval",
            ),
            push_drops: reg.counter(
                "sssj_net_push_dropped_updates_total",
                "subscription updates discarded by bounded push queues",
            ),
            backpressure: reg.counter(
                "sssj_net_backpressure_events_total",
                "read-interest withdrawals under write-buffer backpressure",
            ),
        }
    })
}

/// A bounded queue of pushed `U` frames with a drop-oldest overflow
/// policy; discarded frames are coalesced into one `D <count>` line
/// emitted before the survivors at the next drain.
pub(crate) struct PushQueue {
    cap: usize,
    items: VecDeque<Response>,
    dropped: u64,
}

impl PushQueue {
    pub(crate) fn new(cap: usize) -> PushQueue {
        PushQueue {
            cap: cap.max(1),
            items: VecDeque::new(),
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, update: Response) {
        if self.items.len() >= self.cap {
            self.items.pop_front();
            self.dropped += 1;
            loop_metrics().push_drops.inc();
        }
        self.items.push_back(update);
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty() && self.dropped == 0
    }

    /// Serializes the queue (a coalescing `D` first when frames were
    /// dropped) into a write buffer and empties it.
    pub(crate) fn drain_to(&mut self, wbuf: &mut Vec<u8>) {
        if self.dropped > 0 {
            append_response(wbuf, &Response::Dropped(self.dropped));
            self.dropped = 0;
        }
        for r in self.items.drain(..) {
            append_response(wbuf, &r);
        }
    }
}

fn append_response(wbuf: &mut Vec<u8>, r: &Response) {
    wbuf.extend_from_slice(r.to_string().as_bytes());
    wbuf.push(b'\n');
}

/// The one shared pipeline of a `--shared` server.
struct SharedPipeline {
    session: Session,
    graph: Option<GraphHandle>,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Unconsumed input; `scanned` bytes from the front are known
    /// newline-free (resumed scans stay linear on split reads).
    rbuf: Vec<u8>,
    scanned: usize,
    /// Pending output, drained from `wpos`.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Per-session mode: this connection's own pipeline.
    session: Option<Session>,
    /// Shared mode: this connection's subscribed nodes.
    subs: Vec<u64>,
    push_q: PushQueue,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Readiness reported this iteration.
    readable: bool,
    /// The last write hit `WouldBlock`; wait for a writable event before
    /// trying again.
    write_blocked: bool,
    /// A complete line is buffered but unprocessed (quantum or
    /// backpressure paused this connection, not the network).
    line_ready: bool,
    eof: bool,
    /// Flush remaining output, then retire.
    closing: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, options: &ServerOptions) -> Conn {
        let session = if options.shared {
            None
        } else {
            let mut s = Session::new(options.defaults.clone());
            s.set_serving_info(EngineLabel::EventLoop, false);
            Some(s)
        };
        Conn {
            stream,
            rbuf: Vec::new(),
            scanned: 0,
            wbuf: Vec::new(),
            wpos: 0,
            session,
            subs: Vec::new(),
            push_q: PushQueue::new(options.push_queue_cap),
            interest: Interest {
                read: true,
                write: false,
            },
            readable: false,
            write_blocked: false,
            line_ready: false,
            eof: false,
            closing: false,
            dead: false,
        }
    }

    fn pending_out(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Index of the next newline, or `None` (advancing `scanned` so the
    /// searched prefix is never rescanned).
    fn find_newline(&mut self) -> Option<usize> {
        match self.rbuf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(i) => Some(self.scanned + i),
            None => {
                self.scanned = self.rbuf.len();
                None
            }
        }
    }

    /// Consumes and returns the next complete line (CRLF-stripped).
    fn take_line(&mut self, newline_at: usize) -> String {
        let rest = self.rbuf.split_off(newline_at + 1);
        let mut line = std::mem::replace(&mut self.rbuf, rest);
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        self.scanned = 0;
        String::from_utf8_lossy(&line).into_owned()
    }
}

/// Runs the event loop until `stop`. Owns the listener, the poller, and
/// every connection; the whole engine is one thread.
pub(crate) fn run(
    listener: TcpListener,
    options: ServerOptions,
    stop: Arc<AtomicBool>,
    started: Arc<AtomicU64>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut poller = Poller::new();
    if poller
        .register(
            listener.as_raw_fd(),
            LISTENER_TOKEN,
            Interest {
                read: true,
                write: false,
            },
        )
        .is_err()
    {
        return;
    }

    let mut shared = if options.shared {
        let mut session = Session::new(options.defaults.clone());
        session.set_serving_info(EngineLabel::EventLoop, true);
        session.set_snapshot_reads(true);
        let graph = session.graph_handle();
        if let Some(g) = &graph {
            g.set_collect_deltas(true);
        }
        Some(SharedPipeline { session, graph })
    } else {
        None
    };

    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut responses: Vec<Response> = Vec::new();
    // Stall probe: an iteration's work (between two poll waits) running
    // past the poll interval is head-of-line latency every connection
    // observed. Tracked locally (for the G line on STATS replies) and as
    // `sssj_net_loop_stalls_total`.
    let stall_budget = options.poll_interval.max(Duration::from_millis(1));
    let mut loop_stalls: u64 = 0;
    // Resolve the loop's metric handles up front so every series exists
    // (at zero) in a scrape even before the first stall or drop.
    let _ = loop_metrics();

    while !stop.load(Ordering::SeqCst) {
        // 1. Wait — immediately when paused work is buffered.
        let immediate = conns.iter().flatten().any(|c| {
            !c.dead && !c.closing && c.line_ready && c.pending_out() < options.write_buf_cap
        });
        let timeout = if immediate {
            Duration::ZERO
        } else {
            options.poll_interval
        };
        let mut accept_ready = false;
        if poller.wait(&mut events, timeout).is_err() {
            break;
        }
        for e in &events {
            if e.token == LISTENER_TOKEN {
                accept_ready = true;
            } else if let Some(Some(c)) = conns.get_mut(e.token as usize) {
                c.readable |= e.readable;
                if e.writable {
                    c.write_blocked = false;
                }
            }
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let work_started = Instant::now();

        // 2. Accept everything pending.
        if accept_ready {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        started.fetch_add(1, Ordering::SeqCst);
                        let conn = Conn::new(stream, &options);
                        let token = match conns.iter().position(Option::is_none) {
                            Some(i) => i,
                            None => {
                                conns.push(None);
                                conns.len() - 1
                            }
                        };
                        if poller
                            .register(conn.stream.as_raw_fd(), token as u64, conn.interest)
                            .is_ok()
                        {
                            conns[token] = Some(conn);
                            connections_gauge().add(1);
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // 3. Read.
        let mut chunk = [0u8; 4096];
        for conn in conns.iter_mut().flatten() {
            if !conn.readable || conn.closing || conn.dead {
                continue;
            }
            if conn.pending_out() >= options.write_buf_cap {
                continue; // backpressure: leave bytes in the kernel
            }
            conn.readable = false;
            let mut budget = READ_BURST;
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                        budget = budget.saturating_sub(n);
                        if budget == 0 {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }

        // 4. Process lines, a quantum per connection.
        for slot in conns.iter_mut() {
            let Some(conn) = slot.as_mut() else { continue };
            if conn.dead || conn.closing {
                continue;
            }
            process_lines(conn, shared.as_mut(), &options, loop_stalls, &mut responses);
        }

        // 5. Shared mode: fan out push deltas. (Snapshot publication is
        // NOT done here: it is lazy, folded into the query path —
        // `Session` publishes before answering when the graph is dirty
        // — so pure-ingest iterations never pay an O(live) capture and
        // the cadence inside `GraphHandle` still bounds staleness for
        // wait-free readers.)
        if let Some(sh) = &mut shared {
            if let Some(g) = &sh.graph {
                let deltas = g.take_deltas();
                if !deltas.is_empty() {
                    for conn in conns.iter_mut().flatten() {
                        if conn.dead || conn.subs.is_empty() {
                            continue;
                        }
                        for d in &deltas {
                            for node in [d.left, d.right] {
                                if conn.subs.contains(&node) {
                                    conn.push_q.push(Response::Update {
                                        node,
                                        pair: SimilarPair::new(d.left, d.right, d.similarity),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        // 6. Drain push queues (reply boundaries only: every response in
        // step 4 was appended whole).
        for conn in conns.iter_mut().flatten() {
            if !conn.dead && !conn.closing && !conn.push_q.is_empty() {
                conn.push_q.drain_to(&mut conn.wbuf);
            }
        }

        // 7. Flush.
        for conn in conns.iter_mut().flatten() {
            if conn.dead {
                continue;
            }
            while conn.pending_out() > 0 && !conn.write_blocked {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => conn.wpos += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        conn.write_blocked = true;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.wpos > 0 && conn.wpos == conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wpos = 0;
            } else if conn.wpos > READ_BURST {
                conn.wbuf.drain(..conn.wpos);
                conn.wpos = 0;
            }
            if (conn.closing || conn.eof) && conn.pending_out() == 0 && !conn.line_ready {
                conn.dead = true;
            }
        }

        // 8. Re-arm interest where it changed.
        for (i, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else { continue };
            if conn.dead {
                continue;
            }
            let want = Interest {
                read: !conn.closing && conn.pending_out() < options.write_buf_cap,
                write: conn.pending_out() > 0,
            };
            if conn.interest.read && !want.read && !conn.closing {
                loop_metrics().backpressure.inc();
            }
            if want != conn.interest
                && poller
                    .reregister(conn.stream.as_raw_fd(), i as u64, want)
                    .is_ok()
            {
                conn.interest = want;
            }
        }

        // 9. Retire the dead.
        for slot in conns.iter_mut() {
            if slot.as_ref().is_some_and(|c| c.dead) {
                let conn = slot.take().expect("checked above");
                let _ = poller.deregister(conn.stream.as_raw_fd());
                connections_gauge().add(-1);
            }
        }

        if work_started.elapsed() > stall_budget {
            loop_stalls += 1;
            loop_metrics().stalls.inc();
            // A stalled loop is exactly when the flight recorder earns
            // its keep: note the stall and dump the recent events, rate-
            // limited to one dump per second so a pathological stream
            // cannot flood stderr.
            sssj_metrics::trace::instant(
                sssj_metrics::trace::Stage::LoopStall,
                loop_stalls,
                work_started.elapsed().as_micros() as u64,
            );
            static LAST_DUMP: std::sync::Mutex<Option<std::time::Instant>> =
                std::sync::Mutex::new(None);
            if sssj_metrics::trace_enabled() {
                let mut last = LAST_DUMP.lock().expect("stall-dump clock poisoned");
                if last.is_none_or(|at| at.elapsed().as_secs_f64() >= 1.0) {
                    *last = Some(std::time::Instant::now());
                    sssj_metrics::trace::dump_to_stderr("event-loop stall", 64);
                }
            }
        }
    }

    // Teardown: best-effort flush, then drop everything.
    for conn in conns.iter_mut().flatten() {
        if conn.pending_out() > 0 {
            let _ = conn.stream.write_all(&conn.wbuf[conn.wpos..]);
        }
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        connections_gauge().add(-1);
    }
}

/// Processes up to [`QUANTUM`] complete lines from `conn`, appending the
/// serialized responses to its write buffer. Pauses (not fails) on
/// quantum exhaustion or backpressure; `conn.line_ready` records whether
/// buffered work remains. `STATS` replies are prefixed with a
/// `G loop_stalls=<n>` line — the loop's stall-probe reading, surfaced
/// on the wire regardless of the telemetry switch.
fn process_lines(
    conn: &mut Conn,
    mut shared: Option<&mut SharedPipeline>,
    options: &ServerOptions,
    loop_stalls: u64,
    responses: &mut Vec<Response>,
) {
    let mut processed = 0;
    conn.line_ready = false;
    loop {
        if processed >= QUANTUM || conn.pending_out() >= options.write_buf_cap {
            conn.line_ready = conn.find_newline().is_some();
            return;
        }
        let Some(nl) = conn.find_newline() else {
            if conn.rbuf.len() > options.max_line_bytes {
                responses.clear();
                responses.push(Response::Err("line exceeds size cap".into()));
                for r in responses.iter() {
                    append_response(&mut conn.wbuf, r);
                }
                conn.closing = true;
            }
            return;
        };
        let line = conn.take_line(nl);
        processed += 1;
        if line.trim().is_empty() {
            continue;
        }
        responses.clear();
        match Request::parse(&line) {
            Ok(req) => {
                let is_stats = matches!(req, Request::Stats);
                match (&mut shared, &mut conn.session) {
                    (Some(sh), _) => {
                        handle_shared_request(sh, &mut conn.subs, &mut conn.closing, req, responses)
                    }
                    (None, Some(session)) => {
                        if !session.handle(req, responses) {
                            conn.closing = true;
                        }
                    }
                    (None, None) => unreachable!("per-session connections own a session"),
                }
                if is_stats {
                    responses.insert(
                        0,
                        Response::Graph(vec![("loop_stalls".into(), loop_stalls)]),
                    );
                }
            }
            Err(e) => responses.push(Response::Err(e.to_string())),
        }
        for r in responses.iter() {
            append_response(&mut conn.wbuf, r);
        }
        if conn.closing {
            return;
        }
    }
}

/// Dispatches one request against the shared pipeline. Connection-scoped
/// verbs (`SUBSCRIBE`, `QUIT`) are intercepted here; `CONFIG` is
/// refused; everything else hits the shared session.
fn handle_shared_request(
    sh: &mut SharedPipeline,
    subs: &mut Vec<u64>,
    closing: &mut bool,
    req: Request,
    out: &mut Vec<Response>,
) {
    match req {
        Request::Config(_) => out.push(Response::Err(
            "shared server: the pipeline is fixed by the operator \
             (CONFIG needs a per-session server)"
                .into(),
        )),
        Request::Subscribe { node } => {
            if sh.graph.is_none() {
                out.push(Response::Err(
                    "session has no graph (start the server with a \
                     graph-wrapped spec, e.g. str-l2?theta=0.7&tau=10&graph)"
                        .into(),
                ));
            } else {
                if !subs.contains(&node) {
                    subs.push(node);
                }
                out.push(Response::Ok(0));
            }
        }
        Request::Quit => {
            out.push(Response::Bye);
            *closing = true;
        }
        other => {
            sh.session.handle(other, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(node: u64, l: u64, r: u64) -> Response {
        Response::Update {
            node,
            pair: SimilarPair::new(l, r, 0.9),
        }
    }

    #[test]
    fn push_queue_drops_oldest_and_coalesces_one_d_line() {
        let mut q = PushQueue::new(3);
        for i in 0..8 {
            q.push(update(1, i, i + 1));
        }
        let mut wbuf = Vec::new();
        q.drain_to(&mut wbuf);
        let text = String::from_utf8(wbuf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 5 oldest dropped, coalesced into one D; the 3 newest survive
        // in order.
        assert_eq!(lines[0], "D 5");
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1], "U 1 5 6 0.9");
        assert_eq!(lines[3], "U 1 7 8 0.9");
        assert!(q.is_empty());
        // A drained queue resets: the next drain has no D line.
        q.push(update(2, 0, 2));
        let mut wbuf = Vec::new();
        q.drain_to(&mut wbuf);
        assert_eq!(String::from_utf8(wbuf).unwrap(), "U 2 0 2 0.9\n");
    }

    #[test]
    fn push_queue_cap_is_at_least_one() {
        let mut q = PushQueue::new(0);
        q.push(update(1, 0, 1));
        q.push(update(1, 1, 2));
        let mut wbuf = Vec::new();
        q.drain_to(&mut wbuf);
        let text = String::from_utf8(wbuf).unwrap();
        assert_eq!(text, "D 1\nU 1 1 2 0.9\n");
    }
}

#![warn(missing_docs)]
//! The streaming similarity self-join as a network service.
//!
//! This crate wraps the joins of [`sssj_core`] in a line-protocol TCP
//! service — the deployment shape the paper's motivating applications
//! (trend detection, near-duplicate filtering over a feed) actually run
//! in: producers push timestamped items over a socket and receive each
//! similar pair the moment it completes.
//!
//! * [`Server`] — accepts connections, behind either of two engines
//!   ([`ServerEngine`]): a readiness-multiplexed event loop (default;
//!   epoll on Linux x86-64) or the thread-per-connection baseline. Each
//!   connection is an independent session running its own join (θ, λ,
//!   index, framework and out-of-order slack are all per-session,
//!   negotiated via `CONFIG`) — or, with [`ServerOptions::shared`], all
//!   connections feed and query **one** pipeline, queries are served
//!   wait-free from published graph snapshots, and `SUBSCRIBE` is real
//!   server push (`U` frames arrive without the subscriber writing).
//! * [`JoinClient`] — a synchronous client: one request, one response
//!   (plus passive listening for pushed updates).
//! * [`protocol`] — the wire format, pure and property-tested.
//! * [`session`] — the socket-free state machine behind each connection.
//!
//! # Quickstart
//!
//! ```
//! use sssj_net::{ConfigRequest, JoinClient, Server, ServerOptions};
//!
//! let server = Server::bind("127.0.0.1:0", ServerOptions::default())?;
//! let mut client = JoinClient::connect(server.local_addr())?;
//! client.configure(ConfigRequest {
//!     theta: Some(0.7),
//!     lambda: Some(0.1),
//!     ..Default::default()
//! })?;
//! assert!(client.send_vector(0.0, &[(7, 1.0)])?.is_empty());
//! let pairs = client.send_vector(1.0, &[(7, 1.0)])?; // near-duplicate
//! assert_eq!(pairs.len(), 1);
//! client.quit()?;
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Scraping metrics
//!
//! Every server answers the `METRICS` verb with the process-global
//! telemetry registry in Prometheus text-exposition format — per-verb
//! request counts and latency summaries, connection gauge, ingest and
//! store counters, the event-loop stall probe. One verb, zero server
//! configuration; `sssj metrics <addr>` wraps exactly this exchange
//! (add `--watch SECS` for periodic scrapes with per-counter rates):
//!
//! ```
//! use sssj_net::{JoinClient, Server, ServerOptions};
//!
//! let server = Server::bind("127.0.0.1:0", ServerOptions::default())?;
//! let mut client = JoinClient::connect(server.local_addr())?;
//! client.send_vector(0.0, &[(7, 1.0)])?;
//!
//! let lines = client.metrics()?; // `# HELP`/`# TYPE` + samples
//! if sssj_metrics::telemetry_enabled() {
//!     assert!(lines.iter().any(|l| l.starts_with("sssj_core_records_total")));
//! } else {
//!     assert!(lines.is_empty()); // SSSJ_TELEMETRY=off scrapes empty
//! }
//! client.quit()?;
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
mod event_loop;
mod poll;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{JoinClient, NetError};
pub use protocol::{
    ConfigRequest, EngineLabel, GraphQuery, Request, Response, SessionMode, SessionStats,
};
pub use server::{Server, ServerEngine, ServerOptions};
pub use session::{Session, SessionDefaults};

/// Registers the downstream engines (LSH, sharded), the durable store,
/// the live graph and the historical tier with the [`sssj_core::spec`]
/// factory, so client-negotiated specs reach every variant — including
/// `…&durable=<dir>` pipelines, which create or resume persistent
/// state, `…&graph` pipelines, whose sessions serve the
/// `QUERY`/`SUBSCRIBE` verbs, and `…&history=<dir>` pipelines, whose
/// sessions additionally serve `QUERY … at=<t>` time travel. Idempotent;
/// [`Session::new`] calls it, so any server built on this crate serves
/// the full family automatically.
pub fn register_spec_builders() {
    sssj_lsh::register_spec_builder();
    sssj_parallel::register_spec_builder();
    sssj_segments::register_spec_builder();
}

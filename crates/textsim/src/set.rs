//! Token sets and exact Jaccard similarity.

/// A token identifier. Token ids double as the global ordering the prefix
/// filter relies on — order them by ascending document frequency (rare
/// first) for the strongest pruning, as the set-similarity literature
/// recommends.
pub type TokenId = u32;

/// An immutable set of tokens, stored sorted and deduplicated.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct TokenSet {
    tokens: Box<[TokenId]>,
}

impl TokenSet {
    /// Builds a set from arbitrary tokens (sorted, deduplicated).
    pub fn new(mut tokens: Vec<TokenId>) -> Self {
        tokens.sort_unstable();
        tokens.dedup();
        TokenSet {
            tokens: tokens.into_boxed_slice(),
        }
    }

    /// Set size `|x|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The sorted tokens.
    #[inline]
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// The prefix-filter length for threshold `θ`:
    /// `|x| − ⌈θ·|x|⌉ + 1`. Any pair with `J ≥ θ` shares a token inside
    /// both prefixes of this length.
    pub fn prefix_len(&self, theta: f64) -> usize {
        debug_assert!(theta > 0.0 && theta <= 1.0);
        let n = self.tokens.len();
        if n == 0 {
            return 0;
        }
        // The 1e-9 slack counters float overshoot (e.g. 0.4·5 ↦
        // 2.0000000000000004): an inflated ceil would shorten the prefix
        // and silently lose exact-boundary pairs.
        n - (theta * n as f64 - 1e-9).ceil().max(1.0) as usize + 1
    }

    /// Whether `token` is a member (binary search).
    pub fn contains(&self, token: TokenId) -> bool {
        self.tokens.binary_search(&token).is_ok()
    }
}

impl FromIterator<TokenId> for TokenSet {
    fn from_iter<I: IntoIterator<Item = TokenId>>(iter: I) -> Self {
        TokenSet::new(iter.into_iter().collect())
    }
}

/// Intersection size `|x ∩ y|` by merge; `required` allows early exit:
/// returns `None` as soon as the intersection provably cannot reach it.
pub fn overlap(x: &TokenSet, y: &TokenSet, required: usize) -> Option<usize> {
    let (a, b) = (x.tokens(), y.tokens());
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        // Early exit: even matching everything left cannot reach
        // `required`.
        if inter + (a.len() - i).min(b.len() - j) < required {
            return None;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    (inter >= required).then_some(inter)
}

/// Exact Jaccard similarity `|x ∩ y| / |x ∪ y|`. Empty∩empty is defined
/// as 0 (no shared content, nothing to join on).
pub fn jaccard(x: &TokenSet, y: &TokenSet) -> f64 {
    if x.is_empty() || y.is_empty() {
        return 0.0;
    }
    let inter = overlap(x, y, 0).expect("required=0 always succeeds");
    let union = x.len() + y.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let s = TokenSet::new(vec![5, 1, 5, 3, 1]);
        assert_eq!(s.tokens(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn jaccard_basics() {
        let a = TokenSet::new(vec![1, 2, 3, 4]);
        let b = TokenSet::new(vec![3, 4, 5, 6]);
        assert!((jaccard(&a, &b) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &TokenSet::default()), 0.0);
    }

    #[test]
    fn overlap_early_exit() {
        let a = TokenSet::new(vec![1, 2, 3]);
        let b = TokenSet::new(vec![4, 5, 6]);
        assert_eq!(overlap(&a, &b, 1), None);
        assert_eq!(overlap(&a, &b, 0), Some(0));
        let c = TokenSet::new(vec![2, 3, 9]);
        assert_eq!(overlap(&a, &c, 2), Some(2));
        assert_eq!(overlap(&a, &c, 3), None);
    }

    #[test]
    fn prefix_len_formula() {
        let s = TokenSet::new((0..10).collect());
        // θ=0.8: |x| − ⌈8⌉ + 1 = 3; a pair with J ≥ 0.8 must overlap in
        // the first 3 tokens of each.
        assert_eq!(s.prefix_len(0.8), 3);
        assert_eq!(s.prefix_len(1.0), 1);
        // θ→0 keeps the whole set.
        assert_eq!(s.prefix_len(0.05), 10);
        assert_eq!(TokenSet::default().prefix_len(0.5), 0);
    }

    #[test]
    fn prefix_filter_is_safe() {
        // Exhaustive check on small universes: J(x, y) ≥ θ implies the
        // prefixes intersect.
        for mask_x in 1u32..32 {
            for mask_y in 1u32..32 {
                let x: TokenSet = (0..5).filter(|i| mask_x >> i & 1 == 1).collect();
                let y: TokenSet = (0..5).filter(|i| mask_y >> i & 1 == 1).collect();
                for theta in [0.5, 0.7, 0.9] {
                    if jaccard(&x, &y) >= theta {
                        let px = &x.tokens()[..x.prefix_len(theta)];
                        let py = &y.tokens()[..y.prefix_len(theta)];
                        let hit = px.iter().any(|t| py.contains(t));
                        assert!(hit, "x={:?} y={:?} θ={theta}", x.tokens(), y.tokens());
                    }
                }
            }
        }
    }

    #[test]
    fn contains_uses_order() {
        let s = TokenSet::new(vec![10, 20, 30]);
        assert!(s.contains(20));
        assert!(!s.contains(25));
    }
}

//! Batch all-pairs Jaccard join with prefix + length filtering.

use std::collections::HashMap;

use sssj_metrics::JoinStats;

use crate::set::{jaccard, overlap, TokenId, TokenSet};

/// Float slack applied in the prune-*less* direction: products like
/// `0.4·5` land at `2.0000000000000004`, and an unguarded `ceil` or `<`
/// would silently drop exact-boundary pairs.
pub(crate) const EPS: f64 = 1e-9;

/// Required intersection size for `J(x, y) ≥ θ`:
/// `⌈θ/(1+θ) · (|x| + |y|)⌉` (equivalence `J ≥ θ ⇔ |x∩y| ≥ θ|x∪y|`).
pub(crate) fn required_overlap(theta: f64, nx: usize, ny: usize) -> usize {
    (theta / (1.0 + theta) * (nx + ny) as f64 - EPS)
        .ceil()
        .max(0.0) as usize
}

/// The length filter `θ·|x| ≤ |y| ≤ |x|/θ`, slackened by [`EPS`].
pub(crate) fn length_compatible(theta: f64, nx: usize, ny: usize) -> bool {
    let (nx, ny) = (nx as f64, ny as f64);
    ny >= theta * nx - EPS && ny <= nx / theta + EPS
}

/// Brute-force O(n²) Jaccard all-pairs — the oracle.
pub fn brute_force_jaccard(sets: &[TokenSet], theta: f64) -> Vec<(usize, usize, f64)> {
    assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
    let mut out = Vec::new();
    for i in 0..sets.len() {
        for j in i + 1..sets.len() {
            let s = jaccard(&sets[i], &sets[j]);
            if s >= theta {
                out.push((i, j, s));
            }
        }
    }
    out
}

/// All pairs of sets with `J(x, y) ≥ θ`, by index-and-probe with prefix
/// and length filtering (the AllPairs/PPJoin skeleton specialised to
/// Jaccard). Returns `(i, j, similarity)` with `i < j` in input order,
/// plus the work counters.
///
/// ```
/// use sssj_textsim::{batch_jaccard_join, TokenSet};
///
/// let sets = vec![
///     TokenSet::new(vec![1, 2, 3, 4]),
///     TokenSet::new(vec![1, 2, 3, 5]),
///     TokenSet::new(vec![9, 10]),
/// ];
/// let (pairs, _stats) = batch_jaccard_join(&sets, 0.5);
/// assert_eq!(pairs.len(), 1);
/// assert_eq!((pairs[0].0, pairs[0].1), (0, 1)); // J = 3/5
/// ```
pub fn batch_jaccard_join(sets: &[TokenSet], theta: f64) -> (Vec<(usize, usize, f64)>, JoinStats) {
    assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
    let mut index: HashMap<TokenId, Vec<usize>> = HashMap::new();
    let mut stats = JoinStats::new();
    let mut out = Vec::new();
    let mut seen_round = vec![usize::MAX; sets.len()];

    for (i, x) in sets.iter().enumerate() {
        // Probe: every posting list of x's prefix tokens.
        for &tok in &x.tokens()[..x.prefix_len(theta)] {
            if let Some(list) = index.get(&tok) {
                for &j in list {
                    stats.entries_traversed += 1;
                    if seen_round[j] == i {
                        continue; // already considered for this x
                    }
                    seen_round[j] = i;
                    let y = &sets[j];
                    let (nx, ny) = (x.len(), y.len());
                    if !length_compatible(theta, nx, ny) {
                        continue;
                    }
                    stats.candidates += 1;
                    let req = required_overlap(theta, nx, ny);
                    stats.full_sims += 1;
                    if let Some(inter) = overlap(x, y, req) {
                        let s = inter as f64 / (nx + ny - inter) as f64;
                        if s >= theta {
                            stats.pairs_output += 1;
                            out.push((j, i, s));
                        }
                    }
                }
            }
        }
        // Index x's prefix tokens.
        for &tok in &x.tokens()[..x.prefix_len(theta)] {
            index.entry(tok).or_default().push(i);
            stats.postings_added += 1;
        }
    }
    for p in &mut out {
        if p.0 > p.1 {
            std::mem::swap(&mut p.0, &mut p.1);
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(pairs: &[(usize, usize, f64)]) -> Vec<(usize, usize)> {
        pairs.iter().map(|&(a, b, _)| (a, b)).collect()
    }

    #[test]
    fn matches_brute_force_on_random_sets() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sets: Vec<TokenSet> = (0..120)
            .map(|_| {
                (0..rng.random_range(2..12))
                    .map(|_| rng.random_range(0..40u32))
                    .collect()
            })
            .collect();
        for theta in [0.4, 0.6, 0.8, 0.95] {
            let (fast, _) = batch_jaccard_join(&sets, theta);
            let mut slow = keys(&brute_force_jaccard(&sets, theta));
            slow.sort_unstable();
            assert_eq!(keys(&fast), slow, "θ={theta}");
        }
    }

    #[test]
    fn similarity_values_are_exact() {
        let sets = vec![
            TokenSet::new(vec![1, 2, 3, 4]),
            TokenSet::new(vec![2, 3, 4, 5]),
        ];
        let (pairs, _) = batch_jaccard_join(&sets, 0.5);
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].2 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn length_filter_prunes_extreme_sizes() {
        // |x|=2 vs |y|=20 cannot reach J ≥ 0.5 even with x ⊂ y.
        let small: TokenSet = (0..2).collect();
        let large: TokenSet = (0..20).collect();
        let (pairs, stats) = batch_jaccard_join(&[small, large], 0.5);
        assert!(pairs.is_empty());
        assert_eq!(
            stats.candidates, 0,
            "length filter must fire before overlap"
        );
    }

    #[test]
    fn duplicates_and_empties() {
        let sets = vec![
            TokenSet::new(vec![7, 8]),
            TokenSet::default(),
            TokenSet::new(vec![7, 8]),
        ];
        let (pairs, _) = batch_jaccard_join(&sets, 0.9);
        assert_eq!(keys(&pairs), vec![(0, 2)]);
    }

    #[test]
    fn index_only_holds_prefixes() {
        let sets: Vec<TokenSet> = (0..10).map(|i| (i..i + 10).collect()).collect();
        // θ=0.9 on 10 tokens → prefix length 10 − ⌈9⌉ + 1 = 2.
        let (_, stats) = batch_jaccard_join(&sets, 0.9);
        assert_eq!(stats.postings_added, 20);
        // θ=1.0 → prefix length 1: only exact duplicates can join.
        let (_, stats) = batch_jaccard_join(&sets, 1.0);
        assert_eq!(stats.postings_added, 10);
    }
}

//! Online TF–IDF weighting for streaming text.
//!
//! Batch TF–IDF needs a corpus pass to count document frequencies; a
//! stream has no corpus. [`OnlineIdf`] maintains document frequencies
//! incrementally and weights each arriving document with the statistics
//! *as of its arrival* — the only causally-valid choice in a stream, and
//! the standard one in online learning. Early documents see flatter IDFs
//! (everything is rare at the start); the estimates converge as the
//! stream flows.

use std::collections::HashMap;

use sssj_types::{SparseVector, SparseVectorBuilder, TypesError};

use crate::set::TokenId;

/// An incremental document-frequency tracker producing TF–IDF-weighted
/// unit vectors.
///
/// ```
/// use sssj_textsim::{OnlineIdf, Tokenizer};
///
/// let tok = Tokenizer::new();
/// let mut idf = OnlineIdf::new();
/// // Warm up the df counts on a few documents…
/// for text in ["the cat sat", "the dog sat", "the bird flew"] {
///     idf.observe(&tok.token_ids(text));
/// }
/// // …then rare terms outweigh ubiquitous ones.
/// let v = idf.weight(&tok.token_ids("the cat flew")).unwrap();
/// let the = v.get(tok.token_ids("the")[0]);
/// let cat = v.get(tok.token_ids("cat")[0]);
/// assert!(cat > the);
/// ```
#[derive(Clone, Debug, Default)]
pub struct OnlineIdf {
    /// Documents observed so far.
    docs: u64,
    /// Token → number of observed documents containing it.
    df: HashMap<TokenId, u64>,
}

impl OnlineIdf {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Documents observed so far.
    pub fn documents(&self) -> u64 {
        self.docs
    }

    /// Distinct tokens tracked.
    pub fn vocabulary(&self) -> usize {
        self.df.len()
    }

    /// Records one document's tokens (duplicates within the document are
    /// counted once, as document frequency demands).
    pub fn observe(&mut self, token_ids: &[TokenId]) {
        self.docs += 1;
        let mut sorted: Vec<TokenId> = token_ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for t in sorted {
            *self.df.entry(t).or_insert(0) += 1;
        }
    }

    /// The smoothed IDF of a token: `ln((1 + N)/(1 + df)) + 1`, positive
    /// for every token (including unseen ones).
    pub fn idf(&self, token: TokenId) -> f64 {
        let df = self.df.get(&token).copied().unwrap_or(0);
        ((1.0 + self.docs as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// TF–IDF-weighted unit vector for a document, using the statistics
    /// seen so far (call [`OnlineIdf::observe`] afterwards — a document
    /// should not count itself).
    ///
    /// Errors on empty token lists.
    pub fn weight(&self, token_ids: &[TokenId]) -> Result<SparseVector, TypesError> {
        let mut tf: HashMap<TokenId, f64> = HashMap::new();
        for &t in token_ids {
            *tf.entry(t).or_insert(0.0) += 1.0;
        }
        let mut b = SparseVectorBuilder::with_capacity(tf.len());
        for (t, count) in tf {
            b.push(t, count * self.idf(t));
        }
        b.build_normalized()
    }

    /// Convenience: weight with the current statistics, then observe.
    /// The standard per-record step of a streaming text pipeline.
    pub fn weight_and_observe(
        &mut self,
        token_ids: &[TokenId],
    ) -> Result<SparseVector, TypesError> {
        let v = self.weight(token_ids)?;
        self.observe(token_ids);
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tokenizer;

    #[test]
    fn empty_document_errors() {
        let idf = OnlineIdf::new();
        assert!(idf.weight(&[]).is_err());
    }

    #[test]
    fn unseen_corpus_weights_are_uniform_tf() {
        // With no observations every token has the same IDF, so the
        // vector reduces to normalised term frequency.
        let idf = OnlineIdf::new();
        let v = idf.weight(&[1, 1, 2]).unwrap();
        assert!((v.get(1) / v.get(2) - 2.0).abs() < 1e-12);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequent_tokens_are_downweighted() {
        let mut idf = OnlineIdf::new();
        for _ in 0..50 {
            idf.observe(&[7]); // token 7 in every document
        }
        idf.observe(&[8]); // token 8 in one
        let v = idf.weight(&[7, 8]).unwrap();
        assert!(v.get(8) > 2.0 * v.get(7), "{} vs {}", v.get(8), v.get(7));
    }

    #[test]
    fn duplicates_count_once_for_df_but_fully_for_tf() {
        let mut idf = OnlineIdf::new();
        idf.observe(&[1, 1, 1]);
        idf.observe(&[2]);
        // df(1) = 1 despite three occurrences.
        assert!((idf.idf(1) - idf.idf(2)).abs() < 1e-12);
    }

    #[test]
    fn idf_is_monotone_in_rarity() {
        let mut idf = OnlineIdf::new();
        for i in 0..10 {
            let mut doc = vec![100u32];
            if i < 3 {
                doc.push(200);
            }
            idf.observe(&doc);
        }
        assert!(idf.idf(200) > idf.idf(100));
        assert!(idf.idf(999) >= idf.idf(200)); // unseen is rarest
    }

    #[test]
    fn weight_and_observe_is_causal() {
        let mut idf = OnlineIdf::new();
        let v1 = idf.weight_and_observe(&[1, 2]).unwrap();
        // The first document cannot be influenced by itself: uniform IDF.
        assert!((v1.get(1) - v1.get(2)).abs() < 1e-12);
        assert_eq!(idf.documents(), 1);
        assert_eq!(idf.vocabulary(), 2);
    }

    #[test]
    fn end_to_end_with_tokenizer() {
        let tok = Tokenizer::new();
        let mut idf = OnlineIdf::new();
        let docs = [
            "the market rallied today",
            "the market fell today",
            "a rare pangolin sighting",
        ];
        let vectors: Vec<_> = docs
            .iter()
            .map(|d| idf.weight_and_observe(&tok.token_ids(d)).unwrap())
            .collect();
        // Both market documents share most mass; the pangolin one is
        // nearly orthogonal to them.
        let sim_market = sssj_types::dot(&vectors[0], &vectors[1]);
        let sim_cross = sssj_types::dot(&vectors[0], &vectors[2]);
        assert!(sim_market > 0.3, "{sim_market}");
        assert!(sim_cross < 0.2, "{sim_cross}");
    }
}

//! Streaming Jaccard self-join with time-decayed similarity.

use std::collections::{HashMap, VecDeque};

use sssj_metrics::JoinStats;

use crate::set::{overlap, TokenId, TokenSet};

/// A timestamped token set flowing through the stream.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedSet {
    /// Unique record id (stream order).
    pub id: u64,
    /// Arrival time in seconds; must be non-decreasing along the stream.
    pub t: f64,
    /// The tokens.
    pub set: TokenSet,
}

impl TimedSet {
    /// Creates a timestamped set.
    pub fn new(id: u64, t: f64, set: TokenSet) -> Self {
        assert!(t.is_finite(), "timestamp must be finite: {t}");
        TimedSet { id, t, set }
    }
}

/// A reported pair: ids in arrival order plus the decayed Jaccard score.
pub type JaccardPair = (u64, u64, f64);

/// Brute-force oracle for the streaming, time-decayed Jaccard join:
/// every pair with `J(x, y)·e^{-λΔt} ≥ θ`.
pub fn brute_force_jaccard_stream(
    stream: &[TimedSet],
    theta: f64,
    lambda: f64,
) -> Vec<JaccardPair> {
    assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
    assert!(lambda > 0.0, "lambda must be positive");
    let tau = (1.0 / theta).ln() / lambda;
    let mut out = Vec::new();
    for (i, x) in stream.iter().enumerate() {
        for y in &stream[..i] {
            let dt = (x.t - y.t).abs();
            if dt > tau {
                continue;
            }
            let s = crate::set::jaccard(&x.set, &y.set) * (-lambda * dt).exp();
            if s >= theta {
                out.push((y.id, x.id, s));
            }
        }
    }
    out
}

/// STR for Jaccard: a single streaming prefix-filter index with time
/// filtering.
///
/// Posting lists hold `(id, t)` for prefix tokens in arrival order; a
/// probe scans them newest-first and truncates at the horizon, exactly
/// like STR-L2's lists. Candidates pass a *decay-adjusted* length filter
/// (`J ≥ θ·e^{λΔt}` is needed at gap `Δt`, which tightens the admissible
/// size ratio) before the early-exit merge verification.
///
/// ```
/// use sssj_textsim::{StreamingJaccard, TimedSet, TokenSet};
///
/// let mut join = StreamingJaccard::new(0.6, 0.1);
/// let mut out = Vec::new();
/// join.process(&TimedSet::new(0, 0.0, TokenSet::new(vec![1, 2, 3])), &mut out);
/// join.process(&TimedSet::new(1, 1.0, TokenSet::new(vec![1, 2, 3, 4])), &mut out);
/// assert_eq!(out.len(), 1); // J = 3/4, decayed ≈ 0.679 ≥ 0.6
/// ```
pub struct StreamingJaccard {
    theta: f64,
    lambda: f64,
    tau: f64,
    /// token → (id, t), time-ordered.
    lists: HashMap<TokenId, VecDeque<(u64, f64)>>,
    /// id → stored set + timestamp.
    store: HashMap<u64, (TokenSet, f64)>,
    /// Arrival order for store eviction.
    arrivals: VecDeque<(f64, u64)>,
    /// Per-query dedup: candidate id → query id it was last considered
    /// for.
    seen: HashMap<u64, u64>,
    stats: JoinStats,
    live_postings: u64,
}

impl StreamingJaccard {
    /// Creates the join; `λ > 0` so the horizon is finite.
    pub fn new(theta: f64, lambda: f64) -> Self {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "theta must be in (0, 1]: {theta}"
        );
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive and finite: {lambda}"
        );
        StreamingJaccard {
            theta,
            lambda,
            tau: (1.0 / theta).ln() / lambda,
            lists: HashMap::new(),
            store: HashMap::new(),
            arrivals: VecDeque::new(),
            seen: HashMap::new(),
            stats: JoinStats::new(),
            live_postings: 0,
        }
    }

    /// The time horizon `τ = ln(1/θ)/λ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Work counters.
    pub fn stats(&self) -> JoinStats {
        self.stats
    }

    /// Sets currently retained (inside the horizon).
    pub fn stored_sets(&self) -> usize {
        self.store.len()
    }

    /// Live posting entries.
    pub fn live_postings(&self) -> u64 {
        self.live_postings
    }

    fn evict(&mut self, now: f64) {
        while let Some(&(t, id)) = self.arrivals.front() {
            if now - t > self.tau {
                self.arrivals.pop_front();
                self.store.remove(&id);
            } else {
                break;
            }
        }
    }

    /// Processes one arrival, appending reported pairs to `out`.
    pub fn process(&mut self, record: &TimedSet, out: &mut Vec<JaccardPair>) {
        let now = record.t;
        self.evict(now);
        let x = &record.set;
        let prefix = x.prefix_len(self.theta);

        for &tok in &x.tokens()[..prefix] {
            let Some(list) = self.lists.get_mut(&tok) else {
                continue;
            };
            // Backward scan with horizon truncation (lists are
            // time-ordered: streaming insertion only ever appends).
            let mut cut = 0;
            for i in (0..list.len()).rev() {
                let (id, t) = list[i];
                let dt = now - t;
                if dt > self.tau {
                    cut = i + 1;
                    break;
                }
                self.stats.entries_traversed += 1;
                if self.seen.get(&id) == Some(&record.id) {
                    continue;
                }
                self.seen.insert(id, record.id);
                let Some((y, ty)) = self.store.get(&id) else {
                    continue;
                };
                // Decay-adjusted effective threshold at this gap.
                let df = (-self.lambda * (now - ty).max(0.0)).exp();
                let theta_eff = self.theta / df;
                if theta_eff > 1.0 {
                    continue; // cannot reach θ at this age
                }
                let (nx, ny) = (x.len(), y.len());
                if !crate::batch::length_compatible(theta_eff, nx, ny) {
                    continue;
                }
                self.stats.candidates += 1;
                let req = crate::batch::required_overlap(theta_eff, nx, ny);
                self.stats.full_sims += 1;
                if let Some(inter) = overlap(x, y, req) {
                    let s = inter as f64 / (nx + ny - inter) as f64 * df;
                    if s >= self.theta {
                        self.stats.pairs_output += 1;
                        out.push((id, record.id, s));
                    }
                }
            }
            if cut > 0 {
                for _ in 0..cut {
                    list.pop_front();
                }
                self.stats.entries_pruned += cut as u64;
                self.live_postings -= cut as u64;
            }
        }

        // Index the prefix tokens and store the full set.
        for &tok in &x.tokens()[..prefix] {
            self.lists
                .entry(tok)
                .or_default()
                .push_back((record.id, now));
            self.live_postings += 1;
            self.stats.postings_added += 1;
        }
        self.stats.residual_coords += x.len() as u64;
        self.store.insert(record.id, (x.clone(), now));
        self.arrivals.push_back((now, record.id));
        self.stats.observe_postings(self.live_postings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_stream(seed: u64, n: usize, vocab: u32, max_len: usize) -> Vec<TimedSet> {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        (0..n as u64)
            .map(|i| {
                t += rng.random_range(0.0..0.8);
                let set: TokenSet = (0..rng.random_range(1..=max_len))
                    .map(|_| rng.random_range(0..vocab))
                    .collect();
                TimedSet::new(i, t, set)
            })
            .collect()
    }

    fn run(join: &mut StreamingJaccard, stream: &[TimedSet]) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for r in stream {
            join.process(r, &mut out);
        }
        let mut keys: Vec<_> = out.iter().map(|&(a, b, _)| (a.min(b), a.max(b))).collect();
        keys.sort_unstable();
        keys
    }

    fn oracle_keys(stream: &[TimedSet], theta: f64, lambda: f64) -> Vec<(u64, u64)> {
        let mut keys: Vec<_> = brute_force_jaccard_stream(stream, theta, lambda)
            .iter()
            .map(|&(a, b, _)| (a.min(b), a.max(b)))
            .collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn matches_oracle_on_random_streams() {
        for seed in [1, 7, 23] {
            let stream = random_stream(seed, 200, 30, 10);
            for (theta, lambda) in [(0.5, 0.1), (0.7, 0.05), (0.9, 0.5)] {
                let mut join = StreamingJaccard::new(theta, lambda);
                assert_eq!(
                    run(&mut join, &stream),
                    oracle_keys(&stream, theta, lambda),
                    "seed={seed} θ={theta} λ={lambda}"
                );
            }
        }
    }

    #[test]
    fn decay_is_applied() {
        let stream = vec![
            TimedSet::new(0, 0.0, TokenSet::new(vec![1, 2])),
            TimedSet::new(1, 2.0, TokenSet::new(vec![1, 2])),
        ];
        let mut join = StreamingJaccard::new(0.5, 0.2);
        let mut out = Vec::new();
        for r in &stream {
            join.process(r, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert!((out[0].2 - (-0.4f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn horizon_evicts_sets_and_postings() {
        let mut join = StreamingJaccard::new(0.5, 1.0); // τ ≈ 0.69
        let mut out = Vec::new();
        for i in 0..40 {
            join.process(
                &TimedSet::new(i, i as f64 * 5.0, TokenSet::new(vec![1, 2, 3])),
                &mut out,
            );
        }
        assert!(out.is_empty());
        assert!(join.stored_sets() <= 2);
        assert!(join.live_postings() <= 4);
    }

    #[test]
    fn identical_sets_at_zero_gap_score_one() {
        let stream = vec![
            TimedSet::new(0, 1.0, TokenSet::new(vec![4, 5, 6])),
            TimedSet::new(1, 1.0, TokenSet::new(vec![4, 5, 6])),
        ];
        let mut join = StreamingJaccard::new(0.99, 0.1);
        let mut out = Vec::new();
        for r in &stream {
            join.process(r, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert!((out[0].2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_never_join() {
        let stream = vec![
            TimedSet::new(0, 0.0, TokenSet::default()),
            TimedSet::new(1, 0.1, TokenSet::default()),
            TimedSet::new(2, 0.2, TokenSet::new(vec![1])),
        ];
        let mut join = StreamingJaccard::new(0.5, 0.1);
        let mut out = Vec::new();
        for r in &stream {
            join.process(r, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn zero_lambda_rejected() {
        StreamingJaccard::new(0.5, 0.0);
    }
}

//! Text → token sets / weighted vectors.
//!
//! The paper's motivating applications (trend detection, near-duplicate
//! filtering of posts) start from raw text. This module provides the
//! missing front end: a deterministic hashing tokenizer that needs no
//! vocabulary pass — essential in a stream, where the vocabulary is
//! unbounded and ids must be stable from the first record.

use sssj_types::{SparseVector, SparseVectorBuilder, TypesError};

use crate::set::{TokenId, TokenSet};

/// SplitMix64, reused as the hashing vectorizer's hash.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic hashing tokenizer.
///
/// Lower-cases, splits on non-alphanumeric characters, optionally forms
/// word n-grams (shingles), and hashes each token into a bounded id
/// space (`buckets`). Hash collisions merge tokens — the standard
/// hashing-trick trade-off; with the default 2²⁰ buckets, collisions are
/// negligible at tweet/post scale.
///
/// ```
/// use sssj_textsim::Tokenizer;
///
/// let tok = Tokenizer::new();
/// let a = tok.token_set("The quick brown fox!");
/// let b = tok.token_set("the QUICK brown fox");
/// assert_eq!(a, b); // case and punctuation insensitive
/// assert_eq!(a.len(), 4);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Tokenizer {
    buckets: u32,
    seed: u64,
    /// Word n-gram size (1 = unigrams).
    shingle: usize,
}

impl Tokenizer {
    /// Unigrams hashed into 2²⁰ buckets.
    pub fn new() -> Self {
        Tokenizer {
            buckets: 1 << 20,
            seed: 0x7E87_51AE,
            shingle: 1,
        }
    }

    /// Sets the id-space size (≥ 2).
    pub fn with_buckets(mut self, buckets: u32) -> Self {
        assert!(buckets >= 2, "buckets must be at least 2: {buckets}");
        self.buckets = buckets;
        self
    }

    /// Sets the hash seed (different seeds give independent id spaces).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses word `n`-grams instead of single words (n ≥ 1). Shingling
    /// makes near-duplicate detection robust to word reordering being
    /// counted as similarity.
    pub fn with_shingles(mut self, n: usize) -> Self {
        assert!(n >= 1, "shingle size must be at least 1");
        self.shingle = n;
        self
    }

    fn hash_token(&self, parts: &[&str]) -> TokenId {
        let mut h = self.seed;
        for p in parts {
            for b in p.bytes() {
                h = splitmix64(h ^ b as u64);
            }
            h = splitmix64(h ^ 0x1F); // token separator
        }
        (h % self.buckets as u64) as TokenId
    }

    fn words(text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .map(|w| w.to_lowercase())
            .collect()
    }

    /// Token ids of a text, in occurrence order (duplicates preserved).
    pub fn token_ids(&self, text: &str) -> Vec<TokenId> {
        let words = Self::words(text);
        if words.len() < self.shingle {
            return Vec::new();
        }
        words
            .windows(self.shingle)
            .map(|w| {
                let parts: Vec<&str> = w.iter().map(String::as_str).collect();
                self.hash_token(&parts)
            })
            .collect()
    }

    /// The deduplicated [`TokenSet`] of a text (Jaccard-ready).
    pub fn token_set(&self, text: &str) -> TokenSet {
        TokenSet::new(self.token_ids(text))
    }

    /// A unit-normalised term-frequency vector (cosine-ready).
    ///
    /// Errors on texts with no tokens (all punctuation, or shorter than
    /// the shingle size).
    pub fn unit_vector(&self, text: &str) -> Result<SparseVector, TypesError> {
        let ids = self.token_ids(text);
        let mut b = SparseVectorBuilder::with_capacity(ids.len());
        for id in ids {
            b.push(id, 1.0); // builder sums duplicates → term frequency
        }
        b.build_normalized()
    }
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::jaccard;

    #[test]
    fn deterministic_and_normalising() {
        let tok = Tokenizer::new();
        assert_eq!(tok.token_set("Hello, World"), tok.token_set("hello world"));
        assert_eq!(tok.token_set("a--b..c"), tok.token_set("a b c"));
    }

    #[test]
    fn near_duplicates_score_high_unrelated_low() {
        let tok = Tokenizer::new();
        let a = tok.token_set("breaking news: the queen has arrived in paris today");
        let b = tok.token_set("Breaking news — the queen arrived in Paris today!");
        let c = tok.token_set("completely different subject matter entirely unrelated");
        assert!(
            jaccard(&a, &b) > 0.6,
            "near-duplicates: {}",
            jaccard(&a, &b)
        );
        assert!(jaccard(&a, &c) < 0.1, "unrelated: {}", jaccard(&a, &c));
    }

    #[test]
    fn shingles_distinguish_word_order() {
        let uni = Tokenizer::new();
        let bi = Tokenizer::new().with_shingles(2);
        let a = "the dog bit the man";
        let b = "the man bit the dog";
        assert_eq!(jaccard(&uni.token_set(a), &uni.token_set(b)), 1.0);
        assert!(jaccard(&bi.token_set(a), &bi.token_set(b)) < 1.0);
    }

    #[test]
    fn unit_vector_weights_by_frequency() {
        let tok = Tokenizer::new();
        let v = tok.unit_vector("spam spam spam ham").unwrap();
        assert_eq!(v.nnz(), 2);
        assert!((v.norm() - 1.0).abs() < 1e-12);
        // spam appears 3×, ham 1× → weights 3/√10 and 1/√10.
        assert!((v.max_weight() - 3.0 / 10f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_punctuation_only_texts() {
        let tok = Tokenizer::new();
        assert!(tok.token_set("").is_empty());
        assert!(tok.token_set("?!... --- ***").is_empty());
        assert!(tok.unit_vector("?!").is_err());
    }

    #[test]
    fn ids_stay_inside_bucket_space() {
        let tok = Tokenizer::new().with_buckets(128);
        for id in tok.token_ids("many different words to hash into a small space") {
            assert!(id < 128);
        }
    }

    #[test]
    fn different_seeds_give_different_spaces() {
        let a = Tokenizer::new().with_seed(1).token_set("hello world");
        let b = Tokenizer::new().with_seed(2).token_set("hello world");
        assert_ne!(a, b);
    }

    #[test]
    fn short_text_with_large_shingle_is_empty() {
        let tok = Tokenizer::new().with_shingles(3);
        assert!(tok.token_set("two words").is_empty());
        assert_eq!(tok.token_set("exactly three words").len(), 1);
    }

    #[test]
    fn unicode_words_are_tokens() {
        let tok = Tokenizer::new();
        let s = tok.token_set("café naïve 東京 2024");
        assert_eq!(s.len(), 4);
    }
}

#![warn(missing_docs)]
//! Set-similarity (Jaccard) self-join — batch and streaming.
//!
//! The paper's related work leans on the set-similarity join line
//! (Chaudhuri et al.'s SSJoin, Arasu et al., Xiao et al.'s
//! prefix-filtering near-duplicate joins); this crate brings that
//! semantics into the same streaming, time-decayed framework:
//!
//! ```text
//! J_Δt(x, y) = |x ∩ y| / |x ∪ y| · e^{-λ·|t(x) − t(y)|} ≥ θ
//! ```
//!
//! Because `J(x, y) ≤ 1`, the paper's *time-filtering* argument carries
//! over verbatim: nothing older than `τ = ln(1/θ)/λ` can join, so the
//! streaming index prunes exactly like STR does for cosine.
//!
//! The filtering stack is the classic one:
//!
//! * **prefix filter** — under a global token order, two sets with
//!   `J ≥ θ` must share a token among the first
//!   `|x| − ⌈θ·|x|⌉ + 1` tokens of each; only those are indexed/probed;
//! * **length filter** — `J(x, y) ≥ θ` forces
//!   `θ·|x| ≤ |y| ≤ |x|/θ`; applied per posting entry;
//! * **verification** — an early-exit merge intersection.
//!
//! Entry points: [`Tokenizer`] (text → tokens, hashing trick),
//! [`OnlineIdf`] (streaming TF–IDF weighting),
//! [`TokenSet`], [`jaccard`], [`batch_jaccard_join`] (static),
//! [`StreamingJaccard`] (the STR analogue) and
//! [`brute_force_jaccard_stream`] (the oracle).

pub mod batch;
pub mod set;
pub mod streaming;
pub mod tokenize;
pub mod weighting;

pub use batch::{batch_jaccard_join, brute_force_jaccard};
pub use set::{jaccard, overlap, TokenSet};
pub use streaming::{brute_force_jaccard_stream, StreamingJaccard, TimedSet};
pub use tokenize::Tokenizer;
pub use weighting::OnlineIdf;

//! Property tests: the filtered Jaccard joins (batch and streaming) must
//! equal their brute-force oracles on randomised inputs, across random
//! thresholds — including boundary-similarity cases.

use proptest::prelude::*;
use sssj_textsim::{
    batch_jaccard_join, brute_force_jaccard, brute_force_jaccard_stream, jaccard, StreamingJaccard,
    TimedSet, TokenSet,
};

fn sets_strategy(n: usize, vocab: u32, max_len: usize) -> impl Strategy<Value = Vec<TokenSet>> {
    proptest::collection::vec(
        proptest::collection::vec(0..vocab, 1..=max_len).prop_map(TokenSet::new),
        1..=n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_matches_brute_force(
        sets in sets_strategy(60, 25, 8),
        theta in 0.2f64..1.0,
    ) {
        let (fast, _) = batch_jaccard_join(&sets, theta);
        let fast_keys: Vec<(usize, usize)> = fast.iter().map(|&(a, b, _)| (a, b)).collect();
        let mut slow_keys: Vec<(usize, usize)> =
            brute_force_jaccard(&sets, theta).iter().map(|&(a, b, _)| (a, b)).collect();
        slow_keys.sort_unstable();
        prop_assert_eq!(fast_keys, slow_keys);
    }

    #[test]
    fn batch_similarities_are_exact(
        sets in sets_strategy(40, 20, 6),
        theta in 0.3f64..1.0,
    ) {
        let (pairs, _) = batch_jaccard_join(&sets, theta);
        for (a, b, s) in pairs {
            prop_assert!((s - jaccard(&sets[a], &sets[b])).abs() < 1e-12);
            prop_assert!(s >= theta);
        }
    }

    #[test]
    fn streaming_matches_oracle(
        sets in sets_strategy(50, 20, 6),
        gaps in proptest::collection::vec(0.0f64..2.0, 50),
        theta in 0.3f64..0.95,
        lambda in 0.02f64..0.5,
    ) {
        let mut t = 0.0;
        let stream: Vec<TimedSet> = sets
            .into_iter()
            .zip(gaps)
            .enumerate()
            .map(|(i, (set, gap))| {
                t += gap;
                TimedSet::new(i as u64, t, set)
            })
            .collect();
        let mut join = StreamingJaccard::new(theta, lambda);
        let mut got = Vec::new();
        for r in &stream {
            join.process(r, &mut got);
        }
        // Compare away from the θ boundary (decay makes boundary pairs
        // float-sensitive in either implementation).
        let robust = |pairs: &[(u64, u64, f64)]| {
            let mut keys: Vec<(u64, u64)> = pairs
                .iter()
                .filter(|p| (p.2 - theta).abs() > 1e-9)
                .map(|&(a, b, _)| (a.min(b), a.max(b)))
                .collect();
            keys.sort_unstable();
            keys
        };
        let oracle = brute_force_jaccard_stream(&stream, theta, lambda);
        prop_assert_eq!(robust(&got), robust(&oracle));
    }

    #[test]
    fn streaming_work_is_bounded_by_brute_force(
        sets in sets_strategy(40, 15, 5),
        theta in 0.5f64..0.95,
    ) {
        // The filtered join never verifies more pairs than the quadratic
        // count within the horizon.
        let stream: Vec<TimedSet> = sets
            .into_iter()
            .enumerate()
            .map(|(i, set)| TimedSet::new(i as u64, i as f64 * 0.1, set))
            .collect();
        let n = stream.len() as u64;
        let mut join = StreamingJaccard::new(theta, 0.01);
        let mut out = Vec::new();
        for r in &stream {
            join.process(r, &mut out);
        }
        prop_assert!(join.stats().full_sims <= n * (n - 1) / 2);
    }
}

//! Differential tests for candidate-aware sharded execution: for every
//! inner engine and shard count, the sharded pair set must equal the
//! sequential engine's pair set — routing may only skip shards that
//! cannot produce pairs, never drop one.

use proptest::prelude::*;
use sssj_core::{run_stream, DecayStreaming, JoinSpec, MiniBatch, SssjConfig, Streaming};
use sssj_index::IndexKind;
use sssj_lsh::{LshJoin, LshParams};
use sssj_parallel::{run_sharded, RoutingMode};
use sssj_types::{DecayModel, SimilarPair, SparseVectorBuilder, StreamRecord, Timestamp};

fn sorted_keys(pairs: &[SimilarPair]) -> Vec<(u64, u64)> {
    let mut keys: Vec<_> = pairs.iter().map(|p| p.key()).collect();
    keys.sort_unstable();
    keys
}

/// A clustered random stream: each record draws its dimensions from one
/// of `clusters` disjoint dimension ranges (plus occasional cross-cluster
/// noise), Zipf-ish over clusters. Disjoint clusters are what gives the
/// router shards to skip.
fn clustered_stream(seed: u64, n: usize, clusters: u32) -> Vec<StreamRecord> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n as u64)
        .map(|i| {
            t += rng.random_range(0.0..0.4);
            // Zipf-ish cluster choice: squaring a uniform skews low.
            let u: f64 = rng.random_range(0.0..1.0);
            let cluster = ((u * u) * clusters as f64) as u32;
            let base = cluster * 32;
            let entries: Vec<(u32, f64)> = (0..rng.random_range(1..6))
                .map(|_| {
                    let dim = if rng.random_range(0.0..1.0) < 0.05 {
                        rng.random_range(0..clusters * 32) // cross-cluster noise
                    } else {
                        base + rng.random_range(0..12u32)
                    };
                    (dim, rng.random_range(0.1..1.0))
                })
                .collect();
            let mut b = SparseVectorBuilder::with_capacity(entries.len());
            for (d, w) in entries {
                b.push(d, w);
            }
            StreamRecord::new(i, Timestamp::new(t), b.build_normalized().unwrap())
        })
        .collect()
}

fn run_spec(
    spec: &str,
    stream: &[StreamRecord],
    mode: RoutingMode,
) -> sssj_parallel::ShardedOutput {
    sssj_lsh::register_spec_builder(); // inner=lsh workers
    let spec: JoinSpec = spec.parse().unwrap_or_else(|e| panic!("{spec}: {e}"));
    run_sharded(stream, &spec, mode).unwrap_or_else(|e| panic!("{spec:?}: {e}"))
}

#[test]
fn routed_str_matches_sequential_across_shards_and_indexes() {
    let stream = clustered_stream(11, 600, 8);
    for kind in ["l2", "inv"] {
        let index = IndexKind::parse(kind).unwrap();
        let mut seq = Streaming::new(SssjConfig::new(0.6, 0.1), index);
        let expected = sorted_keys(&run_stream(&mut seq, &stream));
        for shards in [1usize, 2, 4] {
            let spec = format!("sharded?theta=0.6&lambda=0.1&shards={shards}&inner=str-{kind}");
            let out = run_spec(&spec, &stream, RoutingMode::CandidateAware);
            assert_eq!(sorted_keys(&out.pairs), expected, "{spec}");
            assert!(out.report.candidate_aware, "{spec}");
        }
    }
}

#[test]
fn routed_str_l2ap_reindexing_survives_partial_m() {
    // The AP path is the delicate one: per-shard max vectors are smaller
    // than the sequential one (skipped queries never raise them), and
    // correctness relies on the query-time m update + re-index.
    let stream = clustered_stream(13, 500, 6);
    let mut seq = Streaming::new(SssjConfig::new(0.55, 0.1), IndexKind::L2ap);
    let expected = sorted_keys(&run_stream(&mut seq, &stream));
    for shards in [2usize, 4] {
        let spec = format!("sharded?theta=0.55&lambda=0.1&shards={shards}&inner=str-l2ap");
        let out = run_spec(&spec, &stream, RoutingMode::CandidateAware);
        assert_eq!(sorted_keys(&out.pairs), expected, "{spec}");
    }
}

#[test]
fn routed_mb_matches_sequential() {
    let stream = clustered_stream(17, 500, 8);
    let mut seq = MiniBatch::new(SssjConfig::new(0.6, 0.1), IndexKind::L2);
    let expected = sorted_keys(&run_stream(&mut seq, &stream));
    for shards in [1usize, 2, 4] {
        let spec = format!("sharded?theta=0.6&lambda=0.1&shards={shards}&inner=mb-l2");
        let out = run_spec(&spec, &stream, RoutingMode::CandidateAware);
        assert_eq!(sorted_keys(&out.pairs), expected, "{spec}");
    }
}

#[test]
fn routed_decay_matches_sequential() {
    let stream = clustered_stream(19, 400, 8);
    let mut seq = DecayStreaming::new(0.6, DecayModel::sliding_window(5.0));
    let expected = sorted_keys(&run_stream(&mut seq, &stream));
    for shards in [2usize, 4] {
        let spec = format!("sharded?theta=0.6&shards={shards}&inner=decay&model=window:5");
        let out = run_spec(&spec, &stream, RoutingMode::CandidateAware);
        assert_eq!(sorted_keys(&out.pairs), expected, "{spec}");
    }
}

#[test]
fn lsh_inner_falls_back_to_broadcast_and_matches_sequential() {
    let stream = clustered_stream(23, 400, 4);
    let mut seq = LshJoin::new(0.6, 0.1, LshParams::default());
    let expected = sorted_keys(&run_stream(&mut seq, &stream));
    for shards in [1usize, 3] {
        let spec = format!("sharded?theta=0.6&lambda=0.1&shards={shards}&inner=lsh");
        // CandidateAware was *requested*, but the LSH worker exposes no
        // dimension occupancy: the driver must broadcast.
        let out = run_spec(&spec, &stream, RoutingMode::CandidateAware);
        assert!(!out.report.candidate_aware, "{spec}: must fall back");
        assert_eq!(out.report.skipped_sends, 0, "{spec}");
        assert_eq!(sorted_keys(&out.pairs), expected, "{spec}");
    }
}

#[test]
fn delivery_balancing_does_not_regress_the_hottest_shard() {
    // PR-3 open item: two-choice owner balancing compared *insert*
    // counts, blind to the query traffic hot dimension slices attract.
    // Balancing on *delivery* counts (queries included) must not make
    // the hottest shard's share worse — on a Zipfian clustered stream it
    // should shave it.
    use sssj_parallel::Router;
    let stream = clustered_stream(31, 4000, 12);
    let hottest_share = |mut router: Router| -> f64 {
        let mut total = 0u64;
        for r in &stream {
            let (mask, _) = router.route(r);
            total += mask.count_ones() as u64;
        }
        *router.delivered().iter().max().unwrap() as f64 / total as f64
    };
    let insert_balanced = hottest_share(Router::new(4, Some(5.0)).with_insert_balancing());
    let delivery_balanced = hottest_share(Router::new(4, Some(5.0)));
    assert!(
        delivery_balanced <= insert_balanced + 1e-9,
        "hottest-shard delivery share regressed: {delivery_balanced:.4} (delivery-balanced) \
         vs {insert_balanced:.4} (insert-balanced)"
    );
}

#[test]
fn epoch_occupancy_skip_rate_tracks_the_exact_stamp_oracle() {
    // PR-3 open item closed this PR: the per-(dim, shard) f32 stamp
    // table (vocab × shards × 4 B, never shrinking) became
    // epoch-rotated, hash-bounded bit-planes. The new table may only
    // *over*-approximate occupancy (sub-epoch granularity + row-hash
    // collisions), so (a) its mask must be a superset of the exact
    // answer — no pair can be lost — and (b) the skip rate must stay
    // within a few percent of an exact-stamp oracle, or routing has
    // regressed into broadcast.
    use sssj_parallel::Router;
    let horizon = 5.0;
    let shards = 4usize;
    let stream = clustered_stream(37, 3000, 10);
    let mut router = Router::new(shards, Some(horizon));
    // The oracle replays the router's own ownership decisions against
    // full-precision per-(dim, shard) stamps.
    let mut exact: std::collections::HashMap<(u32, usize), f64> = std::collections::HashMap::new();
    let (mut epoch_skip, mut exact_skip) = (0u64, 0u64);
    for r in &stream {
        let (mask, owner) = router.route(r);
        let now = r.t.seconds();
        let mut exact_mask = 1u64 << owner;
        for &dim in r.vector.dims() {
            for w in 0..shards {
                if let Some(&t) = exact.get(&(dim, w)) {
                    if now - t <= horizon {
                        exact_mask |= 1 << w;
                    }
                }
            }
        }
        for &dim in r.vector.dims() {
            exact.insert((dim, owner), now);
        }
        assert_eq!(
            mask & exact_mask,
            exact_mask,
            "epoch mask dropped a shard the exact oracle routes to (id {})",
            r.id
        );
        epoch_skip += shards as u64 - mask.count_ones() as u64;
        exact_skip += shards as u64 - exact_mask.count_ones() as u64;
    }
    let possible = (stream.len() * shards) as f64;
    let (epoch_rate, exact_rate) = (epoch_skip as f64 / possible, exact_skip as f64 / possible);
    assert!(
        exact_rate > 0.05,
        "workload sanity: the oracle itself must skip ({exact_rate:.3})"
    );
    assert!(
        epoch_rate >= exact_rate - 0.05,
        "skip-rate regression: epoch-rotated {epoch_rate:.3} vs exact {exact_rate:.3}"
    );
}

#[test]
fn zipfian_clusters_produce_a_positive_skip_rate() {
    // The acceptance property behind `--shard-stats`: on a clustered
    // (Zipfian) dimension stream, routing must actually avoid deliveries.
    let stream = clustered_stream(29, 800, 8);
    let out = run_spec(
        "sharded?theta=0.6&lambda=0.5&shards=4&inner=str-l2",
        &stream,
        RoutingMode::CandidateAware,
    );
    assert!(
        out.report.skip_rate() > 0.0,
        "skip rate {} on a clustered stream",
        out.report.skip_rate()
    );
    // Sanity: every (record, shard) slot is either delivered or skipped.
    let delivered: u64 = out.report.per_shard.iter().map(|l| l.routed).sum();
    assert_eq!(
        delivered + out.report.skipped_sends,
        out.report.records * out.report.per_shard.len() as u64
    );
}

/// The proptest half: random streams, random θ/λ, both routing modes,
/// shard counts {1, 2, 4}, STR-L2 and STR-INV inners — always the
/// sequential pair set.
fn stream_strategy() -> impl Strategy<Value = Vec<StreamRecord>> {
    proptest::collection::vec(
        (
            0.0f64..0.6,                                               // arrival gap
            proptest::collection::vec((0u32..24, 0.05f64..1.0), 1..5), // coords
        ),
        1..100,
    )
    .prop_map(|raw| {
        let mut t = 0.0;
        raw.into_iter()
            .enumerate()
            .filter_map(|(i, (gap, coords))| {
                t += gap;
                let mut b = SparseVectorBuilder::with_capacity(coords.len());
                for (d, w) in coords {
                    b.push(d, w);
                }
                let v = b.build_normalized().ok()?;
                Some(StreamRecord::new(i as u64, Timestamp::new(t), v))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_output_is_set_equal_to_sequential(
        records in stream_strategy(),
        theta in 0.3f64..0.9,
        lambda in 0.05f64..1.0,
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
        kind in prop_oneof![Just(IndexKind::L2), Just(IndexKind::Inv)],
        mode in prop_oneof![Just(RoutingMode::CandidateAware), Just(RoutingMode::Broadcast)],
    ) {
        let mut seq = Streaming::new(SssjConfig::new(theta, lambda), kind);
        let expected = sorted_keys(&run_stream(&mut seq, &records));
        let spec = format!(
            "sharded?theta={theta}&lambda={lambda}&shards={shards}&inner=str-{}",
            kind.to_string().to_ascii_lowercase()
        );
        let out = run_spec(&spec, &records, mode);
        prop_assert_eq!(sorted_keys(&out.pairs), expected, "{} mode={:?}", spec, mode);
    }
}

//! Broadcast-query / partition-insert sharding.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{bounded, Receiver, Sender};

use sssj_core::{SssjConfig, StreamJoin, Streaming};
use sssj_index::IndexKind;
use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord, VectorId};

/// Channel depth per shard: enough to keep workers busy, small enough
/// that a slow shard exerts backpressure instead of buffering the stream.
const CHANNEL_DEPTH: usize = 256;

/// Which shard owns (inserts) a record. Fibonacci hashing spreads
/// sequential ids evenly.
#[inline]
fn owner(id: VectorId, shards: usize) -> usize {
    (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards
}

/// The result of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardedOutput {
    /// All similar pairs (unsorted; shard interleaving is
    /// nondeterministic).
    pub pairs: Vec<SimilarPair>,
    /// Work counters summed over shards.
    pub stats: JoinStats,
    /// Per-shard counters, for load-balance inspection.
    pub per_shard: Vec<JoinStats>,
}

/// Runs the full stream through `shards` worker threads and returns the
/// combined output. Equivalent to the sequential STR join up to output
/// order.
///
/// ```
/// use sssj_core::SssjConfig;
/// use sssj_index::IndexKind;
/// use sssj_parallel::sharded_run;
/// use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};
///
/// let stream: Vec<StreamRecord> = (0..4)
///     .map(|i| StreamRecord::new(i, Timestamp::new(i as f64), unit_vector(&[(1, 1.0)])))
///     .collect();
/// let out = sharded_run(&stream, SssjConfig::new(0.5, 0.1), IndexKind::L2, 2);
/// assert_eq!(out.pairs.len(), 6); // identical vectors, τ ≈ 6.9 covers all
/// ```
pub fn sharded_run(
    stream: &[StreamRecord],
    config: SssjConfig,
    kind: IndexKind,
    shards: usize,
) -> ShardedOutput {
    assert!(shards > 0, "shards must be positive");
    std::thread::scope(|scope| {
        let mut senders: Vec<Sender<&StreamRecord>> = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for w in 0..shards {
            let (tx, rx) = bounded::<&StreamRecord>(CHANNEL_DEPTH);
            senders.push(tx);
            handles.push(scope.spawn(move || {
                let mut join = Streaming::new(config, kind);
                let mut pairs = Vec::new();
                for record in rx {
                    join.query(record, &mut pairs);
                    if owner(record.id, shards) == w {
                        join.insert_record(record);
                    }
                }
                (pairs, join.stats())
            }));
        }
        for record in stream {
            for tx in &senders {
                tx.send(record).expect("worker alive while sending");
            }
        }
        drop(senders);
        let mut pairs = Vec::new();
        let mut per_shard = Vec::with_capacity(shards);
        let mut stats = JoinStats::new();
        for h in handles {
            let (p, s) = h.join().expect("worker panicked");
            pairs.extend(p);
            stats += s;
            per_shard.push(s);
        }
        ShardedOutput {
            pairs,
            stats,
            per_shard,
        }
    })
}

/// Message from the driver to a worker.
enum Msg {
    Record(Arc<StreamRecord>),
}

/// Per-worker return value.
struct WorkerResult {
    stats: JoinStats,
}

/// An incremental sharded join implementing [`StreamJoin`].
///
/// [`ShardedJoin::process`] broadcasts the record to all workers over
/// bounded channels (applying backpressure when a shard lags) and drains
/// any pairs workers have produced so far; [`ShardedJoin::finish`] joins
/// the workers and drains the rest. Pair arrival order across shards is
/// nondeterministic; within one shard it follows stream order.
pub struct ShardedJoin {
    kind: IndexKind,
    shards: usize,
    senders: Vec<Sender<Msg>>,
    pair_rx: Receiver<Vec<SimilarPair>>,
    handles: Vec<JoinHandle<WorkerResult>>,
    live: Vec<Arc<AtomicU64>>,
    /// Pairs surfaced so far (until `finish`, the only live counter).
    pairs_seen: u64,
    /// Summed worker stats, filled in by `finish`.
    final_stats: Option<JoinStats>,
}

impl ShardedJoin {
    /// Spawns `shards` worker threads for the given configuration.
    pub fn new(config: SssjConfig, kind: IndexKind, shards: usize) -> Self {
        assert!(shards > 0, "shards must be positive");
        let (pair_tx, pair_rx) = bounded::<Vec<SimilarPair>>(CHANNEL_DEPTH);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut live = Vec::with_capacity(shards);
        for w in 0..shards {
            let (tx, rx) = bounded::<Msg>(CHANNEL_DEPTH);
            senders.push(tx);
            let pair_tx = pair_tx.clone();
            let live_ctr = Arc::new(AtomicU64::new(0));
            live.push(Arc::clone(&live_ctr));
            handles.push(std::thread::spawn(move || {
                let mut join = Streaming::new(config, kind);
                let mut out = Vec::new();
                for Msg::Record(record) in rx {
                    join.query(&record, &mut out);
                    if owner(record.id, shards) == w {
                        join.insert_record(&record);
                    }
                    live_ctr.store(join.live_postings(), Ordering::Relaxed);
                    if !out.is_empty() {
                        pair_tx
                            .send(std::mem::take(&mut out))
                            .expect("driver alive");
                    }
                }
                WorkerResult {
                    stats: join.stats(),
                }
            }));
        }
        ShardedJoin {
            kind,
            shards,
            senders,
            pair_rx,
            handles,
            live,
            pairs_seen: 0,
            final_stats: None,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    fn drain_ready(&mut self, out: &mut Vec<SimilarPair>) {
        while let Ok(batch) = self.pair_rx.try_recv() {
            self.pairs_seen += batch.len() as u64;
            out.extend(batch);
        }
    }
}

impl StreamJoin for ShardedJoin {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        assert!(self.final_stats.is_none(), "process called after finish");
        let record = Arc::new(record.clone());
        for tx in &self.senders {
            tx.send(Msg::Record(Arc::clone(&record)))
                .expect("worker alive");
        }
        self.drain_ready(out);
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        if self.final_stats.is_some() {
            return;
        }
        self.senders.clear(); // closes worker inboxes
        let mut stats = JoinStats::new();
        for h in self.handles.drain(..) {
            let r = h.join().expect("worker panicked");
            stats += r.stats;
        }
        // Workers have exited; the pair channel can no longer grow.
        while let Ok(batch) = self.pair_rx.try_recv() {
            self.pairs_seen += batch.len() as u64;
            out.extend(batch);
        }
        self.final_stats = Some(stats);
    }

    fn stats(&self) -> JoinStats {
        match self.final_stats {
            Some(s) => s,
            None => {
                // Before finish, only the surfaced-pair count is known
                // without synchronising with workers.
                let mut s = JoinStats::new();
                s.pairs_output = self.pairs_seen;
                s
            }
        }
    }

    fn live_postings(&self) -> u64 {
        self.live.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    fn name(&self) -> String {
        format!("STR-{}x{}", self.kind, self.shards)
    }
}

impl Drop for ShardedJoin {
    fn drop(&mut self) {
        // Abandon politely: close inboxes and let workers run down.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_core::run_stream;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn rec(id: u64, t: f64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::new(t), unit_vector(entries))
    }

    fn random_stream(seed: u64, n: usize) -> Vec<StreamRecord> {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        (0..n as u64)
            .map(|i| {
                t += rng.random_range(0.0..0.5);
                let entries: Vec<(u32, f64)> = (0..rng.random_range(1..6))
                    .map(|_| (rng.random_range(0..20u32), rng.random_range(0.1..1.0)))
                    .collect();
                rec(i, t, &entries)
            })
            .collect()
    }

    fn sorted_keys(pairs: &[SimilarPair]) -> Vec<(u64, u64)> {
        let mut keys: Vec<_> = pairs.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn sharded_run_matches_sequential() {
        let stream = random_stream(1, 400);
        let config = SssjConfig::new(0.6, 0.1);
        let mut seq = Streaming::new(config, IndexKind::L2);
        let expected = sorted_keys(&run_stream(&mut seq, &stream));
        for shards in [1, 2, 3, 8] {
            let out = sharded_run(&stream, config, IndexKind::L2, shards);
            assert_eq!(sorted_keys(&out.pairs), expected, "shards={shards}");
        }
    }

    #[test]
    fn sharded_run_matches_sequential_for_all_kinds() {
        let stream = random_stream(2, 200);
        let config = SssjConfig::new(0.5, 0.2);
        for kind in IndexKind::ALL {
            let mut seq = Streaming::new(config, kind);
            let expected = sorted_keys(&run_stream(&mut seq, &stream));
            let out = sharded_run(&stream, config, kind, 4);
            assert_eq!(sorted_keys(&out.pairs), expected, "{kind}");
        }
    }

    #[test]
    fn incremental_join_matches_sequential() {
        let stream = random_stream(3, 300);
        let config = SssjConfig::new(0.6, 0.1);
        let mut seq = Streaming::new(config, IndexKind::L2);
        let expected = sorted_keys(&run_stream(&mut seq, &stream));
        let mut sharded = ShardedJoin::new(config, IndexKind::L2, 3);
        let got = run_stream(&mut sharded, &stream);
        assert_eq!(sorted_keys(&got), expected);
        assert_eq!(sharded.stats().pairs_output as usize, got.len());
    }

    #[test]
    fn single_shard_equals_sequential_stats() {
        let stream = random_stream(4, 150);
        let config = SssjConfig::new(0.7, 0.1);
        let mut seq = Streaming::new(config, IndexKind::L2);
        run_stream(&mut seq, &stream);
        let out = sharded_run(&stream, config, IndexKind::L2, 1);
        assert_eq!(out.stats.entries_traversed, seq.stats().entries_traversed);
        assert_eq!(out.stats.pairs_output, seq.stats().pairs_output);
    }

    #[test]
    fn insertion_is_partitioned() {
        let stream = random_stream(5, 300);
        let out = sharded_run(&stream, SssjConfig::new(0.6, 0.1), IndexKind::L2, 4);
        let total: u64 = out.per_shard.iter().map(|s| s.postings_added).sum();
        let mut seq = Streaming::new(SssjConfig::new(0.6, 0.1), IndexKind::L2);
        run_stream(&mut seq, &stream);
        assert_eq!(total, seq.stats().postings_added);
        // No shard holds everything (hash spread).
        for s in &out.per_shard {
            assert!(s.postings_added < total);
        }
    }

    #[test]
    fn empty_stream_is_fine() {
        let out = sharded_run(&[], SssjConfig::new(0.5, 0.1), IndexKind::L2, 2);
        assert!(out.pairs.is_empty());
        let mut j = ShardedJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2, 2);
        let mut buf = Vec::new();
        j.finish(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn finish_is_idempotent_and_drop_safe() {
        let mut j = ShardedJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2, 2);
        let mut buf = Vec::new();
        j.process(&rec(0, 0.0, &[(1, 1.0)]), &mut buf);
        j.finish(&mut buf);
        j.finish(&mut buf);
        drop(j);
        // And dropping an unfinished join must not hang or panic.
        let j2 = ShardedJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2, 2);
        drop(j2);
    }

    #[test]
    fn name_reports_topology() {
        let j = ShardedJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2, 4);
        assert_eq!(j.name(), "STR-L2x4");
    }

    #[test]
    #[should_panic(expected = "shards must be positive")]
    fn zero_shards_rejected() {
        sharded_run(&[], SssjConfig::new(0.5, 0.1), IndexKind::L2, 0);
    }
}

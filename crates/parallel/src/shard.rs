//! The sharded driver: batched channels, routed workers, load reporting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender};

use sssj_core::{
    read_max_aux, run_stream, write_max_aux, Checkpointable, EngineSpec, JoinSpec, ShardedInner,
    SpecError, SssjConfig, StreamJoin,
};
use sssj_index::IndexKind;
use sssj_metrics::registry::{Counter, Gauge, Registry};
use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord};

use crate::router::Router;

/// Per-driver registry handles: one delivery counter and inbox-depth
/// gauge per shard (labelled `shard="<w>"` — cardinality is the shard
/// count, well inside the label budget) plus the routing skip counter.
/// Depth gauges are sampled at batch-flush time, so they cost one
/// channel-lock peek per 64 records, not per record.
struct ShardMetrics {
    deliveries: Vec<&'static Counter>,
    inbox_depth: Vec<&'static Gauge>,
    skipped: &'static Counter,
}

impl ShardMetrics {
    fn new(shards: usize) -> ShardMetrics {
        let reg = Registry::global();
        let mut deliveries = Vec::with_capacity(shards);
        let mut inbox_depth = Vec::with_capacity(shards);
        for w in 0..shards {
            let idx = w.to_string();
            let labels: &[(&str, &str)] = &[("shard", &idx)];
            deliveries.push(reg.counter_with(
                "sssj_parallel_deliveries_total",
                "records delivered to this shard (owned + routed queries)",
                labels,
            ));
            inbox_depth.push(reg.gauge_with(
                "sssj_parallel_inbox_depth",
                "batches queued in this shard's inbox, sampled at flush",
                labels,
            ));
        }
        ShardMetrics {
            deliveries,
            inbox_depth,
            skipped: reg.counter(
                "sssj_parallel_skipped_sends_total",
                "(record, shard) deliveries candidate-aware routing avoided",
            ),
        }
    }
}

/// Records accumulated per channel message: one `Arc` clone + send per
/// shard *per batch* instead of per record amortises the channel layer
/// 64-fold on the insert path.
const BATCH_RECORDS: usize = 64;

/// Worker-inbox depth in batches: enough to keep workers busy, small
/// enough that a slow shard exerts backpressure instead of buffering the
/// stream.
const INBOX_DEPTH: usize = 128;

/// How long a partial batch may age before the next `process` call
/// flushes it anyway — bounds pair latency for trickle streams
/// (interactive sessions) without costing the hot path its batching.
const BATCH_LATENCY: Duration = Duration::from_millis(5);

/// Whether the driver consults the dimension-occupancy table or sends
/// every record to every shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingMode {
    /// Route queries only to shards that can hold candidates (the
    /// default). Falls back to broadcast when the inner engine exposes no
    /// dimension information (LSH).
    CandidateAware,
    /// Send every record to every shard — the pre-routing behaviour, kept
    /// for A/B measurement.
    Broadcast,
}

/// One batch of routed records, shared by `Arc` across the shards it
/// touches. `routes[i]` is the delivery bitmask and owner shard of
/// `records[i]`; a worker skips records whose mask bit it does not hold.
/// `traces[i]` carries the driver thread's trace id at enqueue time
/// across the thread hop, so a worker's `shard.record` spans stitch
/// into the originating request's trace (all zeros — one shared empty
/// signal — when tracing is off or no request scope was active).
struct Batch {
    records: Vec<StreamRecord>,
    routes: Vec<(u64, u8)>,
    traces: Vec<u64>,
}

impl Batch {
    fn empty() -> Self {
        Batch {
            records: Vec::with_capacity(BATCH_RECORDS),
            routes: Vec::with_capacity(BATCH_RECORDS),
            traces: Vec::with_capacity(BATCH_RECORDS),
        }
    }
}

/// One worker-inbox message. The inbox is FIFO, so a control message is
/// handled after every batch sent before it — which is exactly what
/// makes the checkpoint cut consistent: the reply covers all records
/// delivered up to the batch boundary the driver flushed, and nothing
/// after.
enum ShardMsg {
    /// A batch of routed records.
    Batch(Arc<Batch>),
    /// Checkpoint barrier: reply with this worker's aux blob
    /// ([`sssj_core::ShardableJoin::checkpoint_aux`]) once everything
    /// delivered before this message has been processed.
    Checkpoint(Sender<Vec<u8>>),
    /// Seed merged aux state into the worker (recovery path, sent before
    /// any batch).
    Seed(Arc<Vec<u8>>),
}

/// Per-shard load figures, reported by [`ShardedJoin::shard_report`].
#[derive(Clone, Copy, Debug)]
pub struct ShardLoad {
    /// Records delivered to this shard (owned + routed queries).
    pub routed: u64,
    /// The shard's work counters.
    pub stats: JoinStats,
}

/// The load-balance and routing report of a finished sharded run.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Work counters summed over shards.
    pub stats: JoinStats,
    /// Per-shard load.
    pub per_shard: Vec<ShardLoad>,
    /// Records processed.
    pub records: u64,
    /// Query sends avoided by routing (records × shards skipped).
    pub skipped_sends: u64,
    /// Whether routing was candidate-aware (false = broadcast, either by
    /// request or because the inner engine exposes no dimensions).
    pub candidate_aware: bool,
}

impl ShardReport {
    /// The fraction of (record, shard) deliveries routing avoided.
    pub fn skip_rate(&self) -> f64 {
        let possible = self.records * self.per_shard.len() as u64;
        if possible == 0 {
            0.0
        } else {
            self.skipped_sends as f64 / possible as f64
        }
    }
}

/// The result of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardedOutput {
    /// All similar pairs (unsorted; shard interleaving is
    /// nondeterministic).
    pub pairs: Vec<SimilarPair>,
    /// Work counters summed over shards.
    pub stats: JoinStats,
    /// Per-shard counters, for load-balance inspection.
    pub per_shard: Vec<JoinStats>,
    /// Routing and load-balance detail.
    pub report: ShardReport,
}

/// An incremental sharded join implementing [`StreamJoin`].
///
/// The driver routes each record (see [`Router`]), accumulates routed
/// records into 64-record batches and sends one
/// `Arc<Batch>` per touched shard over bounded channels (backpressure
/// when a shard lags); workers drain batches, query with every delivered
/// record, insert the ones they own, and hand pairs back in batches.
/// Pair arrival order across shards is nondeterministic; within one
/// shard it follows stream order. Pairs may surface as late as
/// [`StreamJoin::finish`].
pub struct ShardedJoin {
    spec: JoinSpec,
    shards: usize,
    router: Router,
    pending: Batch,
    /// When the oldest record of `pending` arrived (latency flush).
    pending_since: Instant,
    senders: Vec<Sender<ShardMsg>>,
    pair_rx: Receiver<Vec<SimilarPair>>,
    handles: Vec<JoinHandle<JoinStats>>,
    live: Vec<Arc<AtomicU64>>,
    /// Records delivered per shard, counted at send time.
    routed: Vec<u64>,
    metrics: ShardMetrics,
    /// Pairs surfaced so far (until `finish`, the only live counter).
    pairs_seen: u64,
    /// Filled in by `finish`.
    report: Option<ShardReport>,
}

impl ShardedJoin {
    /// Spawns `shards` STR workers for the given configuration — the
    /// classic sharded STR join, with candidate-aware routing.
    pub fn new(config: SssjConfig, kind: IndexKind, shards: usize) -> Self {
        assert!(shards > 0, "shards must be positive");
        let spec = JoinSpec::new(config.theta, config.lambda)
            .with_engine(EngineSpec::Sharded {
                shards: shards as u32,
                inner: ShardedInner::Streaming,
            })
            .with_index(kind);
        Self::with_mode(&spec, RoutingMode::CandidateAware)
            .unwrap_or_else(|e| panic!("sharded STR spec: {e}"))
    }

    /// Builds the sharded join a `sharded?…` spec describes, with
    /// candidate-aware routing. This is what the spec factory calls.
    pub fn from_spec(spec: &JoinSpec) -> Result<Self, SpecError> {
        Self::with_mode(spec, RoutingMode::CandidateAware)
    }

    /// Builds the sharded join with an explicit [`RoutingMode`] (the
    /// broadcast mode exists for A/B measurement).
    pub fn with_mode(spec: &JoinSpec, mode: RoutingMode) -> Result<Self, SpecError> {
        // Specs can be built field-by-field, so validate before using any
        // parameter (a zero shard count must come back as an error, not
        // as a panic below).
        spec.validate()?;
        let EngineSpec::Sharded { shards, .. } = spec.engine else {
            return Err(SpecError::Invalid(format!(
                "ShardedJoin requires a sharded spec, got engine {:?}",
                spec.engine.keyword()
            )));
        };
        let shards = shards as usize;
        // Build every worker on the driver thread first: an invalid spec
        // or unregistered inner engine surfaces here as an error, never as
        // a worker-thread panic.
        let workers: Vec<_> = (0..shards)
            .map(|_| spec.build_shard_worker())
            .collect::<Result<_, _>>()?;
        let horizon = match mode {
            RoutingMode::Broadcast => None,
            RoutingMode::CandidateAware => workers[0].occupancy_horizon(),
        };
        let mut router = Router::new(shards, horizon);
        // Pure-ℓ2 inners (index-construction bound depends on the vector
        // alone, never on stream maxima) can restrict occupancy to the
        // coordinates the workers actually index: the hot head-of-Zipf
        // dimensions sit in the unindexed prefix and would otherwise
        // light up every shard.
        if horizon.is_some() {
            let EngineSpec::Sharded { inner, .. } = &spec.engine else {
                unreachable!("checked above");
            };
            let pure_l2 = match inner {
                ShardedInner::Streaming => spec.index == IndexKind::L2,
                ShardedInner::GenericDecay(_) => true,
                ShardedInner::MiniBatch | ShardedInner::Lsh(_) => false,
            };
            if pure_l2 {
                router = router.with_suffix_occupancy(spec.theta);
            }
        }
        // Worker w sends at most one pair batch per inbox batch plus one
        // tail flush, so this capacity means workers never block on the
        // pair channel while the driver lives — no send/send deadlock.
        let (pair_tx, pair_rx) = bounded::<Vec<SimilarPair>>(shards * (INBOX_DEPTH + 2));
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut live = Vec::with_capacity(shards);
        for (w, mut join) in workers.into_iter().enumerate() {
            let (tx, rx) = bounded::<ShardMsg>(INBOX_DEPTH);
            senders.push(tx);
            let pair_tx = pair_tx.clone();
            let live_ctr = Arc::new(AtomicU64::new(0));
            live.push(Arc::clone(&live_ctr));
            handles.push(std::thread::spawn(move || {
                let mut out = Vec::new();
                let bit = 1u64 << w;
                for msg in rx {
                    let batch = match msg {
                        ShardMsg::Batch(batch) => batch,
                        ShardMsg::Checkpoint(ack) => {
                            // Pairs found by earlier batches were already
                            // sent per batch; reply with the aux state of
                            // everything processed so far. The driver
                            // validated any seed blob, so encoding here
                            // cannot fail.
                            let mut aux = Vec::new();
                            join.checkpoint_aux(&mut aux);
                            let _ = ack.send(aux);
                            continue;
                        }
                        ShardMsg::Seed(bytes) => {
                            // The driver validates the merged blob before
                            // broadcasting; a decode failure here would
                            // mean driver/worker disagree on the format.
                            join.seed_checkpoint_aux(&bytes)
                                .expect("driver-validated aux blob");
                            continue;
                        }
                    };
                    for (i, (record, &(mask, owner))) in
                        batch.records.iter().zip(&batch.routes).enumerate()
                    {
                        if mask & bit == 0 {
                            continue;
                        }
                        // Adopt the enqueuing request's trace id for the
                        // duration of this record, so the span lands in
                        // the right trace despite the thread hop.
                        let _trace = sssj_metrics::trace::scope(batch.traces[i]);
                        let mut span = sssj_metrics::trace::span_with(
                            sssj_metrics::trace::Stage::ShardRecord,
                            record.id,
                            w as u64,
                        );
                        let before = out.len();
                        join.process_routed(record, owner as usize == w, &mut out);
                        span.set_args(record.id, (out.len() - before) as u64);
                    }
                    live_ctr.store(join.live_postings(), Ordering::Relaxed);
                    if !out.is_empty() && pair_tx.send(std::mem::take(&mut out)).is_err() {
                        return join.stats(); // driver gone (drop path)
                    }
                }
                // Inbox closed: flush buffered output (MiniBatch windows).
                join.finish(&mut out);
                if !out.is_empty() {
                    let _ = pair_tx.send(out);
                }
                join.stats()
            }));
        }
        Ok(ShardedJoin {
            spec: spec.clone(),
            shards,
            router,
            pending: Batch::empty(),
            pending_since: Instant::now(),
            senders,
            pair_rx,
            handles,
            live,
            routed: vec![0; shards],
            metrics: ShardMetrics::new(shards),
            pairs_seen: 0,
            report: None,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The routing and load report; available once [`StreamJoin::finish`]
    /// has run.
    pub fn shard_report(&self) -> Option<&ShardReport> {
        self.report.as_ref()
    }

    fn drain_ready(&mut self, out: &mut Vec<SimilarPair>) {
        while let Ok(batch) = self.pair_rx.try_recv() {
            self.pairs_seen += batch.len() as u64;
            out.extend(batch);
        }
    }

    fn flush_batch(&mut self) {
        if self.pending.records.is_empty() {
            return;
        }
        let batch = Arc::new(std::mem::replace(&mut self.pending, Batch::empty()));
        let mut span = sssj_metrics::trace::span_with(
            sssj_metrics::trace::Stage::RouterFlush,
            batch.records.len() as u64,
            0,
        );
        let mut delivered = 0usize;
        for w in 0..self.shards {
            let bit = 1u64 << w;
            let count = batch.routes.iter().filter(|(m, _)| m & bit != 0).count();
            if count > 0 {
                self.routed[w] += count as u64;
                self.metrics.deliveries[w].add(count as u64);
                delivered += count;
                self.senders[w]
                    .send(ShardMsg::Batch(Arc::clone(&batch)))
                    .expect("worker alive while sending");
            }
            self.metrics.inbox_depth[w].set(self.senders[w].len() as i64);
        }
        self.metrics
            .skipped
            .add((batch.records.len() * self.shards - delivered) as u64);
        span.set_args(batch.records.len() as u64, delivered as u64);
    }

    /// Flushes the pending batch and round-trips a
    /// [`ShardMsg::Checkpoint`] through every worker, returning the
    /// per-shard aux blobs. FIFO inboxes make the cut consistent: each
    /// reply covers exactly the records delivered before the flushed
    /// batch boundary. Returns nothing after [`StreamJoin::finish`]
    /// (workers are gone; their state was already flushed).
    fn control_sync(&mut self) -> Vec<Vec<u8>> {
        if self.senders.is_empty() {
            return Vec::new();
        }
        self.flush_batch();
        let acks: Vec<Receiver<Vec<u8>>> = self
            .senders
            .iter()
            .map(|tx| {
                let (ack_tx, ack_rx) = bounded(1);
                tx.send(ShardMsg::Checkpoint(ack_tx))
                    .expect("worker alive while sending");
                ack_rx
            })
            .collect();
        // Workers never block on the pair channel (its capacity covers
        // every in-flight batch), so each reply arrives after a bounded
        // amount of work — no deadlock against a full pair channel.
        acks.iter()
            .map(|rx| rx.recv().expect("worker alive at checkpoint"))
            .collect()
    }
}

impl Checkpointable for ShardedJoin {
    /// Captures each shard's aux state at a batch boundary (the control
    /// round-trip described on the worker-inbox message type) and merges the per-shard max
    /// vectors coordinate-wise. Recovery seeds the *merged* vector into
    /// every shard: replay re-routes records, so per-shard attribution
    /// is meaningless, and an over-large `m` only indexes more eagerly —
    /// never drops a pair (the [`sssj_core::Streaming::seed_max`]
    /// argument).
    fn write_aux(&mut self, out: &mut Vec<u8>) {
        let mut merged: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for blob in self.control_sync() {
            if blob.is_empty() {
                continue; // worker engine with no aux (MB, decay)
            }
            let entries = read_max_aux(&blob).expect("worker-encoded aux blob");
            for (dim, v) in entries {
                let slot = merged.entry(dim).or_insert(0.0);
                if v > *slot {
                    *slot = v;
                }
            }
        }
        let entries: Vec<(u32, f64)> = merged.into_iter().collect();
        write_max_aux(&entries, out);
    }

    fn read_aux(&mut self, bytes: &[u8]) -> Result<(), String> {
        // Validate *before* broadcasting: workers trust this blob.
        let entries = read_max_aux(bytes)?;
        if entries.is_empty() || self.senders.is_empty() {
            return Ok(());
        }
        let shared = Arc::new(bytes.to_vec());
        for tx in &self.senders {
            tx.send(ShardMsg::Seed(Arc::clone(&shared)))
                .map_err(|_| "worker gone while seeding aux".to_string())?;
        }
        Ok(())
    }

    fn replay_horizon(&self) -> f64 {
        let EngineSpec::Sharded { inner, .. } = &self.spec.engine else {
            unreachable!("constructors require a sharded spec");
        };
        match inner {
            ShardedInner::Streaming => self.spec.config().tau(),
            ShardedInner::MiniBatch => 2.0 * self.spec.config().tau(),
            ShardedInner::GenericDecay(d) => d.model.horizon(self.spec.theta),
            // Not checkpointable (the spec layer rejects durable over
            // lsh inners); infinity would simply disable WAL GC.
            ShardedInner::Lsh(_) => f64::INFINITY,
        }
    }

    /// Flushes the pending batch, waits for every worker to drain its
    /// inbox, then collects every pair already handed back — after this
    /// returns, all pairs completed by previously processed records have
    /// surfaced.
    fn quiesce(&mut self, out: &mut Vec<SimilarPair>) {
        let _ = self.control_sync();
        // Each worker sent its pairs *before* replying to the barrier
        // (same thread, channel sends are ordered), so a try_recv drain
        // now sees everything.
        self.drain_ready(out);
    }
}

impl StreamJoin for ShardedJoin {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        assert!(self.report.is_none(), "process called after finish");
        let (mask, owner) = self.router.route(record);
        if self.pending.records.is_empty() {
            self.pending_since = Instant::now();
        }
        self.pending.records.push(record.clone());
        self.pending.routes.push((mask, owner as u8));
        self.pending
            .traces
            .push(sssj_metrics::trace::current_trace_id());
        // Flush full batches immediately; on a trickle stream (an
        // interactive session far below 64 records per BATCH_LATENCY)
        // flush the partial batch by age instead, so pairs keep flowing
        // at arrival cadence rather than waiting for record 64 or
        // finish().
        if self.pending.records.len() >= BATCH_RECORDS
            || self.pending_since.elapsed() >= BATCH_LATENCY
        {
            self.flush_batch();
            // Drain once per batch, not per record: the pair channel is a
            // mutex, and locking it 64× less keeps the driver off the
            // workers' lock.
            self.drain_ready(out);
        }
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        if self.report.is_some() {
            return;
        }
        self.flush_batch();
        self.senders.clear(); // closes worker inboxes
                              // Drain until every worker has dropped its pair sender: a worker
                              // flushing a large tail can never deadlock against a full pair
                              // channel, because the driver keeps receiving.
        while let Ok(batch) = self.pair_rx.recv() {
            self.pairs_seen += batch.len() as u64;
            out.extend(batch);
        }
        let mut stats = JoinStats::new();
        let mut per_shard = Vec::with_capacity(self.shards);
        for (w, h) in self.handles.drain(..).enumerate() {
            let s = h.join().expect("worker panicked");
            stats += s;
            per_shard.push(ShardLoad {
                routed: self.routed[w],
                stats: s,
            });
        }
        self.report = Some(ShardReport {
            stats,
            per_shard,
            records: self.router.records(),
            skipped_sends: self.router.skipped_sends(),
            candidate_aware: self.router.is_candidate_aware(),
        });
    }

    fn stats(&self) -> JoinStats {
        match &self.report {
            Some(r) => r.stats,
            None => {
                // Before finish, only the surfaced-pair count is known
                // without synchronising with workers.
                let mut s = JoinStats::new();
                s.pairs_output = self.pairs_seen;
                s
            }
        }
    }

    fn live_postings(&self) -> u64 {
        self.live.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    fn name(&self) -> String {
        let EngineSpec::Sharded { shards, inner } = self.spec.engine else {
            unreachable!("constructors require a sharded spec");
        };
        let base = match inner {
            ShardedInner::Streaming => format!("STR-{}", self.spec.index),
            ShardedInner::MiniBatch => format!("MB-{}", self.spec.index),
            ShardedInner::GenericDecay(d) => format!("STR-L2[{}]", d.model),
            ShardedInner::Lsh(p) => format!(
                "LSH-{}x{}-{}",
                p.bands,
                p.bits / p.bands,
                if p.estimate { "est" } else { "exact" }
            ),
        };
        format!("{base}x{shards}")
    }
}

impl Drop for ShardedJoin {
    fn drop(&mut self) {
        // Abandon politely: close inboxes, unblock workers by draining
        // their pair channel, and let them run down.
        self.senders.clear();
        while self.pair_rx.recv().is_ok() {}
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Runs the full stream through `shards` STR workers and returns the
/// combined output. Equivalent to the sequential STR join up to output
/// order.
///
/// ```
/// use sssj_core::SssjConfig;
/// use sssj_index::IndexKind;
/// use sssj_parallel::sharded_run;
/// use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};
///
/// let stream: Vec<StreamRecord> = (0..4)
///     .map(|i| StreamRecord::new(i, Timestamp::new(i as f64), unit_vector(&[(1, 1.0)])))
///     .collect();
/// let out = sharded_run(&stream, SssjConfig::new(0.5, 0.1), IndexKind::L2, 2);
/// assert_eq!(out.pairs.len(), 6); // identical vectors, τ ≈ 6.9 covers all
/// ```
pub fn sharded_run(
    stream: &[StreamRecord],
    config: SssjConfig,
    kind: IndexKind,
    shards: usize,
) -> ShardedOutput {
    assert!(shards > 0, "shards must be positive");
    let spec = JoinSpec::new(config.theta, config.lambda)
        .with_engine(EngineSpec::Sharded {
            shards: shards as u32,
            inner: ShardedInner::Streaming,
        })
        .with_index(kind);
    run_sharded(stream, &spec, RoutingMode::CandidateAware)
        .unwrap_or_else(|e| panic!("sharded STR spec: {e}"))
}

/// Runs the full stream through the sharded join a `sharded?…` spec
/// describes, under an explicit [`RoutingMode`], and returns the combined
/// output together with the routing report.
pub fn run_sharded(
    stream: &[StreamRecord],
    spec: &JoinSpec,
    mode: RoutingMode,
) -> Result<ShardedOutput, SpecError> {
    let mut join = ShardedJoin::with_mode(spec, mode)?;
    let pairs = run_stream(&mut join, stream);
    let report = join
        .shard_report()
        .cloned()
        .expect("run_stream calls finish");
    Ok(ShardedOutput {
        pairs,
        stats: report.stats,
        per_shard: report.per_shard.iter().map(|l| l.stats).collect(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_core::Streaming;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn rec(id: u64, t: f64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::new(t), unit_vector(entries))
    }

    fn random_stream(seed: u64, n: usize) -> Vec<StreamRecord> {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        (0..n as u64)
            .map(|i| {
                t += rng.random_range(0.0..0.5);
                let entries: Vec<(u32, f64)> = (0..rng.random_range(1..6))
                    .map(|_| (rng.random_range(0..20u32), rng.random_range(0.1..1.0)))
                    .collect();
                rec(i, t, &entries)
            })
            .collect()
    }

    fn sorted_keys(pairs: &[SimilarPair]) -> Vec<(u64, u64)> {
        let mut keys: Vec<_> = pairs.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn shard_spans_inherit_the_drivers_trace_id() {
        if !sssj_metrics::trace_enabled() {
            return; // the off lane records nothing; nothing to assert
        }
        use sssj_metrics::trace::{self, Stage};
        let stream = random_stream(9, 200);
        let config = SssjConfig::new(0.6, 0.1);
        let trace_id = trace::next_trace_id();
        let mut sharded = ShardedJoin::new(config, IndexKind::L2, 3);
        let mut out = Vec::new();
        {
            // The driver thread plays the role a net session plays in
            // production: one id parked for the whole request.
            let _scope = trace::scope(trace_id);
            for r in &stream {
                sharded.process(r, &mut out);
            }
            sharded.finish(&mut out);
        }
        let events = trace::events_for_trace(trace_id);
        let shard_spans: Vec<_> = events
            .iter()
            .filter(|e| e.stage == Stage::ShardRecord)
            .collect();
        assert!(
            !shard_spans.is_empty(),
            "worker spans must carry the driver's id across the thread hop"
        );
        // Spans came from worker threads, not the driver's ring.
        let flush_tid = events
            .iter()
            .find(|e| e.stage == Stage::RouterFlush)
            .expect("driver recorded batch flushes")
            .tid;
        assert!(shard_spans.iter().any(|e| e.tid != flush_tid));
        // Every shard span names a record of this stream.
        assert!(shard_spans.iter().all(|e| e.a < stream.len() as u64));
    }

    #[test]
    fn sharded_run_matches_sequential() {
        let stream = random_stream(1, 400);
        let config = SssjConfig::new(0.6, 0.1);
        let mut seq = Streaming::new(config, IndexKind::L2);
        let expected = sorted_keys(&run_stream(&mut seq, &stream));
        for shards in [1, 2, 3, 8] {
            let out = sharded_run(&stream, config, IndexKind::L2, shards);
            assert_eq!(sorted_keys(&out.pairs), expected, "shards={shards}");
        }
    }

    #[test]
    fn sharded_run_matches_sequential_for_all_kinds() {
        let stream = random_stream(2, 200);
        let config = SssjConfig::new(0.5, 0.2);
        for kind in IndexKind::ALL {
            let mut seq = Streaming::new(config, kind);
            let expected = sorted_keys(&run_stream(&mut seq, &stream));
            let out = sharded_run(&stream, config, kind, 4);
            assert_eq!(sorted_keys(&out.pairs), expected, "{kind}");
        }
    }

    #[test]
    fn broadcast_mode_matches_routed_mode() {
        let stream = random_stream(6, 350);
        let spec: JoinSpec = "sharded?theta=0.55&lambda=0.1&shards=4&inner=str-l2"
            .parse()
            .unwrap();
        let routed = run_sharded(&stream, &spec, RoutingMode::CandidateAware).unwrap();
        let broadcast = run_sharded(&stream, &spec, RoutingMode::Broadcast).unwrap();
        assert_eq!(sorted_keys(&routed.pairs), sorted_keys(&broadcast.pairs));
        assert!(routed.report.candidate_aware);
        assert!(!broadcast.report.candidate_aware);
        assert_eq!(broadcast.report.skipped_sends, 0);
        // Routing can only reduce per-shard traversal work.
        assert!(routed.stats.entries_traversed <= broadcast.stats.entries_traversed);
    }

    #[test]
    fn incremental_join_matches_sequential() {
        let stream = random_stream(3, 300);
        let config = SssjConfig::new(0.6, 0.1);
        let mut seq = Streaming::new(config, IndexKind::L2);
        let expected = sorted_keys(&run_stream(&mut seq, &stream));
        let mut sharded = ShardedJoin::new(config, IndexKind::L2, 3);
        let got = run_stream(&mut sharded, &stream);
        assert_eq!(sorted_keys(&got), expected);
        assert_eq!(sharded.stats().pairs_output as usize, got.len());
        let report = sharded.shard_report().expect("finished");
        assert_eq!(report.records, 300);
        assert_eq!(
            report.per_shard.iter().map(|l| l.routed).sum::<u64>() + report.skipped_sends,
            300 * 3,
            "routed + skipped covers every (record, shard) slot"
        );
    }

    #[test]
    fn single_shard_equals_sequential_stats() {
        let stream = random_stream(4, 150);
        let config = SssjConfig::new(0.7, 0.1);
        let mut seq = Streaming::new(config, IndexKind::L2);
        run_stream(&mut seq, &stream);
        let out = sharded_run(&stream, config, IndexKind::L2, 1);
        assert_eq!(out.stats.entries_traversed, seq.stats().entries_traversed);
        assert_eq!(out.stats.pairs_output, seq.stats().pairs_output);
    }

    #[test]
    fn insertion_is_partitioned() {
        let stream = random_stream(5, 300);
        let out = sharded_run(&stream, SssjConfig::new(0.6, 0.1), IndexKind::L2, 4);
        let total: u64 = out.per_shard.iter().map(|s| s.postings_added).sum();
        let mut seq = Streaming::new(SssjConfig::new(0.6, 0.1), IndexKind::L2);
        run_stream(&mut seq, &stream);
        assert_eq!(total, seq.stats().postings_added);
        // No shard holds everything (dimension-slice spread).
        for s in &out.per_shard {
            assert!(s.postings_added < total);
        }
    }

    #[test]
    fn owners_follow_the_dimension_partition() {
        // Two records with the same single (rarest) dimension are owned
        // by the same shard even when their ids differ wildly.
        let config = SssjConfig::new(0.9, 1.0);
        let stream = vec![rec(0, 0.0, &[(17, 2.0)]), rec(1000, 0.1, &[(17, 2.0)])];
        let out = sharded_run(&stream, config, IndexKind::L2, 4);
        let populated: Vec<usize> = out
            .per_shard
            .iter()
            .enumerate()
            .filter(|(_, s)| s.postings_added > 0)
            .map(|(w, _)| w)
            .collect();
        assert_eq!(populated.len(), 1, "one dimension slice, one owner");
    }

    #[test]
    fn empty_stream_is_fine() {
        let out = sharded_run(&[], SssjConfig::new(0.5, 0.1), IndexKind::L2, 2);
        assert!(out.pairs.is_empty());
        assert_eq!(out.report.skip_rate(), 0.0);
        let mut j = ShardedJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2, 2);
        let mut buf = Vec::new();
        j.finish(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn finish_is_idempotent_and_drop_safe() {
        let mut j = ShardedJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2, 2);
        let mut buf = Vec::new();
        j.process(&rec(0, 0.0, &[(1, 1.0)]), &mut buf);
        j.finish(&mut buf);
        j.finish(&mut buf);
        drop(j);
        // And dropping an unfinished join must not hang or panic — with
        // records still buffered and in flight.
        let mut j2 = ShardedJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2, 2);
        j2.process(&rec(0, 0.0, &[(1, 1.0)]), &mut buf);
        drop(j2);
    }

    #[test]
    fn name_reports_topology() {
        let j = ShardedJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2, 4);
        assert_eq!(j.name(), "STR-L2x4");
        let spec: JoinSpec = "sharded?theta=0.5&lambda=0.1&shards=2&inner=mb-l2ap"
            .parse()
            .unwrap();
        let j = ShardedJoin::from_spec(&spec).unwrap();
        assert_eq!(j.name(), "MB-L2APx2");
    }

    #[test]
    fn non_sharded_spec_is_rejected() {
        let spec: JoinSpec = "str-l2?theta=0.5&lambda=0.1".parse().unwrap();
        assert!(matches!(
            ShardedJoin::from_spec(&spec),
            Err(SpecError::Invalid(_))
        ));
    }

    #[test]
    fn directly_built_zero_shard_spec_is_an_error_not_a_panic() {
        // Spec fields are public; a hand-built spec skips the parser's
        // validation and must still come back as an error.
        let spec = JoinSpec::new(0.7, 0.01).with_engine(EngineSpec::Sharded {
            shards: 0,
            inner: ShardedInner::Streaming,
        });
        assert!(matches!(
            ShardedJoin::from_spec(&spec),
            Err(SpecError::Invalid(_))
        ));
    }

    #[test]
    fn trickle_streams_surface_pairs_before_finish() {
        // An interactive session far below 64 records per flush interval
        // must still see pairs at arrival cadence (the latency flush),
        // not only at finish().
        let mut j = ShardedJoin::new(SssjConfig::new(0.5, 0.01), IndexKind::L2, 2);
        let mut out = Vec::new();
        j.process(&rec(0, 0.0, &[(1, 1.0)]), &mut out);
        j.process(&rec(1, 0.1, &[(1, 1.0)]), &mut out); // forms the pair
        for i in 0..50u64 {
            if !out.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
            // Unique dimensions: the trickle itself can pair with nothing.
            j.process(
                &rec(2 + i, 0.2 + i as f64, &[(100 + i as u32, 1.0)]),
                &mut out,
            );
        }
        assert_eq!(out.len(), 1, "pair must surface without finish()");
        j.finish(&mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    #[should_panic(expected = "shards must be positive")]
    fn zero_shards_rejected() {
        sharded_run(&[], SssjConfig::new(0.5, 0.1), IndexKind::L2, 0);
    }
}

#![warn(missing_docs)]
//! Sharded multi-threaded execution of the streaming similarity self-join.
//!
//! The paper evaluates sequential algorithms (its related work cites
//! MapReduce-based parallel APSS as a separate line); this crate is the
//! workspace's parallel extension. It uses the classic *broadcast-query /
//! partition-insert* decomposition:
//!
//! * every record is **broadcast** to all `s` shards, each of which
//!   queries its local STR index with it;
//! * the record is **inserted** at exactly one shard (by id hash).
//!
//! A pair `(x, y)` with `t(x) < t(y)` is then found exactly once — by the
//! shard that owns `x`, when `y` is queried there — so the union of shard
//! outputs equals the sequential output, with no deduplication step.
//! Candidate generation and verification (where §7 shows the time goes)
//! parallelise; index insertion is partitioned.
//!
//! Two entry points:
//!
//! * [`sharded_run`] — one-call execution of a whole stream;
//! * [`ShardedJoin`] — an incremental [`sssj_core::StreamJoin`] that feeds worker
//!   threads through bounded channels (backpressure) and reports pairs as
//!   workers hand them back.

pub mod shard;

pub use shard::{sharded_run, ShardedJoin, ShardedOutput};

/// Registers the sharded engine with the [`sssj_core::spec`] factory, so
/// `sharded-…` [`sssj_core::JoinSpec`] strings build a [`ShardedJoin`].
/// Idempotent; every workspace binary calls it at startup.
pub fn register_spec_builder() {
    sssj_core::spec::register_sharded_builder(|config, kind, shards| {
        Box::new(ShardedJoin::new(config, kind, shards as usize))
    });
}

#[cfg(test)]
mod spec_tests {
    use sssj_core::StreamJoin;

    #[test]
    fn sharded_spec_builds_through_the_factory() {
        super::register_spec_builder();
        let spec: sssj_core::JoinSpec = "sharded-l2?theta=0.6&lambda=0.1&shards=3".parse().unwrap();
        let mut join = spec.build().unwrap();
        assert_eq!(join.name(), "STR-L2x3");
        let mut out = Vec::new();
        join.finish(&mut out);
    }
}

#![warn(missing_docs)]
//! Sharded multi-threaded execution of the streaming similarity self-join,
//! with dimension-partitioned, candidate-aware routing.
//!
//! The paper evaluates sequential algorithms (its related work cites
//! MapReduce-based parallel APSS as a separate line); this crate is the
//! workspace's parallel extension. Processing decomposes per record into
//! a *query* half and an *insert* half ([`sssj_core::ShardableJoin`]):
//!
//! * the record is **inserted** at exactly one shard — the shard owning
//!   the dimension slice of its last (rarest) coordinate, so records
//!   sharing their rarest term cluster together;
//! * the record **queries** only the shards that could hold a candidate:
//!   the driver keeps a per-`(dimension, shard)` table of newest insert
//!   timestamps ([`Router`]) and skips every shard with no live stamp on
//!   any of the record's dimensions — those shards never see the record
//!   at all (*candidate-aware routing*). Inner engines that expose no
//!   dimension information (LSH banding) fall back to broadcast.
//!
//! Channel traffic is batched: records accumulate into
//! `Arc<Batch>`-shared groups with per-record routing bitmaps, one clone
//! + send per shard per batch, and workers return pairs in batches too.
//!
//! # Why every pair is still found exactly once
//!
//! Take a pair `(x, y)` with `t(x) < t(y)` and decayed similarity `≥ θ`,
//! and let shard `w` own `x`.
//!
//! * **At most once:** `x` is inserted only at `w`, so only `w` can
//!   report the pair; within `w`, the pair is reported exactly when `y`
//!   queries (STR/decay) or at the window join covering it (MB) — the
//!   same single site as the sequential algorithm.
//! * **At least once:** similarity `≥ θ` needs `dot(x, y) > 0`, i.e. a
//!   shared dimension `d`, and decay above `θ` needs
//!   `t(y) − t(x) ≤ τ`. The router stamped *every* dimension of `x` —
//!   indexed suffix and residual prefix alike — at shard `w` with
//!   `t(x)` when it routed the insert, so at `t(y)` the stamp on `d` is
//!   within the horizon and `w` is in `y`'s query mask. Skipped shards
//!   hold only records that share no dimension with `y` or are beyond
//!   `τ` — zero dot product or decay below `θ` either way, so nothing a
//!   skipped shard could have produced survives the threshold.
//!
//! One subtlety is AP-family bounds: the running maximum `m` at a shard
//! is raised only by records actually routed there, so shards see
//! *smaller* `m` vectors than a sequential run. That is safe — each
//! query updates `m` with itself and re-indexes affected residuals
//! *before* candidate generation, so the prefix-filter invariant holds
//! for exactly the pairs that query can complete; a smaller `m` only
//! indexes less eagerly, never drops a reachable pair (the same argument
//! that makes snapshot-restored joins correct, see
//! [`sssj_core::Streaming::seed_max`]).
//!
//! Three entry points:
//!
//! * [`sharded_run`] — one-call execution of a whole stream over STR
//!   workers;
//! * [`run_sharded`] — one-call execution of any `sharded?…` spec under
//!   an explicit [`RoutingMode`] (broadcast kept for A/B measurement),
//!   returning the routing [`ShardReport`];
//! * [`ShardedJoin`] — an incremental [`sssj_core::StreamJoin`] that
//!   feeds worker threads through bounded channels (backpressure) and
//!   reports pairs as workers hand them back.

pub mod router;
pub mod shard;

pub use router::Router;
pub use shard::{
    run_sharded, sharded_run, RoutingMode, ShardLoad, ShardReport, ShardedJoin, ShardedOutput,
};

/// Registers the sharded engine with the [`sssj_core::spec`] factory, so
/// `sharded?…` [`sssj_core::JoinSpec`] strings build a [`ShardedJoin`].
/// Idempotent; every workspace binary calls it at startup. (LSH inner
/// engines additionally need `sssj_lsh::register_spec_builder`, which
/// registers the per-shard LSH worker constructor.)
pub fn register_spec_builder() {
    sssj_core::spec::register_sharded_builder(|spec| {
        ShardedJoin::from_spec(spec).map(|j| Box::new(j) as Box<dyn sssj_core::StreamJoin>)
    });
    // The durable layer (`sssj-store`) builds sharded engines through
    // this hook; per-shard aux capture happens at a batch boundary via
    // the worker control channel.
    sssj_core::spec::register_sharded_checkpointable_builder(|spec| {
        ShardedJoin::from_spec(spec).map(|j| Box::new(j) as Box<dyn sssj_core::Checkpointable>)
    });
}

#[cfg(test)]
mod spec_tests {
    use sssj_core::{SpecError, StreamJoin};

    #[test]
    fn sharded_spec_builds_through_the_factory() {
        super::register_spec_builder();
        let spec: sssj_core::JoinSpec = "sharded-l2?theta=0.6&lambda=0.1&shards=3".parse().unwrap();
        let mut join = spec.build().unwrap();
        assert_eq!(join.name(), "STR-L2x3");
        let mut out = Vec::new();
        join.finish(&mut out);
    }

    #[test]
    fn inner_engines_build_through_the_factory() {
        super::register_spec_builder();
        for (s, name) in [
            (
                "sharded?theta=0.6&lambda=0.1&shards=2&inner=mb-inv",
                "MB-INVx2",
            ),
            (
                "sharded?theta=0.6&shards=2&inner=decay&model=window:10",
                "STR-L2[window:10]x2",
            ),
        ] {
            let spec: sssj_core::JoinSpec = s.parse().unwrap();
            let mut join = spec.build().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(join.name(), name, "{s}");
            join.finish(&mut Vec::new());
        }
    }

    #[test]
    fn lsh_inner_requires_the_lsh_crate() {
        // sssj-parallel does not link sssj-lsh; the worker constructor is
        // absent here and the factory must say so instead of panicking a
        // worker thread.
        super::register_spec_builder();
        let spec: sssj_core::JoinSpec = "sharded?theta=0.6&lambda=0.1&shards=2&inner=lsh"
            .parse()
            .unwrap();
        assert!(matches!(
            spec.build(),
            Err(SpecError::EngineUnavailable("lsh"))
        ));
    }
}

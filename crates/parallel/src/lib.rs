#![warn(missing_docs)]
//! Sharded multi-threaded execution of the streaming similarity self-join.
//!
//! The paper evaluates sequential algorithms (its related work cites
//! MapReduce-based parallel APSS as a separate line); this crate is the
//! workspace's parallel extension. It uses the classic *broadcast-query /
//! partition-insert* decomposition:
//!
//! * every record is **broadcast** to all `s` shards, each of which
//!   queries its local STR index with it;
//! * the record is **inserted** at exactly one shard (by id hash).
//!
//! A pair `(x, y)` with `t(x) < t(y)` is then found exactly once — by the
//! shard that owns `x`, when `y` is queried there — so the union of shard
//! outputs equals the sequential output, with no deduplication step.
//! Candidate generation and verification (where §7 shows the time goes)
//! parallelise; index insertion is partitioned.
//!
//! Two entry points:
//!
//! * [`sharded_run`] — one-call execution of a whole stream;
//! * [`ShardedJoin`] — an incremental [`StreamJoin`] that feeds worker
//!   threads through bounded channels (backpressure) and reports pairs as
//!   workers hand them back.

pub mod shard;

pub use shard::{sharded_run, ShardedJoin, ShardedOutput};

//! Candidate-aware routing: the driver-side dimension-occupancy table.
//!
//! The sharded driver decides two things per record: which shard **owns**
//! it (inserts it into its index) and which shards must **query** with it.
//! Ownership partitions the indexed dimensions: every dimension is
//! assigned to one shard by hash, and a record is owned by the shard of
//! its *last* (highest, under the workspace's frequency-descending
//! dimension order: rarest) coordinate — records sharing their rarest
//! term cluster on the same shard, which is what makes query masks
//! sparse.
//!
//! The query mask comes from an occupancy table the driver maintains
//! without ever synchronising with workers: for every `(dimension,
//! shard)` pair it records the *newest insert timestamp* of a record
//! containing that dimension routed to that shard. A shard can produce a
//! candidate for a query only if it holds a live (in-horizon) coordinate
//! on one of the query's dimensions — see the correctness argument in the
//! [crate docs](crate) — so shards whose every stamp is stale are skipped
//! outright: no channel send, no `Arc` clone, no worker wake-up.
//!
//! Engines that expose no dimension information
//! ([`sssj_core::ShardableJoin::occupancy_horizon`] returns `None`, e.g.
//! LSH banding) get a broadcast router: the mask is always full and the
//! table is never consulted.

use sssj_types::StreamRecord;

/// Fibonacci hashing: spreads small consecutive keys (dimension ids,
/// vector ids) evenly over the shard range.
#[inline]
fn fib_shard(key: u64, shards: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards
}

/// The driver-side routing table. See the [module docs](self).
pub struct Router {
    shards: usize,
    /// Bitmask with one bit per shard, all set.
    full_mask: u64,
    /// Occupancy horizon; `None` means broadcast (mask always full).
    horizon: Option<f64>,
    /// `stamps[dim * shards + w]`: newest insert timestamp of a record
    /// containing `dim` owned by shard `w`; `-inf` when never inserted.
    /// Stored as `f32` *rounded up* — an overestimated stamp keeps a
    /// shard in the mask a hair longer (safe), and the table is the
    /// router's one cache-hostile structure: halving it matters more
    /// than microsecond stamp precision.
    stamps: Vec<f32>,
    /// When set (pure-ℓ2 inner engines), only coordinates from the
    /// prefix-filter boundary on are stamped — see
    /// [`Router::with_suffix_occupancy`]. Holds the slackened θ² the
    /// boundary replay crosses.
    suffix_theta_sq: Option<f64>,
    /// Records inserted per shard.
    inserted: Vec<u64>,
    /// Records *delivered* per shard — owned inserts plus routed queries.
    /// This is what the two-choice owner balancing compares: a shard's
    /// load is the records it must process, and on a Zipfian stream the
    /// hot dimension slices attract query traffic far beyond their
    /// insert share, which insert-count balancing cannot see.
    delivered: Vec<u64>,
    /// Balance owners on insert counts instead of delivery counts — the
    /// pre-PR-4 behaviour, kept for A/B measurement.
    balance_on_inserts: bool,
    /// Records routed so far.
    records: u64,
    /// Query sends avoided so far (records × shards skipped).
    skipped: u64,
}

impl Router {
    /// Creates a router for `shards` workers. `horizon = None` routes
    /// every record to every shard (broadcast).
    pub fn new(shards: usize, horizon: Option<f64>) -> Self {
        assert!(
            (1..=64).contains(&shards),
            "routing masks are 64-bit: shards must be in 1..=64, got {shards}"
        );
        Router {
            shards,
            full_mask: if shards == 64 {
                u64::MAX
            } else {
                (1u64 << shards) - 1
            },
            horizon,
            stamps: Vec::new(),
            suffix_theta_sq: None,
            inserted: vec![0; shards],
            delivered: vec![0; shards],
            balance_on_inserts: false,
            records: 0,
            skipped: 0,
        }
    }

    /// Balances owners on *insert* counts instead of delivery counts —
    /// the pre-delivery-balancing behaviour, kept for A/B measurement
    /// (see `tests/differential.rs`).
    pub fn with_insert_balancing(mut self) -> Self {
        self.balance_on_inserts = true;
        self
    }

    /// Restricts occupancy stamping to the coordinates a pure-ℓ2 engine
    /// actually *indexes*: the suffix from the first position where the
    /// running norm `‖x′‖²` crosses `θ²`.
    ///
    /// Safe only when the inner engine's index-construction bound depends
    /// on nothing but the vector itself (STR-L2, generic decay — never
    /// the AP family, whose boundary moves with the stream maximum `m`):
    /// a query overlapping only the unindexed prefix of `x` satisfies
    /// `dot(prefix(x), y) ≤ ‖prefix(x)‖ < θ` by Cauchy–Schwarz, so a
    /// shard holding only such prefixes genuinely cannot produce a pair.
    /// The hot, frequent dimensions live in the prefix, so this is what
    /// keeps hot dimensions from lighting every shard up.
    ///
    /// The replay slack (θ − 1e-9, vs the engines' θ − 1e-12) crosses
    /// no later than the engine's own boundary, so the stamped set is
    /// always a superset of the indexed set.
    pub fn with_suffix_occupancy(mut self, theta: f64) -> Self {
        let slack = (theta - 1e-9).max(0.0);
        self.suffix_theta_sq = Some(slack * slack);
        self
    }

    /// The first coordinate position of `record` the occupancy table must
    /// cover ([`Router::with_suffix_occupancy`]); `nnz` when the vector
    /// never crosses the boundary (nothing indexable).
    fn stamp_start(&self, record: &StreamRecord) -> usize {
        let Some(theta_sq) = self.suffix_theta_sq else {
            return 0;
        };
        let mut bt = 0.0;
        for (pos, &w) in record.vector.weights().iter().enumerate() {
            bt += w * w;
            if bt >= theta_sq {
                return pos;
            }
        }
        record.vector.nnz()
    }

    /// Whether this router consults the occupancy table (as opposed to
    /// broadcasting).
    pub fn is_candidate_aware(&self) -> bool {
        self.horizon.is_some()
    }

    /// The shard that owns (inserts) `record`: the less-loaded of the
    /// shards owning its two last — rarest — dimension slices (two-choice
    /// balancing keeps one hot cluster from saturating a shard while
    /// records still cluster by rare terms), or an id hash for empty
    /// vectors. Load is measured in *deliveries* (owned inserts plus
    /// routed queries — what a shard actually processes), so a slice
    /// that attracts heavy query traffic sheds ownership to its
    /// alternative even when its insert count looks balanced.
    /// Deterministic given the stream prefix, which is all correctness
    /// needs — any assignment inserting each record exactly once is
    /// valid.
    pub fn owner(&self, record: &StreamRecord) -> usize {
        let load = if self.balance_on_inserts {
            &self.inserted
        } else {
            &self.delivered
        };
        let dims = record.vector.dims();
        match *dims {
            [] => fib_shard(record.id, self.shards),
            [.., a, b] => {
                let (wa, wb) = (
                    fib_shard(a as u64, self.shards),
                    fib_shard(b as u64, self.shards),
                );
                if load[wa] < load[wb] {
                    wa
                } else {
                    wb
                }
            }
            [d] => fib_shard(d as u64, self.shards),
        }
    }

    /// A stamp value covering `t` from above: the smallest `f32` ≥ `t`.
    #[inline]
    fn stamp_of(t: f64) -> f32 {
        let s = t as f32;
        if (s as f64) < t {
            s.next_up()
        } else {
            s
        }
    }

    /// The shards whose index may hold a candidate for `record` at its
    /// timestamp: one bit per shard with a live stamp on at least one of
    /// the record's dimensions. Does **not** include the owner bit unless
    /// occupied; may be zero.
    pub fn query_mask(&self, record: &StreamRecord) -> u64 {
        let Some(horizon) = self.horizon else {
            return self.full_mask;
        };
        let now = record.t.seconds();
        let mut mask = 0u64;
        for &dim in record.vector.dims() {
            let base = dim as usize * self.shards;
            if base >= self.stamps.len() {
                continue; // dimension never inserted anywhere
            }
            for w in 0..self.shards {
                if mask & (1u64 << w) == 0 && now - self.stamps[base + w] as f64 <= horizon {
                    mask |= 1u64 << w;
                }
            }
            if mask == self.full_mask {
                break;
            }
        }
        mask
    }

    /// Records that `record` was inserted at `shard`, stamping its
    /// dimensions. By default *every* coordinate is stamped — indexed
    /// suffix and residual prefix alike — so the mask can never miss a
    /// shard capable of producing a candidate; under
    /// [`Router::with_suffix_occupancy`] the provably-unindexable prefix
    /// is left out.
    pub fn note_insert(&mut self, shard: usize, record: &StreamRecord) {
        if self.horizon.is_none() {
            return;
        }
        let t = record.t.seconds();
        if let Some(&max_dim) = record.vector.dims().last() {
            let needed = (max_dim as usize + 1) * self.shards;
            if needed > self.stamps.len() {
                self.stamps.resize(needed, f32::NEG_INFINITY);
            }
        }
        let stamp = Self::stamp_of(t);
        for &dim in &record.vector.dims()[self.stamp_start(record)..] {
            let slot = &mut self.stamps[dim as usize * self.shards + shard];
            if stamp > *slot {
                *slot = stamp;
            }
        }
        self.inserted[shard] += 1;
        self.delivered[shard] += 1;
    }

    /// Routes one record end to end: computes the query mask, adds the
    /// owner (the owner always receives the record — it must insert it),
    /// stamps the insertion, and updates the skip counters. Returns
    /// `(mask, owner)`.
    ///
    /// Equivalent to `query_mask` + `note_insert`, fused into a single
    /// pass over the stamp rows: the table is bigger than cache at real
    /// vocabularies, and touching each row once instead of twice is the
    /// difference between the router paying for itself and not.
    pub fn route(&mut self, record: &StreamRecord) -> (u64, usize) {
        let owner = self.owner(record);
        let owner_bit = 1u64 << owner;
        let mut mask = owner_bit;
        if let Some(horizon) = self.horizon {
            let now = record.t.seconds();
            if let Some(&max_dim) = record.vector.dims().last() {
                let needed = (max_dim as usize + 1) * self.shards;
                if needed > self.stamps.len() {
                    self.stamps.resize(needed, f32::NEG_INFINITY);
                }
            }
            let stamp = Self::stamp_of(now);
            let stamp_from = self.stamp_start(record);
            for (pos, &dim) in record.vector.dims().iter().enumerate() {
                if mask == self.full_mask && pos < stamp_from {
                    continue; // nothing left to learn, nothing to stamp
                }
                let row = &mut self.stamps[dim as usize * self.shards..][..self.shards];
                if mask != self.full_mask {
                    for (w, &slot) in row.iter().enumerate() {
                        if mask & (1u64 << w) == 0 && now - slot as f64 <= horizon {
                            mask |= 1u64 << w;
                        }
                    }
                }
                // Stamp the insertion while the row is hot (timestamps
                // are non-decreasing, so plain max).
                if pos >= stamp_from && stamp > row[owner] {
                    row[owner] = stamp;
                }
            }
        } else {
            mask = self.full_mask;
        }
        self.inserted[owner] += 1;
        // Tally deliveries — every set mask bit is one record a shard
        // must process — so the next owner() decision sees query load,
        // not just insert load.
        let mut bits = mask;
        while bits != 0 {
            let w = bits.trailing_zeros() as usize;
            self.delivered[w] += 1;
            bits &= bits - 1;
        }
        self.records += 1;
        self.skipped += (self.shards as u32 - mask.count_ones()) as u64;
        (mask, owner)
    }

    /// Records routed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Deliveries (owned inserts + routed queries) per shard so far.
    pub fn delivered(&self) -> &[u64] {
        &self.delivered
    }

    /// Query sends avoided so far — for each record, the number of shards
    /// that never saw it.
    pub fn skipped_sends(&self) -> u64 {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn rec(id: u64, t: f64, dims: &[u32]) -> StreamRecord {
        let entries: Vec<(u32, f64)> = dims.iter().map(|&d| (d, 1.0)).collect();
        StreamRecord::new(id, Timestamp::new(t), unit_vector(&entries))
    }

    #[test]
    fn unseen_dimensions_miss_every_shard() {
        // A record whose dimensions have no live occupancy anywhere gets
        // an *empty* query mask — the driver sends it only to its owner
        // (for insertion), never as a query.
        let mut r = Router::new(4, Some(10.0));
        assert_eq!(r.query_mask(&rec(0, 0.0, &[3, 7])), 0);
        let (mask, owner) = r.route(&rec(0, 0.0, &[3, 7]));
        assert_eq!(mask, 1 << owner, "owner-only: no query sends");
        assert_eq!(r.skipped_sends(), 3);
    }

    #[test]
    fn occupancy_routes_shared_dimensions() {
        let mut r = Router::new(4, Some(10.0));
        let (_, owner) = r.route(&rec(0, 0.0, &[5]));
        // A later record sharing dim 5 must be routed to the owner.
        let mask = r.query_mask(&rec(1, 1.0, &[5]));
        assert_eq!(mask, 1 << owner);
        // A record on a disjoint dimension is not.
        assert_eq!(r.query_mask(&rec(2, 1.0, &[6])), 0);
    }

    #[test]
    fn occupancy_expires_at_the_horizon() {
        let mut r = Router::new(2, Some(10.0));
        let (_, owner) = r.route(&rec(0, 0.0, &[5]));
        assert_eq!(r.query_mask(&rec(1, 10.0, &[5])), 1 << owner, "t=τ live");
        assert_eq!(r.query_mask(&rec(1, 10.1, &[5])), 0, "t>τ expired");
    }

    #[test]
    fn broadcast_router_always_returns_the_full_mask() {
        let mut r = Router::new(3, None);
        assert_eq!(r.query_mask(&rec(0, 0.0, &[1])), 0b111);
        let (mask, _) = r.route(&rec(0, 0.0, &[1]));
        assert_eq!(mask, 0b111);
        assert_eq!(r.skipped_sends(), 0);
        assert!(!r.is_candidate_aware());
    }

    #[test]
    fn owner_is_deterministic_and_dimension_driven() {
        let r = Router::new(8, Some(1.0));
        // Same last dimension → same owner, regardless of id or prefix.
        let a = r.owner(&rec(1, 0.0, &[2, 9]));
        let b = r.owner(&rec(77, 5.0, &[4, 9]));
        assert_eq!(a, b);
        // Owners spread over shards as the anchor dimension varies.
        let owners: std::collections::HashSet<usize> =
            (0..64u32).map(|d| r.owner(&rec(0, 0.0, &[d]))).collect();
        assert!(owners.len() >= 4, "hash spread: {owners:?}");
    }

    #[test]
    fn suffix_occupancy_skips_the_unindexed_prefix() {
        // θ = 0.8: for a two-coordinate vector split ~0.45/0.89, the
        // first coordinate stays under θ² and is never indexed by an
        // ℓ2 engine — so it must not light up occupancy either.
        let mut r = Router::new(2, Some(100.0)).with_suffix_occupancy(0.8);
        let v = unit_vector(&[(3, 1.0), (7, 2.0)]);
        let record = StreamRecord::new(0, Timestamp::new(0.0), v);
        let (_, owner) = r.route(&record);
        // Prefix dim 3: unstamped; suffix dim 7: stamped at the owner.
        assert_eq!(r.query_mask(&rec(1, 1.0, &[3])), 0, "prefix dim");
        assert_eq!(r.query_mask(&rec(1, 1.0, &[7])), 1 << owner, "suffix dim");
        // Without the option both dims are stamped.
        let mut r = Router::new(2, Some(100.0));
        let v = unit_vector(&[(3, 1.0), (7, 2.0)]);
        let (_, owner) = r.route(&StreamRecord::new(0, Timestamp::new(0.0), v));
        assert_eq!(r.query_mask(&rec(1, 1.0, &[3])), 1 << owner);
    }

    #[test]
    fn sixty_four_shards_mask_does_not_overflow() {
        let r = Router::new(64, None);
        assert_eq!(r.query_mask(&rec(0, 0.0, &[1])), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "shards must be in 1..=64")]
    fn more_than_sixty_four_shards_rejected() {
        Router::new(65, Some(1.0));
    }
}

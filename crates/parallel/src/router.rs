//! Candidate-aware routing: the driver-side dimension-occupancy table.
//!
//! The sharded driver decides two things per record: which shard **owns**
//! it (inserts it into its index) and which shards must **query** with it.
//! Ownership partitions the indexed dimensions: every dimension is
//! assigned to one shard by hash, and a record is owned by the shard of
//! its *last* (highest, under the workspace's frequency-descending
//! dimension order: rarest) coordinate — records sharing their rarest
//! term cluster on the same shard, which is what makes query masks
//! sparse.
//!
//! The query mask comes from an occupancy table the driver maintains
//! without ever synchronising with workers. A shard can produce a
//! candidate for a query only if it holds a live (in-horizon) coordinate
//! on one of the query's dimensions — see the correctness argument in the
//! [crate docs](crate) — so shards with no possibly-live occupancy are
//! skipped outright: no channel send, no `Arc` clone, no worker wake-up.
//!
//! # Epoch-rotated, memory-bounded occupancy
//!
//! The first implementation kept one `f32` last-insert stamp per
//! `(dimension, shard)` — `vocab × shards × 4 B`, never shrinking: a
//! streaming vocabulary (fresh URLs, hashtags, typo tokens) would grow
//! it forever (the PR-3 open item). The table is now a fixed budget of
//! **rotating bit-planes**:
//!
//! * the horizon is split into [`SUB_EPOCHS`] sub-epochs; the table
//!   keeps `SUB_EPOCHS + 1` planes, one per sub-epoch in the live
//!   window, rotated (cleared and reused) as stream time advances;
//! * each plane maps a dimension **row** to a 64-bit shard mask:
//!   "some record containing a dimension in this row was inserted at
//!   these shards during this sub-epoch";
//! * rows are a power-of-two hash table (Fibonacci hash of the
//!   dimension id), grown by doubling up to [`MAX_ROWS`] and then
//!   **capped**: collisions merge dimensions, which can only *add*
//!   shards to a mask — a false positive costs one redundant delivery,
//!   never a missed pair. Growth duplicates plane contents (old row `r`
//!   feeds new rows `r` and `r + old_rows`), again a superset.
//!
//! A query ORs the planes covering `(now − τ − τ/S, now]` for each of
//! its dimensions' rows: over-retention is bounded by one sub-epoch
//! (`τ/S`, 12.5 % at the default `S = 8`), and total memory is bounded
//! by `(S + 1) × MAX_ROWS × 8 B ≈ 4.7 MiB` of mask words per router —
//! plus per-plane dirty-row lists of at most the same order (rotation
//! clears only stamped rows, so its cost amortises against the
//! stamping work instead of memsetting the table every `τ/S`) —
//! **independent of vocabulary size**, versus unbounded growth before.
//! `tests/differential.rs` asserts the skip rate stays within a few
//! percent of an exact-stamp oracle.
//!
//! Engines that expose no dimension information
//! ([`sssj_core::ShardableJoin::occupancy_horizon`] returns `None`, e.g.
//! LSH banding) get a broadcast router: the mask is always full and the
//! table is never consulted.

use sssj_types::StreamRecord;

/// Sub-epochs per horizon: the expiry slack is `horizon / SUB_EPOCHS`.
pub const SUB_EPOCHS: usize = 8;

/// Hash-table row cap: the hard memory bound. `(SUB_EPOCHS + 1) ×
/// MAX_ROWS × 8 B ≈ 4.7 MiB` per router at the default 8 sub-epochs.
pub const MAX_ROWS: usize = 1 << 16;

/// Initial row count (grown by doubling as the seen vocabulary grows).
const FIRST_ROWS: usize = 1 << 10;

/// Fibonacci hashing: spreads small consecutive keys (dimension ids,
/// vector ids) evenly over the shard range.
#[inline]
fn fib_shard(key: u64, shards: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards
}

/// The ring size: one plane per sub-epoch in the live window.
const RING: usize = SUB_EPOCHS + 1;

/// The rotating-plane occupancy table. See the [module docs](self).
///
/// Storage is **row-major interleaved**: the [`RING`] sub-epoch words
/// of one row sit contiguously (`words[row * RING + slot]`), so the
/// per-dimension read of the query path — OR the live planes for one
/// row — touches one or two cache lines instead of nine scattered
/// arrays, and the insert stamp lands in the same lines the read just
/// pulled. Rotation clears only the rows stamped during the retiring
/// sub-epoch (per-slot dirty lists), so its cost amortises against the
/// stamping work already done instead of memsetting the table every
/// `τ/S` of stream time.
struct EpochTable {
    /// Sub-epoch length in stream seconds (`horizon / SUB_EPOCHS`;
    /// infinite horizons degrade to a single eternal sub-epoch).
    sub_len: f64,
    /// `rows × RING` shard-mask words, row-major.
    words: Vec<u64>,
    /// Per ring slot: the rows stamped since that slot was cleared.
    dirty: Vec<Vec<u32>>,
    /// The sub-epoch index each ring slot currently holds.
    slot_sub: Vec<i64>,
    /// Current row count (power of two).
    rows: usize,
    /// Newest sub-epoch index seen; `None` until the first touch.
    cur: Option<i64>,
}

impl EpochTable {
    fn new(horizon: f64) -> Self {
        let sub_len = if horizon.is_finite() && horizon > 0.0 {
            horizon / SUB_EPOCHS as f64
        } else {
            f64::INFINITY
        };
        EpochTable {
            sub_len,
            words: vec![0u64; FIRST_ROWS * RING],
            dirty: vec![Vec::new(); RING],
            slot_sub: vec![i64::MIN; RING],
            rows: FIRST_ROWS,
            cur: None,
        }
    }

    #[inline]
    fn sub_of(&self, t: f64) -> i64 {
        if self.sub_len.is_infinite() {
            0
        } else {
            (t / self.sub_len).floor() as i64
        }
    }

    #[inline]
    fn row_of(&self, dim: u32) -> usize {
        ((dim as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.rows - 1)
    }

    /// Assigns each ring slot `i` the sub-epoch `s` of the window
    /// `(sub − ring + 1 ..= sub)` with `s ≡ i (mod ring)`, so
    /// slot lookup by `s.rem_euclid(ring)` stays consistent.
    fn anchor(slot_sub: &mut [i64], sub: i64, ring: i64) {
        let base = sub - ring + 1;
        for (i, s) in slot_sub.iter_mut().enumerate() {
            let off = (i as i64 - base.rem_euclid(ring)).rem_euclid(ring);
            *s = base + off;
        }
    }

    /// Clears one ring slot's stamped rows.
    fn clear_slot(&mut self, slot: usize) {
        let dirty = std::mem::take(&mut self.dirty[slot]);
        for &r in &dirty {
            self.words[r as usize * RING + slot] = 0;
        }
        let mut dirty = dirty;
        dirty.clear();
        self.dirty[slot] = dirty;
    }

    /// Rotates planes so the ring covers `(sub − SUB_EPOCHS ..= sub)`.
    fn advance(&mut self, t: f64) {
        let sub = self.sub_of(t);
        let ring = RING as i64;
        let Some(cur) = self.cur else {
            Self::anchor(&mut self.slot_sub, sub, ring);
            self.cur = Some(sub);
            return;
        };
        if sub <= cur {
            return; // timestamps are non-decreasing; same sub-epoch
        }
        if sub - cur >= ring {
            // A jump past the whole window: everything is stale.
            for slot in 0..RING {
                self.clear_slot(slot);
            }
            Self::anchor(&mut self.slot_sub, sub, ring);
        } else {
            for s in cur + 1..=sub {
                let slot = s.rem_euclid(ring) as usize;
                self.clear_slot(slot);
                self.slot_sub[slot] = s;
            }
        }
        self.cur = Some(sub);
    }

    /// Grows the row table towards the seen vocabulary, up to
    /// [`MAX_ROWS`]. Duplicating plane contents keeps every mask a
    /// superset of the truth.
    fn maybe_grow(&mut self, max_dim: u32) {
        let wanted = ((max_dim as usize).saturating_add(1))
            .next_power_of_two()
            .min(MAX_ROWS);
        while self.rows < wanted {
            let old = self.rows;
            // Old row r now feeds rows r and r + old: duplicating both
            // the words (row-major, so one block copy) and the dirty
            // lists keeps every mask a superset and every nonzero word
            // clearable.
            self.words.extend_from_within(..);
            for dirty in &mut self.dirty {
                let dirtied = dirty.len();
                for i in 0..dirtied {
                    let r = dirty[i];
                    dirty.push(r + old as u32);
                }
            }
            self.rows *= 2;
        }
    }

    /// The shards with possibly-live occupancy on `row` for a query in
    /// sub-epoch `query_sub`.
    #[inline]
    fn occupied(&self, row: usize, query_sub: i64) -> u64 {
        let floor = query_sub - SUB_EPOCHS as i64;
        let mut mask = 0u64;
        let words = &self.words[row * RING..row * RING + RING];
        for (i, &w) in words.iter().enumerate() {
            if self.slot_sub[i] >= floor && self.slot_sub[i] <= query_sub {
                mask |= w;
            }
        }
        mask
    }

    /// Records an insert of `row` at `shard` in the current sub-epoch.
    #[inline]
    fn stamp(&mut self, row: usize, shard: usize) {
        let cur = self.cur.expect("advance() before stamp()");
        let slot = cur.rem_euclid(RING as i64) as usize;
        let w = &mut self.words[row * RING + slot];
        if *w == 0 {
            self.dirty[slot].push(row as u32);
        }
        *w |= 1u64 << shard;
    }

    /// Allocated table bytes (the memory-bound assertion hook).
    fn bytes(&self) -> usize {
        self.words.len() * 8 + self.dirty.iter().map(|d| d.capacity() * 4).sum::<usize>()
    }
}

/// The driver-side routing table. See the [module docs](self).
pub struct Router {
    shards: usize,
    /// Bitmask with one bit per shard, all set.
    full_mask: u64,
    /// Occupancy horizon; `None` means broadcast (mask always full).
    horizon: Option<f64>,
    /// The epoch-rotated occupancy planes (unused when broadcasting).
    table: EpochTable,
    /// When set (pure-ℓ2 inner engines), only coordinates from the
    /// prefix-filter boundary on are stamped — see
    /// [`Router::with_suffix_occupancy`]. Holds the slackened θ² the
    /// boundary replay crosses.
    suffix_theta_sq: Option<f64>,
    /// Records inserted per shard.
    inserted: Vec<u64>,
    /// Records *delivered* per shard — owned inserts plus routed queries.
    /// This is what the two-choice owner balancing compares: a shard's
    /// load is the records it must process, and on a Zipfian stream the
    /// hot dimension slices attract query traffic far beyond their
    /// insert share, which insert-count balancing cannot see.
    delivered: Vec<u64>,
    /// Balance owners on insert counts instead of delivery counts — the
    /// pre-PR-4 behaviour, kept for A/B measurement.
    balance_on_inserts: bool,
    /// Records routed so far.
    records: u64,
    /// Query sends avoided so far (records × shards skipped).
    skipped: u64,
}

impl Router {
    /// Creates a router for `shards` workers. `horizon = None` routes
    /// every record to every shard (broadcast).
    pub fn new(shards: usize, horizon: Option<f64>) -> Self {
        assert!(
            (1..=64).contains(&shards),
            "routing masks are 64-bit: shards must be in 1..=64, got {shards}"
        );
        Router {
            shards,
            full_mask: if shards == 64 {
                u64::MAX
            } else {
                (1u64 << shards) - 1
            },
            horizon,
            table: EpochTable::new(horizon.unwrap_or(f64::INFINITY)),
            suffix_theta_sq: None,
            inserted: vec![0; shards],
            delivered: vec![0; shards],
            balance_on_inserts: false,
            records: 0,
            skipped: 0,
        }
    }

    /// Balances owners on *insert* counts instead of delivery counts —
    /// the pre-delivery-balancing behaviour, kept for A/B measurement
    /// (see `tests/differential.rs`).
    pub fn with_insert_balancing(mut self) -> Self {
        self.balance_on_inserts = true;
        self
    }

    /// Restricts occupancy stamping to the coordinates a pure-ℓ2 engine
    /// actually *indexes*: the suffix from the first position where the
    /// running norm `‖x′‖²` crosses `θ²`.
    ///
    /// Safe only when the inner engine's index-construction bound depends
    /// on nothing but the vector itself (STR-L2, generic decay — never
    /// the AP family, whose boundary moves with the stream maximum `m`):
    /// a query overlapping only the unindexed prefix of `x` satisfies
    /// `dot(prefix(x), y) ≤ ‖prefix(x)‖ < θ` by Cauchy–Schwarz, so a
    /// shard holding only such prefixes genuinely cannot produce a pair.
    /// The hot, frequent dimensions live in the prefix, so this is what
    /// keeps hot dimensions from lighting every shard up.
    ///
    /// The replay slack (θ − 1e-9, vs the engines' θ − 1e-12) crosses
    /// no later than the engine's own boundary, so the stamped set is
    /// always a superset of the indexed set.
    pub fn with_suffix_occupancy(mut self, theta: f64) -> Self {
        let slack = (theta - 1e-9).max(0.0);
        self.suffix_theta_sq = Some(slack * slack);
        self
    }

    /// The first coordinate position of `record` the occupancy table must
    /// cover ([`Router::with_suffix_occupancy`]); `nnz` when the vector
    /// never crosses the boundary (nothing indexable).
    fn stamp_start(&self, record: &StreamRecord) -> usize {
        let Some(theta_sq) = self.suffix_theta_sq else {
            return 0;
        };
        let mut bt = 0.0;
        for (pos, &w) in record.vector.weights().iter().enumerate() {
            bt += w * w;
            if bt >= theta_sq {
                return pos;
            }
        }
        record.vector.nnz()
    }

    /// Whether this router consults the occupancy table (as opposed to
    /// broadcasting).
    pub fn is_candidate_aware(&self) -> bool {
        self.horizon.is_some()
    }

    /// The shard that owns (inserts) `record`: the less-loaded of the
    /// shards owning its two last — rarest — dimension slices (two-choice
    /// balancing keeps one hot cluster from saturating a shard while
    /// records still cluster by rare terms), or an id hash for empty
    /// vectors. Load is measured in *deliveries* (owned inserts plus
    /// routed queries — what a shard actually processes), so a slice
    /// that attracts heavy query traffic sheds ownership to its
    /// alternative even when its insert count looks balanced.
    /// Deterministic given the stream prefix, which is all correctness
    /// needs — any assignment inserting each record exactly once is
    /// valid.
    pub fn owner(&self, record: &StreamRecord) -> usize {
        let load = if self.balance_on_inserts {
            &self.inserted
        } else {
            &self.delivered
        };
        let dims = record.vector.dims();
        match *dims {
            [] => fib_shard(record.id, self.shards),
            [.., a, b] => {
                let (wa, wb) = (
                    fib_shard(a as u64, self.shards),
                    fib_shard(b as u64, self.shards),
                );
                if load[wa] < load[wb] {
                    wa
                } else {
                    wb
                }
            }
            [d] => fib_shard(d as u64, self.shards),
        }
    }

    /// The shards whose index may hold a candidate for `record` at its
    /// timestamp: one bit per shard with possibly-live occupancy on at
    /// least one of the record's dimensions (a superset of the exact
    /// stamp answer, over by at most one sub-epoch plus any row-hash
    /// collisions). Does **not** include the owner bit unless occupied;
    /// may be zero. Read-only: the table is neither rotated nor stamped.
    pub fn query_mask(&self, record: &StreamRecord) -> u64 {
        let Some(_) = self.horizon else {
            return self.full_mask;
        };
        let query_sub = self.table.sub_of(record.t.seconds());
        let mut mask = 0u64;
        for &dim in record.vector.dims() {
            mask |= self.table.occupied(self.table.row_of(dim), query_sub);
            if mask == self.full_mask {
                break;
            }
        }
        mask & self.full_mask
    }

    /// Records that `record` was inserted at `shard`, stamping its
    /// dimensions. By default *every* coordinate is stamped — indexed
    /// suffix and residual prefix alike — so the mask can never miss a
    /// shard capable of producing a candidate; under
    /// [`Router::with_suffix_occupancy`] the provably-unindexable prefix
    /// is left out.
    pub fn note_insert(&mut self, shard: usize, record: &StreamRecord) {
        if self.horizon.is_none() {
            return;
        }
        self.table.advance(record.t.seconds());
        if let Some(&max_dim) = record.vector.dims().last() {
            self.table.maybe_grow(max_dim);
        }
        let from = self.stamp_start(record);
        for &dim in &record.vector.dims()[from..] {
            let row = self.table.row_of(dim);
            self.table.stamp(row, shard);
        }
        self.inserted[shard] += 1;
        self.delivered[shard] += 1;
    }

    /// Routes one record end to end: computes the query mask, adds the
    /// owner (the owner always receives the record — it must insert it),
    /// stamps the insertion, and updates the skip counters. Returns
    /// `(mask, owner)`.
    ///
    /// Equivalent to `query_mask` + `note_insert`, fused into a single
    /// pass over the rows: each of the record's dimension rows is read
    /// (mask OR) and written (owner stamp) while hot.
    pub fn route(&mut self, record: &StreamRecord) -> (u64, usize) {
        let owner = self.owner(record);
        let owner_bit = 1u64 << owner;
        let mut mask = owner_bit;
        if self.horizon.is_some() {
            let now = record.t.seconds();
            self.table.advance(now);
            if let Some(&max_dim) = record.vector.dims().last() {
                self.table.maybe_grow(max_dim);
            }
            let query_sub = self.table.sub_of(now);
            let stamp_from = self.stamp_start(record);
            for (pos, &dim) in record.vector.dims().iter().enumerate() {
                if mask == self.full_mask && pos < stamp_from {
                    continue; // nothing left to learn, nothing to stamp
                }
                let row = self.table.row_of(dim);
                if mask != self.full_mask {
                    mask |= self.table.occupied(row, query_sub) & self.full_mask;
                }
                if pos >= stamp_from {
                    self.table.stamp(row, owner);
                }
            }
        } else {
            mask = self.full_mask;
        }
        self.inserted[owner] += 1;
        // Tally deliveries — every set mask bit is one record a shard
        // must process — so the next owner() decision sees query load,
        // not just insert load.
        let mut bits = mask;
        while bits != 0 {
            let w = bits.trailing_zeros() as usize;
            self.delivered[w] += 1;
            bits &= bits - 1;
        }
        self.records += 1;
        self.skipped += (self.shards as u32 - mask.count_ones()) as u64;
        (mask, owner)
    }

    /// Records routed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Deliveries (owned inserts + routed queries) per shard so far.
    pub fn delivered(&self) -> &[u64] {
        &self.delivered
    }

    /// Query sends avoided so far — for each record, the number of shards
    /// that never saw it.
    pub fn skipped_sends(&self) -> u64 {
        self.skipped
    }

    /// Bytes held by the occupancy table — bounded by
    /// `(SUB_EPOCHS + 1) × MAX_ROWS × 8` regardless of how many distinct
    /// dimensions the stream has used.
    pub fn occupancy_bytes(&self) -> usize {
        self.table.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn rec(id: u64, t: f64, dims: &[u32]) -> StreamRecord {
        let entries: Vec<(u32, f64)> = dims.iter().map(|&d| (d, 1.0)).collect();
        StreamRecord::new(id, Timestamp::new(t), unit_vector(&entries))
    }

    #[test]
    fn unseen_dimensions_miss_every_shard() {
        // A record whose dimensions have no live occupancy anywhere gets
        // an *empty* query mask — the driver sends it only to its owner
        // (for insertion), never as a query.
        let mut r = Router::new(4, Some(10.0));
        assert_eq!(r.query_mask(&rec(0, 0.0, &[3, 7])), 0);
        let (mask, owner) = r.route(&rec(0, 0.0, &[3, 7]));
        assert_eq!(mask, 1 << owner, "owner-only: no query sends");
        assert_eq!(r.skipped_sends(), 3);
    }

    #[test]
    fn occupancy_routes_shared_dimensions() {
        let mut r = Router::new(4, Some(10.0));
        let (_, owner) = r.route(&rec(0, 0.0, &[5]));
        // A later record sharing dim 5 must be routed to the owner.
        let mask = r.query_mask(&rec(1, 1.0, &[5]));
        assert_eq!(mask, 1 << owner);
        // A record on a disjoint dimension is not.
        assert_eq!(r.query_mask(&rec(2, 1.0, &[6])), 0);
    }

    #[test]
    fn occupancy_expires_within_one_sub_epoch_past_the_horizon() {
        // Epoch granularity: an insert stays possibly-live through the
        // horizon (never expires early — correctness) and must expire
        // within one extra sub-epoch (τ/8 — the documented slack).
        let mut r = Router::new(2, Some(10.0));
        let (_, owner) = r.route(&rec(0, 0.0, &[5]));
        assert_eq!(r.query_mask(&rec(1, 10.0, &[5])), 1 << owner, "t=τ live");
        let slack = 10.0 / SUB_EPOCHS as f64;
        assert_eq!(
            r.query_mask(&rec(1, 10.0 + slack, &[5])),
            0,
            "t>τ+τ/{SUB_EPOCHS} expired"
        );
    }

    #[test]
    fn rotation_never_expires_a_live_insert() {
        // Sweep insert/query gaps across sub-epoch boundaries: a gap
        // within the horizon must always keep the shard in the mask.
        for gap_tenths in 0..=100u32 {
            let gap = gap_tenths as f64 * 0.1;
            let mut r = Router::new(2, Some(10.0));
            let (_, owner) = r.route(&rec(0, 3.21, &[5]));
            let mask = r.query_mask(&rec(1, 3.21 + gap, &[5]));
            assert_eq!(mask, 1 << owner, "gap={gap}");
        }
    }

    #[test]
    fn broadcast_router_always_returns_the_full_mask() {
        let mut r = Router::new(3, None);
        assert_eq!(r.query_mask(&rec(0, 0.0, &[1])), 0b111);
        let (mask, _) = r.route(&rec(0, 0.0, &[1]));
        assert_eq!(mask, 0b111);
        assert_eq!(r.skipped_sends(), 0);
        assert!(!r.is_candidate_aware());
    }

    #[test]
    fn owner_is_deterministic_and_dimension_driven() {
        let r = Router::new(8, Some(1.0));
        // Same last dimension → same owner, regardless of id or prefix.
        let a = r.owner(&rec(1, 0.0, &[2, 9]));
        let b = r.owner(&rec(77, 5.0, &[4, 9]));
        assert_eq!(a, b);
        // Owners spread over shards as the anchor dimension varies.
        let owners: std::collections::HashSet<usize> =
            (0..64u32).map(|d| r.owner(&rec(0, 0.0, &[d]))).collect();
        assert!(owners.len() >= 4, "hash spread: {owners:?}");
    }

    #[test]
    fn suffix_occupancy_skips_the_unindexed_prefix() {
        // θ = 0.8: for a two-coordinate vector split ~0.45/0.89, the
        // first coordinate stays under θ² and is never indexed by an
        // ℓ2 engine — so it must not light up occupancy either.
        let mut r = Router::new(2, Some(100.0)).with_suffix_occupancy(0.8);
        let v = unit_vector(&[(3, 1.0), (7, 2.0)]);
        let record = StreamRecord::new(0, Timestamp::new(0.0), v);
        let (_, owner) = r.route(&record);
        // Prefix dim 3: unstamped; suffix dim 7: stamped at the owner.
        assert_eq!(r.query_mask(&rec(1, 1.0, &[3])), 0, "prefix dim");
        assert_eq!(r.query_mask(&rec(1, 1.0, &[7])), 1 << owner, "suffix dim");
        // Without the option both dims are stamped.
        let mut r = Router::new(2, Some(100.0));
        let v = unit_vector(&[(3, 1.0), (7, 2.0)]);
        let (_, owner) = r.route(&StreamRecord::new(0, Timestamp::new(0.0), v));
        assert_eq!(r.query_mask(&rec(1, 1.0, &[3])), 1 << owner);
    }

    #[test]
    fn sixty_four_shards_mask_does_not_overflow() {
        let r = Router::new(64, None);
        assert_eq!(r.query_mask(&rec(0, 0.0, &[1])), u64::MAX);
    }

    #[test]
    fn streaming_vocabulary_keeps_memory_bounded() {
        // The PR-3 open item: ever-fresh dimensions must not grow the
        // table past the documented cap.
        let mut r = Router::new(4, Some(10.0));
        // Mask words (8 B/row/plane) plus dirty-row lists: each row
        // enters a plane's list at most once (length ≤ rows), and Vec
        // doubling caps the capacity at twice that — ≤ 8 B/row/plane.
        let bound = (SUB_EPOCHS + 1) * MAX_ROWS * (8 + 8);
        for i in 0..200_000u64 {
            // A brand-new dimension every record, forever.
            let dim = (i * 17) as u32;
            r.route(&rec(i, i as f64 * 0.01, &[dim]));
            assert!(
                r.occupancy_bytes() <= bound,
                "table grew past the cap at record {i}: {} > {bound}",
                r.occupancy_bytes()
            );
        }
        let words_at_cap = (SUB_EPOCHS + 1) * MAX_ROWS * 8;
        assert!(
            r.occupancy_bytes() >= words_at_cap,
            "row cap reached: {} < {words_at_cap}",
            r.occupancy_bytes()
        );
    }

    #[test]
    fn long_silence_clears_the_whole_window() {
        let mut r = Router::new(2, Some(10.0));
        let (_, owner) = r.route(&rec(0, 0.0, &[5]));
        assert_eq!(r.query_mask(&rec(1, 5.0, &[5])), 1 << owner);
        // A jump far past the horizon: everything must be stale.
        let (mask2, owner2) = r.route(&rec(2, 1000.0, &[5]));
        assert_eq!(mask2, 1 << owner2, "no stale occupancy after the jump");
        assert_eq!(r.query_mask(&rec(3, 1001.0, &[5])), 1 << owner2);
    }

    #[test]
    #[should_panic(expected = "shards must be in 1..=64")]
    fn more_than_sixty_four_shards_rejected() {
        Router::new(65, Some(1.0));
    }
}

//! Dev probe: what the routing decision itself costs, isolated from the
//! join (`cargo run --release -p sssj-parallel --example router_cost`).
//!
//! Numbers on the PR-3 container: broadcast ~9 ns/record (owner hash +
//! counters only), full occupancy ~100 ns, suffix occupancy ~130 ns —
//! the stamp-table walk is cache-bound, and suffix mode trades a few
//! extra mask probes (sparser masks exit the full-mask fast path less
//! often) for roughly double the skip rate.

use sssj_data::{generate, preset, Preset};
use sssj_parallel::Router;
use std::time::Instant;

fn main() {
    let stream = generate(&preset(Preset::Tweets, 100_000));
    let horizon = 10.0;
    for label in ["full-occupancy", "suffix-occupancy", "broadcast"] {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let mut router = match label {
                "full-occupancy" => Router::new(4, Some(horizon)),
                "suffix-occupancy" => Router::new(4, Some(horizon)).with_suffix_occupancy(0.5),
                _ => Router::new(4, None),
            };
            let start = Instant::now();
            let mut acc = 0u64;
            for r in &stream {
                let (mask, owner) = router.route(r);
                acc = acc.wrapping_add(mask).wrapping_add(owner as u64);
            }
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(acc);
            best = best.min(elapsed);
        }
        println!(
            "{label}: {:.1} ms for 100k records ({:.0} ns/record)",
            best * 1e3,
            best * 1e4
        );
    }
}

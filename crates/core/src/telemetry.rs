//! The factory's telemetry tap: every pipeline built through
//! [`crate::JoinSpec::build`] is wrapped in a [`TelemetryJoin`] that
//! feeds the process-global [`sssj_metrics::Registry`].
//!
//! The wrapper is the *outermost* layer, added after every spec wrapper,
//! so `sssj_core_records_total` / `sssj_core_pairs_total` count exactly
//! what the application fed in and got back — the invariant the CI
//! serve-smoke asserts against a scraped `METRICS` reply. The per-record
//! cost is two relaxed striped counter bumps (no allocation, preserving
//! the zero-alloc steady-state contract); the engine-shape counters
//! (entries traversed, candidates, full similarities, labeled by engine
//! name) are flushed as deltas only on the cold [`StreamJoin::stats`] /
//! [`StreamJoin::finish`] paths. The wrapper is also where the
//! [`sssj_metrics::trace`] `ingest` span lives — one span per record,
//! carrying the record id and the pair count, inheriting whatever trace
//! id the caller (a net session, the sharded router) parked on the
//! thread. With both `SSSJ_TELEMETRY=off` and `SSSJ_TRACE=off` the
//! factory skips the wrapper entirely.

use std::cell::Cell;

use sssj_metrics::registry::{Counter, Registry};
use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord};

use crate::algorithm::StreamJoin;

/// Snapshot of the engine-shape counters already flushed to the
/// registry, so repeated `stats()` calls add only deltas.
#[derive(Clone, Copy, Default)]
struct Flushed {
    entries: u64,
    candidates: u64,
    full_sims: u64,
}

/// The outermost pipeline wrapper: counts records in and pairs out on
/// the hot path, engine-shape counters on the cold paths. Transparent
/// otherwise — `name()`, `stats()`, `resume_point()` all forward.
pub struct TelemetryJoin {
    inner: Box<dyn StreamJoin>,
    records: &'static Counter,
    pairs: &'static Counter,
    entries: &'static Counter,
    candidates: &'static Counter,
    full_sims: &'static Counter,
    flushed: Cell<Flushed>,
}

impl TelemetryJoin {
    /// Wraps `inner`, resolving its metric handles once. When both
    /// telemetry (`SSSJ_TELEMETRY=off`) and tracing (`SSSJ_TRACE=off`)
    /// are disabled the inner join is returned unwrapped — record-path
    /// cost is exactly zero. (With telemetry off but tracing on the
    /// wrapper stays: its counters are individually gated, and the
    /// `ingest` span needs the tap.)
    pub fn wrap(inner: Box<dyn StreamJoin>) -> Box<dyn StreamJoin> {
        let reg = Registry::global();
        if !sssj_metrics::telemetry_enabled() && !sssj_metrics::trace_enabled() {
            return inner;
        }
        let engine = inner.name();
        let engine_label: &[(&str, &str)] = &[("engine", engine.as_str())];
        Box::new(TelemetryJoin {
            records: reg.counter("sssj_core_records_total", "records ingested"),
            pairs: reg.counter("sssj_core_pairs_total", "similar pairs emitted"),
            entries: reg.counter_with(
                "sssj_core_entries_traversed_total",
                "posting entries examined during candidate generation",
                engine_label,
            ),
            candidates: reg.counter_with(
                "sssj_core_candidates_total",
                "vectors admitted to the candidate accumulator",
                engine_label,
            ),
            full_sims: reg.counter_with(
                "sssj_core_full_sims_total",
                "exact residual dot products (candidates that survived pruning)",
                engine_label,
            ),
            flushed: Cell::new(Flushed::default()),
            inner,
        })
    }

    fn flush_shape(&self, s: &JoinStats) {
        let prev = self.flushed.get();
        self.entries
            .add(s.entries_traversed.saturating_sub(prev.entries));
        self.candidates
            .add(s.candidates.saturating_sub(prev.candidates));
        self.full_sims
            .add(s.full_sims.saturating_sub(prev.full_sims));
        self.flushed.set(Flushed {
            entries: s.entries_traversed,
            candidates: s.candidates,
            full_sims: s.full_sims,
        });
    }
}

impl StreamJoin for TelemetryJoin {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let before = out.len();
        let mut span =
            sssj_metrics::trace::span_with(sssj_metrics::trace::Stage::Ingest, record.id, 0);
        self.inner.process(record, out);
        span.set_args(record.id, (out.len() - before) as u64);
        drop(span);
        self.records.inc();
        self.pairs.add((out.len() - before) as u64);
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        let before = out.len();
        self.inner.finish(out);
        self.pairs.add((out.len() - before) as u64);
        self.flush_shape(&self.inner.stats());
    }

    fn stats(&self) -> JoinStats {
        let s = self.inner.stats();
        self.flush_shape(&s);
        s
    }

    fn live_postings(&self) -> u64 {
        self.inner.live_postings()
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn resume_point(&self) -> Option<(u64, f64)> {
        self.inner.resume_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JoinSpec;
    use sssj_types::{vector::unit_vector, Timestamp};

    #[test]
    fn factory_counts_records_and_pairs_exactly() {
        if !sssj_metrics::telemetry_enabled() {
            return; // the off lane builds unwrapped joins; nothing counts
        }
        let reg = Registry::global();
        let records = reg.counter("sssj_core_records_total", "records ingested");
        let pairs = reg.counter("sssj_core_pairs_total", "similar pairs emitted");
        let (r0, p0) = (records.value(), pairs.value());

        let spec: JoinSpec = "str-l2?theta=0.7&lambda=0.1".parse().unwrap();
        let mut join = spec.build().unwrap();
        let mut out = Vec::new();
        for (id, t) in [(0u64, 0.0), (1, 1.0), (2, 90.0)] {
            join.process(
                &StreamRecord::new(id, Timestamp::new(t), unit_vector(&[(7, 1.0)])),
                &mut out,
            );
        }
        join.finish(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(records.value() - r0, 3);
        assert_eq!(pairs.value() - p0, 1);
    }

    #[test]
    fn engine_shape_counters_flush_as_deltas() {
        if !sssj_metrics::telemetry_enabled() {
            return; // the off lane builds unwrapped joins; nothing counts
        }
        let reg = Registry::global();
        let spec: JoinSpec = "str-l2?theta=0.7&lambda=0.1".parse().unwrap();
        let mut join = spec.build().unwrap();
        let entries = reg.counter_with(
            "sssj_core_entries_traversed_total",
            "posting entries examined during candidate generation",
            &[("engine", &join.name())],
        );
        let e0 = entries.value();
        let mut out = Vec::new();
        for (id, t) in [(0u64, 0.0), (1, 1.0), (2, 1.5)] {
            join.process(
                &StreamRecord::new(id, Timestamp::new(t), unit_vector(&[(7, 1.0)])),
                &mut out,
            );
        }
        let s1 = join.stats();
        assert_eq!(entries.value() - e0, s1.entries_traversed);
        // A second stats() call flushes nothing new.
        let s2 = join.stats();
        assert_eq!(s2, s1);
        assert_eq!(entries.value() - e0, s1.entries_traversed);
    }

    #[test]
    fn wrapper_is_transparent() {
        let spec: JoinSpec = "str-l2?theta=0.7&lambda=0.1".parse().unwrap();
        let join = spec.build().unwrap();
        assert_eq!(join.name(), "STR-L2");
        assert_eq!(join.resume_point(), None);
    }
}

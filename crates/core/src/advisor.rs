//! Parameter selection: the §3 recipe plus data-driven fitting.
//!
//! Problem 1 takes two parameters, the similarity threshold `θ` and the
//! decay rate `λ`. Section 3 of the paper gives a three-step recipe for
//! choosing them from application-level judgments:
//!
//! 1. `θ` — the lowest similarity between two *simultaneously arriving*
//!    vectors the application still deems similar;
//! 2. `τ` — the smallest arrival-time gap between two *identical* vectors
//!    the application already deems dissimilar;
//! 3. `λ = ln(1/θ)/τ`.
//!
//! [`advise`] implements that recipe from raw judgments;
//! [`advise_from_examples`] derives the judgments from labeled example
//! pairs. Beyond the paper, [`fit_theta_for_output`] and
//! [`fit_lambda_for_memory`] pick the remaining degree of freedom
//! empirically by running the join over a sample of the stream: output
//! volume is non-increasing in `θ` and live state is non-increasing in
//! `λ`, so both admit a bisection.

use sssj_index::IndexKind;
use sssj_types::StreamRecord;

use crate::{run_stream, SssjConfig, StreamJoin, Streaming};

/// The outcome of parameter selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Advice {
    /// Chosen similarity threshold `θ`.
    pub theta: f64,
    /// Chosen decay rate `λ`.
    pub lambda: f64,
    /// The induced time horizon `τ = ln(1/θ)/λ` (equals the judgment gap
    /// when produced by [`advise`]).
    pub tau: f64,
}

impl Advice {
    /// The join configuration carrying this advice.
    pub fn config(&self) -> SssjConfig {
        SssjConfig::new(self.theta, self.lambda)
    }

    /// Expected number of in-horizon records — the memory driver for every
    /// index — for a stream arriving at `rate` records per time unit.
    pub fn expected_window(&self, rate: f64) -> f64 {
        assert!(rate >= 0.0, "arrival rate must be non-negative: {rate}");
        rate * self.tau
    }
}

/// Errors from data-driven parameter selection.
#[derive(Clone, Debug, PartialEq)]
pub enum AdvisorError {
    /// No examples in a category that requires at least one.
    EmptyExamples(&'static str),
    /// An example value is outside its valid range.
    BadExample(&'static str, f64),
    /// The target is unreachable on the given sample (e.g. even θ at the
    /// bracket edge produces too little / too much output).
    Unreachable(&'static str),
}

impl std::fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdvisorError::EmptyExamples(what) => {
                write!(f, "no {what} examples provided")
            }
            AdvisorError::BadExample(what, v) => {
                write!(f, "invalid {what} example: {v}")
            }
            AdvisorError::Unreachable(what) => {
                write!(f, "target {what} unreachable within the search bracket")
            }
        }
    }
}

impl std::error::Error for AdvisorError {}

/// The §3 recipe verbatim: `θ` and `τ` come from application judgments,
/// `λ = ln(1/θ)/τ` follows.
///
/// ```
/// use sssj_core::advisor::advise;
///
/// // "0.7-cosine posts arriving together are near-duplicates; an
/// //  identical repost 600 s later is fresh content."
/// let a = advise(0.7, 600.0);
/// assert!((a.tau - 600.0).abs() < 1e-9);
/// assert!((a.config().tau() - 600.0).abs() < 1e-9);
/// ```
pub fn advise(theta: f64, tau: f64) -> Advice {
    let config = SssjConfig::from_horizon(theta, tau);
    Advice {
        theta,
        lambda: config.lambda,
        tau,
    }
}

/// Derives the §3 judgments from labeled examples:
///
/// * `similar_at_zero_gap` — cosine similarities of example pairs that
///   arrived (nearly) together and are judged **similar**; `θ` is their
///   minimum, so every example stays above threshold.
/// * `dissimilar_gaps` — arrival gaps of example *identical* pairs judged
///   **dissimilar**; `τ` is their minimum, so every example falls beyond
///   the horizon.
pub fn advise_from_examples(
    similar_at_zero_gap: &[f64],
    dissimilar_gaps: &[f64],
) -> Result<Advice, AdvisorError> {
    if similar_at_zero_gap.is_empty() {
        return Err(AdvisorError::EmptyExamples("similar-pair"));
    }
    if dissimilar_gaps.is_empty() {
        return Err(AdvisorError::EmptyExamples("dissimilar-gap"));
    }
    let mut theta = f64::INFINITY;
    for &s in similar_at_zero_gap {
        if !(s > 0.0 && s <= 1.0) || s.is_nan() {
            return Err(AdvisorError::BadExample("similarity", s));
        }
        theta = theta.min(s);
    }
    let mut tau = f64::INFINITY;
    for &g in dissimilar_gaps {
        if g <= 0.0 || g.is_nan() || !g.is_finite() {
            return Err(AdvisorError::BadExample("gap", g));
        }
        tau = tau.min(g);
    }
    // θ = 1 would make the horizon zero; clamp just below so identical
    // simultaneous pairs still match.
    if theta >= 1.0 {
        theta = 1.0 - 1e-9;
    }
    Ok(advise(theta, tau))
}

/// Mean arrival rate (records per time unit) of a sample stream; `None`
/// for streams without a positive time span.
pub fn arrival_rate(records: &[StreamRecord]) -> Option<f64> {
    let first = records.first()?;
    let last = records.last()?;
    let span = last.t.delta(first.t);
    (span > 0.0).then(|| (records.len() - 1) as f64 / span)
}

fn pairs_at(sample: &[StreamRecord], theta: f64, lambda: f64) -> u64 {
    let mut join = Streaming::new(SssjConfig::new(theta, lambda), IndexKind::L2);
    run_stream(&mut join, sample).len() as u64
}

/// Finds the largest `θ` whose output on `sample` still reaches
/// `min_pairs` pairs, by bisection over `[theta_lo, theta_hi]`. Output
/// volume is non-increasing in `θ`, so the result is well-defined up to
/// `tol`. Use when the application knows how much output it can consume
/// (e.g. a downstream dedup queue) rather than a similarity judgment.
pub fn fit_theta_for_output(
    sample: &[StreamRecord],
    lambda: f64,
    min_pairs: u64,
    theta_lo: f64,
    theta_hi: f64,
    tol: f64,
) -> Result<Advice, AdvisorError> {
    if sample.is_empty() {
        return Err(AdvisorError::EmptyExamples("sample-stream"));
    }
    assert!(
        0.0 < theta_lo && theta_lo < theta_hi && theta_hi <= 1.0,
        "invalid bracket [{theta_lo}, {theta_hi}]"
    );
    assert!(tol > 0.0, "tolerance must be positive: {tol}");
    if pairs_at(sample, theta_lo, lambda) < min_pairs {
        return Err(AdvisorError::Unreachable("output volume"));
    }
    let (mut lo, mut hi) = (theta_lo, theta_hi);
    // Invariant: pairs(lo) ≥ min_pairs; hi may or may not reach it.
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if pairs_at(sample, mid, lambda) >= min_pairs {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(advise(lo, SssjConfig::new(lo, lambda).tau()))
}

fn peak_postings_at(sample: &[StreamRecord], theta: f64, lambda: f64) -> u64 {
    let mut join = Streaming::new(SssjConfig::new(theta, lambda), IndexKind::L2);
    let _ = run_stream(&mut join, sample);
    join.stats().peak_postings
}

/// Finds the smallest `λ` that keeps the peak number of live posting
/// entries on `sample` at or below `max_peak_postings`, by bisection over
/// `[lambda_lo, lambda_hi]`. Live state shrinks as `λ` grows (the horizon
/// `τ = ln(1/θ)/λ` contracts), so this picks the gentlest forgetting that
/// fits the memory budget.
pub fn fit_lambda_for_memory(
    sample: &[StreamRecord],
    theta: f64,
    max_peak_postings: u64,
    lambda_lo: f64,
    lambda_hi: f64,
    tol: f64,
) -> Result<Advice, AdvisorError> {
    if sample.is_empty() {
        return Err(AdvisorError::EmptyExamples("sample-stream"));
    }
    assert!(
        0.0 <= lambda_lo && lambda_lo < lambda_hi,
        "invalid bracket [{lambda_lo}, {lambda_hi}]"
    );
    assert!(tol > 0.0, "tolerance must be positive: {tol}");
    if peak_postings_at(sample, theta, lambda_hi) > max_peak_postings {
        return Err(AdvisorError::Unreachable("memory budget"));
    }
    if lambda_lo > 0.0 && peak_postings_at(sample, theta, lambda_lo) <= max_peak_postings {
        // Even the gentlest decay fits.
        return Ok(advise(theta, SssjConfig::new(theta, lambda_lo).tau()));
    }
    let (mut lo, mut hi) = (lambda_lo, lambda_hi);
    // Invariant: peak(hi) ≤ budget; lo does not fit (or is zero/untested).
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if peak_postings_at(sample, theta, mid) <= max_peak_postings {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(advise(theta, SssjConfig::new(theta, hi).tau()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn near_dup_stream(n: u64, gap: f64) -> Vec<StreamRecord> {
        // Identical singleton vectors arriving every `gap`: pairs exist at
        // every Δt multiple of `gap`, so output volume responds to both
        // parameters smoothly.
        (0..n)
            .map(|i| StreamRecord::new(i, Timestamp::new(i as f64 * gap), unit_vector(&[(7, 1.0)])))
            .collect()
    }

    #[test]
    fn advise_matches_recipe() {
        let a = advise(0.5, 100.0);
        assert!((a.lambda - (2.0f64).ln() / 100.0).abs() < 1e-12);
        assert!((a.config().tau() - 100.0).abs() < 1e-9);
        assert!((a.expected_window(3.0) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn examples_take_min_similarity_and_min_gap() {
        let a = advise_from_examples(&[0.9, 0.62, 0.75], &[500.0, 120.0, 900.0]).unwrap();
        assert_eq!(a.theta, 0.62);
        assert_eq!(a.tau, 120.0);
    }

    #[test]
    fn identical_similar_examples_clamp_theta_below_one() {
        let a = advise_from_examples(&[1.0], &[10.0]).unwrap();
        assert!(a.theta < 1.0 && a.theta > 0.999);
    }

    #[test]
    fn example_errors() {
        assert_eq!(
            advise_from_examples(&[], &[1.0]),
            Err(AdvisorError::EmptyExamples("similar-pair"))
        );
        assert_eq!(
            advise_from_examples(&[0.5], &[]),
            Err(AdvisorError::EmptyExamples("dissimilar-gap"))
        );
        assert!(matches!(
            advise_from_examples(&[-0.1], &[1.0]),
            Err(AdvisorError::BadExample("similarity", _))
        ));
        assert!(matches!(
            advise_from_examples(&[0.5], &[0.0]),
            Err(AdvisorError::BadExample("gap", _))
        ));
        assert!(matches!(
            advise_from_examples(&[0.5], &[f64::INFINITY]),
            Err(AdvisorError::BadExample("gap", _))
        ));
    }

    #[test]
    fn arrival_rate_of_uniform_stream() {
        let s = near_dup_stream(11, 2.0); // 10 gaps of 2.0 over 20 time units
        assert!((arrival_rate(&s).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(arrival_rate(&[]), None);
        assert_eq!(arrival_rate(&s[..1]), None);
    }

    #[test]
    fn fit_theta_reaches_target_output() {
        let s = near_dup_stream(40, 1.0);
        let lambda = 0.1;
        let a = fit_theta_for_output(&s, lambda, 60, 0.05, 0.99, 1e-3).unwrap();
        // The fitted θ must achieve the target...
        assert!(pairs_at(&s, a.theta, lambda) >= 60);
        // ...and be near-maximal: nudging θ up by tolerance loses it.
        assert!(pairs_at(&s, (a.theta + 2e-3).min(0.99), lambda) < 60);
    }

    #[test]
    fn fit_theta_unreachable_target_errors() {
        let s = near_dup_stream(5, 1.0);
        assert_eq!(
            fit_theta_for_output(&s, 0.5, 1_000_000, 0.05, 0.99, 1e-3),
            Err(AdvisorError::Unreachable("output volume"))
        );
        assert_eq!(
            fit_theta_for_output(&[], 0.5, 1, 0.05, 0.99, 1e-3),
            Err(AdvisorError::EmptyExamples("sample-stream"))
        );
    }

    #[test]
    fn fit_lambda_respects_memory_budget() {
        let s = near_dup_stream(200, 1.0);
        let theta = 0.5;
        let budget = 20;
        let a = fit_lambda_for_memory(&s, theta, budget, 1e-4, 5.0, 1e-4).unwrap();
        assert!(peak_postings_at(&s, theta, a.lambda) <= budget);
        // Near-minimal: materially gentler decay would blow the budget.
        let gentler = (a.lambda - 5e-3).max(1e-4);
        if gentler < a.lambda {
            assert!(peak_postings_at(&s, theta, gentler) > budget);
        }
    }

    #[test]
    fn fit_lambda_trivial_budget() {
        let s = near_dup_stream(10, 1.0);
        // Budget so large even λ_lo fits: the gentlest decay is returned.
        let a = fit_lambda_for_memory(&s, 0.5, 1_000_000, 0.01, 1.0, 1e-4).unwrap();
        assert_eq!(a.lambda, 0.01);
    }

    #[test]
    fn fit_lambda_unreachable_budget_errors() {
        let s = near_dup_stream(50, 0.0); // all simultaneous: horizon can't help
        assert_eq!(
            fit_lambda_for_memory(&s, 0.5, 1, 1e-4, 10.0, 1e-3),
            Err(AdvisorError::Unreachable("memory budget"))
        );
    }
}

//! Reporting-latency measurement.
//!
//! §4 of the paper notes MB's drawback: "all similar pairs that span
//! across two time intervals are reported after the end of the first
//! interval" — undesirable when applications need pairs as soon as both
//! items are present. This module quantifies that: the *report delay* of
//! a pair is the stream time at which the algorithm emitted it minus the
//! arrival time of its later member. STR reports every pair at delay 0;
//! MB delays within-window pairs by up to 2τ.

use std::collections::HashMap;

use sssj_types::{StreamRecord, VectorId};

use crate::algorithm::StreamJoin;

/// Distribution summary of report delays, in stream-time units.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DelayStats {
    /// Number of pairs measured.
    pub pairs: u64,
    /// Mean delay.
    pub mean: f64,
    /// Maximum delay.
    pub max: f64,
    /// Fraction of pairs reported immediately (delay ≤ ε).
    pub immediate_fraction: f64,
}

/// Runs `join` over `records`, attributing each emitted pair to the
/// stream time of the record whose processing emitted it, and comparing
/// against the pair's completion time (arrival of its later member).
///
/// Pairs flushed by `finish` are attributed to the last record's
/// timestamp (the earliest moment the flush could have happened).
pub fn measure_report_delay(join: &mut dyn StreamJoin, records: &[StreamRecord]) -> DelayStats {
    let arrival: HashMap<VectorId, f64> = records.iter().map(|r| (r.id, r.t.seconds())).collect();
    let mut delays: Vec<f64> = Vec::new();
    let mut out = Vec::new();
    let mut observe = |out: &mut Vec<sssj_types::SimilarPair>, now: f64| {
        for p in out.drain(..) {
            let completed = arrival[&p.left].max(arrival[&p.right]);
            delays.push((now - completed).max(0.0));
        }
    };
    for r in records {
        join.process(r, &mut out);
        observe(&mut out, r.t.seconds());
    }
    join.finish(&mut out);
    let end = records.last().map_or(0.0, |r| r.t.seconds());
    observe(&mut out, end);

    if delays.is_empty() {
        return DelayStats::default();
    }
    let pairs = delays.len() as u64;
    let mean = delays.iter().sum::<f64>() / pairs as f64;
    let max = delays.iter().copied().fold(0.0, f64::max);
    let immediate = delays.iter().filter(|&&d| d <= 1e-9).count();
    DelayStats {
        pairs,
        mean,
        max,
        immediate_fraction: immediate as f64 / pairs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MiniBatch, SssjConfig, Streaming};
    use sssj_index::IndexKind;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn stream() -> Vec<StreamRecord> {
        // Identical items spread over several horizons.
        (0..40)
            .map(|i| {
                StreamRecord::new(
                    i,
                    Timestamp::new(i as f64),
                    unit_vector(&[(1, 1.0), (2 + (i % 3) as u32, 0.3)]),
                )
            })
            .collect()
    }

    #[test]
    fn str_reports_immediately() {
        let records = stream();
        let mut join = Streaming::new(SssjConfig::new(0.6, 0.1), IndexKind::L2);
        let d = measure_report_delay(&mut join, &records);
        assert!(d.pairs > 0);
        assert_eq!(d.max, 0.0);
        assert_eq!(d.immediate_fraction, 1.0);
    }

    #[test]
    fn mb_delays_within_window_pairs() {
        let records = stream();
        let config = SssjConfig::new(0.6, 0.1); // τ ≈ 5.1
        let mut join = MiniBatch::new(config, IndexKind::L2);
        let d = measure_report_delay(&mut join, &records);
        assert!(d.pairs > 0);
        assert!(d.mean > 0.0, "MB must delay some pairs");
        // The paper's bound: nothing is delayed past 2τ (report happens
        // at the end of the window after the pair's window).
        assert!(
            d.max <= 2.0 * config.tau() + 1e-9,
            "max delay {} beyond 2τ {}",
            d.max,
            2.0 * config.tau()
        );
    }

    #[test]
    fn empty_stream_yields_default() {
        let mut join = Streaming::new(SssjConfig::new(0.6, 0.1), IndexKind::L2);
        assert_eq!(measure_report_delay(&mut join, &[]), DelayStats::default());
    }
}

//! [`PairSink`] — a push-style consumer of the join's pair output, and
//! [`SinkedJoin`], the wrapper that feeds one from any [`StreamJoin`].
//!
//! Every engine in the workspace reports pairs by appending to the
//! caller's `out` buffer; callers that *consume* the stream (the live
//! similarity graph of `sssj-graph`, metrics taps, external publishers)
//! previously had to drain that buffer into their own queue — one more
//! copy and one more allocation per batch. A [`PairSink`] receives each
//! pair by reference the moment it lands in the output buffer: the
//! wrapper tracks the buffer's length across the inner `process` call
//! and hands the new tail to the sink in place, so nothing is staged in
//! an intermediate `Vec`.
//!
//! For the sharded engine the wrapper naturally hangs off the *driver*:
//! workers batch pair returns through the driver's channel, the driver
//! appends them to `out` inside `process`/`finish`, and the sink sees
//! them right there — no per-worker plumbing.

use sssj_types::{SimilarPair, StreamRecord};

use crate::algorithm::StreamJoin;
use sssj_metrics::JoinStats;

/// A consumer of emitted pairs. `now` is the stream time at which the
/// pair was *delivered* (the timestamp of the record whose processing
/// surfaced it, or the stream watermark for end-of-stream flushes) —
/// for engines that report with delay (MiniBatch windows, sharded
/// batches) this is later than the pair's later member.
pub trait PairSink {
    /// Accepts one delivered pair.
    fn accept(&mut self, pair: &SimilarPair, now: f64);
}

/// A [`StreamJoin`] wrapper pushing every delivered pair into a
/// [`PairSink`] *in addition to* the normal output buffer. Transparent
/// otherwise: stats, name and resume point forward to the inner join.
pub struct SinkedJoin<S: PairSink> {
    inner: Box<dyn StreamJoin>,
    sink: S,
    /// Newest delivered timestamp — the `now` stamp for finish flushes.
    last_t: f64,
}

impl<S: PairSink> SinkedJoin<S> {
    /// Wraps `inner`, feeding `sink`.
    pub fn new(inner: Box<dyn StreamJoin>, sink: S) -> Self {
        // A resumed durable join continues mid-stream: start the
        // delivery clock at its watermark.
        let last_t = inner.resume_point().map_or(f64::NEG_INFINITY, |(_, t)| t);
        SinkedJoin {
            inner,
            sink,
            last_t,
        }
    }

    /// The sink (for querying consumers that expose state).
    pub fn sink(&self) -> &S {
        &self.sink
    }
}

impl<S: PairSink + Send> StreamJoin for SinkedJoin<S> {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let start = out.len();
        self.inner.process(record, out);
        let now = record.t.seconds();
        if now > self.last_t {
            self.last_t = now;
        }
        for p in &out[start..] {
            self.sink.accept(p, self.last_t);
        }
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        let start = out.len();
        self.inner.finish(out);
        for p in &out[start..] {
            self.sink.accept(p, self.last_t);
        }
    }

    fn stats(&self) -> JoinStats {
        self.inner.stats()
    }

    fn live_postings(&self) -> u64 {
        self.inner.live_postings()
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn resume_point(&self) -> Option<(u64, f64)> {
        self.inner.resume_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SssjConfig, Streaming};
    use sssj_index::IndexKind;
    use sssj_types::{vector::unit_vector, Timestamp};

    #[derive(Default)]
    struct Collecting(Vec<(u64, u64, f64)>);

    impl PairSink for Collecting {
        fn accept(&mut self, pair: &SimilarPair, now: f64) {
            self.0.push((pair.left, pair.right, now));
        }
    }

    #[test]
    fn sink_sees_every_pair_with_its_delivery_time() {
        let inner = Box::new(Streaming::new(SssjConfig::new(0.5, 0.01), IndexKind::L2));
        let mut join = SinkedJoin::new(inner, Collecting::default());
        let mut out = Vec::new();
        for (i, t) in [0.0, 1.0, 2.0].into_iter().enumerate() {
            let r = StreamRecord::new(i as u64, Timestamp::new(t), unit_vector(&[(1, 1.0)]));
            join.process(&r, &mut out);
        }
        join.finish(&mut out);
        // Three identical vectors: pairs (0,1)@1, (0,2)@2, (1,2)@2.
        let mut seen = join.sink().0.clone();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, vec![(0, 1, 1.0), (0, 2, 2.0), (1, 2, 2.0)]);
        // The sink saw exactly what the buffer got — no drop, no dup.
        assert_eq!(out.len(), join.sink().0.len());
    }
}

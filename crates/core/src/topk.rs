//! Top-k streaming similarity join: for each arrival, the `k` most
//! Δt-similar in-horizon predecessors.
//!
//! Applications such as near-duplicate *grouping* and streaming
//! recommendation want the best few matches per item rather than every
//! pair over a threshold. This variant layers per-record top-k selection
//! on the threshold join: `θ` acts as a quality floor (and provides the
//! time horizon that bounds state), `k` caps the per-record output.
//!
//! The construction is exact relative to those semantics because every
//! pair the underlying [`Streaming`] join emits during one `process` call
//! partners the *current* record — so selecting the `k` best of that batch
//! is precisely "the k most similar predecessors with `sim_Δt ≥ θ`".

use sssj_index::IndexKind;
use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord};

use crate::algorithm::StreamJoin;
use crate::config::SssjConfig;
use crate::streaming::Streaming;

/// Per-arrival top-k similarity join (STR-based).
///
/// ```
/// use sssj_core::{SssjConfig, StreamJoin, TopKJoin};
/// use sssj_index::IndexKind;
/// use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};
///
/// // Keep only the single best match per arrival.
/// let mut join = TopKJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2, 1);
/// let mut out = Vec::new();
/// // Two earlier items both match the third; only the more similar
/// // (and more recent) one is reported.
/// for (id, t, dims) in [
///     (0, 0.0, vec![(1, 1.0)]),
///     (1, 1.0, vec![(1, 1.0), (2, 0.2)]),
///     (2, 2.0, vec![(1, 1.0)]),
/// ] {
///     let r = StreamRecord::new(id, Timestamp::new(t), unit_vector(&dims));
///     join.process(&r, &mut out);
/// }
/// let for_record_2: Vec<_> = out.iter().filter(|p| p.right == 2).collect();
/// assert_eq!(for_record_2.len(), 1);
/// assert_eq!(for_record_2[0].left, 1); // closer in time, near-identical
/// ```
pub struct TopKJoin {
    inner: Streaming,
    k: usize,
    scratch: Vec<SimilarPair>,
    /// Pairs dropped by the `k` cap (observability).
    truncated: u64,
}

impl TopKJoin {
    /// Creates a top-k join over the given threshold join configuration.
    ///
    /// `k = 0` is rejected: it would report nothing while paying for the
    /// full join.
    pub fn new(config: SssjConfig, kind: IndexKind, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopKJoin {
            inner: Streaming::new(config, kind),
            k,
            scratch: Vec::new(),
            truncated: 0,
        }
    }

    /// The per-record output cap.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pairs that cleared the threshold but were cut by the `k` cap.
    pub fn truncated_pairs(&self) -> u64 {
        self.truncated
    }
}

impl StreamJoin for TopKJoin {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        self.scratch.clear();
        self.inner.process(record, &mut self.scratch);
        if self.scratch.len() > self.k {
            // Partial selection: the k best by similarity, ties broken
            // towards the more recent partner (larger left id) for
            // deterministic output.
            self.scratch.sort_unstable_by(|a, b| {
                b.similarity
                    .partial_cmp(&a.similarity)
                    .expect("similarities are finite")
                    .then(b.left.cmp(&a.left))
            });
            self.truncated += (self.scratch.len() - self.k) as u64;
            self.scratch.truncate(self.k);
        }
        out.extend(self.scratch.iter().copied());
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        self.inner.finish(out);
    }

    fn stats(&self) -> JoinStats {
        self.inner.stats()
    }

    fn live_postings(&self) -> u64 {
        self.inner.live_postings()
    }

    fn name(&self) -> String {
        format!("{}-top{}", self.inner.name(), self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::{dot, vector::unit_vector, Decay, Timestamp};

    fn rec(id: u64, t: f64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::new(t), unit_vector(entries))
    }

    fn random_stream(seed: u64, n: usize) -> Vec<StreamRecord> {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        (0..n as u64)
            .map(|i| {
                t += rng.random_range(0.0..0.8);
                let entries: Vec<(u32, f64)> = (0..rng.random_range(1..5))
                    .map(|_| (rng.random_range(0..10u32), rng.random_range(0.1..1.0)))
                    .collect();
                rec(i, t, &entries)
            })
            .collect()
    }

    /// Brute-force top-k: for each record, the k best in-horizon
    /// predecessors over the threshold.
    fn oracle(stream: &[StreamRecord], theta: f64, lambda: f64, k: usize) -> Vec<(u64, u64)> {
        let decay = Decay::new(lambda);
        let tau = decay.horizon(theta);
        let mut keys = Vec::new();
        for (i, r) in stream.iter().enumerate() {
            let mut matches: Vec<(f64, u64)> = stream[..i]
                .iter()
                .filter(|o| r.t.delta(o.t) <= tau)
                .filter_map(|o| {
                    let s = decay.apply(dot(&r.vector, &o.vector), r.t.delta(o.t));
                    (s >= theta).then_some((s, o.id))
                })
                .collect();
            matches.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(b.1.cmp(&a.1)));
            matches.truncate(k);
            for (_, id) in matches {
                keys.push((id.min(r.id), id.max(r.id)));
            }
        }
        keys.sort_unstable();
        keys
    }

    fn run(join: &mut TopKJoin, stream: &[StreamRecord]) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for r in stream {
            join.process(r, &mut out);
        }
        join.finish(&mut out);
        let mut keys: Vec<_> = out.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn matches_brute_force_topk() {
        let stream = random_stream(5, 200);
        for k in [1, 2, 5] {
            for (theta, lambda) in [(0.5, 0.1), (0.7, 0.05)] {
                let mut join = TopKJoin::new(SssjConfig::new(theta, lambda), IndexKind::L2, k);
                assert_eq!(
                    run(&mut join, &stream),
                    oracle(&stream, theta, lambda, k),
                    "k={k} θ={theta} λ={lambda}"
                );
            }
        }
    }

    #[test]
    fn large_k_degenerates_to_threshold_join() {
        let stream = random_stream(8, 150);
        let config = SssjConfig::new(0.5, 0.1);
        let mut topk = TopKJoin::new(config, IndexKind::L2, usize::MAX >> 1);
        let mut full = Streaming::new(config, IndexKind::L2);
        let mut out = Vec::new();
        for r in &stream {
            full.process(r, &mut out);
        }
        let mut full_keys: Vec<_> = out.iter().map(|p| p.key()).collect();
        full_keys.sort_unstable();
        assert_eq!(run(&mut topk, &stream), full_keys);
        assert_eq!(topk.truncated_pairs(), 0);
    }

    #[test]
    fn k_one_takes_most_similar() {
        // Record 2 matches both 0 (identical, older) and 1 (partial,
        // newer): similarity dominates recency.
        let stream = vec![
            rec(0, 0.0, &[(1, 1.0)]),
            rec(1, 0.5, &[(1, 1.0), (2, 1.0)]),
            rec(2, 1.0, &[(1, 1.0)]),
        ];
        let mut join = TopKJoin::new(SssjConfig::new(0.3, 0.01), IndexKind::L2, 1);
        let keys = run(&mut join, &stream);
        assert!(keys.contains(&(0, 2)), "{keys:?}");
        assert!(!keys.contains(&(1, 2)), "{keys:?}");
        assert!(join.truncated_pairs() >= 1);
    }

    #[test]
    fn works_with_every_index_kind() {
        let stream = random_stream(13, 120);
        let config = SssjConfig::new(0.6, 0.1);
        let reference = {
            let mut j = TopKJoin::new(config, IndexKind::Inv, 2);
            run(&mut j, &stream)
        };
        for kind in [IndexKind::L2, IndexKind::L2ap, IndexKind::Ap] {
            let mut j = TopKJoin::new(config, kind, 2);
            assert_eq!(run(&mut j, &stream), reference, "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        TopKJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2, 0);
    }

    #[test]
    fn name_reflects_k() {
        let j = TopKJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2, 3);
        assert_eq!(j.name(), "STR-L2-top3");
    }
}

//! `JoinSpec` — the declarative description of a complete join pipeline,
//! and the **single factory** every entry surface (library, CLI, network
//! protocol, benchmark harness) builds joins through.
//!
//! The paper's message is that one streaming index subsumes a family of
//! variants; this module gives that family one configuration surface. A
//! spec names a base engine, an index kind, the problem parameters, and
//! an ordered list of wrappers, and [`JoinSpec::build`] turns it into a
//! running [`StreamJoin`].
//!
//! # The compact text form
//!
//! ```text
//! spec    := engine [ "-" index ] [ "?" param ( "&" param )* ]
//! engine  := "str" | "mb" | "decay" | "topk" | "lsh" | "sharded"
//! index   := "l2" | "l2ap" | "ap" | "inv"          (str/mb/topk)
//! param   := key "=" value | "checked" | "snapshot" | "graph"
//! ```
//!
//! Engine parameters (`&`-separated, order-insensitive):
//!
//! | key      | engines   | meaning                                        |
//! |----------|-----------|------------------------------------------------|
//! | `theta`  | all       | similarity threshold θ ∈ (0, 1] (default 0.7)  |
//! | `lambda` | all but `decay` | decay rate λ ≥ 0 (default 0.01)          |
//! | `tau`    | all but `decay` | horizon; sets λ = ln(1/θ)/τ (§3 recipe)  |
//! | `model`  | `decay`   | decay model, e.g. `window:10`, `poly:2:5`      |
//! | `bounds` | `decay`   | `wmax` (window-max bound, default) or `l2`     |
//! | `k`      | `topk`    | per-record output cap (k ≥ 1)                  |
//! | `shards` | `sharded` | worker threads (1 ≤ shards ≤ 64)               |
//! | `inner`  | `sharded` | per-shard engine: `str`/`mb` (with `-index`),  |
//! |          |           | `decay` or `lsh` (default `str-l2`)            |
//! | `bits`   | `lsh`     | signature width, positive multiple of 64       |
//! | `bands`  | `lsh`     | band count (divides bits, rows ≤ 64)           |
//! | `seed`   | `lsh`     | hyperplane seed                                |
//! | `verify` | `lsh`     | `exact` or `est`                               |
//!
//! A `sharded` spec carries its inner engine in `inner=` — the index goes
//! on the inner token (`inner=mb-l2ap`), and the inner engine's own keys
//! (`model=`/`bounds=` for `decay`, `bits=`/`bands=`/`seed=`/`verify=`
//! for `lsh`) stay top-level. `sharded-l2?shards=4` remains accepted as
//! shorthand for `inner=str-l2`. `topk` cannot shard (its per-arrival
//! selection is global), and `sharded` cannot nest.
//!
//! Wrapper parameters are order-*sensitive*: each wraps everything listed
//! before it, so `str-l2?checked&reorder=5` is `Reorder(Checked(STR-L2))`.
//!
//! | key       | meaning                                                  |
//! |-----------|----------------------------------------------------------|
//! | `reorder` | tolerate records up to `slack` time units out of order   |
//! | `checked` | shadow the join with the exact oracle (debugging aid)    |
//! | `snapshot`| checkpointable join (STR engines only, innermost)        |
//! | `durable` | WAL + checkpoints under the given directory (innermost;  |
//! |           | str/mb/decay and sharded over those; resumes from an     |
//! |           | existing manifest — see `sssj-store`)                    |
//! | `graph`   | live similarity graph over the pair stream (`sssj-graph`)|
//! |           | — every emitted pair becomes a horizon-expiring edge,    |
//! |           | queryable for neighbours / top-k / components. At most   |
//! |           | one per spec; with `durable=` it sits directly above the |
//! |           | durable wrapper and its edges ride the checkpoint aux,   |
//! |           | so recovery restores the graph without replaying beyond  |
//! |           | the WAL horizon                                          |
//!
//! Examples:
//!
//! ```text
//! str-l2?theta=0.7&lambda=0.01&reorder=5
//! mb-inv?theta=0.5&lambda=0.1
//! decay?theta=0.7&model=window:10&bounds=l2
//! topk-l2?theta=0.5&lambda=0.01&k=3
//! lsh?theta=0.7&lambda=0.01&bits=256&bands=32&verify=est
//! sharded?theta=0.6&lambda=0.1&shards=4&inner=str-l2
//! sharded?theta=0.6&shards=4&inner=decay&model=window:10
//! sharded?theta=0.6&lambda=0.1&shards=4&inner=lsh&bits=256&bands=32&verify=exact
//! str-l2?theta=0.7&tau=10&durable=/var/sssj
//! str-l2?theta=0.7&tau=10&graph
//! sharded?theta=0.6&tau=10&shards=4&inner=str-l2&durable=/var/sssj&graph
//! ```
//!
//! # Building
//!
//! ```
//! use sssj_core::spec::JoinSpec;
//!
//! let spec: JoinSpec = "str-l2?theta=0.7&lambda=0.1".parse().unwrap();
//! let join = spec.build().unwrap();
//! assert_eq!(join.name(), "STR-L2");
//! ```
//!
//! The LSH and sharded engines live in crates *downstream* of `sssj-core`
//! (`sssj-lsh`, `sssj-parallel`), so their constructors are injected via
//! [`register_lsh_builder`] / [`register_sharded_builder`] — the same
//! bolt-on pattern ProvSQL uses for its single entry point. Every binary
//! that links those crates registers them once at startup (the CLI, the
//! net server and the bench harness all do); building such a spec without
//! the registration yields [`SpecError::EngineUnavailable`], never a
//! silent fallback.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use sssj_index::IndexKind;
use sssj_types::{Decay, DecayModel};

use crate::algorithm::{Checkpointable, Framework, ShardableJoin, StreamJoin};
use crate::config::SssjConfig;
use crate::decay_join::DecayStreaming;
use crate::minibatch::MiniBatch;
use crate::reorder::ReorderBuffer;
use crate::snapshot::RecoverableJoin;
use crate::streaming::Streaming;
use crate::topk::TopKJoin;
use crate::verify::CheckedJoin;

/// Default similarity threshold when a spec string omits `theta`.
pub const DEFAULT_THETA: f64 = 0.7;
/// Default decay rate when a spec string omits `lambda`/`tau`.
pub const DEFAULT_LAMBDA: f64 = 0.01;
/// Default LSH signature width in bits.
pub const DEFAULT_LSH_BITS: u32 = 256;
/// Default LSH band count.
pub const DEFAULT_LSH_BANDS: u32 = 32;
/// Default LSH hyperplane seed ("SSSJ").
pub const DEFAULT_LSH_SEED: u64 = 0x5353_534A;

/// LSH tuning carried by a spec — plain data mirrored here so the spec
/// layer does not depend on `sssj-lsh` (which depends on this crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LshSpec {
    /// Signature width in bits (positive multiple of 64).
    pub bits: u32,
    /// Number of bands (must divide `bits` into rows of ≤ 64).
    pub bands: u32,
    /// Hyperplane seed.
    pub seed: u64,
    /// Score candidates from signatures only (`verify=est`) instead of
    /// the exact stored vectors (`verify=exact`, the default).
    pub estimate: bool,
}

impl Default for LshSpec {
    fn default() -> Self {
        LshSpec {
            bits: DEFAULT_LSH_BITS,
            bands: DEFAULT_LSH_BANDS,
            seed: DEFAULT_LSH_SEED,
            estimate: false,
        }
    }
}

/// Decay-engine tuning carried by a spec: the model plus whether
/// candidate generation uses the windowed-max `rs1w` bound (`bounds=wmax`,
/// the default) or only the ℓ2 bounds (`bounds=l2`, the ablation the
/// `ablation_decay_bounds` bench measures). Output is identical either
/// way; only the pruning work changes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecaySpec {
    /// The decay model.
    pub model: DecayModel,
    /// Whether the window-max candidate bound is enabled.
    pub window_max: bool,
}

impl DecaySpec {
    /// A decay spec with the window-max bound enabled (the default).
    pub fn new(model: DecayModel) -> Self {
        DecaySpec {
            model,
            window_max: true,
        }
    }
}

/// The engine each shard of a sharded join runs — the shardable subset
/// of [`EngineSpec`]: engines whose processing decomposes into a query
/// half and an insert half (see [`crate::ShardableJoin`]). `topk` is
/// excluded (its per-arrival selection is global) and `sharded` cannot
/// nest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ShardedInner {
    /// STR workers (the default). Dimension-indexed: queries are routed
    /// only to shards with live postings on a shared dimension.
    Streaming,
    /// MB workers. Dimension-indexed, routed like STR.
    MiniBatch,
    /// Generalised-decay STR-L2 workers. Dimension-indexed.
    GenericDecay(DecaySpec),
    /// LSH workers. Signature-driven — exposes no dimension information,
    /// so the driver falls back to broadcasting queries.
    Lsh(LshSpec),
}

impl ShardedInner {
    /// The grammar name used in the `inner=` key.
    pub fn keyword(&self) -> &'static str {
        match self {
            ShardedInner::Streaming => "str",
            ShardedInner::MiniBatch => "mb",
            ShardedInner::GenericDecay(_) => "decay",
            ShardedInner::Lsh(_) => "lsh",
        }
    }

    /// Whether the inner engine is parameterised by an [`IndexKind`]
    /// (spelled on the inner token, e.g. `inner=mb-l2ap`).
    pub fn takes_index(&self) -> bool {
        matches!(self, ShardedInner::Streaming | ShardedInner::MiniBatch)
    }
}

/// The base engine of a join pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineSpec {
    /// STR: one incrementally maintained, time-filtered index.
    Streaming,
    /// MB: batch indexes over τ-sized windows.
    MiniBatch,
    /// STR-L2 generalised to an arbitrary decay model.
    GenericDecay(DecaySpec),
    /// Per-arrival top-k selection over the STR threshold join.
    TopK(u32),
    /// Approximate SimHash/banding join (built by `sssj-lsh`).
    Lsh(LshSpec),
    /// Dimension-partitioned, candidate-aware sharding over per-shard
    /// worker engines (built by `sssj-parallel`).
    Sharded {
        /// Number of worker threads (1 ≤ shards ≤ 64).
        shards: u32,
        /// The engine each shard runs.
        inner: ShardedInner,
    },
}

impl EngineSpec {
    /// The grammar name of the engine.
    pub fn keyword(&self) -> &'static str {
        match self {
            EngineSpec::Streaming => "str",
            EngineSpec::MiniBatch => "mb",
            EngineSpec::GenericDecay(_) => "decay",
            EngineSpec::TopK(_) => "topk",
            EngineSpec::Lsh(_) => "lsh",
            EngineSpec::Sharded { .. } => "sharded",
        }
    }

    /// Whether the compact form spells an [`IndexKind`] on the *head*
    /// token (`str-l2`). Sharded specs carry the index on the inner token
    /// instead (`inner=mb-l2ap`).
    pub fn takes_index(&self) -> bool {
        matches!(
            self,
            EngineSpec::Streaming | EngineSpec::MiniBatch | EngineSpec::TopK(_)
        )
    }

    /// Whether the spec's `index` field is meaningful for this engine at
    /// all (drives the JSON mapping; a superset of [`takes_index`], since
    /// sharded str/mb inners use the index without a head token).
    ///
    /// [`takes_index`]: EngineSpec::takes_index
    pub fn uses_index(&self) -> bool {
        match self {
            EngineSpec::Sharded { inner, .. } => inner.takes_index(),
            engine => engine.takes_index(),
        }
    }
}

/// One wrapper layer around the base engine. Wrappers apply in list
/// order: the first wraps the engine, the last is outermost.
#[derive(Clone, Debug, PartialEq)]
pub enum WrapperSpec {
    /// [`ReorderBuffer`]: tolerate records up to `slack` time units late.
    Reorder(f64),
    /// [`CheckedJoin`]: shadow the join with the exact oracle.
    Checked,
    /// [`RecoverableJoin`]: checkpointable join (STR engine, innermost).
    Snapshot,
    /// Durable join (`sssj-store`): the engine is wrapped in a segmented
    /// write-ahead log plus checkpoint manager rooted at the given
    /// directory, and *resumes* from that directory when it already
    /// holds a manifest. Innermost; engines with a replay path only
    /// (str/mb/decay and sharded over those).
    Durable(String),
    /// Live similarity graph (`sssj-graph`): every emitted pair becomes
    /// an edge stamped with its delivery time and expiring at the
    /// spec's horizon ([`JoinSpec::horizon`]); the graph serves
    /// neighbour / top-k / component queries. At most one per spec.
    /// Combined with [`WrapperSpec::Durable`] it must sit directly
    /// above the durable wrapper (position 1): the graph is then built
    /// *inside* the durability boundary and its live edges ride the
    /// checkpoint aux blob, so recovery restores edges whose members
    /// are already behind the WAL horizon.
    Graph,
    /// Historical tier (`sssj-segments`): horizon GC feeds a compactor
    /// that persists retired WAL segments and expired graph edges as
    /// immutable sorted segment files under the given directory, and
    /// queries gain a time-travel form (`… at=<t>`). Requires
    /// [`WrapperSpec::Durable`] (the compactor attaches to the WAL's GC
    /// sink) and sits directly above it — or above the graph wrapper
    /// when one is present. At most one per spec.
    History(String),
}

/// A declarative, serializable description of a complete join pipeline.
///
/// Construct one with [`JoinSpec::new`] and the `with_*` methods, parse
/// the compact text form with [`FromStr`], or decode the JSON mapping
/// with [`JoinSpec::from_json`]; then call [`JoinSpec::build`].
#[derive(Clone, Debug, PartialEq)]
pub struct JoinSpec {
    /// The base engine.
    pub engine: EngineSpec,
    /// Index variant (ignored by `decay` — always L2 — and `lsh`).
    pub index: IndexKind,
    /// Similarity threshold θ ∈ (0, 1].
    pub theta: f64,
    /// Exponential decay rate λ ≥ 0 (unused by `decay`, whose model
    /// carries its own parameters).
    pub lambda: f64,
    /// Wrapper layers, innermost first.
    pub wrappers: Vec<WrapperSpec>,
}

/// Why a spec failed to parse, validate or build.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The compact text or JSON form is malformed.
    Parse(String),
    /// The spec is structurally well-formed but invalid (out-of-range
    /// parameter, unsupported wrapper/engine combination, …).
    Invalid(String),
    /// The engine's constructor is not registered in this binary (the
    /// crate providing it was not linked or never registered).
    EngineUnavailable(&'static str),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(m) => write!(f, "cannot parse spec: {m}"),
            SpecError::Invalid(m) => write!(f, "invalid spec: {m}"),
            SpecError::EngineUnavailable(e) => write!(
                f,
                "engine {e:?} is not registered in this binary \
                 (link the providing crate and call its register function)"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

fn invalid(msg: impl Into<String>) -> SpecError {
    SpecError::Invalid(msg.into())
}

fn parse_err(msg: impl Into<String>) -> SpecError {
    SpecError::Parse(msg.into())
}

// ---------------------------------------------------------------------
// Extension registry: constructors for engines living downstream.
// ---------------------------------------------------------------------

/// Constructor for [`EngineSpec::Lsh`] specs, provided by `sssj-lsh`.
pub type LshBuilder = fn(theta: f64, lambda: f64, params: LshSpec) -> Box<dyn StreamJoin>;

/// Constructor for [`EngineSpec::Sharded`] specs, provided by
/// `sssj-parallel`. Receives the whole validated sharded spec.
pub type ShardedBuilder = fn(spec: &JoinSpec) -> Result<Box<dyn StreamJoin>, SpecError>;

/// Constructor for the per-shard worker of a [`ShardedInner::Lsh`]
/// sharded spec, provided by `sssj-lsh` (the shard driver lives in
/// `sssj-parallel`, which does not link the LSH crate).
pub type LshShardBuilder =
    fn(theta: f64, lambda: f64, params: LshSpec) -> Box<dyn ShardableJoin + Send>;

/// Constructor for [`WrapperSpec::Durable`] pipelines, provided by
/// `sssj-store`. Receives the spec with the durable wrapper *stripped*
/// (engine plus parameters only) and the storage directory; creates the
/// store or resumes from its manifest.
pub type DurableBuilder = fn(spec: &JoinSpec, dir: &str) -> Result<Box<dyn StreamJoin>, SpecError>;

/// Constructor building a sharded spec as a [`Checkpointable`] join
/// (the durable base), provided by `sssj-parallel`.
pub type ShardedCheckpointableBuilder =
    fn(spec: &JoinSpec) -> Result<Box<dyn Checkpointable>, SpecError>;

/// Constructor for [`WrapperSpec::Graph`] pipelines without a durable
/// base, provided by `sssj-graph`: wraps an already-built inner join in
/// the live-graph tap. Receives the full spec for the edge horizon
/// ([`JoinSpec::horizon`]).
pub type GraphBuilder = fn(inner: Box<dyn StreamJoin>, spec: &JoinSpec) -> Box<dyn StreamJoin>;

/// Constructor building a graph-wrapped spec as a [`Checkpointable`]
/// engine (the durable base of `…&durable=<dir>&graph` pipelines),
/// provided by `sssj-graph`. Receives the spec with the graph wrapper
/// still attached (and everything else stripped).
pub type GraphCheckpointableBuilder =
    fn(spec: &JoinSpec) -> Result<Box<dyn Checkpointable>, SpecError>;

/// Constructor for [`WrapperSpec::History`] pipelines, provided by
/// `sssj-segments`. Receives the **full** spec (the history builder
/// composes the durable and graph layers itself, attaching the
/// compactor in between) and the history directory.
pub type HistoryBuilder = fn(spec: &JoinSpec, dir: &str) -> Result<Box<dyn StreamJoin>, SpecError>;

static LSH_BUILDER: OnceLock<LshBuilder> = OnceLock::new();
static SHARDED_BUILDER: OnceLock<ShardedBuilder> = OnceLock::new();
static LSH_SHARD_BUILDER: OnceLock<LshShardBuilder> = OnceLock::new();
static DURABLE_BUILDER: OnceLock<DurableBuilder> = OnceLock::new();
static SHARDED_CHECKPOINTABLE_BUILDER: OnceLock<ShardedCheckpointableBuilder> = OnceLock::new();
static GRAPH_BUILDER: OnceLock<GraphBuilder> = OnceLock::new();
static GRAPH_CHECKPOINTABLE_BUILDER: OnceLock<GraphCheckpointableBuilder> = OnceLock::new();
static HISTORY_BUILDER: OnceLock<HistoryBuilder> = OnceLock::new();

/// Registers the LSH constructor (idempotent; first registration wins).
/// Called by `sssj_lsh::register_spec_builder()`.
pub fn register_lsh_builder(f: LshBuilder) {
    let _ = LSH_BUILDER.set(f);
}

/// Registers the sharded constructor (idempotent; first registration
/// wins). Called by `sssj_parallel::register_spec_builder()`.
pub fn register_sharded_builder(f: ShardedBuilder) {
    let _ = SHARDED_BUILDER.set(f);
}

/// Registers the per-shard LSH worker constructor (idempotent; first
/// registration wins). Called by `sssj_lsh::register_spec_builder()`.
pub fn register_lsh_shard_builder(f: LshShardBuilder) {
    let _ = LSH_SHARD_BUILDER.set(f);
}

/// Registers the durable-wrapper constructor (idempotent; first
/// registration wins). Called by `sssj_store::register_spec_builder()`.
pub fn register_durable_builder(f: DurableBuilder) {
    let _ = DURABLE_BUILDER.set(f);
}

/// Registers the sharded [`Checkpointable`] constructor (idempotent;
/// first registration wins). Called by
/// `sssj_parallel::register_spec_builder()`.
pub fn register_sharded_checkpointable_builder(f: ShardedCheckpointableBuilder) {
    let _ = SHARDED_CHECKPOINTABLE_BUILDER.set(f);
}

/// Registers the graph-wrapper constructor (idempotent; first
/// registration wins). Called by `sssj_graph::register_spec_builder()`.
pub fn register_graph_builder(f: GraphBuilder) {
    let _ = GRAPH_BUILDER.set(f);
}

/// Registers the graph [`Checkpointable`] constructor (idempotent;
/// first registration wins). Called by
/// `sssj_graph::register_spec_builder()`.
pub fn register_graph_checkpointable_builder(f: GraphCheckpointableBuilder) {
    let _ = GRAPH_CHECKPOINTABLE_BUILDER.set(f);
}

/// Registers the history-wrapper constructor (idempotent; first
/// registration wins). Called by
/// `sssj_segments::register_spec_builder()`.
pub fn register_history_builder(f: HistoryBuilder) {
    let _ = HISTORY_BUILDER.set(f);
}

impl JoinSpec {
    /// An STR-L2 spec with the given problem parameters — the paper's
    /// recommended configuration and the starting point for `with_*`
    /// customisation.
    pub fn new(theta: f64, lambda: f64) -> Self {
        JoinSpec {
            engine: EngineSpec::Streaming,
            index: IndexKind::L2,
            theta,
            lambda,
            wrappers: Vec::new(),
        }
    }

    /// The §3 recipe: θ from the content threshold, λ = ln(1/θ)/τ from
    /// the largest acceptable gap between identical items.
    pub fn from_horizon(theta: f64, tau: f64) -> Self {
        let decay = Decay::from_horizon(theta, tau);
        JoinSpec::new(theta, decay.lambda())
    }

    /// A classic framework × index combination (the paper's original
    /// eight algorithms).
    pub fn classic(framework: Framework, index: IndexKind, config: SssjConfig) -> Self {
        JoinSpec {
            engine: match framework {
                Framework::Streaming => EngineSpec::Streaming,
                Framework::MiniBatch => EngineSpec::MiniBatch,
            },
            index,
            theta: config.theta,
            lambda: config.lambda,
            wrappers: Vec::new(),
        }
    }

    /// Replaces the base engine.
    pub fn with_engine(mut self, engine: EngineSpec) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the index kind.
    pub fn with_index(mut self, index: IndexKind) -> Self {
        self.index = index;
        self
    }

    /// Appends a wrapper layer (outside any already present).
    pub fn wrap(mut self, wrapper: WrapperSpec) -> Self {
        self.wrappers.push(wrapper);
        self
    }

    /// The `(θ, λ)` pair as an [`SssjConfig`].
    pub fn config(&self) -> SssjConfig {
        SssjConfig::new(self.theta, self.lambda)
    }

    /// The pipeline's *forgetting horizon* in stream-time seconds: how
    /// long a record (or an emitted edge, for `graph`-wrapped specs)
    /// stays output-relevant. `τ = ln(1/θ)/λ` for exponential decay, the
    /// model's own horizon for the `decay` engine, and `∞` when λ = 0
    /// (nothing ever expires).
    pub fn horizon(&self) -> f64 {
        match &self.engine {
            EngineSpec::GenericDecay(d)
            | EngineSpec::Sharded {
                inner: ShardedInner::GenericDecay(d),
                ..
            } => d.model.horizon(self.theta),
            _ => self.config().tau(),
        }
    }

    /// Splits off an *outermost* reorder wrapper, if present: returns the
    /// spec without it and the slack. Lets callers that must observe late
    /// records (the net session reports them as protocol errors) keep the
    /// [`ReorderBuffer`] un-type-erased while still building everything
    /// else through the factory.
    pub fn split_outer_reorder(&self) -> (JoinSpec, Option<f64>) {
        let mut inner = self.clone();
        match inner.wrappers.last() {
            Some(WrapperSpec::Reorder(slack)) => {
                let slack = *slack;
                inner.wrappers.pop();
                (inner, Some(slack))
            }
            _ => (inner, None),
        }
    }

    /// Checks every cross-parameter rule the grammar cannot express.
    /// [`JoinSpec::build`] calls this first; [`FromStr`] validates too,
    /// so a parsed spec is always buildable (up to engine registration).
    pub fn validate(&self) -> Result<(), SpecError> {
        if !(self.theta > 0.0 && self.theta <= 1.0) {
            return Err(invalid(format!("theta out of (0, 1]: {}", self.theta)));
        }
        if !(self.lambda.is_finite() && self.lambda >= 0.0) {
            return Err(invalid(format!(
                "lambda must be finite and >= 0: {}",
                self.lambda
            )));
        }
        // The per-engine parameter rules, shared between base engines and
        // sharded inners (an inner engine obeys exactly the rules of the
        // corresponding base engine).
        let check_decay = |d: &DecaySpec| -> Result<(), SpecError> {
            if self.index != IndexKind::L2 {
                return Err(invalid(format!(
                    "the decay engine is L2-only (its pruning bounds are \
                     index-independent); got index {}",
                    self.index
                )));
            }
            let model = d.model;
            if !model.horizon(self.theta).is_finite() {
                return Err(invalid(format!(
                    "decay model {model} has an infinite horizon at theta={}",
                    self.theta
                )));
            }
            Ok(())
        };
        let check_lsh = |p: &LshSpec| -> Result<(), SpecError> {
            if p.bits == 0 || !p.bits.is_multiple_of(64) {
                return Err(invalid(format!(
                    "lsh bits must be a positive multiple of 64: {}",
                    p.bits
                )));
            }
            if p.bands == 0 || !p.bits.is_multiple_of(p.bands) || p.bits / p.bands > 64 {
                return Err(invalid(format!(
                    "lsh bands must divide bits into rows of <= 64: bits={} bands={}",
                    p.bits, p.bands
                )));
            }
            if self.lambda <= 0.0 {
                return Err(invalid(
                    "lsh requires lambda > 0 (a finite forgetting horizon)",
                ));
            }
            Ok(())
        };
        match &self.engine {
            EngineSpec::Streaming | EngineSpec::MiniBatch => {}
            EngineSpec::GenericDecay(d) => check_decay(d)?,
            EngineSpec::TopK(k) => {
                if *k == 0 {
                    return Err(invalid("topk requires k >= 1"));
                }
            }
            EngineSpec::Lsh(p) => check_lsh(p)?,
            EngineSpec::Sharded { shards, inner } => {
                if *shards == 0 {
                    return Err(invalid("sharded requires shards >= 1"));
                }
                if *shards > 64 {
                    return Err(invalid(format!(
                        "sharded supports at most 64 shards (routing masks \
                         are 64-bit): {shards}"
                    )));
                }
                match inner {
                    ShardedInner::Streaming | ShardedInner::MiniBatch => {}
                    ShardedInner::GenericDecay(d) => check_decay(d)?,
                    ShardedInner::Lsh(p) => check_lsh(p)?,
                }
            }
        }
        for (pos, w) in self.wrappers.iter().enumerate() {
            match w {
                WrapperSpec::Reorder(slack) => {
                    if !(slack.is_finite() && *slack >= 0.0) {
                        return Err(invalid(format!(
                            "reorder slack must be finite and >= 0: {slack}"
                        )));
                    }
                }
                WrapperSpec::Checked => match self.engine {
                    EngineSpec::Streaming
                    | EngineSpec::MiniBatch
                    | EngineSpec::Sharded {
                        inner: ShardedInner::Streaming | ShardedInner::MiniBatch,
                        ..
                    } => {}
                    EngineSpec::TopK(_)
                    | EngineSpec::Lsh(_)
                    | EngineSpec::Sharded {
                        inner: ShardedInner::Lsh(_),
                        ..
                    } => {
                        return Err(invalid(
                            "checked cannot wrap lsh/topk engines: they drop pairs \
                             by design, which the oracle would flag",
                        ));
                    }
                    EngineSpec::GenericDecay(_)
                    | EngineSpec::Sharded {
                        inner: ShardedInner::GenericDecay(_),
                        ..
                    } => {
                        return Err(invalid(
                            "checked cannot wrap decay: the oracle assumes exponential decay",
                        ));
                    }
                },
                WrapperSpec::Snapshot => {
                    if self.engine != EngineSpec::Streaming {
                        return Err(invalid("snapshot requires the str engine"));
                    }
                    if pos != 0 {
                        return Err(invalid(
                            "snapshot must be the innermost wrapper (listed first)",
                        ));
                    }
                }
                WrapperSpec::Durable(dir) => {
                    if pos != 0 {
                        return Err(invalid(
                            "durable must be the innermost wrapper (listed first): \
                             the WAL records exactly what the engine sees",
                        ));
                    }
                    if dir.is_empty()
                        || dir.chars().any(|c| {
                            matches!(c, '&' | '=' | '?' | '#' | '"' | '\\') || c.is_whitespace()
                        })
                    {
                        return Err(invalid(format!(
                            "durable directory {dir:?} must be non-empty and free of \
                             '&', '=', '?', '#', quotes, backslashes and whitespace \
                             (it is part of the spec grammar)"
                        )));
                    }
                    match &self.engine {
                        EngineSpec::Streaming
                        | EngineSpec::MiniBatch
                        | EngineSpec::GenericDecay(_) => {}
                        EngineSpec::Sharded {
                            inner: ShardedInner::Lsh(_),
                            ..
                        }
                        | EngineSpec::Lsh(_) => {
                            return Err(invalid(
                                "durable supports str/mb/decay engines (and sharded \
                                 over those); lsh workers are not checkpointable",
                            ));
                        }
                        EngineSpec::Sharded { .. } => {}
                        EngineSpec::TopK(_) => {
                            return Err(invalid(
                                "durable cannot wrap topk: its per-arrival selection \
                                 depends on emission history, which replay suppression \
                                 would skew",
                            ));
                        }
                    }
                    if self
                        .wrappers
                        .iter()
                        .any(|w| matches!(w, WrapperSpec::Checked))
                    {
                        return Err(invalid(
                            "checked cannot combine with durable: recovery re-emits \
                             pairs the oracle has not seen",
                        ));
                    }
                }
                WrapperSpec::Graph => {
                    if self.wrappers[..pos]
                        .iter()
                        .any(|w| matches!(w, WrapperSpec::Graph))
                    {
                        return Err(invalid("graph may appear at most once"));
                    }
                    let durable = matches!(self.wrappers.first(), Some(WrapperSpec::Durable(_)));
                    if durable && pos != 1 {
                        return Err(invalid(
                            "with durable=, graph must sit directly above the durable \
                             wrapper (listed second): its edges ride the checkpoint",
                        ));
                    }
                }
                WrapperSpec::History(dir) => {
                    if dir.is_empty()
                        || dir.chars().any(|c| {
                            matches!(c, '&' | '=' | '?' | '#' | '"' | '\\') || c.is_whitespace()
                        })
                    {
                        return Err(invalid(format!(
                            "history directory {dir:?} must be non-empty and free of \
                             '&', '=', '?', '#', quotes, backslashes and whitespace \
                             (it is part of the spec grammar)"
                        )));
                    }
                    if self.wrappers[..pos]
                        .iter()
                        .any(|w| matches!(w, WrapperSpec::History(_)))
                    {
                        return Err(invalid("history may appear at most once"));
                    }
                    if !matches!(self.wrappers.first(), Some(WrapperSpec::Durable(_))) {
                        return Err(invalid(
                            "history= requires a durable= base: the compactor feeds \
                             on the WAL's horizon GC",
                        ));
                    }
                    let want = if self
                        .wrappers
                        .iter()
                        .any(|w| matches!(w, WrapperSpec::Graph))
                    {
                        2
                    } else {
                        1
                    };
                    if pos != want {
                        return Err(invalid(
                            "history must sit directly above the durable wrapper \
                             (and above graph, when present)",
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// **The** factory: builds the complete pipeline this spec describes.
    ///
    /// This is the only construction path in the workspace — the fluent
    /// [`crate::JoinBuilder`], the CLI, the net server and the benchmark
    /// harness all funnel through it.
    pub fn build(&self) -> Result<Box<dyn StreamJoin>, SpecError> {
        self.validate()?;
        let history_dir = self.wrappers.iter().find_map(|w| match w {
            WrapperSpec::History(dir) => Some(dir.clone()),
            _ => None,
        });
        let mut join: Box<dyn StreamJoin> = if let Some(dir) = &history_dir {
            // The historical tier composes the whole durable(+graph)
            // base itself: it must hold the concrete store handle to
            // install its compactor as the GC sink, which the
            // type-erased durable hook below cannot hand back.
            let f = HISTORY_BUILDER
                .get()
                .ok_or(SpecError::EngineUnavailable("history"))?;
            f(self, dir)?
        } else if let Some(WrapperSpec::Durable(dir)) = self.wrappers.first() {
            // The durable base wraps the *bare* engine (validate pinned
            // the wrapper to position 0); remaining wrappers stack on
            // top below. The constructor lives downstream in
            // `sssj-store` and either creates the store or resumes from
            // its manifest.
            let f = DURABLE_BUILDER
                .get()
                .ok_or(SpecError::EngineUnavailable("durable"))?;
            let mut bare = self.clone();
            // A graph wrapper stays on the bare spec: it is built
            // *inside* the durability boundary (via
            // [`JoinSpec::build_checkpointable`]) so its edges ride
            // the checkpoint aux blob.
            bare.wrappers.retain(|w| matches!(w, WrapperSpec::Graph));
            f(&bare, dir)?
        } else {
            let snapshot_base = matches!(self.wrappers.first(), Some(WrapperSpec::Snapshot));
            match &self.engine {
                EngineSpec::Streaming => {
                    if snapshot_base {
                        Box::new(RecoverableJoin::new(self.config(), self.index))
                    } else {
                        Box::new(Streaming::new(self.config(), self.index))
                    }
                }
                EngineSpec::MiniBatch => Box::new(MiniBatch::new(self.config(), self.index)),
                EngineSpec::GenericDecay(d) => Box::new(DecayStreaming::with_options(
                    self.theta,
                    d.model,
                    d.window_max,
                )),
                EngineSpec::TopK(k) => {
                    Box::new(TopKJoin::new(self.config(), self.index, *k as usize))
                }
                EngineSpec::Lsh(params) => {
                    let f = LSH_BUILDER
                        .get()
                        .ok_or(SpecError::EngineUnavailable("lsh"))?;
                    f(self.theta, self.lambda, *params)
                }
                EngineSpec::Sharded { .. } => {
                    let f = SHARDED_BUILDER
                        .get()
                        .ok_or(SpecError::EngineUnavailable("sharded"))?;
                    f(self)?
                }
            }
        };
        let graph_in_base = matches!(self.wrappers.first(), Some(WrapperSpec::Durable(_)));
        for w in &self.wrappers {
            join = match w {
                // Consumed as the base above.
                WrapperSpec::Snapshot | WrapperSpec::Durable(_) | WrapperSpec::History(_) => join,
                WrapperSpec::Graph => {
                    if graph_in_base {
                        // Already built inside the durable base.
                        join
                    } else {
                        let f = GRAPH_BUILDER
                            .get()
                            .ok_or(SpecError::EngineUnavailable("graph"))?;
                        f(join, self)
                    }
                }
                WrapperSpec::Reorder(slack) => Box::new(ReorderBuffer::new(join, *slack)),
                WrapperSpec::Checked => Box::new(CheckedJoin::new(join, self.config())),
            };
        }
        // Outermost: the registry tap, so sssj_core_records_total /
        // sssj_core_pairs_total count exactly what the application fed
        // and received (a no-op pass-through when SSSJ_TELEMETRY=off).
        Ok(crate::telemetry::TelemetryJoin::wrap(join))
    }

    /// Builds the bare engine as a [`Checkpointable`] join — the base
    /// the durability layer (`sssj-store`) wraps. Requires a wrapper-free
    /// spec (the durable builder strips its own wrapper before calling
    /// this) and an engine with a replay path: `str`, `mb`, `decay`, or
    /// `sharded` over those (the sharded constructor lives downstream
    /// and must be registered, see
    /// [`register_sharded_checkpointable_builder`]).
    pub fn build_checkpointable(&self) -> Result<Box<dyn Checkpointable>, SpecError> {
        self.validate()?;
        if self.wrappers == [WrapperSpec::Graph] {
            // A graph-wrapped durable base: `sssj-graph` builds the bare
            // engine (through this function, graph wrapper stripped) and
            // taps it, checkpointing the live edge set as aux state.
            let f = GRAPH_CHECKPOINTABLE_BUILDER
                .get()
                .ok_or(SpecError::EngineUnavailable("graph"))?;
            return f(self);
        }
        if !self.wrappers.is_empty() {
            return Err(invalid(
                "build_checkpointable requires a wrapper-free spec (or exactly the \
                 graph wrapper): the durable layer wraps the bare engine",
            ));
        }
        Ok(match &self.engine {
            EngineSpec::Streaming => Box::new(Streaming::new(self.config(), self.index)),
            EngineSpec::MiniBatch => Box::new(MiniBatch::new(self.config(), self.index)),
            EngineSpec::GenericDecay(d) => Box::new(DecayStreaming::with_options(
                self.theta,
                d.model,
                d.window_max,
            )),
            EngineSpec::Sharded {
                inner: ShardedInner::Lsh(_),
                ..
            }
            | EngineSpec::Lsh(_)
            | EngineSpec::TopK(_) => {
                return Err(invalid(format!(
                    "engine {:?} is not checkpointable (durable supports str/mb/decay \
                     and sharded over those)",
                    self.engine.keyword()
                )));
            }
            EngineSpec::Sharded { .. } => {
                let f = SHARDED_CHECKPOINTABLE_BUILDER
                    .get()
                    .ok_or(SpecError::EngineUnavailable("sharded"))?;
                f(self)?
            }
        })
    }

    /// Builds the engine **one shard** of a sharded spec runs — the
    /// [`ShardableJoin`] the `sssj-parallel` driver spawns per worker
    /// thread. Only meaningful for [`EngineSpec::Sharded`] specs; the
    /// wrapper stack belongs to the driver, not the workers, and is
    /// ignored here.
    ///
    /// Like [`JoinSpec::build`], the LSH worker constructor lives
    /// downstream and must be registered ([`register_lsh_shard_builder`],
    /// done by `sssj_lsh::register_spec_builder`).
    pub fn build_shard_worker(&self) -> Result<Box<dyn ShardableJoin + Send>, SpecError> {
        self.validate()?;
        let EngineSpec::Sharded { inner, .. } = &self.engine else {
            return Err(invalid(format!(
                "build_shard_worker requires a sharded spec, got engine {:?}",
                self.engine.keyword()
            )));
        };
        Ok(match inner {
            ShardedInner::Streaming => Box::new(Streaming::new(self.config(), self.index)),
            ShardedInner::MiniBatch => Box::new(MiniBatch::new(self.config(), self.index)),
            ShardedInner::GenericDecay(d) => Box::new(DecayStreaming::with_options(
                self.theta,
                d.model,
                d.window_max,
            )),
            ShardedInner::Lsh(params) => {
                let f = LSH_SHARD_BUILDER
                    .get()
                    .ok_or(SpecError::EngineUnavailable("lsh"))?;
                f(self.theta, self.lambda, *params)
            }
        })
    }

    // -----------------------------------------------------------------
    // JSON mapping (for the net protocol and programmatic clients).
    // -----------------------------------------------------------------

    /// The JSON form, e.g.
    /// `{"engine":"str","index":"l2","theta":0.7,"lambda":0.01,"wrappers":[["reorder",5]]}`.
    ///
    /// Engine parameters appear as top-level keys (`model`, `bounds`,
    /// `k`, `shards`, `inner`, `bits`, `bands`, `seed`, `verify`);
    /// wrappers are an ordered array of `["reorder", slack]` /
    /// `["checked"]` / `["snapshot"]` entries. A sharded spec names its
    /// per-shard engine under `inner`, with that engine's keys top-level,
    /// e.g. `{"engine":"sharded","shards":4,"inner":"mb","index":"l2ap",…}`.
    pub fn to_json(&self) -> String {
        use fmt::Write;
        fn write_decay(s: &mut String, d: &DecaySpec) {
            let _ = write!(s, ",\"model\":\"{}\"", d.model);
            if !d.window_max {
                s.push_str(",\"bounds\":\"l2\"");
            }
        }
        fn write_lsh(s: &mut String, p: &LshSpec) {
            let _ = write!(
                s,
                ",\"bits\":{},\"bands\":{},\"seed\":{},\"verify\":\"{}\"",
                p.bits,
                p.bands,
                p.seed,
                if p.estimate { "est" } else { "exact" }
            );
        }
        let mut s = String::new();
        let _ = write!(s, "{{\"engine\":\"{}\"", self.engine.keyword());
        if self.engine.uses_index() {
            let _ = write!(
                s,
                ",\"index\":\"{}\"",
                self.index.to_string().to_ascii_lowercase()
            );
        }
        let _ = write!(s, ",\"theta\":{}", self.theta);
        match &self.engine {
            EngineSpec::GenericDecay(d) => write_decay(&mut s, d),
            EngineSpec::Sharded { shards, inner } => {
                if !matches!(inner, ShardedInner::GenericDecay(_)) {
                    let _ = write!(s, ",\"lambda\":{}", self.lambda);
                }
                let _ = write!(s, ",\"shards\":{shards},\"inner\":\"{}\"", inner.keyword());
                match inner {
                    ShardedInner::GenericDecay(d) => write_decay(&mut s, d),
                    ShardedInner::Lsh(p) => write_lsh(&mut s, p),
                    _ => {}
                }
            }
            engine => {
                let _ = write!(s, ",\"lambda\":{}", self.lambda);
                match engine {
                    EngineSpec::TopK(k) => {
                        let _ = write!(s, ",\"k\":{k}");
                    }
                    EngineSpec::Lsh(p) => write_lsh(&mut s, p),
                    _ => {}
                }
            }
        }
        if !self.wrappers.is_empty() {
            s.push_str(",\"wrappers\":[");
            for (i, w) in self.wrappers.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                match w {
                    WrapperSpec::Reorder(slack) => {
                        let _ = write!(s, "[\"reorder\",{slack}]");
                    }
                    WrapperSpec::Checked => s.push_str("[\"checked\"]"),
                    WrapperSpec::Snapshot => s.push_str("[\"snapshot\"]"),
                    WrapperSpec::Graph => s.push_str("[\"graph\"]"),
                    // validate() bans quotes/backslashes in the dirs, so
                    // the strings embed without escaping.
                    WrapperSpec::Durable(dir) => {
                        let _ = write!(s, "[\"durable\",\"{dir}\"]");
                    }
                    WrapperSpec::History(dir) => {
                        let _ = write!(s, "[\"history\",\"{dir}\"]");
                    }
                }
            }
            s.push(']');
        }
        s.push('}');
        s
    }

    /// Parses the JSON form produced by [`JoinSpec::to_json`]. Unknown
    /// keys are rejected (a typo must not silently fall back to a
    /// default); the result is validated like the text form.
    pub fn from_json(json: &str) -> Result<JoinSpec, SpecError> {
        let value = json::parse(json).map_err(parse_err)?;
        let obj = value
            .as_object()
            .ok_or_else(|| parse_err("expected a JSON object"))?;
        let mut params = ParamBag::default();
        let mut engine_name: Option<String> = None;
        for (key, v) in obj {
            match key.as_str() {
                "engine" => {
                    engine_name = Some(
                        v.as_str()
                            .ok_or_else(|| parse_err("engine must be a string"))?
                            .to_string(),
                    );
                }
                "index" => {
                    let s = v
                        .as_str()
                        .ok_or_else(|| parse_err("index must be a string"))?;
                    params.index = Some(
                        IndexKind::parse(s)
                            .ok_or_else(|| parse_err(format!("unknown index {s:?}")))?,
                    );
                }
                "theta" => {
                    params.theta = Some(
                        v.as_f64()
                            .ok_or_else(|| parse_err("theta must be a number"))?,
                    )
                }
                "lambda" => {
                    params.lambda = Some(
                        v.as_f64()
                            .ok_or_else(|| parse_err("lambda must be a number"))?,
                    )
                }
                "tau" => {
                    params.tau = Some(
                        v.as_f64()
                            .ok_or_else(|| parse_err("tau must be a number"))?,
                    )
                }
                "model" => {
                    let s = v
                        .as_str()
                        .ok_or_else(|| parse_err("model must be a string"))?;
                    params.model = Some(
                        DecayModel::parse(s)
                            .ok_or_else(|| parse_err(format!("unknown decay model {s:?}")))?,
                    );
                }
                "bounds" => {
                    let s = v
                        .as_str()
                        .ok_or_else(|| parse_err("bounds must be a string"))?;
                    params.window_max = Some(parse_bounds(s)?);
                }
                "k" => params.k = Some(as_u64(v, "k")? as u32),
                "shards" => params.shards = Some(as_u64(v, "shards")? as u32),
                "inner" => {
                    params.inner = Some(
                        v.as_str()
                            .ok_or_else(|| parse_err("inner must be a string"))?
                            .to_string(),
                    );
                }
                "bits" => params.bits = Some(as_u64(v, "bits")? as u32),
                "bands" => params.bands = Some(as_u64(v, "bands")? as u32),
                "seed" => params.seed = Some(as_u64(v, "seed")?),
                "verify" => {
                    let s = v
                        .as_str()
                        .ok_or_else(|| parse_err("verify must be a string"))?;
                    params.estimate = Some(parse_verify(s)?);
                }
                "wrappers" => {
                    let arr = v
                        .as_array()
                        .ok_or_else(|| parse_err("wrappers must be an array"))?;
                    for w in arr {
                        let entry = w
                            .as_array()
                            .ok_or_else(|| parse_err("each wrapper must be an array"))?;
                        let name = entry
                            .first()
                            .and_then(|n| n.as_str())
                            .ok_or_else(|| parse_err("wrapper name must be a string"))?;
                        let wrapper = match (name, entry.len()) {
                            ("reorder", 2) => WrapperSpec::Reorder(
                                entry[1]
                                    .as_f64()
                                    .ok_or_else(|| parse_err("reorder slack must be a number"))?,
                            ),
                            ("checked", 1) => WrapperSpec::Checked,
                            ("snapshot", 1) => WrapperSpec::Snapshot,
                            ("graph", 1) => WrapperSpec::Graph,
                            ("durable", 2) => WrapperSpec::Durable(
                                entry[1]
                                    .as_str()
                                    .ok_or_else(|| parse_err("durable directory must be a string"))?
                                    .to_string(),
                            ),
                            ("history", 2) => WrapperSpec::History(
                                entry[1]
                                    .as_str()
                                    .ok_or_else(|| parse_err("history directory must be a string"))?
                                    .to_string(),
                            ),
                            _ => {
                                return Err(parse_err(format!("unknown wrapper {name:?}")));
                            }
                        };
                        params.wrappers.push(wrapper);
                    }
                }
                other => return Err(parse_err(format!("unknown key {other:?}"))),
            }
        }
        let engine_name = engine_name.ok_or_else(|| parse_err("missing \"engine\""))?;
        params.finish(&engine_name)
    }
}

fn as_u64(v: &json::Value, key: &str) -> Result<u64, SpecError> {
    v.as_u64()
        .ok_or_else(|| parse_err(format!("{key} must be a non-negative integer")))
}

fn parse_verify(s: &str) -> Result<bool, SpecError> {
    match s {
        "exact" => Ok(false),
        "est" | "estimate" => Ok(true),
        other => Err(parse_err(format!(
            "verify must be exact|est, got {other:?}"
        ))),
    }
}

/// `bounds=` values: `wmax` enables the window-max candidate bound (the
/// default), `l2` ablates it.
fn parse_bounds(s: &str) -> Result<bool, SpecError> {
    match s {
        "wmax" => Ok(true),
        "l2" => Ok(false),
        other => Err(parse_err(format!("bounds must be wmax|l2, got {other:?}"))),
    }
}

/// Parameters gathered during parsing, turned into a [`JoinSpec`] once
/// the engine is known (both the text and the JSON path end here, so the
/// cross-parameter rules live in one place).
#[derive(Default)]
struct ParamBag {
    index: Option<IndexKind>,
    theta: Option<f64>,
    lambda: Option<f64>,
    tau: Option<f64>,
    model: Option<DecayModel>,
    window_max: Option<bool>,
    k: Option<u32>,
    shards: Option<u32>,
    inner: Option<String>,
    bits: Option<u32>,
    bands: Option<u32>,
    seed: Option<u64>,
    estimate: Option<bool>,
    wrappers: Vec<WrapperSpec>,
}

impl ParamBag {
    fn reject(&self, cond: bool, msg: &str) -> Result<(), SpecError> {
        if cond {
            Err(parse_err(msg.to_string()))
        } else {
            Ok(())
        }
    }

    fn finish(self, engine_name: &str) -> Result<JoinSpec, SpecError> {
        let theta = self.theta.unwrap_or(DEFAULT_THETA);
        if self.lambda.is_some() && self.tau.is_some() {
            return Err(parse_err("lambda and tau are mutually exclusive"));
        }
        let lambda = match (self.lambda, self.tau) {
            (Some(_), Some(_)) => unreachable!("rejected above"),
            (Some(l), None) => l,
            (None, Some(tau)) => {
                if !(tau.is_finite() && tau > 0.0) {
                    return Err(parse_err(format!("tau must be finite and > 0: {tau}")));
                }
                if !(theta > 0.0 && theta <= 1.0) {
                    return Err(parse_err(format!("theta out of (0, 1]: {theta}")));
                }
                Decay::from_horizon(theta, tau).lambda()
            }
            (None, None) => DEFAULT_LAMBDA,
        };
        let lsh_keys = self.bits.is_some()
            || self.bands.is_some()
            || self.seed.is_some()
            || self.estimate.is_some();
        let mut index = self.index;
        let engine = match engine_name {
            "str" | "mb" => {
                self.reject(self.model.is_some(), "model= requires the decay engine")?;
                self.reject(
                    self.window_max.is_some(),
                    "bounds= requires the decay engine",
                )?;
                self.reject(self.k.is_some(), "k= requires the topk engine")?;
                self.reject(self.shards.is_some(), "shards= requires the sharded engine")?;
                self.reject(self.inner.is_some(), "inner= requires the sharded engine")?;
                self.reject(lsh_keys, "bits/bands/seed/verify require the lsh engine")?;
                if engine_name == "str" {
                    EngineSpec::Streaming
                } else {
                    EngineSpec::MiniBatch
                }
            }
            "decay" => {
                self.reject(self.index.is_some(), "the decay engine takes no index")?;
                self.reject(
                    self.lambda.is_some() || self.tau.is_some(),
                    "the decay engine takes model=, not lambda=/tau=",
                )?;
                self.reject(self.k.is_some(), "k= requires the topk engine")?;
                self.reject(self.shards.is_some(), "shards= requires the sharded engine")?;
                self.reject(self.inner.is_some(), "inner= requires the sharded engine")?;
                self.reject(lsh_keys, "bits/bands/seed/verify require the lsh engine")?;
                let model = self
                    .model
                    .ok_or_else(|| parse_err("the decay engine requires model="))?;
                EngineSpec::GenericDecay(DecaySpec {
                    model,
                    window_max: self.window_max.unwrap_or(true),
                })
            }
            "topk" => {
                self.reject(self.model.is_some(), "model= requires the decay engine")?;
                self.reject(
                    self.window_max.is_some(),
                    "bounds= requires the decay engine",
                )?;
                self.reject(self.shards.is_some(), "shards= requires the sharded engine")?;
                self.reject(self.inner.is_some(), "inner= requires the sharded engine")?;
                self.reject(lsh_keys, "bits/bands/seed/verify require the lsh engine")?;
                EngineSpec::TopK(self.k.ok_or_else(|| parse_err("topk requires k="))?)
            }
            "lsh" => {
                self.reject(self.index.is_some(), "the lsh engine takes no index")?;
                self.reject(self.model.is_some(), "model= requires the decay engine")?;
                self.reject(
                    self.window_max.is_some(),
                    "bounds= requires the decay engine",
                )?;
                self.reject(self.k.is_some(), "k= requires the topk engine")?;
                self.reject(self.shards.is_some(), "shards= requires the sharded engine")?;
                self.reject(self.inner.is_some(), "inner= requires the sharded engine")?;
                EngineSpec::Lsh(self.lsh_params())
            }
            "sharded" => {
                self.reject(self.k.is_some(), "k= requires the topk engine")?;
                let token = self.inner.clone().unwrap_or_else(|| "str".to_string());
                let (inner_name, inner_index) = match token.split_once('-') {
                    Some((e, i)) => {
                        let kind = IndexKind::parse(i)
                            .ok_or_else(|| parse_err(format!("unknown inner index {i:?}")))?;
                        (e, Some(kind))
                    }
                    None => (token.as_str(), None),
                };
                if inner_index.is_some() && index.is_some() {
                    return Err(parse_err(
                        "index given twice (on the sharded head and in inner=)",
                    ));
                }
                index = inner_index.or(index);
                let inner = match inner_name {
                    "str" | "mb" => {
                        self.reject(self.model.is_some(), "model= requires a decay inner")?;
                        self.reject(self.window_max.is_some(), "bounds= requires a decay inner")?;
                        self.reject(lsh_keys, "bits/bands/seed/verify require an lsh inner")?;
                        if inner_name == "str" {
                            ShardedInner::Streaming
                        } else {
                            ShardedInner::MiniBatch
                        }
                    }
                    "decay" => {
                        self.reject(index.is_some(), "the decay engine takes no index")?;
                        self.reject(
                            self.lambda.is_some() || self.tau.is_some(),
                            "the decay engine takes model=, not lambda=/tau=",
                        )?;
                        self.reject(lsh_keys, "bits/bands/seed/verify require an lsh inner")?;
                        let model = self
                            .model
                            .ok_or_else(|| parse_err("the decay engine requires model="))?;
                        ShardedInner::GenericDecay(DecaySpec {
                            model,
                            window_max: self.window_max.unwrap_or(true),
                        })
                    }
                    "lsh" => {
                        self.reject(index.is_some(), "the lsh engine takes no index")?;
                        self.reject(self.model.is_some(), "model= requires a decay inner")?;
                        self.reject(self.window_max.is_some(), "bounds= requires a decay inner")?;
                        ShardedInner::Lsh(self.lsh_params())
                    }
                    "topk" => {
                        return Err(parse_err(
                            "topk cannot shard: its per-arrival selection is global",
                        ))
                    }
                    "sharded" => return Err(parse_err("sharded cannot nest")),
                    other => return Err(parse_err(format!("unknown inner engine {other:?}"))),
                };
                EngineSpec::Sharded {
                    shards: self
                        .shards
                        .ok_or_else(|| parse_err("sharded requires shards="))?,
                    inner,
                }
            }
            other => return Err(parse_err(format!("unknown engine {other:?}"))),
        };
        // The decay engine's model carries the decay; pin λ to 0 so the
        // canonical form (which omits it) round-trips exactly.
        let decay_engine = matches!(
            engine,
            EngineSpec::GenericDecay(_)
                | EngineSpec::Sharded {
                    inner: ShardedInner::GenericDecay(_),
                    ..
                }
        );
        let spec = JoinSpec {
            engine,
            index: index.unwrap_or(IndexKind::L2),
            theta,
            lambda: if decay_engine { 0.0 } else { lambda },
            wrappers: self.wrappers,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// LSH parameters with the documented defaults filled in.
    fn lsh_params(&self) -> LshSpec {
        LshSpec {
            bits: self.bits.unwrap_or(DEFAULT_LSH_BITS),
            bands: self.bands.unwrap_or(DEFAULT_LSH_BANDS),
            seed: self.seed.unwrap_or(DEFAULT_LSH_SEED),
            estimate: self.estimate.unwrap_or(false),
        }
    }
}

impl FromStr for JoinSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<JoinSpec, SpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(parse_err("empty spec"));
        }
        let (head, query) = match s.split_once('?') {
            Some((h, q)) => (h, Some(q)),
            None => (s, None),
        };
        let (engine_name, index) = match head.split_once('-') {
            Some((e, i)) => {
                let kind =
                    IndexKind::parse(i).ok_or_else(|| parse_err(format!("unknown index {i:?}")))?;
                (e, Some(kind))
            }
            None => (head, None),
        };
        let mut params = ParamBag {
            index,
            ..ParamBag::default()
        };
        if let Some(query) = query {
            for kv in query.split('&') {
                let (key, value) = match kv.split_once('=') {
                    Some((k, v)) => (k, Some(v)),
                    None => (kv, None),
                };
                fn want<'a>(key: &str, v: Option<&'a str>) -> Result<&'a str, SpecError> {
                    v.ok_or_else(|| parse_err(format!("{key}= needs a value")))
                }
                let f64_of = |v: &str| -> Result<f64, SpecError> {
                    v.parse::<f64>()
                        .map_err(|e| parse_err(format!("bad {key} {v:?}: {e}")))
                };
                let u_of = |v: &str| -> Result<u64, SpecError> {
                    v.parse::<u64>()
                        .map_err(|e| parse_err(format!("bad {key} {v:?}: {e}")))
                };
                match key {
                    "theta" => params.theta = Some(f64_of(want(key, value)?)?),
                    "lambda" => params.lambda = Some(f64_of(want(key, value)?)?),
                    "tau" => params.tau = Some(f64_of(want(key, value)?)?),
                    "model" => {
                        let v = want(key, value)?;
                        params.model = Some(
                            DecayModel::parse(v)
                                .ok_or_else(|| parse_err(format!("unknown decay model {v:?}")))?,
                        );
                    }
                    "bounds" => params.window_max = Some(parse_bounds(want(key, value)?)?),
                    "k" => params.k = Some(u_of(want(key, value)?)? as u32),
                    "shards" => params.shards = Some(u_of(want(key, value)?)? as u32),
                    "inner" => params.inner = Some(want(key, value)?.to_string()),
                    "bits" => params.bits = Some(u_of(want(key, value)?)? as u32),
                    "bands" => params.bands = Some(u_of(want(key, value)?)? as u32),
                    "seed" => params.seed = Some(u_of(want(key, value)?)?),
                    "verify" => params.estimate = Some(parse_verify(want(key, value)?)?),
                    "reorder" => params
                        .wrappers
                        .push(WrapperSpec::Reorder(f64_of(want(key, value)?)?)),
                    "checked" => {
                        if value.is_some() {
                            return Err(parse_err("checked takes no value"));
                        }
                        params.wrappers.push(WrapperSpec::Checked);
                    }
                    "snapshot" => {
                        if value.is_some() {
                            return Err(parse_err("snapshot takes no value"));
                        }
                        params.wrappers.push(WrapperSpec::Snapshot);
                    }
                    "durable" => params
                        .wrappers
                        .push(WrapperSpec::Durable(want(key, value)?.to_string())),
                    "history" => params
                        .wrappers
                        .push(WrapperSpec::History(want(key, value)?.to_string())),
                    "graph" => {
                        if value.is_some() {
                            return Err(parse_err("graph takes no value"));
                        }
                        params.wrappers.push(WrapperSpec::Graph);
                    }
                    other => return Err(parse_err(format!("unknown key {other:?}"))),
                }
            }
        }
        params.finish(engine_name)
    }
}

impl fmt::Display for JoinSpec {
    /// The canonical compact form: engine(-index) with every engine
    /// parameter spelled out (defaults included) so that two specs
    /// compare equal iff their strings do, and wrappers in order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.engine.keyword())?;
        if self.engine.takes_index() {
            write!(f, "-{}", self.index.to_string().to_ascii_lowercase())?;
        }
        fn write_decay(f: &mut fmt::Formatter<'_>, d: &DecaySpec) -> fmt::Result {
            write!(f, "&model={}", d.model)?;
            if !d.window_max {
                f.write_str("&bounds=l2")?;
            }
            Ok(())
        }
        fn write_lsh(f: &mut fmt::Formatter<'_>, p: &LshSpec) -> fmt::Result {
            write!(f, "&bits={}&bands={}", p.bits, p.bands)?;
            if p.seed != DEFAULT_LSH_SEED {
                write!(f, "&seed={}", p.seed)?;
            }
            write!(f, "&verify={}", if p.estimate { "est" } else { "exact" })
        }
        write!(f, "?theta={}", self.theta)?;
        match &self.engine {
            EngineSpec::GenericDecay(d) => write_decay(f, d)?,
            EngineSpec::Sharded { shards, inner } => {
                if !matches!(inner, ShardedInner::GenericDecay(_)) {
                    write!(f, "&lambda={}", self.lambda)?;
                }
                write!(f, "&shards={shards}&inner={}", inner.keyword())?;
                match inner {
                    ShardedInner::Streaming | ShardedInner::MiniBatch => {
                        write!(f, "-{}", self.index.to_string().to_ascii_lowercase())?
                    }
                    ShardedInner::GenericDecay(d) => write_decay(f, d)?,
                    ShardedInner::Lsh(p) => write_lsh(f, p)?,
                }
            }
            engine => {
                write!(f, "&lambda={}", self.lambda)?;
                match engine {
                    EngineSpec::TopK(k) => write!(f, "&k={k}")?,
                    EngineSpec::Lsh(p) => write_lsh(f, p)?,
                    _ => {}
                }
            }
        }
        for w in &self.wrappers {
            match w {
                WrapperSpec::Reorder(slack) => write!(f, "&reorder={slack}")?,
                WrapperSpec::Checked => f.write_str("&checked")?,
                WrapperSpec::Snapshot => f.write_str("&snapshot")?,
                WrapperSpec::Durable(dir) => write!(f, "&durable={dir}")?,
                WrapperSpec::Graph => f.write_str("&graph")?,
                WrapperSpec::History(dir) => write!(f, "&history={dir}")?,
            }
        }
        Ok(())
    }
}

/// A minimal JSON reader for the spec mapping — objects, arrays,
/// strings, numbers, booleans and null; no external dependencies (the
/// container has no registry access, and this is the only JSON the
/// workspace parses).
mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number: the f64 value plus the raw text, so 64-bit
        /// integers (e.g. LSH seeds) survive without f64 rounding.
        Num(f64, String),
        /// A string (escapes decoded).
        Str(String),
        /// An ordered array.
        Arr(Vec<Value>),
        /// An object, insertion-ordered.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x, _) => Some(*x),
                _ => None,
            }
        }

        /// The exact integer value, read from the raw digits (f64 would
        /// round anything above 2⁵³).
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(_, raw) => raw.parse::<u64>().ok(),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(v) => Some(v),
                _ => None,
            }
        }
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<u8> {
            let b = self.peek()?;
            self.pos += 1;
            Some(b)
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.bump() == Some(b) {
                Ok(())
            } else {
                Err(format!("expected {:?} at offset {}", b as char, self.pos))
            }
        }

        fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at offset {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.lit("true", Value::Bool(true)),
                Some(b'f') => self.lit("false", Value::Bool(false)),
                Some(b'n') => self.lit("null", Value::Null),
                Some(_) => self.number(),
                None => Err("unexpected end of input".into()),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                entries.push((key, value));
                self.skip_ws();
                match self.bump() {
                    Some(b',') => continue,
                    Some(b'}') => return Ok(Value::Obj(entries)),
                    _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.bump() {
                    Some(b',') => continue,
                    Some(b']') => return Ok(Value::Arr(items)),
                    _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bump() {
                    Some(b'"') => return Ok(out),
                    Some(b'\\') => match self.bump() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?,
                            );
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    },
                    Some(b) if b < 0x20 => {
                        return Err(format!("raw control byte at offset {}", self.pos))
                    }
                    Some(b) => {
                        // Re-assemble UTF-8: push the raw byte sequence.
                        let start = self.pos - 1;
                        let len = match b {
                            0x00..=0x7F => 1,
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        if start + len > self.bytes.len() {
                            return Err("truncated UTF-8".into());
                        }
                        let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                            .map_err(|_| "bad UTF-8".to_string())?;
                        out.push_str(chunk);
                        self.pos = start + len;
                    }
                    None => return Err("unterminated string".into()),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "bad number".to_string())?;
            text.parse::<f64>()
                .map(|x| Value::Num(x, text.to_string()))
                .map_err(|_| format!("bad number {text:?} at offset {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> JoinSpec {
        s.parse().unwrap_or_else(|e| panic!("{s:?}: {e}"))
    }

    #[test]
    fn canonical_examples_roundtrip() {
        for s in [
            "str-l2?theta=0.7&lambda=0.01",
            "str-inv?theta=0.5&lambda=0.1",
            "mb-l2ap?theta=0.99&lambda=0.0001",
            "decay?theta=0.7&model=window:10",
            "decay?theta=0.55&model=poly:1.5:4",
            "decay?theta=0.7&model=window:10&bounds=l2",
            "topk-l2?theta=0.5&lambda=0.01&k=3",
            "lsh?theta=0.7&lambda=0.01&bits=256&bands=32&verify=exact",
            "lsh?theta=0.7&lambda=0.01&bits=128&bands=16&seed=9&verify=est",
            "sharded?theta=0.6&lambda=0.1&shards=4&inner=str-l2",
            "sharded?theta=0.6&lambda=0.1&shards=2&inner=mb-l2ap",
            "sharded?theta=0.6&shards=2&inner=decay&model=window:10",
            "sharded?theta=0.6&shards=2&inner=decay&model=linear:20&bounds=l2",
            "sharded?theta=0.6&lambda=0.1&shards=2&inner=lsh&bits=256&bands=32&verify=exact",
            "str-l2?theta=0.7&lambda=0.01&reorder=5",
            "str-l2?theta=0.7&lambda=0.01&checked&reorder=2",
            "str-l2?theta=0.7&lambda=0.01&snapshot",
            "str-l2?theta=0.7&lambda=0.01&graph",
            "str-l2?theta=0.7&lambda=0.01&graph&reorder=5",
            "sharded?theta=0.6&lambda=0.1&shards=2&inner=mb-l2ap&graph",
            "str-l2?theta=0.7&lambda=0.01&durable=/var/sssj&graph",
        ] {
            let spec = parse(s);
            assert_eq!(spec.to_string(), s, "not canonical: {s}");
            assert_eq!(parse(&spec.to_string()), spec);
        }
    }

    #[test]
    fn legacy_sharded_head_index_is_shorthand_for_inner_str() {
        let legacy = parse("sharded-inv?theta=0.6&lambda=0.1&shards=4");
        assert_eq!(
            legacy,
            parse("sharded?theta=0.6&lambda=0.1&shards=4&inner=str-inv")
        );
        assert_eq!(
            legacy.to_string(),
            "sharded?theta=0.6&lambda=0.1&shards=4&inner=str-inv"
        );
        // Bare sharded defaults to STR-L2 workers.
        let spec = parse("sharded?shards=2");
        assert_eq!(
            spec.engine,
            EngineSpec::Sharded {
                shards: 2,
                inner: ShardedInner::Streaming
            }
        );
        assert_eq!(spec.index, IndexKind::L2);
    }

    #[test]
    fn bounds_key_drives_the_window_max_ablation() {
        let spec = parse("decay?theta=0.6&model=window:10&bounds=l2");
        assert_eq!(
            spec.engine,
            EngineSpec::GenericDecay(DecaySpec {
                model: DecayModel::sliding_window(10.0),
                window_max: false
            })
        );
        // Explicit wmax parses to the default and canonicalises away.
        let spec = parse("decay?theta=0.6&model=window:10&bounds=wmax");
        assert_eq!(spec.to_string(), "decay?theta=0.6&model=window:10");
        spec.build().unwrap();
    }

    #[test]
    fn defaults_and_tau_are_accepted() {
        let spec = parse("str-l2");
        assert_eq!(spec.theta, DEFAULT_THETA);
        assert_eq!(spec.lambda, DEFAULT_LAMBDA);
        let spec = parse("str");
        assert_eq!(spec.index, IndexKind::L2);
        let spec = parse("str-l2?theta=0.5&tau=100");
        assert!((spec.config().tau() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn core_engines_build_and_name() {
        for (s, name) in [
            ("str-l2?theta=0.7&lambda=0.1", "STR-L2"),
            ("str-inv?theta=0.7&lambda=0.1", "STR-INV"),
            ("mb-l2?theta=0.7&lambda=0.1", "MB-L2"),
            ("decay?theta=0.7&model=window:10", "STR-L2[window:10]"),
            ("topk-l2?theta=0.5&lambda=0.1&k=3", "STR-L2-top3"),
            ("str-l2?theta=0.7&lambda=0.1&reorder=5", "Reorder(STR-L2)"),
            ("str-l2?theta=0.7&lambda=0.1&checked", "checked(STR-L2)"),
            (
                "str-l2?theta=0.7&lambda=0.1&checked&reorder=5",
                "Reorder(checked(STR-L2))",
            ),
            ("str-l2?theta=0.7&lambda=0.1&snapshot", "STR-L2"),
        ] {
            let join = parse(s).build().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(join.name(), name, "{s}");
        }
    }

    #[test]
    fn snapshot_spec_builds_a_recoverable_join() {
        use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};
        let mut join = parse("str-l2?theta=0.7&lambda=0.1&snapshot")
            .build()
            .unwrap();
        let mut out = Vec::new();
        join.process(
            &StreamRecord::new(0, Timestamp::new(0.0), unit_vector(&[(1, 1.0)])),
            &mut out,
        );
        join.process(
            &StreamRecord::new(1, Timestamp::new(1.0), unit_vector(&[(1, 1.0)])),
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn graph_wrapper_rules() {
        // At most one graph; with durable it must sit directly above.
        assert!("str-l2?graph".parse::<JoinSpec>().is_ok());
        assert!("str-l2?durable=/tmp/g&graph".parse::<JoinSpec>().is_ok());
        assert!("mb-l2?graph&checked".parse::<JoinSpec>().is_ok());
        let spec: JoinSpec = "str-l2?theta=0.7&lambda=0.01&graph".parse().unwrap();
        assert!((spec.horizon() - (1.0f64 / 0.7).ln() / 0.01).abs() < 1e-9);
        // Unregistered in sssj-core: the graph crate lives downstream.
        for s in ["str-l2?graph", "str-l2?graph&reorder=2"] {
            match s.parse::<JoinSpec>().unwrap().build() {
                Err(SpecError::EngineUnavailable("graph")) => {}
                Err(e) => panic!("{s}: expected graph-unavailable, got {e:?}"),
                Ok(_) => panic!("{s}: built without registration"),
            }
        }
    }

    #[test]
    fn unregistered_extensions_report_unavailable() {
        // This unit test runs inside sssj-core, where the lsh/parallel
        // constructors cannot exist; the error must say so. (Downstream
        // crates register and cover the success path.)
        for s in [
            "lsh?theta=0.7&lambda=0.1",
            "sharded-l2?theta=0.7&lambda=0.1&shards=2",
        ] {
            match parse(s).build() {
                Err(SpecError::EngineUnavailable(_)) => {}
                Err(e) => panic!("{s}: expected EngineUnavailable, got {e:?}"),
                Ok(_) => panic!("{s}: built without registration"),
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "quantum",
            "str-quantum",
            "str-l2?theta",
            "str-l2?theta=x",
            "str-l2?theta=0.7&flux=1",
            "str-l2?lambda=1&tau=5",
            "str-l2?checked=1",
            "decay-l2?model=window:10",
            "decay?theta=0.5",
            "decay?model=window:10&lambda=0.1",
            "topk-l2?theta=0.5",
            "topk-l2?k=0",
            "sharded-l2?shards=0",
            "sharded-l2",
            "sharded?shards=65&inner=str-l2",
            "sharded?shards=2&inner=topk",
            "sharded?shards=2&inner=sharded",
            "sharded?shards=2&inner=quantum",
            "sharded?shards=2&inner=decay",
            "sharded?shards=2&inner=decay-l2&model=window:5",
            "sharded?shards=2&inner=lsh-l2",
            "sharded-l2?shards=2&inner=str-inv",
            "sharded?shards=2&inner=str&model=window:5",
            "sharded?shards=2&inner=str&bounds=l2",
            "str?inner=str",
            "str?bounds=l2",
            "decay?model=window:10&bounds=bogus",
            "lsh?bits=100",
            "lsh?bits=256&bands=7",
            "lsh?verify=maybe",
            "lsh-l2",
            "mb?k=2",
            "str?shards=2",
            "str?theta=1.5",
            "str?lambda=-1",
            "str?reorder=-2",
            "str?tau=0",
            "str?graph=1",
            "str?graph&graph",
            "str?durable=/tmp/x&reorder=1&graph",
        ] {
            assert!(s.parse::<JoinSpec>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn validate_enforces_wrapper_rules() {
        // snapshot on non-str engines / non-innermost position.
        assert!("mb-l2?snapshot".parse::<JoinSpec>().is_err());
        assert!("str-l2?reorder=1&snapshot".parse::<JoinSpec>().is_err());
        // checked on variants that drop pairs by design.
        assert!("topk-l2?k=1&checked".parse::<JoinSpec>().is_err());
        assert!("lsh?checked".parse::<JoinSpec>().is_err());
        assert!("decay?model=window:5&checked".parse::<JoinSpec>().is_err());
        // ... including behind a sharded driver; exact inners stay fine.
        assert!("sharded?shards=2&inner=lsh&checked"
            .parse::<JoinSpec>()
            .is_err());
        assert!("sharded?shards=2&inner=decay&model=window:5&checked"
            .parse::<JoinSpec>()
            .is_err());
        assert!("sharded?shards=2&inner=mb-l2&checked"
            .parse::<JoinSpec>()
            .is_ok());
        // infinite-horizon decay.
        assert!("decay?model=exp:0".parse::<JoinSpec>().is_err());
        assert!("lsh?lambda=0".parse::<JoinSpec>().is_err());
    }

    #[test]
    fn wrapper_order_is_preserved() {
        let spec = parse("str-l2?checked&reorder=3");
        assert_eq!(
            spec.wrappers,
            vec![WrapperSpec::Checked, WrapperSpec::Reorder(3.0)]
        );
        let (inner, slack) = spec.split_outer_reorder();
        assert_eq!(slack, Some(3.0));
        assert_eq!(inner.wrappers, vec![WrapperSpec::Checked]);
        // No outer reorder: untouched.
        let spec = parse("str-l2?reorder=3&checked");
        let (inner, slack) = spec.split_outer_reorder();
        assert_eq!(slack, None);
        assert_eq!(inner.wrappers.len(), 2);
    }

    #[test]
    fn json_roundtrips_every_engine() {
        for s in [
            "str-l2?theta=0.7&lambda=0.01",
            "mb-inv?theta=0.5&lambda=0.1",
            "decay?theta=0.7&model=linear:8",
            "topk-l2ap?theta=0.5&lambda=0.01&k=7",
            "lsh?theta=0.7&lambda=0.01&bits=128&bands=16&seed=5&verify=est",
            "sharded-inv?theta=0.6&lambda=0.1&shards=3",
            "sharded?theta=0.6&lambda=0.1&shards=2&inner=mb-l2ap",
            "sharded?theta=0.6&shards=2&inner=decay&model=poly:2:5&bounds=l2",
            "sharded?theta=0.6&lambda=0.1&shards=2&inner=lsh&bits=128&bands=16&verify=est",
            "str-l2?theta=0.7&lambda=0.01&snapshot&checked&reorder=2.5",
            "str-l2?theta=0.7&lambda=0.01&graph&reorder=2",
            "mb-l2?theta=0.7&lambda=0.01&durable=/var/sssj&graph",
        ] {
            let spec = parse(s);
            let json = spec.to_json();
            let back = JoinSpec::from_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn json_accepts_whitespace_and_rejects_unknown_keys() {
        let spec = JoinSpec::from_json(
            " { \"engine\" : \"str\" , \"index\" : \"inv\", \"theta\" : 0.5 , \
             \"wrappers\" : [ [\"reorder\", 5 ] ] } ",
        )
        .unwrap();
        assert_eq!(spec.index, IndexKind::Inv);
        assert_eq!(spec.wrappers, vec![WrapperSpec::Reorder(5.0)]);
        assert!(JoinSpec::from_json("{\"engine\":\"str\",\"volume\":11}").is_err());
        assert!(JoinSpec::from_json("{\"theta\":0.5}").is_err());
        assert!(JoinSpec::from_json("not json").is_err());
        assert!(JoinSpec::from_json("{\"engine\":\"str\"} extra").is_err());
    }

    #[test]
    fn classic_covers_the_papers_grid() {
        for framework in Framework::ALL {
            for kind in IndexKind::ALL {
                let spec = JoinSpec::classic(framework, kind, SssjConfig::new(0.7, 0.1));
                let join = spec.build().unwrap();
                assert!(join.name().starts_with(&framework.to_string()));
                let reparsed: JoinSpec = spec.to_string().parse().unwrap();
                assert_eq!(reparsed, spec);
            }
        }
    }
}

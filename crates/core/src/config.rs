//! Join configuration.

use sssj_types::Decay;

/// The two parameters of Problem 1: the similarity threshold `θ` and the
/// time-decay rate `λ`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SssjConfig {
    /// Similarity threshold `θ ∈ (0, 1]`.
    pub theta: f64,
    /// Decay rate `λ ≥ 0` (`0` disables forgetting).
    pub lambda: f64,
}

impl SssjConfig {
    /// Creates a configuration; panics on out-of-range parameters.
    pub fn new(theta: f64, lambda: f64) -> Self {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "theta must be in (0, 1]: {theta}"
        );
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be finite and non-negative: {lambda}"
        );
        SssjConfig { theta, lambda }
    }

    /// The §3 parameter-setting recipe: `θ` from the application's content
    /// threshold, `λ = ln(1/θ)/τ` from the largest acceptable gap between
    /// identical items.
    pub fn from_horizon(theta: f64, tau: f64) -> Self {
        let decay = Decay::from_horizon(theta, tau);
        SssjConfig::new(theta, decay.lambda())
    }

    /// The decay object.
    pub fn decay(&self) -> Decay {
        Decay::new(self.lambda)
    }

    /// The time horizon `τ = ln(1/θ)/λ`.
    pub fn tau(&self) -> f64 {
        self.decay().horizon(self.theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_matches_formula() {
        let c = SssjConfig::new(0.5, 0.01);
        assert!((c.tau() - (2.0f64).ln() / 0.01).abs() < 1e-9);
    }

    #[test]
    fn from_horizon_roundtrips() {
        let c = SssjConfig::from_horizon(0.8, 50.0);
        assert!((c.tau() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_lambda_has_infinite_horizon() {
        assert_eq!(SssjConfig::new(0.5, 0.0).tau(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn bad_theta_rejected() {
        SssjConfig::new(1.5, 0.1);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn negative_lambda_rejected() {
        SssjConfig::new(0.5, -1.0);
    }
}

//! The MB framework (Algorithm 1 + the two-window fix of §6.1).

use sssj_collections::MaxVector;
use sssj_metrics::JoinStats;
use sssj_types::{Decay, SimilarPair, StreamRecord};

use sssj_index::{BatchIndex, BatchScratch, IndexKind, Match};

use crate::algorithm::{ShardableJoin, StreamJoin};
use crate::config::SssjConfig;

/// MB-IDX: the MiniBatch streaming similarity self-join.
///
/// The stream is cut into consecutive windows of length `τ`. When window
/// `W_k` closes:
///
/// 1. the max vectors of `W_{k−1}` and `W_k` are combined (§6.1: the
///    AP-family `b1` bound must cover the window that will *query* the
///    index, which is only known one window later);
/// 2. a fresh batch index is built over `W_{k−1}`, reporting all
///    within-window pairs of `W_{k−1}` (with delay — the drawback the
///    paper notes);
/// 3. every vector of `W_k` queries that index, reporting the
///    cross-window pairs.
///
/// The index over `W_{k−1}` is then dropped wholesale — MB never prunes
/// posting lists, it throws indexes away. All pairs pass through
/// `ApplyDecay`: the exact time-dependent similarity is checked against
/// `θ` before reporting. Pairs further apart than `τ` can never join, and
/// any pair within `τ` lands either in one window or in two adjacent
/// ones, so the output is complete.
pub struct MiniBatch {
    config: SssjConfig,
    kind: IndexKind,
    decay: Decay,
    tau: f64,
    window_end: Option<f64>,
    /// Buffered windows; the flag marks records this join *indexes* (in
    /// sharded execution only owned records are indexed — unflagged ones
    /// query the window index but never enter it).
    prev: Vec<(StreamRecord, bool)>,
    prev_m: MaxVector,
    cur: Vec<(StreamRecord, bool)>,
    cur_m: MaxVector,
    live_postings: u64,
    stats: JoinStats,
    /// Recycled allocations of the previous window's batch index.
    scratch: BatchScratch,
    /// Reusable per-record hit buffer.
    hits: Vec<Match>,
}

impl MiniBatch {
    /// Creates an MB join with the given index variant.
    ///
    /// With `λ = 0` the horizon is infinite and MB degenerates to a single
    /// batch join flushed by [`StreamJoin::finish`].
    pub fn new(config: SssjConfig, kind: IndexKind) -> Self {
        MiniBatch {
            config,
            kind,
            decay: config.decay(),
            tau: config.tau(),
            window_end: None,
            prev: Vec::new(),
            prev_m: MaxVector::new(),
            cur: Vec::new(),
            cur_m: MaxVector::new(),
            live_postings: 0,
            stats: JoinStats::new(),
            scratch: BatchScratch::default(),
            hits: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> SssjConfig {
        self.config
    }

    /// The index variant.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Estimated heap footprint of the buffered state, in bytes.
    ///
    /// MB buffers the previous and current windows as raw records (up to
    /// `2τ` of stream) plus the two per-window max vectors; the batch
    /// index itself is transient — built and dropped inside the window
    /// close — so its peak cost is approximated by the last window's
    /// posting count times the entry size. Like
    /// [`Streaming::memory_bytes`](crate::Streaming::memory_bytes), an
    /// O(state) estimate to be sampled, not read per record.
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        let window = |records: &[(StreamRecord, bool)]| -> u64 {
            records
                .iter()
                .map(|(r, _)| size_of::<StreamRecord>() as u64 + r.vector.nnz() as u64 * 12)
                .sum()
        };
        window(&self.prev)
            + window(&self.cur)
            + (self.prev_m.dims() + self.cur_m.dims()) as u64 * 8
            // Transient batch index at the last window close.
            + self.live_postings * 24
    }

    /// Closes the current window: indexes `prev` (reporting its
    /// within-window pairs), streams `cur` through the index (reporting
    /// cross-window pairs), then shifts the windows.
    fn flush_window(&mut self, out: &mut Vec<SimilarPair>) {
        let theta = self.config.theta;
        // §6.1: m must cover both the indexed and the querying window.
        let mut m = self.prev_m.clone();
        m.merge(&self.cur_m);

        // The per-window index reuses the previous window's allocations
        // (posting blocks, metadata map, accumulator, norm scratch).
        let mut index = BatchIndex::with_scratch(
            theta,
            self.kind.policy(),
            m,
            std::mem::take(&mut self.scratch),
        );
        let hits = &mut self.hits;
        // IndConstr over the previous window: query-then-insert finds all
        // pairs within it. Unflagged (non-owned) records query but are
        // never indexed, so a pair is reported only by the shard that
        // owns its earlier member.
        for (r, indexed) in &self.prev {
            hits.clear();
            index.query_into(r, hits);
            for h in hits.iter() {
                let sim = self.decay.apply(h.sim, h.dt);
                if sim >= theta {
                    self.stats.pairs_output += 1;
                    out.push(SimilarPair::new(h.id, r.id, sim));
                }
            }
            if *indexed {
                index.insert(r);
            }
        }
        self.live_postings = index.live_postings();
        // Query phase: the current window probes the previous one.
        for (r, _) in &self.cur {
            hits.clear();
            index.query_into(r, hits);
            for h in hits.iter() {
                // ApplyDecay: only now is the time-dependent threshold
                // enforced; the batch index worked on plain similarity.
                let sim = self.decay.apply(h.sim, h.dt);
                if sim >= theta {
                    self.stats.pairs_output += 1;
                    out.push(SimilarPair::new(h.id, r.id, sim));
                }
            }
        }
        let mut batch_stats = index.stats();
        // Hand the window's allocations back for the next rebuild.
        self.scratch = index.into_scratch();
        // The batch engine counted its own outputs; ours are decay-
        // filtered and already tallied above.
        batch_stats.pairs_output = 0;
        self.stats += batch_stats;
        self.stats.windows += 1;
        self.stats
            .observe_postings(self.live_postings + self.buffered_coords());

        std::mem::swap(&mut self.prev, &mut self.cur);
        std::mem::swap(&mut self.prev_m, &mut self.cur_m);
        self.cur.clear();
        self.cur_m.clear();
        self.live_postings = 0;
    }

    fn buffered_coords(&self) -> u64 {
        (self.prev.iter().map(|(r, _)| r.vector.nnz()).sum::<usize>()
            + self.cur.iter().map(|(r, _)| r.vector.nnz()).sum::<usize>()) as u64
    }
}

impl ShardableJoin for MiniBatch {
    fn process_routed(&mut self, record: &StreamRecord, insert: bool, out: &mut Vec<SimilarPair>) {
        let t = record.t.seconds();
        let end = *self.window_end.get_or_insert(t + self.tau);
        if t >= end {
            self.flush_window(out);
            // Advance the window grid; skip over empty windows.
            let mut new_end = end + self.tau;
            if t >= new_end {
                // More than one full window elapsed: flush once more so the
                // stale "previous" window is indexed/reported, then restart
                // the grid at the current time.
                self.flush_window(out);
                new_end = t + self.tau;
            }
            self.window_end = Some(new_end);
        }
        self.cur.push((record.clone(), insert));
        // §6.1: m must cover the querying window too, so every buffered
        // record raises it — indexed or not.
        for (d, w) in record.vector.iter() {
            self.cur_m.update(d, w);
        }
        self.stats
            .observe_postings(self.live_postings + self.buffered_coords());
    }

    /// MB probes pairs as far apart as `2τ`, but `ApplyDecay` rejects
    /// everything beyond `τ`, so dimension occupancy older than `τ`
    /// cannot contribute output.
    fn occupancy_horizon(&self) -> Option<f64> {
        Some(self.tau)
    }
}

impl crate::algorithm::Checkpointable for MiniBatch {
    /// MB has no state that outlives its two buffered windows: the
    /// per-window max vectors are rebuilt by replay, and the window grid
    /// re-anchors on the first replayed record. A shifted grid changes
    /// *when* pairs are reported, never *which* — any pair within `τ`
    /// lands in the same or adjacent windows under every grid phase, and
    /// `ApplyDecay` filters exactly — which is all the set-based replay
    /// suppression of `sssj-store` needs.
    fn write_aux(&mut self, _out: &mut Vec<u8>) {}

    fn read_aux(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "MiniBatch carries no aux state, got {} bytes",
                bytes.len()
            ))
        }
    }

    /// Two windows of length `τ` stay buffered (the previous window is
    /// probed by the current one), so replay needs `2τ` of history to
    /// rebuild the exact buffered state. Infinite when `λ = 0` (the
    /// degenerate single-batch mode) — the WAL is then never collected.
    fn replay_horizon(&self) -> f64 {
        2.0 * self.tau
    }
}

impl StreamJoin for MiniBatch {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        self.process_routed(record, true, out);
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        // Flush the trailing two windows: first `prev` is indexed and
        // queried by `cur`, then the shifted `prev` (the old `cur`) is
        // indexed to report its within-window pairs.
        self.flush_window(out);
        self.flush_window(out);
        self.window_end = None;
    }

    fn stats(&self) -> JoinStats {
        self.stats
    }

    fn live_postings(&self) -> u64 {
        self.live_postings + self.buffered_coords()
    }

    fn name(&self) -> String {
        format!("MB-{}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::run_stream;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn rec(id: u64, t: f64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::new(t), unit_vector(entries))
    }

    fn run(kind: IndexKind, config: SssjConfig, stream: &[StreamRecord]) -> Vec<(u64, u64)> {
        let mut join = MiniBatch::new(config, kind);
        let mut keys: Vec<_> = run_stream(&mut join, stream)
            .iter()
            .map(|p| p.key())
            .collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn within_window_pair_is_reported() {
        let config = SssjConfig::new(0.5, 0.01); // τ ≈ 69
        let stream = vec![rec(0, 0.0, &[(1, 1.0)]), rec(1, 1.0, &[(1, 1.0)])];
        for kind in IndexKind::ALL {
            assert_eq!(run(kind, config, &stream), vec![(0, 1)], "{kind}");
        }
    }

    #[test]
    fn cross_window_pair_is_reported() {
        let config = SssjConfig::new(0.5, 0.01);
        let tau = config.tau();
        // Two identical vectors in adjacent windows, within τ of each
        // other.
        let stream = vec![
            rec(0, tau * 0.9, &[(1, 1.0)]),
            rec(1, tau * 1.1, &[(1, 1.0)]),
        ];
        for kind in IndexKind::ALL {
            assert_eq!(run(kind, config, &stream), vec![(0, 1)], "{kind}");
        }
    }

    #[test]
    fn beyond_horizon_pair_is_suppressed() {
        let config = SssjConfig::new(0.5, 0.1); // τ ≈ 6.93
        let stream = vec![rec(0, 0.0, &[(1, 1.0)]), rec(1, 50.0, &[(1, 1.0)])];
        for kind in IndexKind::ALL {
            assert!(run(kind, config, &stream).is_empty(), "{kind}");
        }
    }

    #[test]
    fn adjacent_window_pair_beyond_tau_is_decay_filtered() {
        // Both vectors land in adjacent windows but Δt ∈ (τ, 2τ): MB
        // tests the pair, ApplyDecay must reject it.
        let config = SssjConfig::new(0.5, 0.01);
        let tau = config.tau();
        let stream = vec![
            rec(0, tau * 0.1, &[(1, 1.0)]),
            rec(1, tau * 1.9, &[(1, 1.0)]),
        ];
        for kind in IndexKind::ALL {
            assert!(run(kind, config, &stream).is_empty(), "{kind}");
        }
    }

    #[test]
    fn zero_lambda_degenerates_to_batch_join() {
        let config = SssjConfig::new(0.9, 0.0);
        let stream = vec![rec(0, 0.0, &[(1, 1.0)]), rec(1, 1e9, &[(1, 1.0)])];
        assert_eq!(run(IndexKind::L2, config, &stream), vec![(0, 1)]);
    }

    #[test]
    fn long_gaps_do_not_leak_pairs_or_panic() {
        let config = SssjConfig::new(0.5, 0.1);
        let stream = vec![
            rec(0, 0.0, &[(1, 1.0)]),
            rec(1, 1.0, &[(1, 1.0)]),
            rec(2, 1000.0, &[(1, 1.0)]),
            rec(3, 1001.0, &[(1, 1.0)]),
            rec(4, 5000.0, &[(1, 1.0)]),
        ];
        for kind in IndexKind::ALL {
            assert_eq!(run(kind, config, &stream), vec![(0, 1), (2, 3)], "{kind}");
        }
    }

    #[test]
    fn windows_counter_advances() {
        let config = SssjConfig::new(0.5, 1.0); // τ ≈ 0.69
        let stream: Vec<_> = (0..20).map(|i| rec(i, i as f64, &[(1, 1.0)])).collect();
        let mut join = MiniBatch::new(config, IndexKind::L2);
        run_stream(&mut join, &stream);
        assert!(
            join.stats().windows >= 19,
            "windows={}",
            join.stats().windows
        );
    }

    #[test]
    fn name_includes_kind() {
        let join = MiniBatch::new(SssjConfig::new(0.5, 0.1), IndexKind::Inv);
        assert_eq!(join.name(), "MB-INV");
    }
}

//! The STR framework (Algorithms 5–8): a single streaming index with time
//! filtering built into every phase.

use sssj_collections::{CircularBuffer, DecayedMaxVec, LinkedHashMap, MaxVector, ScoreAccumulator};
use sssj_metrics::JoinStats;
use sssj_types::{
    dot, prefix_norms, Decay, SimilarPair, SparseVector, StreamRecord, VectorId, VectorSummary,
    Weight,
};

use sssj_index::{BoundPolicy, IndexKind};

use crate::algorithm::StreamJoin;
use crate::config::SssjConfig;

/// Float guard for threshold comparisons: pruning tests are slackened by
/// this amount (prune *less*), so accumulated rounding can never cause a
/// false negative; the final exact check still uses the true `θ`.
const PRUNE_EPS: f64 = 1e-12;

/// A streaming posting entry: the L2AP triple plus the arrival time that
/// time filtering keys on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct StreamEntry {
    id: VectorId,
    weight: Weight,
    /// ‖y′_j‖ — prefix norm strictly before this coordinate.
    prefix_norm: Weight,
    /// Arrival time of the owning vector, in seconds.
    t: f64,
}

/// Per-vector state kept while the vector is inside the horizon: the
/// residual `R[ι(y)]`, the `Q[ι(y)]` bound, summaries and the timestamp.
#[derive(Clone, Debug, Default)]
struct StreamMeta {
    residual: SparseVector,
    residual_summary: VectorSummary,
    summary: VectorSummary,
    q: f64,
    t: f64,
}

/// STR-IDX: the streaming similarity self-join with index `IDX`
/// (Algorithm 5).
///
/// For each arriving vector the index is queried (candidate generation +
/// verification, with every bound decayed by `e^{-λΔt}`) and the vector is
/// then inserted. Time filtering works differently per variant:
///
/// * **STR-INV / STR-L2** — posting lists stay time-ordered, so candidate
///   generation scans them *backwards* from the newest entry, stops at the
///   first entry beyond the horizon and truncates everything older in
///   O(1) (§6.2).
/// * **STR-L2AP** — the `b1` bound consults the running max vector `m`;
///   when a new arrival raises `m`, the prefix-filtering invariant breaks
///   and affected residuals are *re-indexed* (§5.3), which appends
///   out-of-order entries. Lists are therefore scanned *forwards*,
///   dropping expired entries as they are met.
pub struct Streaming {
    config: SssjConfig,
    kind: IndexKind,
    policy: BoundPolicy,
    decay: Decay,
    tau: f64,
    /// Whether posting lists are guaranteed time-ordered (no re-indexing).
    time_ordered: bool,
    lists: Vec<CircularBuffer<StreamEntry>>,
    /// Residual direct index `R` + `Q`, in arrival order for O(1) pruning.
    residual: LinkedHashMap<VectorId, StreamMeta>,
    /// Running max `m` over the stream so far (AP bounds only).
    m: MaxVector,
    /// Decayed max `m̂λ` over indexed vectors (AP bounds only).
    mhat_lambda: DecayedMaxVec,
    /// Dim → candidate residual owners, for targeted re-indexing.
    residual_inverted: Vec<Vec<VectorId>>,
    acc: ScoreAccumulator,
    live_postings: u64,
    stats: JoinStats,
    scratch_hits: Vec<(VectorId, f64, f64)>,
}

impl Streaming {
    /// Creates an STR join with the given index variant.
    pub fn new(config: SssjConfig, kind: IndexKind) -> Self {
        let policy = kind.policy();
        Streaming {
            config,
            kind,
            policy,
            decay: config.decay(),
            tau: config.tau(),
            time_ordered: !policy.ap,
            lists: Vec::new(),
            residual: LinkedHashMap::new(),
            m: MaxVector::new(),
            mhat_lambda: DecayedMaxVec::new(config.lambda),
            residual_inverted: Vec::new(),
            acc: ScoreAccumulator::new(),
            live_postings: 0,
            stats: JoinStats::new(),
            scratch_hits: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> SssjConfig {
        self.config
    }

    /// The index variant.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Estimated heap footprint of the live join state, in bytes.
    ///
    /// Counts posting-list *capacities* (what is actually allocated, not
    /// just occupied), the residual direct index `R` with its sparse
    /// vectors, the `m`/`m̂λ` max vectors, the re-indexing inverted index
    /// and the scratch structures. The per-entry overheads of the hash
    /// map are approximated by a constant, so treat the result as an
    /// estimate good to ~10 %, not an allocator-exact figure.
    ///
    /// Cost is O(live state) — sample it periodically (the `harness
    /// memory` experiment samples every 64 records), not per record.
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        // Hash-map node + slot overhead per residual entry (two u64
        // links, one hash slot, allocator rounding).
        const MAP_OVERHEAD: u64 = 48;
        let mut bytes = 0u64;
        bytes += self
            .lists
            .iter()
            .map(|l| l.capacity() as u64)
            .sum::<u64>()
            * size_of::<StreamEntry>() as u64;
        bytes += self.lists.capacity() as u64 * size_of::<CircularBuffer<StreamEntry>>() as u64;
        for (_, meta) in self.residual.iter() {
            bytes += size_of::<StreamMeta>() as u64 + MAP_OVERHEAD;
            // Residual sparse vector: u32 dim + f64 weight per coordinate.
            bytes += meta.residual.nnz() as u64 * 12;
        }
        bytes += self.m.dims() as u64 * 8;
        bytes += self.mhat_lambda.dims() as u64 * 16;
        bytes += self
            .residual_inverted
            .iter()
            .map(|v| v.capacity() as u64 * 8 + size_of::<Vec<VectorId>>() as u64)
            .sum::<u64>();
        bytes += self.acc.capacity() as u64 * (8 + 8 + 4);
        bytes += self.scratch_hits.capacity() as u64
            * size_of::<(VectorId, f64, f64)>() as u64;
        bytes
    }

    /// Drops residual state for vectors beyond the horizon relative to
    /// `now`. Posting entries are pruned lazily during scans instead.
    fn prune_residuals(&mut self, now: f64) {
        while let Some((_, meta)) = self.residual.front() {
            if now - meta.t > self.tau {
                self.residual.pop_front();
            } else {
                break;
            }
        }
    }

    /// Candidate generation (Algorithm 7).
    fn candidate_generation(&mut self, x: &SparseVector, now: f64) {
        self.acc.clear();
        let theta = self.config.theta;
        let theta_slack = theta - PRUNE_EPS;
        let policy = self.policy;
        let tau = self.tau;
        let lambda = self.config.lambda;
        let xnorms = prefix_norms(x);

        let summary = VectorSummary::of(x);
        let sz1 = if policy.ap && summary.max_weight > 0.0 {
            theta / summary.max_weight
        } else {
            0.0
        };
        // rs1 = dot(x, m̂λ(now)): already time-aware per coordinate.
        let mut rs1 = if policy.ap {
            x.iter()
                .map(|(d, w)| w * self.mhat_lambda.get(d, now))
                .sum::<f64>()
        } else {
            f64::INFINITY
        };
        let mut rst: f64 = 1.0;
        let mut rs2 = if policy.l2 { 1.0 } else { f64::INFINITY };

        let lists = &mut self.lists;
        let residual = &self.residual;
        let acc = &mut self.acc;
        let stats = &mut self.stats;
        let live = &mut self.live_postings;
        let mhat_lambda = &self.mhat_lambda;

        for (pos, (dim, xj)) in x.iter().enumerate().rev() {
            if let Some(list) = lists.get_mut(dim as usize) {
                let xnorm_before = xnorms[pos];
                let mut process = |e: &StreamEntry, dt: f64| {
                    if policy.ap {
                        match residual.get(&e.id) {
                            Some(meta) => {
                                let s = &meta.summary;
                                if (s.nnz as f64) * s.max_weight < sz1 {
                                    return;
                                }
                            }
                            // Residual metadata is pruned at the same
                            // horizon as entries; a missing entry means
                            // the vector just expired.
                            None => return,
                        }
                    }
                    let df = (-lambda * dt).exp();
                    let remscore = rs1.min(rs2 * df);
                    let current = acc.get(e.id);
                    if current > 0.0 || remscore >= theta_slack {
                        if current == 0.0 {
                            stats.candidates += 1;
                        }
                        let new = acc.add(e.id, xj * e.weight);
                        if policy.l2 {
                            let l2bound = new + xnorm_before * e.prefix_norm * df;
                            if l2bound < theta_slack {
                                acc.zero(e.id);
                            }
                        }
                    }
                };
                if self.time_ordered {
                    // Backward scan: newest first; stop at the horizon and
                    // truncate everything older.
                    let len = list.len();
                    let mut cut = 0;
                    for i in (0..len).rev() {
                        let e = *list.get(i).expect("index in range");
                        let dt = now - e.t;
                        if dt > tau {
                            cut = i + 1;
                            break;
                        }
                        stats.entries_traversed += 1;
                        process(&e, dt);
                    }
                    if cut > 0 {
                        list.truncate_front(cut);
                        stats.entries_pruned += cut as u64;
                        *live -= cut as u64;
                    }
                } else {
                    // Forward scan with in-place compaction (out-of-order
                    // lists cannot early-stop).
                    let removed = list.retain(|e| {
                        // Expired entries still cost a traversal here —
                        // the price of losing time order to re-indexing,
                        // which is why L2AP's traversal count can exceed
                        // INV's at short horizons (Figure 6).
                        stats.entries_traversed += 1;
                        let dt = now - e.t;
                        if dt > tau {
                            false
                        } else {
                            process(e, dt);
                            true
                        }
                    });
                    stats.entries_pruned += removed as u64;
                    *live -= removed as u64;
                }
            }
            if policy.ap {
                rs1 -= xj * mhat_lambda.get(dim, now);
            }
            if policy.l2 {
                rst -= xj * xj;
                rs2 = rst.max(0.0).sqrt();
            }
        }
    }

    /// Candidate verification (Algorithm 8).
    fn candidate_verification(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let theta = self.config.theta;
        let theta_slack = theta - PRUNE_EPS;
        let policy = self.policy;
        let x = &record.vector;
        let now = record.t.seconds();
        let sx = VectorSummary::of(x);
        self.scratch_hits.clear();

        for (id, c) in self.acc.iter() {
            if c <= 0.0 {
                continue;
            }
            let Some(meta) = self.residual.get(&id) else {
                continue;
            };
            let dt = now - meta.t;
            let df = self.decay.factor(dt.max(0.0));
            if policy.prunes() && (c + meta.q) * df < theta_slack {
                continue;
            }
            if policy.ap {
                let r = &meta.residual_summary;
                let ds1 = (c + (sx.max_weight * r.sum).min(r.max_weight * sx.sum)) * df;
                let sz2 = (c + (sx.nnz.min(r.nnz) as f64) * sx.max_weight * r.max_weight) * df;
                if ds1 < theta_slack || sz2 < theta_slack {
                    continue;
                }
            }
            self.stats.full_sims += 1;
            let sim = (c + dot(x, &meta.residual)) * df;
            if sim >= theta {
                self.scratch_hits.push((id, sim, dt));
            }
        }
        for &(id, sim, _) in &self.scratch_hits {
            self.stats.pairs_output += 1;
            out.push(SimilarPair::new(id, record.id, sim));
        }
    }

    /// Replays the index-construction bounds over a residual prefix with
    /// the current `m`. Returns `(boundary, q)`: the position where
    /// indexing must (re)start, or `None` when the whole prefix stays
    /// below θ, together with the updated `Q` bound.
    fn replay_boundary(&self, residual: &SparseVector) -> (Option<usize>, f64) {
        let theta_slack = self.config.theta - PRUNE_EPS;
        let policy = self.policy;
        let mut b1: f64 = 0.0;
        let mut bt: f64 = 0.0;
        for (pos, (dim, w)) in residual.iter().enumerate() {
            let pscore = policy.combine(b1, bt.sqrt()).min(1.0);
            if policy.ap {
                b1 += w * self.m.get(dim);
            }
            if policy.l2 {
                bt += w * w;
            }
            if policy.combine(b1, bt.sqrt()) >= theta_slack {
                return (Some(pos), pscore);
            }
        }
        (None, policy.combine(b1, bt.sqrt()).min(1.0))
    }

    /// Appends posting entries for `residual[boundary..]` of vector `id`
    /// at time `t`, returning how many entries were written.
    fn index_suffix(
        &mut self,
        id: VectorId,
        residual: &SparseVector,
        boundary: usize,
        t: f64,
    ) -> u64 {
        let norms = prefix_norms(residual);
        let mut added = 0;
        for (pos, (dim, w)) in residual.iter().enumerate().skip(boundary) {
            let d = dim as usize;
            if d >= self.lists.len() {
                self.lists.resize_with(d + 1, CircularBuffer::new);
            }
            self.lists[d].push_back(StreamEntry {
                id,
                weight: w,
                prefix_norm: norms[pos],
                t,
            });
            added += 1;
        }
        self.live_postings += added;
        self.stats.postings_added += added;
        added
    }

    /// Re-indexes residuals with support on `dim` after `m[dim]` grew
    /// (§5.3). Out-of-order appends; updates `R` and `Q`.
    fn reindex_dim(&mut self, dim: u32) {
        let d = dim as usize;
        if d >= self.residual_inverted.len() {
            return;
        }
        let ids = std::mem::take(&mut self.residual_inverted[d]);
        let mut keep = Vec::new();
        for id in ids {
            let Some(meta) = self.residual.get(&id) else {
                continue; // expired
            };
            if meta.residual.get(dim) == 0.0 {
                continue; // already re-indexed past this dimension
            }
            let residual = meta.residual.clone();
            let t = meta.t;
            let (boundary, q) = self.replay_boundary(&residual);
            match boundary {
                Some(p) => {
                    let added = self.index_suffix(id, &residual, p, t);
                    self.stats.reindexed_vectors += 1;
                    self.stats.reindexed_postings += added;
                    let new_residual = residual.prefix(p);
                    let still_has_dim = new_residual.get(dim) != 0.0;
                    let meta = self.residual.get_mut(&id).expect("checked above");
                    meta.residual_summary = VectorSummary::of(&new_residual);
                    meta.residual = new_residual;
                    meta.q = q;
                    if still_has_dim {
                        keep.push(id);
                    }
                }
                None => {
                    // Bound still below θ: residual unchanged, but Q must
                    // be refreshed for the grown m.
                    let meta = self.residual.get_mut(&id).expect("checked above");
                    meta.q = q;
                    keep.push(id);
                }
            }
        }
        self.residual_inverted[d] = keep;
    }

    /// Index construction for the arriving vector (Algorithm 6; `m` was
    /// already updated before candidate generation).
    fn insert(&mut self, record: &StreamRecord) {
        let x = &record.vector;
        if x.is_empty() {
            return;
        }
        let t = record.t.seconds();
        let (boundary, q) = self.replay_boundary(x);
        let indexed_any = boundary.is_some();
        if let Some(p) = boundary {
            self.index_suffix(record.id, x, p, t);
        }
        if self.policy.ap {
            // m̂λ covers the full vector (residual included), as rs1 bounds
            // the dot against whole indexed vectors.
            for (dim, w) in x.iter() {
                self.mhat_lambda.update(dim, t, w);
            }
        }
        // A fully-unindexed vector must still be tracked when AP bounds
        // are active: a later growth of m can make it indexable.
        if !indexed_any && !self.policy.ap {
            return;
        }
        let residual = x.prefix(boundary.unwrap_or(x.nnz()));
        self.stats.residual_coords += residual.nnz() as u64;
        if self.policy.ap {
            for (dim, _) in residual.iter() {
                let d = dim as usize;
                if d >= self.residual_inverted.len() {
                    self.residual_inverted.resize_with(d + 1, Vec::new);
                }
                self.residual_inverted[d].push(record.id);
            }
        }
        self.residual.insert(
            record.id,
            StreamMeta {
                residual_summary: VectorSummary::of(&residual),
                residual,
                summary: VectorSummary::of(x),
                q,
                t,
            },
        );
        self.stats.observe_postings(self.live_postings);
    }
}

impl Streaming {
    /// The query half of [`StreamJoin::process`]: reports pairs between
    /// `record` and the vectors currently indexed, *without* inserting
    /// `record`.
    ///
    /// Together with [`Streaming::insert_record`] this decomposes the
    /// join for sharded execution (`sssj-parallel`): every shard queries
    /// with every record, but each record is inserted at exactly one
    /// shard, so each pair is found exactly once — at the shard owning
    /// its earlier member.
    pub fn query(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let now = record.t.seconds();
        self.prune_residuals(now);
        if self.policy.ap {
            // Update m first and restore the prefix-filter invariant, so
            // that this very query cannot miss an under-indexed vector.
            // m must cover *query* vectors too (it bounds the similarity
            // of indexed prefixes to anything that arrives), so this runs
            // even for records this shard does not own.
            let mut grown: Vec<u32> = Vec::new();
            for (dim, w) in record.vector.iter() {
                if self.m.update(dim, w) {
                    grown.push(dim);
                }
            }
            for dim in grown {
                self.reindex_dim(dim);
            }
        }
        self.candidate_generation(&record.vector, now);
        self.candidate_verification(record, out);
    }

    /// The insert half of [`StreamJoin::process`]: adds `record` to the
    /// index so later arrivals can pair with it. See [`Streaming::query`].
    pub fn insert_record(&mut self, record: &StreamRecord) {
        self.insert(record);
    }

    /// Pre-seeds the AP running-max vector `m` (snapshot restore).
    ///
    /// `m` accumulates over the *whole* stream, not just the horizon; a
    /// restored join that rebuilt `m` from buffered records alone would
    /// still be output-correct (a smaller `m` only indexes more), but its
    /// indexing decisions — and so its performance profile — would drift
    /// from the uninterrupted run. Ignored by non-AP indexes.
    pub fn seed_max(&mut self, maxima: impl IntoIterator<Item = (u32, f64)>) {
        for (dim, v) in maxima {
            self.m.update(dim, v);
        }
    }

    /// The AP running-max vector `m` as (dim, value) pairs (snapshot
    /// write). Empty for non-AP indexes.
    pub fn max_entries(&self) -> Vec<(u32, f64)> {
        self.m
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(d, &v)| (d as u32, v))
            .collect()
    }
}

impl StreamJoin for Streaming {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        self.query(record, out);
        self.insert(record);
    }

    fn finish(&mut self, _out: &mut Vec<SimilarPair>) {
        // STR reports pairs immediately; nothing is buffered.
    }

    fn stats(&self) -> JoinStats {
        self.stats
    }

    fn live_postings(&self) -> u64 {
        self.live_postings
    }

    fn name(&self) -> String {
        format!("STR-{}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn rec(id: u64, t: f64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::new(t), unit_vector(entries))
    }

    fn run(kind: IndexKind, config: SssjConfig, stream: &[StreamRecord]) -> Vec<(u64, u64)> {
        let mut join = Streaming::new(config, kind);
        let mut out = Vec::new();
        for r in stream {
            join.process(r, &mut out);
        }
        join.finish(&mut out);
        let mut keys: Vec<_> = out.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn identical_within_horizon_pair() {
        let stream = vec![
            rec(0, 0.0, &[(1, 1.0)]),
            rec(1, 1.0, &[(1, 1.0)]),
            rec(2, 1000.0, &[(1, 1.0)]),
        ];
        let config = SssjConfig::new(0.5, 0.1); // τ ≈ 6.93
        for kind in IndexKind::ALL {
            assert_eq!(run(kind, config, &stream), vec![(0, 1)], "{kind}");
        }
    }

    #[test]
    fn decay_is_applied_to_similarity() {
        let stream = vec![rec(0, 0.0, &[(1, 1.0)]), rec(1, 2.0, &[(1, 1.0)])];
        let config = SssjConfig::new(0.1, 0.5);
        let mut join = Streaming::new(config, IndexKind::L2);
        let mut out = Vec::new();
        for r in &stream {
            join.process(r, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert!((out[0].similarity - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn expired_postings_are_truncated() {
        let config = SssjConfig::new(0.5, 0.1);
        let mut join = Streaming::new(config, IndexKind::L2);
        let mut out = Vec::new();
        for i in 0..50 {
            join.process(&rec(i, i as f64 * 100.0, &[(1, 1.0)]), &mut out);
        }
        assert!(out.is_empty());
        // Each arrival scans dim 1, finds the single previous entry
        // expired and truncates it.
        assert!(join.live_postings() <= 2, "live={}", join.live_postings());
        assert!(join.stats().entries_pruned >= 48);
    }

    #[test]
    fn reindexing_preserves_completeness() {
        // Vector 0's coordinate on dim 2 initially stays in the residual
        // (low m), but vector 1 raises m and a later near-duplicate of 0
        // must still be found.
        let config = SssjConfig::new(0.9, 0.001);
        let stream = vec![
            rec(0, 0.0, &[(1, 1.0), (2, 3.0)]),
            rec(1, 1.0, &[(1, 5.0), (3, 1.0)]),
            rec(2, 2.0, &[(1, 1.0), (2, 3.0)]),
        ];
        let l2ap = run(IndexKind::L2ap, config, &stream);
        let inv = run(IndexKind::Inv, config, &stream);
        assert_eq!(l2ap, inv);
        assert!(inv.contains(&(0, 2)));
    }

    #[test]
    fn str_inv_matches_str_l2_on_random_stream() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let stream: Vec<StreamRecord> = (0..300)
            .map(|i| {
                let entries: Vec<(u32, f64)> = (0..rng.random_range(1..6))
                    .map(|_| (rng.random_range(0..15u32), rng.random_range(0.1..1.0)))
                    .collect();
                rec(i, i as f64 * 0.3, &entries)
            })
            .collect();
        for (theta, lambda) in [(0.5, 0.01), (0.7, 0.1), (0.9, 0.001)] {
            let config = SssjConfig::new(theta, lambda);
            let reference = run(IndexKind::Inv, config, &stream);
            for kind in [IndexKind::L2, IndexKind::L2ap, IndexKind::Ap] {
                assert_eq!(
                    run(kind, config, &stream),
                    reference,
                    "{kind} θ={theta} λ={lambda}"
                );
            }
        }
    }

    #[test]
    fn residual_metadata_is_pruned() {
        let config = SssjConfig::new(0.5, 1.0); // τ ≈ 0.69
        let mut join = Streaming::new(config, IndexKind::L2);
        let mut out = Vec::new();
        for i in 0..100 {
            join.process(&rec(i, i as f64, &[(i as u32 % 7, 1.0)]), &mut out);
        }
        assert!(join.residual.len() <= 2, "residuals={}", join.residual.len());
    }

    #[test]
    fn name_includes_kind() {
        let join = Streaming::new(SssjConfig::new(0.5, 0.1), IndexKind::L2);
        assert_eq!(join.name(), "STR-L2");
    }
}

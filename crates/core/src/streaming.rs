//! The STR framework (Algorithms 5–8): a single streaming index with time
//! filtering built into every phase.
//!
//! # Hot-path layout
//!
//! The per-record loop — candidate generation over posting lists, then
//! verification — is the paper's headline cost (Figs. 3–5), so this
//! implementation keeps it flat and allocation-free at steady state:
//!
//! * posting lists are flat single-allocation [`PostingBlock`]s of
//!   packed 32-byte entries: candidate generation is one contiguous
//!   slice walk (no ring-buffer masking), and time truncation on
//!   time-ordered lists is a binary search on the packed time field plus
//!   an O(1) front cut instead of an entry-by-entry backward scan (the
//!   layout was chosen over fully-columnar splits by measurement — see
//!   `sssj_collections::posting`);
//! * the candidate score array is a dense, epoch-stamped
//!   [`ScoreAccumulator`] sliding over the live id window — O(1) reset,
//!   no hashing, one fused probe per entry
//!   ([`ScoreAccumulator::accumulate`]);
//! * the decay factor `e^{-λΔt}` is read from a quantized upper-bound
//!   [`DecayTable`] inside all *pruning* tests (safe: a larger factor
//!   prunes less) and computed exactly only for the final similarity of
//!   surviving candidates;
//! * the index-construction bounds are replayed in squared space (no
//!   per-coordinate square root), and the stored `‖y′_j‖` prefix norms
//!   continue that recurrence so only indexed suffixes pay a `sqrt`;
//! * residual vectors live in pooled `Residual` buffers recycled as
//!   vectors expire, the residual map hashes with the fx construction,
//!   and the hit buffer is owned by the join — steady-state processing
//!   performs **zero** heap allocations per record on the STR-L2 path
//!   (asserted by `tests/zero_alloc.rs`).

use sssj_collections::{
    Accumulated, DecayedMaxVec, LinkedHashMap, MaxVector, PackedPosting, PostingBlock,
    ScoreAccumulator,
};
use sssj_kernels::L2BatchParams;
use sssj_metrics::JoinStats;
use sssj_types::{
    dot_sorted, Decay, DecayTable, SimilarPair, SparseVector, StreamRecord, VectorId, VectorSummary,
};

use sssj_index::{BoundPolicy, IndexKind};

use crate::algorithm::{ShardableJoin, StreamJoin};
use crate::config::SssjConfig;

/// Float guard for threshold comparisons: pruning tests are slackened by
/// this amount (prune *less*), so accumulated rounding can never cause a
/// false negative; the final exact check still uses the true `θ`.
const PRUNE_EPS: f64 = 1e-12;

/// A pooled residual vector: the un-indexed prefix `R[ι(y)]`, stored as
/// raw dimension/weight columns so expired vectors hand their buffers
/// back for reuse instead of freeing them.
#[derive(Clone, Debug, Default)]
struct Residual {
    dims: Vec<u32>,
    weights: Vec<f64>,
}

impl Residual {
    #[inline]
    fn nnz(&self) -> usize {
        self.dims.len()
    }

    #[inline]
    fn dims(&self) -> &[u32] {
        &self.dims
    }

    #[inline]
    fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Refills this buffer with the first `len` coordinates of `x`.
    fn assign_prefix(&mut self, x: &SparseVector, len: usize) {
        self.dims.clear();
        self.weights.clear();
        self.dims.extend_from_slice(&x.dims()[..len]);
        self.weights.extend_from_slice(&x.weights()[..len]);
    }

    /// The weight at `dim`, or 0.0 when absent.
    fn get(&self, dim: u32) -> f64 {
        match self.dims.binary_search(&dim) {
            Ok(i) => self.weights[i],
            Err(_) => 0.0,
        }
    }

    /// Keeps only the first `len` coordinates.
    fn truncate(&mut self, len: usize) {
        self.dims.truncate(len);
        self.weights.truncate(len);
    }

    fn heap_bytes(&self) -> u64 {
        (self.dims.capacity() * 4 + self.weights.capacity() * 8) as u64
    }
}

/// Per-vector state kept while the vector is inside the horizon: the
/// residual `R[ι(y)]`, the `Q[ι(y)]` bound, summaries and the timestamp.
#[derive(Clone, Debug, Default)]
struct StreamMeta {
    residual: Residual,
    residual_summary: VectorSummary,
    summary: VectorSummary,
    q: f64,
    t: f64,
}

/// STR-IDX: the streaming similarity self-join with index `IDX`
/// (Algorithm 5).
///
/// For each arriving vector the index is queried (candidate generation +
/// verification, with every bound decayed by `e^{-λΔt}`) and the vector is
/// then inserted. Time filtering works differently per variant:
///
/// * **STR-INV / STR-L2** — posting lists stay time-ordered, so candidate
///   generation first drops the expired prefix (binary search on the time
///   field + O(1) truncation, §6.2) and then scans only live entries —
///   a flat walk over packed entries.
/// * **STR-L2AP** — the `b1` bound consults the running max vector `m`;
///   when a new arrival raises `m`, the prefix-filtering invariant breaks
///   and affected residuals are *re-indexed* (§5.3), which appends
///   out-of-order entries. Lists are therefore scanned *forwards* with an
///   in-place compaction, dropping expired entries as they are met.
pub struct Streaming {
    config: SssjConfig,
    kind: IndexKind,
    policy: BoundPolicy,
    decay: Decay,
    /// Quantized upper bounds on the decay factor (pruning only).
    table: DecayTable,
    tau: f64,
    /// Whether posting lists are guaranteed time-ordered (no re-indexing).
    time_ordered: bool,
    lists: Vec<PostingBlock>,
    /// Residual direct index `R` + `Q`, in arrival order for O(1) pruning.
    residual: LinkedHashMap<VectorId, StreamMeta>,
    /// Recycled residual buffers from expired vectors.
    pool: Vec<Residual>,
    /// Running max `m` over the stream so far (AP bounds only).
    m: MaxVector,
    /// Decayed max `m̂λ` over indexed vectors (AP bounds only).
    mhat_lambda: DecayedMaxVec,
    /// Dim → candidate residual owners, for targeted re-indexing.
    residual_inverted: Vec<Vec<VectorId>>,
    acc: ScoreAccumulator,
    live_postings: u64,
    stats: JoinStats,
    /// Scratch: verified hits awaiting output.
    scratch_hits: Vec<(VectorId, f64, f64)>,
}

impl Streaming {
    /// Creates an STR join with the given index variant.
    pub fn new(config: SssjConfig, kind: IndexKind) -> Self {
        let policy = kind.policy();
        let decay = config.decay();
        let tau = config.tau();
        Streaming {
            config,
            kind,
            policy,
            decay,
            table: DecayTable::new(decay, tau),
            tau,
            time_ordered: !policy.ap,
            lists: Vec::new(),
            residual: LinkedHashMap::new(),
            pool: Vec::new(),
            m: MaxVector::new(),
            mhat_lambda: DecayedMaxVec::new(config.lambda),
            residual_inverted: Vec::new(),
            acc: ScoreAccumulator::new(),
            live_postings: 0,
            stats: JoinStats::new(),
            scratch_hits: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> SssjConfig {
        self.config
    }

    /// The index variant.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Estimated heap footprint of the live join state, in bytes.
    ///
    /// Counts posting-list *capacities* (what is actually allocated, not
    /// just occupied), the residual direct index `R` with its pooled
    /// residual buffers (free-pool included — expired buffers are
    /// retained for reuse, not released), the `m`/`m̂λ` max vectors, the
    /// re-indexing inverted index, the decay table and the scratch
    /// structures. The per-entry overheads of the hash map are
    /// approximated by a constant, so treat the result as an estimate
    /// good to ~10 %, not an allocator-exact figure.
    ///
    /// Cost is O(live state) — sample it periodically (the `harness
    /// memory` experiment samples every 64 records), not per record.
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        // Hash-map node + slot overhead per residual entry (two u64
        // links, one hash slot, allocator rounding).
        const MAP_OVERHEAD: u64 = 48;
        let mut bytes = 0u64;
        bytes += self.lists.iter().map(PostingBlock::heap_bytes).sum::<u64>();
        bytes += self.lists.capacity() as u64 * size_of::<PostingBlock>() as u64;
        for (_, meta) in self.residual.iter() {
            bytes += size_of::<StreamMeta>() as u64 + MAP_OVERHEAD;
            bytes += meta.residual.heap_bytes();
        }
        bytes += self.pool.iter().map(Residual::heap_bytes).sum::<u64>();
        bytes += self.m.dims() as u64 * 8;
        bytes += self.mhat_lambda.dims() as u64 * 16;
        bytes += self
            .residual_inverted
            .iter()
            .map(|v| v.capacity() as u64 * 8 + size_of::<Vec<VectorId>>() as u64)
            .sum::<u64>();
        bytes += self.acc.heap_bytes();
        bytes += self.table.heap_bytes();
        bytes += self.scratch_hits.capacity() as u64 * size_of::<(VectorId, f64, f64)>() as u64;
        bytes
    }

    /// Drops residual state for vectors beyond the horizon relative to
    /// `now`, recycling their buffers. Posting entries are pruned lazily
    /// during scans instead.
    fn prune_residuals(&mut self, now: f64) {
        while let Some((_, meta)) = self.residual.front() {
            if now - meta.t > self.tau {
                let (_, meta) = self.residual.pop_front().expect("front exists");
                self.pool.push(meta.residual);
            } else {
                break;
            }
        }
    }

    /// Candidate generation (Algorithm 7).
    ///
    /// The accumulator was cleared by [`Streaming::query`] (the clear
    /// must precede the dense-window slide there); this function assumes
    /// an empty accumulator.
    fn candidate_generation(&mut self, x: &SparseVector, now: f64) {
        debug_assert!(self.acc.is_empty(), "query() clears before generating");
        let cand0 = self.stats.candidates;
        let ent0 = self.stats.entries_traversed;
        let mut trace_span = sssj_metrics::trace::span(sssj_metrics::trace::Stage::Candidates);
        let theta = self.config.theta;
        let theta_slack = theta - PRUNE_EPS;
        let policy = self.policy;
        let tau = self.tau;
        let cutoff = now - tau;
        let sz1 = if policy.ap {
            let summary = VectorSummary::of(x);
            if summary.max_weight > 0.0 {
                theta / summary.max_weight
            } else {
                0.0
            }
        } else {
            0.0
        };
        // rs1 = dot(x, m̂λ(now)): already time-aware per coordinate.
        let mut rs1 = if policy.ap {
            x.iter()
                .map(|(d, w)| w * self.mhat_lambda.get(d, now))
                .sum::<f64>()
        } else {
            f64::INFINITY
        };
        let mut rst: f64 = 1.0;
        let mut rs2 = if policy.l2 { 1.0 } else { f64::INFINITY };

        let time_ordered = self.time_ordered;
        let lists = &mut self.lists;
        let residual = &self.residual;
        let acc = &mut self.acc;
        let stats = &mut self.stats;
        let live = &mut self.live_postings;
        let mhat_lambda = &self.mhat_lambda;
        let table = &self.table;

        // Fixed-size scratch for the SIMD candidate-batch kernels: stack
        // arrays, so the zero-allocation steady-state contract
        // (`tests/zero_alloc.rs`) holds with batching too.
        const BATCH: usize = 64;
        let mut b_ids = [0u64; BATCH];
        let mut b_deltas = [0.0f64; BATCH];
        let mut b_prune = [0.0f64; BATCH];
        let mut b_admit = [0u8; BATCH];

        for (dim, xj) in x.iter().rev() {
            if let Some(list) = lists.get_mut(dim as usize) {
                // ‖x′_j‖ for the l2bound, recovered from the running
                // suffix mass instead of a materialised prefix-norm
                // array: x is unit-normalised, so during this iteration
                // rst = Σ_{i ≤ pos} w_i² and the prefix before this
                // coordinate has mass rst − x_j².
                let xnorm_before = if policy.l2 {
                    (rst - xj * xj).max(0.0).sqrt()
                } else {
                    0.0
                };
                if time_ordered {
                    // Time-ordered list: the expired prefix is exactly the
                    // entries with t < now − τ. Drop it in O(log n) + O(1)
                    // and scan only live entries, flat and forward.
                    let pruned = list.expire_before(cutoff);
                    if pruned > 0 {
                        stats.entries_pruned += pruned as u64;
                        *live -= pruned as u64;
                    }
                    let postings = list.postings();
                    stats.entries_traversed += postings.len() as u64;
                    if policy.l2 {
                        // STR-L2, the paper's headline path. The SIMD
                        // batch kernel evaluates decay bounds, score
                        // deltas, admission flags and prune thresholds
                        // for 64 postings at a time; the accumulator
                        // replays them newest-first (`rchunks` + reverse
                        // within each chunk ≡ the old `.iter().rev()`
                        // walk), preserving first-touch — and thus
                        // output — order. The early ℓ2 prune
                        // (Cauchy–Schwarz on the unscanned prefixes,
                        // decayed) is folded into the per-entry
                        // threshold `θₛ − ‖x′‖·pn·df`.
                        if let Some((factors, inv_step)) = table.lookup() {
                            let params = L2BatchParams {
                                xj,
                                now,
                                xnorm_before,
                                rs2,
                                theta_slack,
                                inv_step,
                            };
                            for chunk in postings.rchunks(BATCH) {
                                let n = chunk.len();
                                sssj_kernels::l2_candidate_batch(
                                    PackedPosting::as_words(chunk),
                                    &params,
                                    factors,
                                    &mut b_ids[..n],
                                    &mut b_deltas[..n],
                                    &mut b_prune[..n],
                                    &mut b_admit[..n],
                                );
                                stats.candidates += acc.accumulate_batch_rev(
                                    &b_ids[..n],
                                    &b_deltas[..n],
                                    &b_admit[..n],
                                    &b_prune[..n],
                                ) as u64;
                            }
                        } else {
                            // Degenerate decay table (λ = 0 or infinite
                            // horizon): keep the exact per-entry form.
                            for p in postings.iter().rev() {
                                let df = table.upper(now - p.t);
                                let admit = rs2 * df >= theta_slack;
                                let new = match acc.accumulate(p.id, xj * p.weight, admit) {
                                    Accumulated::Updated(new) => new,
                                    Accumulated::Admitted(new) => {
                                        stats.candidates += 1;
                                        new
                                    }
                                    Accumulated::Skipped => continue,
                                };
                                if new + xnorm_before * p.prefix_norm * df < theta_slack {
                                    acc.zero(p.id);
                                }
                            }
                        }
                    } else {
                        // STR-INV: no pruning bounds — accumulate all,
                        // batched through the id/delta kernel.
                        for chunk in postings.rchunks(BATCH) {
                            let n = chunk.len();
                            sssj_kernels::posting_products(
                                PackedPosting::as_words(chunk),
                                xj,
                                &mut b_ids[..n],
                                &mut b_deltas[..n],
                            );
                            stats.candidates +=
                                acc.accumulate_all_rev(&b_ids[..n], &b_deltas[..n]) as u64;
                        }
                    }
                } else {
                    // Forward scan with in-place compaction (out-of-order
                    // lists cannot early-stop).
                    let removed = list.retain(|id, weight, pnorm, t| {
                        // Expired entries still cost a traversal here —
                        // the price of losing time order to re-indexing,
                        // which is why L2AP's traversal count can exceed
                        // INV's at short horizons (Figure 6).
                        stats.entries_traversed += 1;
                        let dt = now - t;
                        if dt > tau {
                            return false;
                        }
                        if policy.ap {
                            match residual.get(&id) {
                                Some(meta) => {
                                    let s = &meta.summary;
                                    if (s.nnz as f64) * s.max_weight < sz1 {
                                        return true;
                                    }
                                }
                                // Residual metadata is pruned at the same
                                // horizon as entries; a missing entry
                                // means the vector just expired.
                                None => return true,
                            }
                        }
                        let df = table.upper(dt);
                        let remscore = rs1.min(rs2 * df);
                        let current = acc.get(id);
                        if current > 0.0 || remscore >= theta_slack {
                            if current == 0.0 {
                                stats.candidates += 1;
                            }
                            let new = acc.add(id, xj * weight);
                            if policy.l2 && new + xnorm_before * pnorm * df < theta_slack {
                                acc.zero(id);
                            }
                        }
                        true
                    });
                    stats.entries_pruned += removed as u64;
                    *live -= removed as u64;
                }
            }
            if policy.ap {
                rs1 -= xj * mhat_lambda.get(dim, now);
            }
            if policy.l2 {
                rst -= xj * xj;
                rs2 = rst.max(0.0).sqrt();
            }
        }
        trace_span.set_args(
            self.stats.candidates - cand0,
            self.stats.entries_traversed - ent0,
        );
    }

    /// Candidate verification (Algorithm 8).
    ///
    /// Pruning tests use the table's decay *upper bound* (cannot lose a
    /// pair); only candidates that reach the full similarity pay the
    /// exact `exp`.
    fn candidate_verification(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let theta = self.config.theta;
        let theta_slack = theta - PRUNE_EPS;
        let policy = self.policy;
        let x = &record.vector;
        let now = record.t.seconds();
        let sx = VectorSummary::of(x);
        self.scratch_hits.clear();

        for (id, c) in self.acc.iter() {
            if c <= 0.0 {
                continue;
            }
            let Some(meta) = self.residual.get(&id) else {
                continue;
            };
            let dt = (now - meta.t).max(0.0);
            let df_up = self.table.upper(dt);
            if policy.prunes() && (c + meta.q) * df_up < theta_slack {
                continue;
            }
            if policy.ap {
                let r = &meta.residual_summary;
                let ds1 = (c + (sx.max_weight * r.sum).min(r.max_weight * sx.sum)) * df_up;
                let sz2 = (c + (sx.nnz.min(r.nnz) as f64) * sx.max_weight * r.max_weight) * df_up;
                if ds1 < theta_slack || sz2 < theta_slack {
                    continue;
                }
            }
            self.stats.full_sims += 1;
            let dot_res = dot_sorted(
                x.dims(),
                x.weights(),
                meta.residual.dims(),
                meta.residual.weights(),
            );
            let sim = (c + dot_res) * self.decay.factor(dt);
            if sim >= theta {
                self.scratch_hits.push((id, sim, dt));
            }
        }
        for &(id, sim, _) in &self.scratch_hits {
            self.stats.pairs_output += 1;
            out.push(SimilarPair::new(id, record.id, sim));
        }
    }

    /// Replays the index-construction bounds over a residual prefix with
    /// the current `m`. Returns `(boundary, q, prefix_mass)`: the
    /// position where indexing must (re)start — or `None` when the whole
    /// prefix stays below θ — the updated `Q` bound, and the squared
    /// norm `‖x′_boundary‖²` accumulated up to (excluding) the boundary,
    /// which seeds the suffix prefix-norm recurrence of
    /// [`Streaming::index_suffix`].
    ///
    /// The ℓ2 bound is compared in *squared* space (`bt ≥ θ²` instead of
    /// `√bt ≥ θ`), so the per-coordinate square root disappears; the one
    /// `sqrt` for the `Q` bound is paid only at the crossing.
    fn replay_boundary(&self, dims: &[u32], weights: &[f64]) -> (Option<usize>, f64, f64) {
        let theta_slack = self.config.theta - PRUNE_EPS;
        let theta_sq = theta_slack * theta_slack;
        let policy = self.policy;
        let mut b1: f64 = 0.0;
        let mut bt: f64 = 0.0;
        for (pos, (&dim, &w)) in dims.iter().zip(weights).enumerate() {
            let (b1_prev, bt_prev) = (b1, bt);
            if policy.ap {
                b1 += w * self.m.get(dim);
            }
            if policy.l2 {
                bt += w * w;
            }
            let crossed = match (policy.ap, policy.l2) {
                (false, false) => true,
                (true, false) => b1 >= theta_slack,
                (false, true) => bt >= theta_sq,
                (true, true) => b1 >= theta_slack && bt >= theta_sq,
            };
            if crossed {
                let pscore = policy.combine(b1_prev, bt_prev.sqrt()).min(1.0);
                return (Some(pos), pscore, bt_prev);
            }
        }
        (None, policy.combine(b1, bt.sqrt()).min(1.0), bt)
    }

    /// Appends posting entries for coordinates `boundary..` of vector
    /// `id` at time `t`, returning how many entries were written.
    ///
    /// `prefix_mass` is `‖x′_boundary‖²` from [`Streaming::replay_boundary`];
    /// the stored `‖x′_j‖` values continue that recurrence, so only the
    /// indexed suffix pays square roots. (The recurrence tracks the true
    /// prefix norm only while the ℓ2 bound accumulates it — exactly the
    /// policies that later read `prefix_norm`; AP-family postings carry a
    /// partial value that their scans never consult.)
    fn index_suffix(
        &mut self,
        id: VectorId,
        dims: &[u32],
        weights: &[f64],
        boundary: usize,
        prefix_mass: f64,
        t: f64,
    ) -> u64 {
        let mut mass = prefix_mass;
        let mut added = 0;
        for pos in boundary..dims.len() {
            let d = dims[pos] as usize;
            if d >= self.lists.len() {
                self.lists.resize_with(d + 1, PostingBlock::new);
            }
            let w = weights[pos];
            self.lists[d].push(id, w, mass.sqrt(), t);
            mass += w * w;
            added += 1;
        }
        self.live_postings += added;
        self.stats.postings_added += added;
        added
    }

    /// Re-indexes residuals with support on `dim` after `m[dim]` grew
    /// (§5.3). Out-of-order appends; updates `R` and `Q`.
    fn reindex_dim(&mut self, dim: u32) {
        let d = dim as usize;
        if d >= self.residual_inverted.len() {
            return;
        }
        let ids = std::mem::take(&mut self.residual_inverted[d]);
        let mut keep = Vec::new();
        for id in ids {
            let Some(meta) = self.residual.get(&id) else {
                continue; // expired
            };
            if meta.residual.get(dim) == 0.0 {
                continue; // already re-indexed past this dimension
            }
            // Copy out so the index can be mutated while replaying (an
            // AP-only path; the allocation is off the L2 hot loop).
            let residual = meta.residual.clone();
            let t = meta.t;
            let (boundary, q, mass) = self.replay_boundary(residual.dims(), residual.weights());
            match boundary {
                Some(p) => {
                    let added =
                        self.index_suffix(id, residual.dims(), residual.weights(), p, mass, t);
                    self.stats.reindexed_vectors += 1;
                    self.stats.reindexed_postings += added;
                    let meta = self.residual.get_mut(&id).expect("checked above");
                    meta.residual.truncate(p);
                    meta.residual_summary = VectorSummary::of_weights(meta.residual.weights());
                    meta.q = q;
                    if meta.residual.get(dim) != 0.0 {
                        keep.push(id);
                    }
                }
                None => {
                    // Bound still below θ: residual unchanged, but Q must
                    // be refreshed for the grown m.
                    let meta = self.residual.get_mut(&id).expect("checked above");
                    meta.q = q;
                    keep.push(id);
                }
            }
        }
        self.residual_inverted[d] = keep;
    }

    /// Index construction for the arriving vector (Algorithm 6; `m` was
    /// already updated before candidate generation).
    fn insert(&mut self, record: &StreamRecord) {
        let x = &record.vector;
        if x.is_empty() {
            return;
        }
        let t = record.t.seconds();
        let (boundary, q, mass) = self.replay_boundary(x.dims(), x.weights());
        let indexed_any = boundary.is_some();
        if let Some(p) = boundary {
            self.index_suffix(record.id, x.dims(), x.weights(), p, mass, t);
        }
        if self.policy.ap {
            // m̂λ covers the full vector (residual included), as rs1 bounds
            // the dot against whole indexed vectors.
            for (dim, w) in x.iter() {
                self.mhat_lambda.update(dim, t, w);
            }
        }
        // A fully-unindexed vector must still be tracked when AP bounds
        // are active: a later growth of m can make it indexable.
        if !indexed_any && !self.policy.ap {
            return;
        }
        let blen = boundary.unwrap_or(x.nnz());
        let mut residual = self.pool.pop().unwrap_or_default();
        residual.assign_prefix(x, blen);
        self.stats.residual_coords += residual.nnz() as u64;
        if self.policy.ap {
            for &dim in residual.dims() {
                let d = dim as usize;
                if d >= self.residual_inverted.len() {
                    self.residual_inverted.resize_with(d + 1, Vec::new);
                }
                self.residual_inverted[d].push(record.id);
            }
        }
        let meta = StreamMeta {
            residual_summary: VectorSummary::of_weights(residual.weights()),
            summary: VectorSummary::of(x),
            q,
            t,
            residual,
        };
        if let Some(old) = self.residual.insert(record.id, meta) {
            self.pool.push(old.residual);
        }
        self.stats.observe_postings(self.live_postings);
    }
}

impl Streaming {
    /// The query half of [`StreamJoin::process`]: reports pairs between
    /// `record` and the vectors currently indexed, *without* inserting
    /// `record`.
    ///
    /// Together with [`Streaming::insert_record`] this decomposes the
    /// join for sharded execution (`sssj-parallel`): every shard queries
    /// with every record, but each record is inserted at exactly one
    /// shard, so each pair is found exactly once — at the shard owning
    /// its earlier member.
    pub fn query(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let now = record.t.seconds();
        self.prune_residuals(now);
        // Every candidate id is alive (within the horizon), so the score
        // window can slide up to the oldest live id. The accumulator
        // still holds the previous query's touched set — drop it first,
        // the floor only moves when empty.
        self.acc.clear();
        if let Some((&oldest, _)) = self.residual.front() {
            self.acc.advance_floor(oldest);
        }
        if self.policy.ap {
            // Update m first and restore the prefix-filter invariant, so
            // that this very query cannot miss an under-indexed vector.
            // m must cover *query* vectors too (it bounds the similarity
            // of indexed prefixes to anything that arrives), so this runs
            // even for records this shard does not own.
            let mut grown: Vec<u32> = Vec::new();
            for (dim, w) in record.vector.iter() {
                if self.m.update(dim, w) {
                    grown.push(dim);
                }
            }
            for dim in grown {
                self.reindex_dim(dim);
            }
        }
        self.candidate_generation(&record.vector, now);
        self.candidate_verification(record, out);
    }

    /// The insert half of [`StreamJoin::process`]: adds `record` to the
    /// index so later arrivals can pair with it. See [`Streaming::query`].
    pub fn insert_record(&mut self, record: &StreamRecord) {
        self.insert(record);
    }

    /// Pre-seeds the AP running-max vector `m` (snapshot restore).
    ///
    /// `m` accumulates over the *whole* stream, not just the horizon; a
    /// restored join that rebuilt `m` from buffered records alone would
    /// still be output-correct (a smaller `m` only indexes more), but its
    /// indexing decisions — and so its performance profile — would drift
    /// from the uninterrupted run. Ignored by non-AP indexes.
    pub fn seed_max(&mut self, maxima: impl IntoIterator<Item = (u32, f64)>) {
        for (dim, v) in maxima {
            self.m.update(dim, v);
        }
    }

    /// The AP running-max vector `m` as (dim, value) pairs (snapshot
    /// write). Empty for non-AP indexes.
    pub fn max_entries(&self) -> Vec<(u32, f64)> {
        self.m
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(d, &v)| (d as u32, v))
            .collect()
    }
}

impl ShardableJoin for Streaming {
    fn process_routed(&mut self, record: &StreamRecord, insert: bool, out: &mut Vec<SimilarPair>) {
        self.query(record, out);
        if insert {
            self.insert(record);
        }
    }

    /// Postings (and residual coordinates) expire at `τ = ln(1/θ)/λ`, and
    /// candidate generation only matches on shared dimensions, so a shard
    /// whose in-horizon inserts share no dimension with the query cannot
    /// produce a pair.
    fn occupancy_horizon(&self) -> Option<f64> {
        Some(self.tau)
    }

    fn checkpoint_aux(&self, out: &mut Vec<u8>) {
        crate::snapshot::write_max_aux(&self.max_entries(), out);
    }

    fn seed_checkpoint_aux(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.seed_max(crate::snapshot::read_max_aux(bytes)?);
        Ok(())
    }
}

impl crate::algorithm::Checkpointable for Streaming {
    /// Aux = the AP running-max vector `m`, the one structure that
    /// accumulates beyond the horizon (empty for non-AP indexes, where
    /// [`Streaming::max_entries`] returns nothing).
    fn write_aux(&mut self, out: &mut Vec<u8>) {
        ShardableJoin::checkpoint_aux(self, out);
    }

    fn read_aux(&mut self, bytes: &[u8]) -> Result<(), String> {
        ShardableJoin::seed_checkpoint_aux(self, bytes)
    }

    /// Everything output-relevant lives inside the horizon `τ`.
    fn replay_horizon(&self) -> f64 {
        self.tau
    }
}

impl StreamJoin for Streaming {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        self.query(record, out);
        self.insert(record);
    }

    fn finish(&mut self, _out: &mut Vec<SimilarPair>) {
        // STR reports pairs immediately; nothing is buffered.
    }

    fn stats(&self) -> JoinStats {
        self.stats
    }

    fn live_postings(&self) -> u64 {
        self.live_postings
    }

    fn name(&self) -> String {
        format!("STR-{}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn rec(id: u64, t: f64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::new(t), unit_vector(entries))
    }

    fn run(kind: IndexKind, config: SssjConfig, stream: &[StreamRecord]) -> Vec<(u64, u64)> {
        let mut join = Streaming::new(config, kind);
        let mut out = Vec::new();
        for r in stream {
            join.process(r, &mut out);
        }
        join.finish(&mut out);
        let mut keys: Vec<_> = out.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn identical_within_horizon_pair() {
        let stream = vec![
            rec(0, 0.0, &[(1, 1.0)]),
            rec(1, 1.0, &[(1, 1.0)]),
            rec(2, 1000.0, &[(1, 1.0)]),
        ];
        let config = SssjConfig::new(0.5, 0.1); // τ ≈ 6.93
        for kind in IndexKind::ALL {
            assert_eq!(run(kind, config, &stream), vec![(0, 1)], "{kind}");
        }
    }

    #[test]
    fn decay_is_applied_to_similarity() {
        let stream = vec![rec(0, 0.0, &[(1, 1.0)]), rec(1, 2.0, &[(1, 1.0)])];
        let config = SssjConfig::new(0.1, 0.5);
        let mut join = Streaming::new(config, IndexKind::L2);
        let mut out = Vec::new();
        for r in &stream {
            join.process(r, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert!((out[0].similarity - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn expired_postings_are_truncated() {
        let config = SssjConfig::new(0.5, 0.1);
        let mut join = Streaming::new(config, IndexKind::L2);
        let mut out = Vec::new();
        for i in 0..50 {
            join.process(&rec(i, i as f64 * 100.0, &[(1, 1.0)]), &mut out);
        }
        assert!(out.is_empty());
        // Each arrival scans dim 1, finds the single previous entry
        // expired and truncates it.
        assert!(join.live_postings() <= 2, "live={}", join.live_postings());
        assert!(join.stats().entries_pruned >= 48);
    }

    #[test]
    fn reindexing_preserves_completeness() {
        // Vector 0's coordinate on dim 2 initially stays in the residual
        // (low m), but vector 1 raises m and a later near-duplicate of 0
        // must still be found.
        let config = SssjConfig::new(0.9, 0.001);
        let stream = vec![
            rec(0, 0.0, &[(1, 1.0), (2, 3.0)]),
            rec(1, 1.0, &[(1, 5.0), (3, 1.0)]),
            rec(2, 2.0, &[(1, 1.0), (2, 3.0)]),
        ];
        let l2ap = run(IndexKind::L2ap, config, &stream);
        let inv = run(IndexKind::Inv, config, &stream);
        assert_eq!(l2ap, inv);
        assert!(inv.contains(&(0, 2)));
    }

    #[test]
    fn str_inv_matches_str_l2_on_random_stream() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let stream: Vec<StreamRecord> = (0..300)
            .map(|i| {
                let entries: Vec<(u32, f64)> = (0..rng.random_range(1..6))
                    .map(|_| (rng.random_range(0..15u32), rng.random_range(0.1..1.0)))
                    .collect();
                rec(i, i as f64 * 0.3, &entries)
            })
            .collect();
        for (theta, lambda) in [(0.5, 0.01), (0.7, 0.1), (0.9, 0.001)] {
            let config = SssjConfig::new(theta, lambda);
            let reference = run(IndexKind::Inv, config, &stream);
            for kind in [IndexKind::L2, IndexKind::L2ap, IndexKind::Ap] {
                assert_eq!(
                    run(kind, config, &stream),
                    reference,
                    "{kind} θ={theta} λ={lambda}"
                );
            }
        }
    }

    #[test]
    fn residual_metadata_is_pruned() {
        let config = SssjConfig::new(0.5, 1.0); // τ ≈ 0.69
        let mut join = Streaming::new(config, IndexKind::L2);
        let mut out = Vec::new();
        for i in 0..100 {
            join.process(&rec(i, i as f64, &[(i as u32 % 7, 1.0)]), &mut out);
        }
        assert!(
            join.residual.len() <= 2,
            "residuals={}",
            join.residual.len()
        );
        // Buffers cycle between live metas and the free pool; with ≤ 2
        // live residuals the pool can never accumulate more than that.
        assert!(join.pool.len() <= 2, "pool={}", join.pool.len());
    }

    #[test]
    fn long_stream_with_sliding_id_window_stays_correct() {
        // The accumulator's dense window must slide with the horizon: a
        // long stream of monotonically growing ids keeps working and keeps
        // finding pairs at the far end.
        let config = SssjConfig::new(0.5, 0.5); // τ ≈ 1.39
        let mut join = Streaming::new(config, IndexKind::L2);
        let mut out = Vec::new();
        for i in 0..20_000u64 {
            join.process(&rec(i, i as f64 * 0.9, &[(1, 1.0)]), &mut out);
        }
        // Consecutive identical vectors are 0.9 apart: e^{-0.45} ≈ 0.64 ≥
        // 0.5; the next-nearest gap 1.8 decays below θ. Every adjacent
        // pair joins, nothing else.
        assert_eq!(out.len(), 19_999);
        assert!(out.iter().all(|p| p.right == p.left + 1));
    }

    #[test]
    fn name_includes_kind() {
        let join = Streaming::new(SssjConfig::new(0.5, 0.1), IndexKind::L2);
        assert_eq!(join.name(), "STR-L2");
    }
}

//! STR-L2 generalised to arbitrary decay models (§8 future work).
//!
//! The L2 index is the one variant whose pruning bounds depend only on the
//! query and the candidate — never on stream statistics — so it carries
//! over to *any* decay function `f(Δt)` that is ≤ 1, non-increasing and
//! has a finite horizon (see [`sssj_types::DecayModel`]):
//!
//! * **index construction** — the `b2 = ‖x′‖` bound is decay-free
//!   (index-time decay pruning is never applied, §6.2) and unchanged;
//! * **candidate generation** — `rs2` and `l2bound` multiply by
//!   `f(Δt) ≤ 1` exactly as the exponential did; time filtering truncates
//!   at the model's horizon `τ(θ)`;
//! * **candidate verification** — `ps1` and the final exact check use
//!   `f(Δt)` directly.
//!
//! The only exponential-specific machinery is the lazily-decayed maximum
//! `m̂λ` (semigroup property); the generic join optionally replaces it with
//! an *undecayed* windowed maximum ([`sssj_collections::WindowedMaxVec`]):
//! `dot(x, y) ≤ Σ_j x_j·max_window(j)` holds for any in-horizon `y`, so
//! `remscore = min(rs1w, rs2·f(Δt))` stays a safe upper bound.

use sssj_collections::{
    LinkedHashMap, PackedPosting, PostingBlock, ScoreAccumulator, WindowedMaxVec,
};
use sssj_kernels::{candidate_batch_with_df, L2BatchParams};
use sssj_metrics::JoinStats;
use sssj_types::{dot, DecayModel, SimilarPair, SparseVector, StreamRecord, VectorId};

use crate::algorithm::{ShardableJoin, StreamJoin};

/// Same safe-side slack as the exponential STR implementation.
const PRUNE_EPS: f64 = 1e-12;

/// Residual state per in-horizon vector.
#[derive(Clone, Debug, Default)]
struct Meta {
    residual: SparseVector,
    q: f64,
    t: f64,
}

/// The streaming similarity self-join under an arbitrary [`DecayModel`]
/// — STR-L2 with the exponential specialised out.
///
/// ```
/// use sssj_core::{DecayStreaming, StreamJoin};
/// use sssj_types::{vector::unit_vector, DecayModel, StreamRecord, Timestamp};
///
/// // Hard 10-second sliding window, θ = 0.7.
/// let mut join = DecayStreaming::new(0.7, DecayModel::sliding_window(10.0));
/// let mut out = Vec::new();
/// for (id, t) in [(0, 0.0), (1, 9.0), (2, 25.0)] {
///     let r = StreamRecord::new(id, Timestamp::new(t), unit_vector(&[(1, 1.0)]));
///     join.process(&r, &mut out);
/// }
/// // 0–1 are 9 s apart (inside the window, undecayed similarity 1.0);
/// // 2 is 16 s after 1, outside.
/// assert_eq!(out.len(), 1);
/// assert_eq!((out[0].left, out[0].right), (0, 1));
/// ```
pub struct DecayStreaming {
    theta: f64,
    model: DecayModel,
    tau: f64,
    /// Optional window-max candidate bound (`rs1w`), ablatable.
    window_max: Option<WindowedMaxVec>,
    /// Flat, time-ordered posting lists — the same single-allocation
    /// blocks the exponential hot path scans (generic decay models never
    /// re-index, so lists stay time-ordered and expiry is a binary
    /// search + O(1) front cut).
    lists: Vec<PostingBlock>,
    residual: LinkedHashMap<VectorId, Meta>,
    acc: ScoreAccumulator,
    live_postings: u64,
    stats: JoinStats,
    scratch_hits: Vec<(VectorId, f64)>,
}

impl DecayStreaming {
    /// Creates a join with the window-max bound enabled (the default).
    ///
    /// Panics when the model has an infinite horizon at this `θ`
    /// (exponential with `λ = 0`): the streaming join needs a finite
    /// forgetting horizon to bound memory.
    pub fn new(theta: f64, model: DecayModel) -> Self {
        Self::with_options(theta, model, true)
    }

    /// Creates a join, choosing whether candidate generation uses the
    /// window-max `rs1w` bound (`false` leaves only the `rs2`/`l2bound`
    /// pruning — the ablation the `ablation_decay_bounds` bench measures).
    pub fn with_options(theta: f64, model: DecayModel, use_window_max: bool) -> Self {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "theta must be in (0, 1]: {theta}"
        );
        let tau = model.horizon(theta);
        assert!(
            tau.is_finite(),
            "decay model {model} has an infinite horizon at θ={theta}; \
             streaming requires a finite forgetting horizon"
        );
        DecayStreaming {
            theta,
            model,
            tau,
            window_max: use_window_max.then(|| WindowedMaxVec::new(tau.max(f64::MIN_POSITIVE))),
            lists: Vec::new(),
            residual: LinkedHashMap::new(),
            acc: ScoreAccumulator::new(),
            live_postings: 0,
            stats: JoinStats::new(),
            scratch_hits: Vec::new(),
        }
    }

    /// The decay model.
    pub fn model(&self) -> DecayModel {
        self.model
    }

    /// The similarity threshold.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The model's horizon at this threshold.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    fn prune_residuals(&mut self, now: f64) {
        while let Some((_, meta)) = self.residual.front() {
            if now - meta.t > self.tau {
                self.residual.pop_front();
            } else {
                break;
            }
        }
    }

    /// Candidate generation: reverse-order dimension scan over the flat,
    /// time-ordered posting blocks (no re-indexing exists without AP
    /// bounds), exactly the exponential hot path with `model.factor`
    /// substituted for the decay table.
    fn candidate_generation(&mut self, x: &SparseVector, now: f64) {
        // The accumulator was cleared by `process` (before the dense
        // window slid); no further reset is needed here.
        let theta_slack = self.theta - PRUNE_EPS;
        let tau = self.tau;
        let cutoff = now - tau;
        let model = self.model;

        // rs1w = Σ_j x_j · max over the window of coordinate j, shrunk as
        // the scan passes each dimension (mirrors rs1 of Algorithm 7).
        let mut rs1w = match &mut self.window_max {
            Some(wm) => x.iter().map(|(d, w)| w * wm.max(d, now)).sum::<f64>(),
            None => f64::INFINITY,
        };
        let mut rst: f64 = 1.0;
        let mut rs2: f64 = 1.0;

        let lists = &mut self.lists;
        let acc = &mut self.acc;
        let stats = &mut self.stats;
        let live = &mut self.live_postings;

        // Stack scratch for the batched candidate kernel (see the
        // exponential hot path in `streaming.rs` for the layout).
        const BATCH: usize = 64;
        let mut b_dfs = [0.0f64; BATCH];
        let mut b_ids = [0u64; BATCH];
        let mut b_deltas = [0.0f64; BATCH];
        let mut b_prune = [0.0f64; BATCH];
        let mut b_admit = [0u8; BATCH];

        for (dim, xj) in x.iter().rev() {
            if let Some(list) = lists.get_mut(dim as usize) {
                // ‖x′_j‖ recovered from the running suffix mass: during
                // this iteration rst = Σ_{i ≤ pos} w_i², so the prefix
                // before this coordinate has mass rst − x_j².
                let xnorm_before = (rst - xj * xj).max(0.0).sqrt();
                // Time-ordered list: the expired prefix is exactly the
                // entries with t < now − τ; drop it in O(log n) + O(1).
                let pruned = list.expire_before(cutoff);
                if pruned > 0 {
                    stats.entries_pruned += pruned as u64;
                    *live -= pruned as u64;
                }
                let postings = list.postings();
                stats.entries_traversed += postings.len() as u64;
                // Newest-first batched walk (`rchunks` + reverse replay
                // in the accumulator ≡ the previous backward scan). The
                // model's exact transcendental fills a per-chunk factor
                // buffer; the SIMD kernel fuses deltas, admission and
                // the ℓ2 prune threshold. The window-max conjunct
                // `min(rs1w, rs2·df) ≥ θₛ ⟺ rs1w ≥ θₛ ∧ rs2·df ≥ θₛ`
                // folds into the kernel by vetoing with `rs2 = −∞`.
                let rs2_eff = if rs1w >= theta_slack {
                    rs2
                } else {
                    f64::NEG_INFINITY
                };
                let params = L2BatchParams {
                    xj,
                    now,
                    xnorm_before,
                    rs2: rs2_eff,
                    theta_slack,
                    inv_step: 1.0,
                };
                for chunk in postings.rchunks(BATCH) {
                    let n = chunk.len();
                    for (df, p) in b_dfs[..n].iter_mut().zip(chunk) {
                        *df = model.factor(now - p.t);
                    }
                    candidate_batch_with_df(
                        PackedPosting::as_words(chunk),
                        &b_dfs[..n],
                        &params,
                        &mut b_ids[..n],
                        &mut b_deltas[..n],
                        &mut b_prune[..n],
                        &mut b_admit[..n],
                    );
                    stats.candidates += acc.accumulate_batch_rev(
                        &b_ids[..n],
                        &b_deltas[..n],
                        &b_admit[..n],
                        &b_prune[..n],
                    ) as u64;
                }
            }
            if let Some(wm) = &mut self.window_max {
                if rs1w.is_finite() {
                    rs1w -= xj * wm.max(dim, now);
                }
            }
            rst -= xj * xj;
            rs2 = rst.max(0.0).sqrt();
        }
    }

    /// Candidate verification: `ps1` bound then exact decayed similarity.
    fn candidate_verification(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let theta_slack = self.theta - PRUNE_EPS;
        let x = &record.vector;
        let now = record.t.seconds();
        self.scratch_hits.clear();
        for (id, c) in self.acc.iter() {
            if c <= 0.0 {
                continue;
            }
            let Some(meta) = self.residual.get(&id) else {
                continue;
            };
            let dt = (now - meta.t).max(0.0);
            let df = self.model.factor(dt);
            if (c + meta.q) * df < theta_slack {
                continue;
            }
            self.stats.full_sims += 1;
            let sim = (c + dot(x, &meta.residual)) * df;
            if sim >= self.theta {
                self.scratch_hits.push((id, sim));
            }
        }
        for &(id, sim) in &self.scratch_hits {
            self.stats.pairs_output += 1;
            out.push(SimilarPair::new(id, record.id, sim));
        }
    }

    /// Index construction: pure `b2 = ‖x′‖` boundary (Algorithm 2, green
    /// lines only), replayed in squared space so only the indexed suffix
    /// pays square roots — mirroring the exponential path.
    fn insert(&mut self, record: &StreamRecord) {
        let x = &record.vector;
        if x.is_empty() {
            return;
        }
        let t = record.t.seconds();
        let theta_slack = self.theta - PRUNE_EPS;
        let theta_sq = theta_slack * theta_slack;
        let mut bt: f64 = 0.0;
        let mut boundary = None;
        let mut q = 0.0;
        for (pos, (_, w)) in x.iter().enumerate() {
            let bt_prev = bt;
            bt += w * w;
            if bt >= theta_sq {
                boundary = Some((pos, bt_prev));
                q = bt_prev.sqrt().min(1.0);
                break;
            }
        }
        if let Some(wm) = &mut self.window_max {
            for (dim, w) in x.iter() {
                wm.update(dim, t, w);
            }
        }
        let Some((p, prefix_mass)) = boundary else {
            // ‖x‖ < θ can only happen for non-unit vectors; unit vectors
            // always cross the boundary. Nothing can pair with x.
            return;
        };
        // The stored ‖x′_j‖ prefix norms continue the squared-space
        // recurrence from the boundary.
        let mut mass = prefix_mass;
        for (dim, w) in x.iter().skip(p) {
            let d = dim as usize;
            if d >= self.lists.len() {
                self.lists.resize_with(d + 1, PostingBlock::new);
            }
            self.lists[d].push(record.id, w, mass.sqrt(), t);
            mass += w * w;
            self.live_postings += 1;
            self.stats.postings_added += 1;
        }
        let residual = x.prefix(p);
        self.stats.residual_coords += residual.nnz() as u64;
        self.residual.insert(record.id, Meta { residual, q, t });
        self.stats.observe_postings(self.live_postings);
    }
}

impl DecayStreaming {
    /// The query half of [`StreamJoin::process`]: reports pairs between
    /// `record` and the vectors currently indexed, *without* inserting
    /// `record` — the decomposition sharded execution partitions (see
    /// [`crate::Streaming::query`]). The window-max bound is updated only
    /// on insert: it bounds dot products against *indexed* candidates, so
    /// query-only records never need to raise it.
    pub fn query(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let now = record.t.seconds();
        self.prune_residuals(now);
        // Slide the accumulator's dense window to the oldest live id (the
        // floor only moves while the accumulator is empty, so clear the
        // previous record's touched set first).
        self.acc.clear();
        if let Some((&oldest, _)) = self.residual.front() {
            self.acc.advance_floor(oldest);
        }
        self.candidate_generation(&record.vector, now);
        self.candidate_verification(record, out);
    }

    /// The insert half of [`StreamJoin::process`].
    pub fn insert_record(&mut self, record: &StreamRecord) {
        self.insert(record);
    }
}

impl ShardableJoin for DecayStreaming {
    fn process_routed(&mut self, record: &StreamRecord, insert: bool, out: &mut Vec<SimilarPair>) {
        self.query(record, out);
        if insert {
            self.insert(record);
        }
    }

    /// Generic decay models never re-index, so every stored coordinate
    /// expires exactly at the model's horizon `τ(θ)`.
    fn occupancy_horizon(&self) -> Option<f64> {
        Some(self.tau)
    }
}

impl crate::algorithm::Checkpointable for DecayStreaming {
    /// Pure-ℓ2 bounds depend on nothing but the vectors themselves, and
    /// the windowed max covers only in-horizon records: there is no
    /// state to carry beyond what WAL replay rebuilds.
    fn write_aux(&mut self, _out: &mut Vec<u8>) {}

    fn read_aux(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "DecayStreaming carries no aux state, got {} bytes",
                bytes.len()
            ))
        }
    }

    /// The model's horizon `τ(θ)` — finite by construction (asserted at
    /// build time).
    fn replay_horizon(&self) -> f64 {
        self.tau
    }
}

impl StreamJoin for DecayStreaming {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        self.query(record, out);
        self.insert(record);
    }

    fn finish(&mut self, _out: &mut Vec<SimilarPair>) {}

    fn stats(&self) -> JoinStats {
        self.stats
    }

    fn live_postings(&self) -> u64 {
        self.live_postings
    }

    fn name(&self) -> String {
        format!("STR-L2[{}]", self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SssjConfig, Streaming};
    use sssj_baseline::brute_force_stream_model;
    use sssj_index::IndexKind;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn rec(id: u64, t: f64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::new(t), unit_vector(entries))
    }

    fn random_stream(seed: u64, n: usize) -> Vec<StreamRecord> {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        (0..n as u64)
            .map(|i| {
                t += rng.random_range(0.0..1.0);
                let entries: Vec<(u32, f64)> = (0..rng.random_range(1..6))
                    .map(|_| (rng.random_range(0..12u32), rng.random_range(0.1..1.0)))
                    .collect();
                rec(i, t, &entries)
            })
            .collect()
    }

    fn run(join: &mut dyn StreamJoin, stream: &[StreamRecord]) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for r in stream {
            join.process(r, &mut out);
        }
        join.finish(&mut out);
        let mut keys: Vec<_> = out.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        keys
    }

    const MODELS: [DecayModel; 4] = [
        DecayModel::Exponential { lambda: 0.2 },
        DecayModel::SlidingWindow { window: 4.0 },
        DecayModel::Linear { window: 8.0 },
        DecayModel::Polynomial {
            alpha: 1.5,
            scale: 2.0,
        },
    ];

    #[test]
    fn matches_oracle_for_every_model() {
        for seed in [3, 17] {
            let stream = random_stream(seed, 250);
            for model in MODELS {
                for theta in [0.5, 0.8] {
                    let mut oracle: Vec<_> = brute_force_stream_model(&stream, theta, model)
                        .iter()
                        .map(|p| p.key())
                        .collect();
                    oracle.sort_unstable();
                    let mut join = DecayStreaming::new(theta, model);
                    assert_eq!(
                        run(&mut join, &stream),
                        oracle,
                        "{model} θ={theta} seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn exponential_model_matches_str_l2() {
        let stream = random_stream(42, 300);
        let theta = 0.6;
        let lambda = 0.15;
        let mut reference = Streaming::new(SssjConfig::new(theta, lambda), IndexKind::L2);
        let mut generic = DecayStreaming::new(theta, DecayModel::exponential(lambda));
        assert_eq!(run(&mut generic, &stream), run(&mut reference, &stream));
    }

    #[test]
    fn window_max_ablation_preserves_output() {
        let stream = random_stream(9, 250);
        for model in MODELS {
            let mut with = DecayStreaming::with_options(0.55, model, true);
            let mut without = DecayStreaming::with_options(0.55, model, false);
            let a = run(&mut with, &stream);
            let b = run(&mut without, &stream);
            assert_eq!(a, b, "{model}");
            // The extra bound can only reduce admitted candidates.
            assert!(
                with.stats().candidates <= without.stats().candidates,
                "{model}: {} > {}",
                with.stats().candidates,
                without.stats().candidates
            );
        }
    }

    #[test]
    fn sliding_window_reports_undecayed_similarity() {
        let mut join = DecayStreaming::new(0.9, DecayModel::sliding_window(10.0));
        let stream = vec![rec(0, 0.0, &[(1, 1.0)]), rec(1, 9.5, &[(1, 1.0)])];
        let mut out = Vec::new();
        for r in &stream {
            join.process(r, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert!((out[0].similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn postings_are_truncated_at_model_horizon() {
        let mut join = DecayStreaming::new(0.5, DecayModel::linear(2.0));
        assert!((join.tau() - 1.0).abs() < 1e-12); // 2·(1−0.5)
        let mut out = Vec::new();
        for i in 0..40 {
            join.process(&rec(i, i as f64 * 3.0, &[(1, 1.0)]), &mut out);
        }
        assert!(out.is_empty());
        assert!(join.live_postings() <= 2);
    }

    #[test]
    #[should_panic(expected = "infinite horizon")]
    fn infinite_horizon_rejected() {
        DecayStreaming::new(0.5, DecayModel::exponential(0.0));
    }

    #[test]
    fn name_mentions_model() {
        let j = DecayStreaming::new(0.5, DecayModel::polynomial(2.0, 3.0));
        assert_eq!(j.name(), "STR-L2[poly:2:3]");
    }
}

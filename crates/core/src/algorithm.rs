//! The common streaming-join interface and the algorithm factory.

use std::fmt;

use sssj_index::IndexKind;
use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord};

use crate::{MiniBatch, SssjConfig, Streaming};

/// A streaming similarity self-join algorithm.
///
/// Feed records in non-decreasing timestamp order with
/// [`StreamJoin::process`]; call [`StreamJoin::finish`] once at the end of
/// the stream to flush anything buffered (the MiniBatch framework reports
/// within-window pairs with delay).
///
/// `Send` is a supertrait: a join is *driven* by one thread at a time
/// but may be *handed between* threads — ingest pipelines move joins
/// into worker threads, and a shared network session hands its join
/// from connection thread to connection thread behind a mutex.
pub trait StreamJoin: Send {
    /// Consumes one record, appending any pairs it completes to `out`.
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>);

    /// Flushes buffered output at end-of-stream.
    fn finish(&mut self, out: &mut Vec<SimilarPair>);

    /// Work counters accumulated so far.
    fn stats(&self) -> JoinStats;

    /// Live posting entries (memory proxy for budgeted runs).
    fn live_postings(&self) -> u64;

    /// Human-readable name, e.g. `STR-L2`.
    fn name(&self) -> String;

    /// For joins that resumed from durable storage (`sssj-store`): the
    /// `(records already ingested, timestamp of the newest ingested
    /// record)` pair a caller needs to continue the stream seamlessly —
    /// id assignment restarts after the recovered prefix and the
    /// monotonic-timestamp check picks up at the recovered watermark.
    /// `None` for every non-resumed join. Wrappers forward it.
    fn resume_point(&self) -> Option<(u64, f64)> {
        None
    }
}

impl StreamJoin for Box<dyn StreamJoin> {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        (**self).process(record, out)
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        (**self).finish(out)
    }

    fn stats(&self) -> JoinStats {
        (**self).stats()
    }

    fn live_postings(&self) -> u64 {
        (**self).live_postings()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn resume_point(&self) -> Option<(u64, f64)> {
        (**self).resume_point()
    }
}

/// A [`StreamJoin`] the durability subsystem (`sssj-store`) can
/// checkpoint and rebuild.
///
/// The design splits recoverable state in two. The bulk — everything a
/// pair can still be formed from — is a deterministic function of the
/// recent record stream, which the write-ahead log already persists; it
/// is rebuilt by *replaying* the WAL through a freshly built engine. The
/// checkpoint itself only carries what replay cannot reconstruct:
///
/// * **aux state** that accumulates beyond the replay horizon (the STR
///   running-max vector `m`, which steers indexing decisions for all
///   future records — see [`crate::Streaming::seed_max`]); engines with
///   none (MiniBatch, generic decay) write an empty blob;
/// * the set of **recently emitted pairs**, so replay can suppress
///   output that was already delivered before the checkpoint (the
///   exactly-once half of recovery; see `sssj-store`'s crate docs for
///   the correctness argument).
///
/// Implemented by [`crate::Streaming`], [`crate::MiniBatch`],
/// [`crate::DecayStreaming`] and (in `sssj-parallel`) the sharded
/// driver, which captures aux per shard at a batch boundary so the cut
/// is consistent.
pub trait Checkpointable: StreamJoin {
    /// Serialises the engine-specific aux state (empty when the engine
    /// has none). Takes `&mut self` because asynchronous engines (the
    /// sharded driver) must flush in-flight batches to capture a
    /// consistent cut.
    fn write_aux(&mut self, out: &mut Vec<u8>);

    /// Seeds aux state written by [`Checkpointable::write_aux`] into a
    /// freshly built engine, before WAL replay.
    fn read_aux(&mut self, bytes: &[u8]) -> Result<(), String>;

    /// How long (in stream-time units) a record stays *output-relevant*:
    /// a WAL segment whose newest record is older than `now − horizon`
    /// can never contribute a pair again and may be garbage-collected
    /// once a checkpoint covers it. `f64::INFINITY` disables GC (e.g.
    /// MiniBatch with `λ = 0`).
    fn replay_horizon(&self) -> f64;

    /// Drains all in-flight asynchronous work so that every pair
    /// completed by already-processed records has surfaced in `out`.
    /// Synchronous engines need nothing; the sharded driver flushes its
    /// pending batch and round-trips every worker.
    fn quiesce(&mut self, _out: &mut Vec<SimilarPair>) {}
}

/// The query/insert decomposition of a streaming join, plus the
/// index-dimension occupancy information candidate-aware routing needs.
///
/// Sharded execution (`sssj-parallel`) partitions [`StreamJoin::process`]
/// into two halves: every shard may *query* with a record, but each record
/// is *inserted* at exactly one shard, so a pair is found exactly once —
/// at the shard owning its earlier member. Engines that support that
/// decomposition implement this trait; [`crate::JoinSpec::build_shard_worker`]
/// constructs them for the sharded driver.
pub trait ShardableJoin: StreamJoin {
    /// Processes one record, making it findable by later arrivals only
    /// when `insert` is true (query-only otherwise). With `insert` always
    /// true this must behave exactly like [`StreamJoin::process`].
    fn process_routed(&mut self, record: &StreamRecord, insert: bool, out: &mut Vec<SimilarPair>);

    /// The engine's dimension-occupancy horizon: `Some(τ)` when a query
    /// can only pair with records that were *inserted* within the last
    /// `τ` time units **and** share at least one vector dimension with it
    /// — the contract that lets a sharded driver skip shards holding no
    /// live posting on any of the query's dimensions. `None` when
    /// candidate generation is not dimension-driven (e.g. LSH signature
    /// banding, where even disjoint-support vectors can collide): the
    /// driver must broadcast queries to every shard.
    fn occupancy_horizon(&self) -> Option<f64>;

    /// Serialises this worker's checkpoint aux state (see
    /// [`Checkpointable::write_aux`]); the sharded driver requests it
    /// over the control channel at a batch boundary and merges the
    /// per-shard blobs. Default: no aux.
    fn checkpoint_aux(&self, _out: &mut Vec<u8>) {}

    /// Seeds merged aux state into this worker before replay. Seeding a
    /// *merged* (hence possibly larger) max vector is safe for the AP
    /// family: a larger `m` only indexes more eagerly, never drops a
    /// reachable pair. Default: ignore.
    fn seed_checkpoint_aux(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

/// The two algorithmic frameworks of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Framework {
    /// MiniBatch (MB): batch indexes over τ-sized windows.
    MiniBatch,
    /// Streaming (STR): one incrementally maintained, time-filtered index.
    Streaming,
}

impl Framework {
    /// Both frameworks, in the paper's order.
    pub const ALL: [Framework; 2] = [Framework::MiniBatch, Framework::Streaming];

    /// Parses the names used by the CLI and the harness.
    pub fn parse(s: &str) -> Option<Framework> {
        match s.to_ascii_lowercase().as_str() {
            "mb" | "minibatch" => Some(Framework::MiniBatch),
            "str" | "streaming" => Some(Framework::Streaming),
            _ => None,
        }
    }
}

impl fmt::Display for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Framework::MiniBatch => "MB",
            Framework::Streaming => "STR",
        })
    }
}

/// Builds one of the paper's eight algorithm combinations
/// (framework × index).
pub fn build_algorithm(
    framework: Framework,
    kind: IndexKind,
    config: SssjConfig,
) -> Box<dyn StreamJoin> {
    match framework {
        Framework::MiniBatch => Box::new(MiniBatch::new(config, kind)),
        Framework::Streaming => Box::new(Streaming::new(config, kind)),
    }
}

/// Runs an algorithm over a full stream and returns all reported pairs.
pub fn run_stream(join: &mut dyn StreamJoin, stream: &[StreamRecord]) -> Vec<SimilarPair> {
    let mut out = Vec::new();
    for r in stream {
        join.process(r, &mut out);
    }
    join.finish(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_parse_roundtrips() {
        for f in Framework::ALL {
            assert_eq!(Framework::parse(&f.to_string()), Some(f));
        }
        assert_eq!(Framework::parse("minibatch"), Some(Framework::MiniBatch));
        assert_eq!(Framework::parse("bogus"), None);
    }

    #[test]
    fn factory_builds_all_combinations() {
        let config = SssjConfig::new(0.7, 0.1);
        for f in Framework::ALL {
            for k in IndexKind::ALL {
                let join = build_algorithm(f, k, config);
                assert!(join.name().starts_with(&f.to_string()));
            }
        }
    }
}

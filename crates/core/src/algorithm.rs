//! The common streaming-join interface and the algorithm factory.

use std::fmt;

use sssj_index::IndexKind;
use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord};

use crate::{MiniBatch, SssjConfig, Streaming};

/// A streaming similarity self-join algorithm.
///
/// Feed records in non-decreasing timestamp order with
/// [`StreamJoin::process`]; call [`StreamJoin::finish`] once at the end of
/// the stream to flush anything buffered (the MiniBatch framework reports
/// within-window pairs with delay).
pub trait StreamJoin {
    /// Consumes one record, appending any pairs it completes to `out`.
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>);

    /// Flushes buffered output at end-of-stream.
    fn finish(&mut self, out: &mut Vec<SimilarPair>);

    /// Work counters accumulated so far.
    fn stats(&self) -> JoinStats;

    /// Live posting entries (memory proxy for budgeted runs).
    fn live_postings(&self) -> u64;

    /// Human-readable name, e.g. `STR-L2`.
    fn name(&self) -> String;
}

impl StreamJoin for Box<dyn StreamJoin> {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        (**self).process(record, out)
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        (**self).finish(out)
    }

    fn stats(&self) -> JoinStats {
        (**self).stats()
    }

    fn live_postings(&self) -> u64 {
        (**self).live_postings()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// The query/insert decomposition of a streaming join, plus the
/// index-dimension occupancy information candidate-aware routing needs.
///
/// Sharded execution (`sssj-parallel`) partitions [`StreamJoin::process`]
/// into two halves: every shard may *query* with a record, but each record
/// is *inserted* at exactly one shard, so a pair is found exactly once —
/// at the shard owning its earlier member. Engines that support that
/// decomposition implement this trait; [`crate::JoinSpec::build_shard_worker`]
/// constructs them for the sharded driver.
pub trait ShardableJoin: StreamJoin {
    /// Processes one record, making it findable by later arrivals only
    /// when `insert` is true (query-only otherwise). With `insert` always
    /// true this must behave exactly like [`StreamJoin::process`].
    fn process_routed(&mut self, record: &StreamRecord, insert: bool, out: &mut Vec<SimilarPair>);

    /// The engine's dimension-occupancy horizon: `Some(τ)` when a query
    /// can only pair with records that were *inserted* within the last
    /// `τ` time units **and** share at least one vector dimension with it
    /// — the contract that lets a sharded driver skip shards holding no
    /// live posting on any of the query's dimensions. `None` when
    /// candidate generation is not dimension-driven (e.g. LSH signature
    /// banding, where even disjoint-support vectors can collide): the
    /// driver must broadcast queries to every shard.
    fn occupancy_horizon(&self) -> Option<f64>;
}

/// The two algorithmic frameworks of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Framework {
    /// MiniBatch (MB): batch indexes over τ-sized windows.
    MiniBatch,
    /// Streaming (STR): one incrementally maintained, time-filtered index.
    Streaming,
}

impl Framework {
    /// Both frameworks, in the paper's order.
    pub const ALL: [Framework; 2] = [Framework::MiniBatch, Framework::Streaming];

    /// Parses the names used by the CLI and the harness.
    pub fn parse(s: &str) -> Option<Framework> {
        match s.to_ascii_lowercase().as_str() {
            "mb" | "minibatch" => Some(Framework::MiniBatch),
            "str" | "streaming" => Some(Framework::Streaming),
            _ => None,
        }
    }
}

impl fmt::Display for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Framework::MiniBatch => "MB",
            Framework::Streaming => "STR",
        })
    }
}

/// Builds one of the paper's eight algorithm combinations
/// (framework × index).
pub fn build_algorithm(
    framework: Framework,
    kind: IndexKind,
    config: SssjConfig,
) -> Box<dyn StreamJoin> {
    match framework {
        Framework::MiniBatch => Box::new(MiniBatch::new(config, kind)),
        Framework::Streaming => Box::new(Streaming::new(config, kind)),
    }
}

/// Runs an algorithm over a full stream and returns all reported pairs.
pub fn run_stream(join: &mut dyn StreamJoin, stream: &[StreamRecord]) -> Vec<SimilarPair> {
    let mut out = Vec::new();
    for r in stream {
        join.process(r, &mut out);
    }
    join.finish(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_parse_roundtrips() {
        for f in Framework::ALL {
            assert_eq!(Framework::parse(&f.to_string()), Some(f));
        }
        assert_eq!(Framework::parse("minibatch"), Some(Framework::MiniBatch));
        assert_eq!(Framework::parse("bogus"), None);
    }

    #[test]
    fn factory_builds_all_combinations() {
        let config = SssjConfig::new(0.7, 0.1);
        for f in Framework::ALL {
            for k in IndexKind::ALL {
                let join = build_algorithm(f, k, config);
                assert!(join.name().starts_with(&f.to_string()));
            }
        }
    }
}
